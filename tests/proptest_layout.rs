//! Property-based tests for the packed pivot-tree layout (DESIGN.md
//! §10): the branchless traversal-order helper against the simulator's
//! bit decoder, and differential packed-vs-legacy sorting over
//! arbitrary inputs and grains.

use proptest::collection::vec;
use proptest::prelude::*;

use wait_free_sort::pram::Pid;
use wait_free_sort::wfsort_native::{
    descent_side, LegacySharedTree, NativeAllocation, Side, SortJob, WaitFreeSorter,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `descent_side` must agree with the simulator's `Pid::bit` for
    /// every depth below `usize::BITS` — the two models must walk sum
    /// and place traversals in the same order or the parity pins in
    /// tests/native_metrics.rs mean nothing. (At or beyond
    /// `usize::BITS` the native helper wraps while `Pid::bit`
    /// saturates; both are fixed, correct orders — see `descent_side`'s
    /// docs — so the contract is scoped to real depths.)
    #[test]
    fn descent_side_matches_simulator_bit(
        tid in 0usize..1_000_000,
        depth in 0u32..usize::BITS,
    ) {
        prop_assert_eq!(
            descent_side(tid, depth),
            Side::from_bit(Pid::new(tid).bit(depth))
        );
    }

    /// Differential sort: for arbitrary keys (duplicates encouraged),
    /// thread counts and grains, the packed and legacy layouts both
    /// produce the sorted permutation — and single-threaded, their
    /// deterministic descent/CAS tallies are identical.
    #[test]
    fn packed_and_legacy_layouts_sort_identically(
        keys in vec(0u64..64, 2..200),
        threads in 1usize..4,
        grain_index in 0usize..4,
    ) {
        let grain = [1usize, 2, 7, 64][grain_index];
        let mut expect = keys.clone();
        expect.sort_unstable();
        let sorter = WaitFreeSorter::new(threads);

        let packed = SortJob::with_grain(
            keys.clone(), NativeAllocation::Deterministic, threads, grain,
        );
        let pr = sorter.run_job_with_report(&packed);
        prop_assert_eq!(packed.into_sorted(), expect.clone());

        let legacy = SortJob::<u64, LegacySharedTree>::with_layout(
            keys.clone(), NativeAllocation::Deterministic, threads, grain,
        );
        let lr = sorter.run_job_with_report(&legacy);
        prop_assert_eq!(legacy.into_sorted(), expect);

        if threads == 1 {
            let (p, l) = (&pr.per_phase, &lr.per_phase);
            prop_assert_eq!(p.build.descent_steps, l.build.descent_steps);
            prop_assert_eq!(p.build.cas_attempts, l.build.cas_attempts);
            prop_assert_eq!(p.build.cas_failures, 0u64);
            prop_assert_eq!(l.build.cas_failures, 0u64);
            prop_assert_eq!(p.build.block_claims, l.build.block_claims);
            prop_assert_eq!(p.sum.visits, l.sum.visits);
            prop_assert_eq!(p.place.visits, l.place.visits);
            prop_assert_eq!(pr.total_ops(), lr.total_ops());
        }
    }
}
