//! Chaos-harness acceptance tests for the native sorter: seeded fault
//! plans, exhaustive crash-window sweeps, deadline-bounded sorting, and
//! the progress watchdog.
//!
//! The native mirror of `tests/wait_freedom.rs`: where that file scripts
//! PRAM-cycle failures through `FailurePlan`, these tests script
//! participation-checkpoint failures through `ChaosPlan` and assert the
//! same headline property — any surviving participant (or, at worst, the
//! calling thread) completes the sort, under every fault schedule tried.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use wait_free_sort::wfsort_native::{
    ChaosParticipation, ChaosPlan, CheckpointCounter, Health, NativeAllocation, Participation,
    QuitAfter, RunToCompletion, SortJob, WaitFreeSorter, Watchdog, WithDeadline,
    DEFAULT_TRACKED_PARTICIPANTS,
};

fn random_keys(n: usize, seed: u64) -> Vec<u64> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..1_000_000)).collect()
}

/// Drives `job` with one `ChaosParticipation` worker per plan slot and
/// reports whether the workers alone completed it.
fn run_cohort(job: &SortJob<u64>, plan: &ChaosPlan) -> bool {
    crossbeam::thread::scope(|s| {
        for w in 0..plan.workers() {
            s.spawn(move |_| job.participate(&mut ChaosParticipation::new(plan, w)));
        }
    })
    .unwrap();
    job.is_complete()
}

/// The core acceptance sweep: 200+ seeded crash storms, each reaping 75%
/// of a 4-worker cohort at random checkpoints. Every run must be
/// completed *by the workers themselves* (no caller fallback) and sorted
/// correctly, and the storm must be reproducible from its seed alone.
#[test]
fn seeded_crash_storm_sweep_200() {
    let keys = random_keys(600, 42);
    let mut expect = keys.clone();
    expect.sort_unstable();
    for seed in 0..200u64 {
        let plan = ChaosPlan::random_crashes(4, 0.75, 150, seed);
        assert!(plan.survivors() >= 1, "seed {seed}: no survivor");
        // The plan is a pure function of its seed.
        let replay = ChaosPlan::random_crashes(4, 0.75, 150, seed);
        for w in 0..4 {
            assert_eq!(plan.script(w), replay.script(w), "seed {seed} worker {w}");
        }
        let job = SortJob::new(keys.clone());
        assert!(
            run_cohort(&job, &plan),
            "seed {seed}: survivors failed to complete the sort"
        );
        assert_eq!(job.into_sorted(), expect, "seed {seed}: wrong output");
    }
}

/// Storms with jitter layered on top: background stalls perturb the
/// interleaving but can never perturb the output.
#[test]
fn seeded_storm_with_jitter_sweep() {
    let keys = random_keys(400, 7);
    let mut expect = keys.clone();
    expect.sort_unstable();
    for seed in 0..40u64 {
        let plan = ChaosPlan::random_crashes(4, 0.5, 120, seed).with_jitter(0.1, 200);
        let job = SortJob::new(keys.clone());
        assert!(run_cohort(&job, &plan), "seed {seed}");
        assert_eq!(job.into_sorted(), expect, "seed {seed}");
    }
}

/// Pause/revive storms (the §1.1 undetectable-restart adversary): nobody
/// crashes, so every cohort finishes — delayed, never blocked.
#[test]
fn pause_revive_storm_completes() {
    let keys = random_keys(400, 9);
    let mut expect = keys.clone();
    expect.sort_unstable();
    for seed in 0..10u64 {
        let plan = ChaosPlan::random_pause_revive(3, 4, 100, seed);
        let job = SortJob::new(keys.clone());
        assert!(run_cohort(&job, &plan), "seed {seed}");
        assert_eq!(job.into_sorted(), expect, "seed {seed}");
    }
}

/// The native mirror of `exhaustive_single_crash_window_sweep`: measure
/// how many checkpoints a solo run of a small input consults, then crash
/// a worker at *every* one of those checkpoints in turn, with a single
/// clean partner. No crash window may corrupt the sort.
#[test]
fn exhaustive_single_crash_checkpoint_sweep() {
    let keys = random_keys(24, 11);
    let mut expect = keys.clone();
    expect.sort_unstable();

    // Window size: checkpoints a solo uninterrupted run consults.
    let baseline = SortJob::new(keys.clone());
    let mut counter = CheckpointCounter::new(RunToCompletion);
    baseline.participate(&mut counter);
    assert!(baseline.is_complete());
    assert_eq!(baseline.into_sorted(), expect);
    let windows = counter.count();
    assert!(windows > 0);

    for c in 0..windows {
        let plan = ChaosPlan::new(2).crash_at(0, c);
        let job = SortJob::new(keys.clone());
        assert!(
            run_cohort(&job, &plan),
            "crash at checkpoint {c}/{windows}: partner failed to finish"
        );
        assert_eq!(
            job.into_sorted(),
            expect,
            "crash at checkpoint {c}/{windows}: wrong output"
        );
    }
}

/// `sort_with_plan` survives a plan that crashes *every* worker
/// immediately: the calling thread is the survivor of last resort.
#[test]
fn sort_with_plan_survives_total_cohort_loss() {
    let keys = random_keys(2_000, 13);
    let mut expect = keys.clone();
    expect.sort_unstable();
    let plan = ChaosPlan::new(4)
        .crash_at(0, 0)
        .crash_at(1, 0)
        .crash_at(2, 0)
        .crash_at(3, 0);
    assert_eq!(plan.survivors(), 0);
    let sorted = WaitFreeSorter::new(4).sort_with_plan(&keys, &plan);
    assert_eq!(sorted, expect);
}

/// `sort_with_plan` under randomized storms across allocation of work to
/// many workers: output is always the full sort.
#[test]
fn sort_with_plan_randomized_storms() {
    let keys = random_keys(1_500, 17);
    let mut expect = keys.clone();
    expect.sort_unstable();
    let sorter = WaitFreeSorter::new(4);
    for seed in 0..25u64 {
        let plan = ChaosPlan::random_crashes(6, 0.8, 200, seed).with_jitter(0.05, 100);
        assert_eq!(sorter.sort_with_plan(&keys, &plan), expect, "seed {seed}");
    }
}

/// A zero deadline reaps every helper at its first checkpoint; the caller
/// still returns the correct sort.
#[test]
fn sort_with_deadline_zero_is_correct() {
    let keys = random_keys(3_000, 19);
    let mut expect = keys.clone();
    expect.sort_unstable();
    let sorter = WaitFreeSorter::new(4);
    assert_eq!(sorter.sort_with_deadline(&keys, Duration::ZERO), expect);
    assert_eq!(
        sorter.sort_with_deadline(&keys, Duration::from_millis(5)),
        expect
    );
}

/// A helper whose deadline already expired at entry does *zero* work:
/// `WithDeadline` checks the clock on its very first consultation, so the
/// inner participation is never consulted and the caller does everything.
#[test]
fn expired_deadline_at_entry_means_zero_helper_occupancy() {
    let keys = random_keys(1_500, 37);
    let mut expect = keys.clone();
    expect.sort_unstable();

    let job = SortJob::new(keys);
    // A deadline strictly in the past (falling back to "now" on platforms
    // where Instant cannot represent it).
    let until = Instant::now()
        .checked_sub(Duration::from_secs(1))
        .unwrap_or_else(Instant::now);
    let counts = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let job = &job;
                s.spawn(move |_| {
                    let mut p = WithDeadline::new(CheckpointCounter::new(RunToCompletion), until);
                    job.participate(&mut p);
                    assert!(p.expired());
                    p.into_inner().count()
                })
            })
            .collect();
        // The caller ignores the deadline and finishes alone.
        job.run();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    })
    .unwrap();
    assert!(job.is_complete());
    assert_eq!(job.into_sorted(), expect);
    assert_eq!(
        counts,
        vec![0, 0, 0],
        "expired helpers consulted checkpoints"
    );
}

/// A deadline racing the final checkpoints: whatever instant the deadline
/// lands on, the sort is correct and each helper overshoots the deadline
/// by at most one clock-sampling window (16 checkpoints).
#[test]
fn deadline_racing_the_final_checkpoint_bounds_occupancy() {
    /// Counts inner consultations that happen at-or-after the deadline —
    /// the occupancy `WithDeadline` is supposed to bound.
    struct LateProbe {
        until: Instant,
        late: u64,
    }
    impl Participation for LateProbe {
        fn keep_going(&mut self) -> bool {
            if Instant::now() >= self.until {
                self.late += 1;
            }
            true
        }
    }

    let keys = random_keys(2_000, 41);
    let mut expect = keys.clone();
    expect.sort_unstable();
    // Deadlines from "immediately" up past typical completion time, so
    // across the sweep some run has the deadline land mid-run or right at
    // the final checkpoints.
    for micros in [0u64, 20, 100, 500, 2_000, 20_000] {
        let job = SortJob::new(keys.clone());
        let until = Instant::now() + Duration::from_micros(micros);
        let late = crossbeam::thread::scope(|s| {
            let handle = {
                let job = &job;
                s.spawn(move |_| {
                    let mut p = WithDeadline::new(LateProbe { until, late: 0 }, until);
                    job.participate(&mut p);
                    p.into_inner().late
                })
            };
            job.run();
            handle.join().unwrap()
        })
        .unwrap();
        assert!(job.is_complete());
        assert_eq!(
            job.into_sorted(),
            expect,
            "deadline {micros}us: wrong output"
        );
        assert!(
            late <= 16,
            "deadline {micros}us: helper consulted {late} checkpoints past the deadline"
        );
    }
}

/// Deadline *and* chaos at once: every helper crashes at checkpoint zero
/// under a zero deadline, and the caller still finishes alone.
#[test]
fn sort_with_deadline_under_total_chaos() {
    let keys = random_keys(2_000, 23);
    let mut expect = keys.clone();
    expect.sort_unstable();
    let plan = ChaosPlan::new(3)
        .crash_at(0, 0)
        .crash_at(1, 0)
        .crash_at(2, 0);
    let sorted = WaitFreeSorter::new(4).sort_with_deadline_under(&keys, Duration::ZERO, &plan);
    assert_eq!(sorted, expect);
}

/// The watchdog tells a reaped-but-progressing run from a wedged one:
/// a worker that quits early reads as `Progressing { reaped: 1, .. }`,
/// a subsequent idle window reads as `Wedged`, and fresh participation
/// flips it back to `Progressing` and eventually `Complete`.
#[test]
fn watchdog_distinguishes_reaped_from_wedged() {
    let keys = random_keys(4_000, 29);
    let job = SortJob::new(keys);
    let mut dog = Watchdog::new(&job);

    // Untouched job: nothing has ever moved.
    assert_eq!(dog.observe(), Health::Wedged);

    // One worker is reaped mid-build. That is progress (work happened),
    // and the report attributes it: one advancing-then-departed worker.
    let plan = ChaosPlan::new(1).crash_at(0, 50);
    job.participate(&mut ChaosParticipation::new(&plan, 0));
    match dog.observe() {
        Health::Progressing {
            advancing, reaped, ..
        } => {
            assert_eq!(advancing, 1);
            assert_eq!(reaped, 1);
        }
        h => panic!("expected Progressing after reaped worker, got {h:?}"),
    }
    let report = dog.report().unwrap().clone();
    assert!(!report.complete);
    assert_eq!(report.reaped_workers(), 1);
    assert_eq!(report.live_workers(), 0);

    // Nobody is working now: the same incomplete job reads Wedged, not
    // Progressing — reaped history does not mask a global stall.
    assert_eq!(dog.observe(), Health::Wedged);

    // A fresh participant clears the wedge, as wait-freedom promises.
    job.run();
    assert_eq!(dog.observe(), Health::Complete);
    let done = dog.report().unwrap();
    assert!(done.complete);
    assert_eq!(done.reaped_workers(), 0);
    assert_eq!(done.build_jobs_done, done.build_jobs_total);
    assert_eq!(done.scatter_jobs_done, done.scatter_jobs_total);
}

/// `ProgressReport` is inspectable mid-run: frontiers move monotonically
/// and the display summary carries the numbers.
#[test]
fn progress_report_tracks_frontiers() {
    let keys = random_keys(1_000, 31);
    let job = SortJob::new(keys);
    let before = job.progress();
    assert!(!before.complete);
    assert_eq!(before.participants, 0);
    assert_eq!(before.build_jobs_done, 0);
    assert_eq!(before.scatter_jobs_done, 0);
    assert!(before.build_jobs_total > 0);

    job.run();
    let after = job.progress();
    assert!(after.complete);
    assert_eq!(after.participants, 1);
    assert_eq!(after.build_jobs_done, after.build_jobs_total);
    assert_eq!(after.scatter_jobs_done, after.scatter_jobs_total);
    let text = after.to_string();
    assert!(text.contains("complete"), "got: {text}");
    let frontier = format!("build {}/{}", after.build_jobs_done, after.build_jobs_total);
    assert!(text.contains(&frontier), "got: {text}");
}

/// Runs normally except for one controlled freeze: at the second
/// checkpoint it flags `parked`, then spins until `release` — a live,
/// wedged participant with a deterministic park point.
struct Gated<'a> {
    release: &'a AtomicBool,
    parked: &'a AtomicBool,
    checks: usize,
}

impl Participation for Gated<'_> {
    fn keep_going(&mut self) -> bool {
        self.checks += 1;
        if self.checks == 2 {
            self.parked.store(true, Ordering::Release);
            while !self.release.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        }
        true
    }
}

/// Regression test for the heartbeat slot-aliasing bug: participant ids
/// used to be folded into a hard-coded 64-slot table (`tid % 64`), so
/// the 65th joiner silently shared slot 0 with a reaped thread — the
/// report showed a departed worker as live, and the watchdog could read
/// a wedged cohort as progressing. `SortJob::with_tracked` now sizes the
/// table to the announced worker count; this test drives one more
/// participant than the old hard-coded capacity and asserts the late
/// joiner gets its own, correctly attributed row.
#[test]
fn heartbeats_track_more_workers_than_the_old_fixed_table() {
    let workers = DEFAULT_TRACKED_PARTICIPANTS + 1;
    let keys = random_keys(6_000, 37);
    let job = SortJob::with_tracked(keys, NativeAllocation::Deterministic, workers);

    // The first 64 participants join and are reaped almost immediately.
    for _ in 0..DEFAULT_TRACKED_PARTICIPANTS {
        job.participate(&mut QuitAfter(1));
    }
    assert!(!job.is_complete(), "quitters alone must not finish the job");

    let release = AtomicBool::new(false);
    let parked = AtomicBool::new(false);
    let mut dog = Watchdog::new(&job);
    std::thread::scope(|s| {
        s.spawn(|| {
            job.participate(&mut Gated {
                release: &release,
                parked: &parked,
                checks: 0,
            });
        });
        while !parked.load(Ordering::Acquire) {
            std::thread::yield_now();
        }

        // With the old indexing the report had 64 rows and the late
        // joiner aliased slot 0, resurrecting a reaped thread. Now every
        // participant has its own row and nothing is aliased.
        let report = job.progress();
        assert_eq!(report.tracked_slots, workers);
        assert_eq!(report.aliased_participants, 0);
        assert_eq!(report.participants, workers);
        assert_eq!(report.workers.len(), workers);
        assert!(
            report.workers[..DEFAULT_TRACKED_PARTICIPANTS]
                .iter()
                .all(|w| w.departed),
            "the reaped cohort must read as departed"
        );
        let late = &report.workers[DEFAULT_TRACKED_PARTICIPANTS];
        assert!(!late.departed, "the parked worker is live, not reaped");
        assert!(late.epoch > 0, "the parked worker published progress");
        assert_eq!(report.live_workers(), 1);

        // The watchdog sees through the reaped pile: the parked live
        // worker stops the epoch clock, so the second observation is a
        // true global stall, not Progressing-by-alias.
        assert!(matches!(dog.observe(), Health::Progressing { .. }));
        assert_eq!(dog.observe(), Health::Wedged);

        release.store(true, Ordering::Release);
    });
    assert!(job.is_complete(), "released worker finishes the sort");
    assert_eq!(dog.observe(), Health::Complete);
}

/// Joiners beyond the heartbeat table are no longer silently folded into
/// old slots: the report counts them as aliased, keeping live/reaped
/// attribution honest for the rows it does track.
#[test]
fn default_job_counts_aliased_late_joiners() {
    let keys = random_keys(3_000, 41);
    let job = SortJob::new(keys);
    for _ in 0..DEFAULT_TRACKED_PARTICIPANTS + 6 {
        job.participate(&mut QuitAfter(1));
    }
    let report = job.progress();
    assert_eq!(report.tracked_slots, DEFAULT_TRACKED_PARTICIPANTS);
    assert_eq!(report.participants, DEFAULT_TRACKED_PARTICIPANTS + 6);
    assert_eq!(report.aliased_participants, 6);
    assert_eq!(report.workers.len(), DEFAULT_TRACKED_PARTICIPANTS);
    let text = report.to_string();
    assert!(text.contains("[6 aliased]"), "got: {text}");
}
