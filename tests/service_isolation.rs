//! Cross-tenant isolation acceptance suite for the native `SortService`.
//!
//! The service inherits the paper's wait-freedom guarantee as an
//! *isolation* property: a `ChaosPlan` that crashes, stalls, or pauses
//! every worker assigned to one tenant's job must strand only that job
//! — every concurrent tenant's output stays bit-identical to a
//! sequential sort, the service's counters attribute exactly one
//! failure/recovery to the victim, and graceful shutdown drains
//! in-flight jobs while rejecting new ones with a typed error.
//!
//! The scheduler half of the suite proves the same isolation story for
//! *contention* rather than faults: a weight-1 tenant completes within
//! a bounded number of picks under a sustained weight-8 flood (the
//! deficit scheduler never starves anyone), and helper joins — idle
//! workers attaching to in-flight sharded jobs — never change a single
//! output byte even while a chaos storm batters a sibling tenant.

use std::collections::VecDeque;
use std::time::Duration;

use wait_free_sort::wfsort_native::{
    ChaosPlan, JobError, JobOptions, Rejected, ServiceConfig, SortService,
};

fn random_keys(n: usize, seed: u64) -> Vec<u64> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..1_000_000)).collect()
}

fn sequential_sort(keys: &[u64]) -> Vec<u64> {
    let mut out = keys.to_vec();
    out.sort();
    out
}

/// The ISSUE-6 isolation proof, recovery flavor: a plan crashes every
/// worker assigned to one tenant's job; five concurrent tenants all
/// complete bit-identically to sequential sorts; the victim is revived
/// by exactly one recovery dispatch and completes too.
#[test]
fn crashing_every_victim_worker_leaves_other_tenants_bit_identical() {
    let service = SortService::start(
        ServiceConfig::default()
            .workers(3)
            .max_recoveries(2)
            .queue_capacity(64),
    );
    let tenants: Vec<Vec<u64>> = (0..5).map(|t| random_keys(3_000, 10 + t)).collect();
    let victim_keys = random_keys(3_000, 99);
    // Two claims for the victim; both chaos slots crash within a few
    // checkpoints, before either can finish the 3k-key job.
    let plan = ChaosPlan::new(2).crash_at(0, 2).crash_at(1, 4);
    let victim = service
        .submit(
            victim_keys.clone(),
            JobOptions::default().plan(plan).helpers(2),
        )
        .unwrap();
    let tickets: Vec<_> = tenants
        .iter()
        .map(|keys| {
            service
                .submit(keys.clone(), JobOptions::default().helpers(2))
                .unwrap()
        })
        .collect();

    for (keys, ticket) in tenants.iter().zip(tickets) {
        let result = ticket.wait();
        assert_eq!(
            result.sorted.expect("healthy tenant must complete"),
            sequential_sort(keys),
            "surviving tenant's output must be bit-identical to a sequential sort"
        );
    }
    let victim_result = victim.wait();
    assert_eq!(
        victim_result.sorted.expect("recovered victim completes"),
        sequential_sort(&victim_keys)
    );
    assert!(
        victim_result.report.recoveries >= 1,
        "the victim must have needed at least one recovery dispatch"
    );

    let stats = service.shutdown();
    assert_eq!(stats.admitted, 6);
    assert_eq!(
        stats.completed, 6,
        "every tenant, victim included, completed"
    );
    assert_eq!(
        stats.crash_recoveries, 1,
        "exactly one recovered job service-wide"
    );
    assert_eq!(stats.workers_lost, 0);
    assert_eq!(stats.failed(), 0);
}

/// The ISSUE-6 isolation proof, clean-failure flavor: the plan also
/// crashes every recovery stint, so the victim alone fails with a typed
/// `WorkersLost` — and still no other tenant is affected.
#[test]
fn unrecoverable_victim_fails_alone_with_typed_error() {
    let service = SortService::start(
        ServiceConfig::default()
            .workers(3)
            .max_recoveries(1)
            .queue_capacity(64),
    );
    // Enough crashing chaos slots to cover the claims and every recovery
    // the service is willing to dispatch.
    let mut plan = ChaosPlan::new(8);
    for slot in 0..8 {
        plan = plan.crash_at(slot, 1 + slot as u64);
    }
    let victim_keys = random_keys(3_000, 199);
    let victim = service
        .submit(
            victim_keys.clone(),
            JobOptions::default().plan(plan).helpers(2),
        )
        .unwrap();
    let tenants: Vec<Vec<u64>> = (0..4).map(|t| random_keys(3_000, 200 + t)).collect();
    let tickets: Vec<_> = tenants
        .iter()
        .map(|keys| {
            service
                .submit(keys.clone(), JobOptions::default().helpers(2))
                .unwrap()
        })
        .collect();

    assert_eq!(
        victim.wait().sorted.unwrap_err(),
        JobError::WorkersLost { recoveries: 1 },
        "the victim fails with a clean typed error, not a panic or a hang"
    );
    for (keys, ticket) in tenants.iter().zip(tickets) {
        assert_eq!(ticket.wait().sorted.unwrap(), sequential_sort(keys));
    }
    let stats = service.shutdown();
    assert_eq!(stats.admitted, 5);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.workers_lost, 1, "exactly one failed job service-wide");
    assert_eq!(stats.failed(), 1);
}

/// Chaos-storm sweep: seeded random crash schedules layered with stalls
/// and pauses drive one tenant's job while four healthy tenants run
/// concurrently. Every surviving tenant must stay bit-identical to a
/// sequential sort under every storm, and the victim must either
/// complete correctly (possibly after recoveries) or fail typed.
#[test]
fn seeded_chaos_storm_sweep_never_leaks_across_tenants() {
    for seed in 0..10u64 {
        let service = SortService::start(
            ServiceConfig::default()
                .workers(2)
                .max_recoveries(2)
                .queue_capacity(64),
        );
        let victim_keys = random_keys(1_500, 9_000 + seed);
        // Crash ~90% of three chaos slots at seeded checkpoints, then
        // layer in a pause and a stall so all three fault flavors hit.
        let plan = ChaosPlan::random_crashes(3, 0.9, 120, seed)
            .pause_at(0, 5, 200)
            .stall_at(1, 7, 500);
        let victim = service
            .submit(
                victim_keys.clone(),
                JobOptions::default().plan(plan).helpers(3),
            )
            .unwrap();
        let tenants: Vec<Vec<u64>> = (0..4)
            .map(|t| random_keys(1_200, 20_000 + seed * 8 + t))
            .collect();
        let tickets: Vec<_> = tenants
            .iter()
            .map(|keys| service.submit(keys.clone(), JobOptions::default()).unwrap())
            .collect();

        for (keys, ticket) in tenants.iter().zip(tickets) {
            assert_eq!(
                ticket.wait().sorted.expect("healthy tenant under storm"),
                sequential_sort(keys),
                "seed {seed}: tenant output diverged under a sibling's chaos storm"
            );
        }
        match victim.wait().sorted {
            Ok(sorted) => assert_eq!(sorted, sequential_sort(&victim_keys), "seed {seed}"),
            Err(err) => assert!(
                matches!(err, JobError::WorkersLost { .. }),
                "seed {seed}: unexpected victim error {err}"
            ),
        }
        let stats = service.shutdown();
        assert_eq!(stats.admitted, 5, "seed {seed}");
        assert_eq!(
            stats.completed + stats.workers_lost,
            5,
            "seed {seed}: every admitted job must publish exactly once"
        );
    }
}

/// Graceful shutdown: everything admitted before `begin_shutdown` is
/// drained to publication; everything submitted after it is rejected
/// with the typed `ShuttingDown` error.
#[test]
fn shutdown_drains_admitted_jobs_and_rejects_new_ones() {
    let service = SortService::start(ServiceConfig::default().workers(2));
    let tenants: Vec<Vec<u64>> = (0..5).map(|t| random_keys(2_500, 300 + t)).collect();
    let tickets: Vec<_> = tenants
        .iter()
        .map(|keys| service.submit(keys.clone(), JobOptions::default()).unwrap())
        .collect();

    service.begin_shutdown();
    assert_eq!(
        service
            .submit(random_keys(100, 999), JobOptions::default())
            .unwrap_err(),
        Rejected::ShuttingDown
    );

    let stats = service.shutdown();
    assert_eq!(stats.admitted, 5);
    assert_eq!(stats.completed, 5, "shutdown drained every in-flight job");
    assert_eq!(stats.rejected_shutting_down, 1);
    for (keys, ticket) in tenants.iter().zip(tickets) {
        let result = ticket
            .try_wait()
            .expect("all in-flight jobs published before shutdown returned");
        assert_eq!(result.sorted.unwrap(), sequential_sort(keys));
    }
}

/// Deadlines and budgets are per-tenant too: a zero-deadline job and a
/// starved-budget job fail typed while a plain sibling sharing the pool
/// completes bit-identically to a sequential sort.
#[test]
fn expired_tenants_do_not_disturb_live_ones() {
    let service = SortService::start(ServiceConfig::default().workers(2));
    let keys = random_keys(4_000, 400);
    let doomed = service
        .submit(
            keys.clone(),
            JobOptions::default().deadline(Duration::ZERO).helpers(1),
        )
        .unwrap();
    let starved = service
        .submit(keys.clone(), JobOptions::default().budget(5).helpers(1))
        .unwrap();
    let fine = service.submit(keys.clone(), JobOptions::default()).unwrap();
    assert_eq!(doomed.wait().sorted.unwrap_err(), JobError::DeadlineExpired);
    assert_eq!(
        starved.wait().sorted.unwrap_err(),
        JobError::BudgetExhausted { budget: 5 }
    );
    assert_eq!(fine.wait().sorted.unwrap(), sequential_sort(&keys));
    let stats = service.shutdown();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.budget_exhausted, 1);
    assert_eq!(stats.completed, 1);
}

/// Starvation bound under a sustained heavier flood: a weight-1 tenant
/// shares a single worker with a weight-8 flood that is replenished
/// one-for-one as its jobs complete (at most four outstanding). The
/// deficit scheduler ages the passed-over weight-1 entry by its weight
/// on every pick, so its credit must eventually beat every fresh
/// flood arrival — it completes well before the flood's 40-job cap,
/// where strict priority would starve it for the full flood.
#[test]
fn weight_one_tenant_completes_during_a_weight_eight_flood() {
    const FLOOD_CAP: usize = 40;
    let service = SortService::start(ServiceConfig::default().workers(1));
    // Pause the lone worker mid-stint so the lonely tenant and the
    // initial flood wave are all queued before the first real pick.
    let blocker_keys = random_keys(2_000, 50_000);
    let blocker = service
        .submit(
            blocker_keys.clone(),
            JobOptions::default()
                .plan(ChaosPlan::new(1).pause_at(0, 1, 50_000))
                .helpers(1),
        )
        .unwrap();
    let lonely_keys = random_keys(2_000, 50_001);
    let lonely = service
        .submit(
            lonely_keys.clone(),
            JobOptions::default().helpers(1).weight(1),
        )
        .unwrap();
    let flood_keys = random_keys(2_000, 50_002);
    let submit_flood = || {
        service
            .submit(
                flood_keys.clone(),
                JobOptions::default().helpers(1).weight(8),
            )
            .unwrap()
    };
    let mut flood: VecDeque<_> = (0..4).map(|_| submit_flood()).collect();
    let mut submitted = 4;
    let mut flood_completed = 0usize;

    let mut lonely = Some(lonely);
    let lonely_result = loop {
        match lonely.take().unwrap().try_wait() {
            Ok(result) => break result,
            Err(ticket) => lonely = Some(ticket),
        }
        let next = flood.pop_front().expect(
            "the weight-1 tenant outlived the whole flood: deficit \
             scheduling failed to bound its wait",
        );
        assert_eq!(
            next.wait().sorted.expect("flood tenant completes"),
            sequential_sort(&flood_keys)
        );
        flood_completed += 1;
        if submitted < FLOOD_CAP {
            flood.push_back(submit_flood());
            submitted += 1;
        }
    };
    assert!(
        flood_completed < FLOOD_CAP,
        "weight-1 tenant only completed after the flood was exhausted"
    );
    assert_eq!(
        lonely_result.sorted.expect("weight-1 tenant completes"),
        sequential_sort(&lonely_keys),
        "scheduling weights must never change a tenant's output"
    );
    assert_eq!(
        blocker.wait().sorted.expect("paused blocker resumes"),
        sequential_sort(&blocker_keys)
    );
    for ticket in flood {
        assert_eq!(
            ticket.wait().sorted.expect("flood tenant completes"),
            sequential_sort(&flood_keys)
        );
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, stats.admitted);
    assert!(
        stats.weighted_picks >= 1,
        "the weight-8 flood must have overtaken the queue order at \
         least once: {stats:?}"
    );
    assert!(stats.weighted_picks <= stats.queue_picks);
}

/// Work conservation under fire: four workers, one chaos-storm victim,
/// and three plan-free sharded tenants big enough that idle workers
/// join them as helper stints. Helpers are extra participants in the
/// paper's §3 sense — they may only speed a sort up — so every tenant
/// must stay bit-identical to a sequential sort on every storm seed,
/// and the publication ledger must still balance.
#[test]
fn helper_joined_tenants_stay_bit_identical_under_chaos_storms() {
    let mut total_helper_stints = 0u64;
    for seed in 0..6u64 {
        let service = SortService::start(
            ServiceConfig::default()
                .workers(4)
                .max_recoveries(2)
                .sharded_cutoff(4_096),
        );
        let victim_keys = random_keys(1_500, 30_000 + seed);
        let plan = ChaosPlan::random_crashes(3, 0.9, 100, seed)
            .pause_at(0, 5, 200)
            .stall_at(1, 7, 500);
        let victim = service
            .submit(
                victim_keys.clone(),
                JobOptions::default().plan(plan).helpers(3),
            )
            .unwrap();
        // Plan-free, budget-free, and past the sharded cutoff with a
        // single queue claim each: exactly the shape the scheduler
        // lists for helper joins once the queue drains.
        let tenants: Vec<Vec<u64>> = (0..3)
            .map(|t| random_keys(8_000, 31_000 + seed * 8 + t))
            .collect();
        let tickets: Vec<_> = tenants
            .iter()
            .map(|keys| {
                service
                    .submit(keys.clone(), JobOptions::default().helpers(1))
                    .unwrap()
            })
            .collect();

        for (keys, ticket) in tenants.iter().zip(tickets) {
            assert_eq!(
                ticket
                    .wait()
                    .sorted
                    .expect("helper-joined tenant completes"),
                sequential_sort(keys),
                "seed {seed}: helper joins changed a tenant's output"
            );
        }
        match victim.wait().sorted {
            Ok(sorted) => assert_eq!(sorted, sequential_sort(&victim_keys), "seed {seed}"),
            Err(err) => assert!(
                matches!(err, JobError::WorkersLost { .. }),
                "seed {seed}: unexpected victim error {err}"
            ),
        }
        let stats = service.shutdown();
        assert_eq!(
            stats.completed + stats.workers_lost,
            4,
            "seed {seed}: every admitted job must publish exactly once"
        );
        assert_eq!(
            stats.small_batched, 0,
            "seed {seed}: no job in this shape is small enough to batch"
        );
        total_helper_stints += stats.helper_stints;
    }
    assert!(
        total_helper_stints > 0,
        "across six storms, idle workers never once joined an in-flight \
         sharded job — work conservation is broken"
    );
}
