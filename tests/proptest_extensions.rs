//! Property-based tests for the extension components: the P < N
//! low-contention sort, the universal-construction baseline, and
//! arbitrary adversarial schedules driven by proptest-generated masks.

use proptest::collection::vec;
use proptest::prelude::*;

use wait_free_sort::baselines::UniversalSorter;
use wait_free_sort::pram::{failure::FailurePlan, AdversaryScheduler, Pid};
use wait_free_sort::wfsort::low_contention::LowContentionSorter;
use wait_free_sort::wfsort::{check_sorted_permutation, PramSorter, SortConfig};
use wait_free_sort::wfsort_native::{AtomicLcWat, ChaosPlan};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// P < N low-contention sort across valid (N, P) combinations.
    #[test]
    fn lc_sort_p_ne_n(
        k in 1u32..3,           // P = 4^k in {4, 16}
        mult in 1usize..6,      // N = mult * sqrt(P) * something
        seed in 0u64..100,
    ) {
        let p = 4usize.pow(k);
        let gp = 1usize << (p.trailing_zeros() / 2);
        let n = (p + mult * gp).max(p); // >= P and divisible by sqrt(P)
        prop_assume!(LowContentionSorter::supports(n, p));
        let keys: Vec<i64> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(seed * 2 + 3) % 53) as i64)
            .collect();
        let outcome = LowContentionSorter::default()
            .sort_with_processors(&keys, p)
            .unwrap();
        prop_assert!(check_sorted_permutation(&keys, &outcome.sorted).is_ok());
    }

    /// Universal-construction baseline: sorted permutation for arbitrary
    /// inputs and processor counts.
    #[test]
    fn universal_sorter_contract(
        keys in vec(-50i64..50, 0..40),
        nprocs in 1usize..10,
    ) {
        let outcome = UniversalSorter::new(nprocs).sort(&keys).unwrap();
        prop_assert!(check_sorted_permutation(&keys, &outcome.sorted).is_ok());
    }

    /// Arbitrary adversarial schedules: a proptest-generated bitmask per
    /// cycle decides who steps; as long as the pattern repeats (so
    /// everyone eventually moves), the sort completes correctly.
    #[test]
    fn sort_under_arbitrary_repeating_masks(
        keys in vec(0i64..100, 4..40),
        masks in vec(1u8..=255, 1..16),
        seed in 0u64..50,
    ) {
        let p = 8;
        let sorter = PramSorter::new(SortConfig::new(p).seed(seed));
        let masks2 = masks.clone();
        let mut sched = AdversaryScheduler::new(move |cycle, runnable: &[Pid]| {
            let mask = masks2[(cycle as usize) % masks2.len()];
            let picked: Vec<Pid> = runnable
                .iter()
                .copied()
                .filter(|pid| mask >> (pid.index() % 8) & 1 == 1)
                .collect();
            if picked.is_empty() {
                // Keep the schedule fair: step the first runnable.
                runnable.first().copied().into_iter().collect()
            } else {
                picked
            }
        });
        let outcome = sorter
            .sort_under(&keys, &mut sched, &FailurePlan::new())
            .unwrap();
        prop_assert!(check_sorted_permutation(&keys, &outcome.sorted).is_ok());
    }

    /// Native LC-WAT executes every job for arbitrary job counts and
    /// deserter patterns with one persistent participant.
    #[test]
    fn atomic_lcwat_with_random_deserters(
        jobs in 1usize..150,
        budgets in vec(1usize..60, 0..5),
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let wat = AtomicLcWat::new(jobs);
        let counts: Vec<AtomicUsize> = (0..jobs).map(|_| AtomicUsize::new(0)).collect();
        crossbeam::thread::scope(|s| {
            for (t, budget) in budgets.iter().enumerate() {
                let wat = &wat;
                let counts = &counts;
                let mut b = *budget;
                s.spawn(move |_| {
                    wat.participate(t as u64 + 1, |j| {
                        counts[j].fetch_add(1, Ordering::Relaxed);
                    }, move || { b = b.saturating_sub(1); b > 0 });
                });
            }
            let wat = &wat;
            let counts = &counts;
            s.spawn(move |_| {
                wat.participate(0, |j| {
                    counts[j].fetch_add(1, Ordering::Relaxed);
                }, || true);
            });
        }).unwrap();
        prop_assert!(wat.all_done());
        prop_assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// `ChaosPlan` script generation is a pure function of (shape, seed):
    /// regenerating with identical parameters yields identical per-worker
    /// scripts from both generators, so any native chaos run reproduces
    /// from its seed alone.
    #[test]
    fn chaos_plan_generation_is_deterministic(
        workers in 1usize..12,
        fraction in 0.0f64..1.0,
        rounds in 0usize..5,
        horizon in 1u64..500,
        seed in proptest::num::u64::ANY,
    ) {
        let a = ChaosPlan::random_crashes(workers, fraction, horizon, seed);
        let b = ChaosPlan::random_crashes(workers, fraction, horizon, seed);
        prop_assert_eq!(a.workers(), workers);
        prop_assert_eq!(a.crash_victims(), b.crash_victims());
        prop_assert!(a.survivors() >= 1);
        for w in 0..workers {
            prop_assert_eq!(a.script(w), b.script(w), "crashes differ for worker {}", w);
        }
        let c = ChaosPlan::random_pause_revive(workers, rounds, horizon, seed);
        let d = ChaosPlan::random_pause_revive(workers, rounds, horizon, seed);
        prop_assert_eq!(c.len(), workers * rounds);
        prop_assert_eq!(c.crash_victims(), 0);
        for w in 0..workers {
            prop_assert_eq!(c.script(w), d.script(w), "pauses differ for worker {}", w);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Crash plans against the LC sorter at P = N = 16.
    #[test]
    fn lc_sort_under_crash_plans(
        fraction in 0.0f64..0.95,
        horizon in 50u64..800,
        seed in 0u64..50,
    ) {
        let n = 16;
        let keys: Vec<i64> = (0..n).map(|i| ((i * 7) % 16) as i64).collect();
        let plan = FailurePlan::random_crashes(n, fraction, horizon, seed);
        let outcome = LowContentionSorter::default()
            .sort_under(&keys, &mut wait_free_sort::pram::SyncScheduler, &plan)
            .unwrap();
        prop_assert!(check_sorted_permutation(&keys, &outcome.sorted).is_ok());
    }
}
