//! Direct checks of the wait-freedom *definition* (Herlihy, §1 of the
//! paper): every operation by any processor completes within a bounded
//! number of that processor's own steps, regardless of what the other
//! processors do — including doing nothing at all forever.

use wait_free_sort::pram::{
    failure::FailurePlan, AdversaryScheduler, ExploreTarget, Explorer, Machine, MemoryLayout, Pid,
    ScheduleScript, SyncScheduler,
};
use wait_free_sort::wat::{NopWorker, Wat, WriteAllWorker};
use wait_free_sort::wfsort::{
    check_sorted_permutation, Phase, PhaseTarget, PramSorter, SortConfig, SortLayout, Workload,
};

/// An adversary that only ever steps processor 0 must see processor 0
/// finish the whole sort alone, within its per-processor step bound.
#[test]
fn lone_processor_finishes_entire_sort() {
    let n = 64;
    let keys = Workload::UniformRandom.generate(n, 1);
    let sorter = PramSorter::new(SortConfig::new(8).seed(1));
    let mut prepared = sorter.prepare(&keys);
    let mut only_zero = AdversaryScheduler::new(|_cycle, runnable: &[Pid]| {
        runnable
            .iter()
            .copied()
            .filter(|p| p.index() == 0)
            .collect()
    });
    // The 7 frozen processors never halt, so drive cycles until
    // processor 0 itself finishes — that *is* the wait-freedom claim.
    while prepared.machine.state(Pid::new(0)) == wait_free_sort::pram::ProcessState::Runnable {
        prepared.machine.cycle(&mut only_zero);
        assert!(
            prepared.machine.cycle_count() < prepared.budget,
            "processor 0 blocked by frozen processors"
        );
    }
    let out = prepared.layout.read_output(prepared.machine.memory());
    check_sorted_permutation(&keys, &out).unwrap();
}

/// Stop-and-go adversary: every processor is frozen for long stretches at
/// arbitrary points; total progress is still guaranteed whenever anyone
/// moves. (Freezing is scheduling, not crashing — nobody is ever removed.)
#[test]
fn stop_and_go_adversary() {
    let n = 48;
    let keys = Workload::RandomPermutation.generate(n, 9);
    let sorter = PramSorter::new(SortConfig::new(6).seed(9));
    let mut prepared = sorter.prepare(&keys);
    // Step only processors whose index matches the cycle's low bits —
    // a rotating spotlight that strands everyone repeatedly.
    let mut spotlight = AdversaryScheduler::new(|cycle, runnable: &[Pid]| {
        runnable
            .iter()
            .copied()
            .filter(|p| p.index() as u64 % 3 == cycle % 3)
            .collect()
    });
    prepared
        .machine
        .run(&mut spotlight, prepared.budget * 3)
        .expect("rotating spotlight schedules are fair enough to finish");
    let out = prepared.layout.read_output(prepared.machine.memory());
    check_sorted_permutation(&keys, &out).unwrap();
}

/// Per-processor step bound for the full sort: a processor running alone
/// takes O(N * depth) steps; with random input and one processor that is
/// O(N log N) with the WAT's constant. Verify the bound empirically and
/// that it does not depend on *other* processors being scheduled.
#[test]
fn per_processor_step_bound_independent_of_others() {
    let n = 128;
    let keys = Workload::RandomPermutation.generate(n, 4);

    // Run A: processor 0 alone (others never scheduled).
    let sorter = PramSorter::new(SortConfig::new(4).seed(4));
    let mut prepared = sorter.prepare(&keys);
    let mut only_zero = AdversaryScheduler::new(|_c, runnable: &[Pid]| {
        runnable
            .iter()
            .copied()
            .filter(|p| p.index() == 0)
            .collect()
    });
    while prepared.machine.state(Pid::new(0)) == wait_free_sort::pram::ProcessState::Runnable {
        prepared.machine.cycle(&mut only_zero);
        assert!(prepared.machine.cycle_count() < prepared.budget, "runaway");
    }
    let alone = prepared.machine.metrics().steps_per_process[0];

    // Run B: all four processors in lockstep.
    let mut prepared = sorter.prepare(&keys);
    prepared
        .machine
        .run(&mut SyncScheduler, prepared.budget)
        .unwrap();
    let together = prepared.machine.metrics().steps_per_process[0];

    // Wait-freedom: the bound on processor 0's steps is a property of the
    // algorithm, not the schedule. Running with helpers, processor 0 can
    // only take *fewer or comparable* steps — helpers may make its tree
    // walks cheaper or slightly costlier, never unbounded.
    assert!(
        together <= 2 * alone,
        "steps with helpers ({together}) should not blow up vs alone ({alone})"
    );
    let bound = 64 * (n as u64) * ((n as f64).log2() as u64 + 1);
    assert!(
        alone < bound,
        "solo steps {alone} exceed O(N log N) bound {bound}"
    );
}

/// next_element's O(log N) bound holds for each call even when issued
/// from the most disadvantaged position (fresh processor, stale tree).
#[test]
fn late_arriving_processor_pays_only_logarithmic_catchup_per_call() {
    let jobs = 256;
    let mut layout = MemoryLayout::new();
    let wat = Wat::layout(&mut layout, jobs);
    let mut machine = Machine::new(layout.total());
    for p in wat.processes(2, |_| NopWorker) {
        machine.add_process(p);
    }
    // Let processor 0 do everything; processor 1 sleeps.
    let mut only_zero = AdversaryScheduler::new(|_c, runnable: &[Pid]| {
        runnable
            .iter()
            .copied()
            .filter(|p| p.index() == 0)
            .collect()
    });
    while machine.state(Pid::new(0)) == wait_free_sort::pram::ProcessState::Runnable {
        machine.cycle(&mut only_zero);
        assert!(machine.cycle_count() < 100_000, "runaway");
    }
    // Now wake processor 1: the whole tree is DONE, so its first
    // next_element call (after its initial leaf work) must return DONE
    // within O(log N) steps.
    let before = machine.metrics().steps_per_process[1];
    machine.run(&mut SyncScheduler, 10_000).unwrap();
    let steps = machine.metrics().steps_per_process[1] - before;
    let bound = 6 * (jobs as f64).log2() as u64 + 12;
    assert!(
        steps <= bound,
        "late processor took {steps} steps, bound {bound}"
    );
}

/// Fail-revive storms (§1.1's undetectable-restart model): every
/// processor repeatedly crashes and silently resumes mid-program; the
/// sort still completes correctly.
#[test]
fn fail_revive_storms() {
    let keys = Workload::UniformRandom.generate(48, 17);
    for seed in 0..6 {
        let plan = FailurePlan::random_crash_revive(6, 4, 400, seed);
        let outcome = PramSorter::new(SortConfig::new(6).seed(seed))
            .sort_under(&keys, &mut SyncScheduler, &plan)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        check_sorted_permutation(&keys, &outcome.sorted)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Crashing processors at every possible cycle of a small run (an
/// exhaustive sweep of the crash window) never breaks the result — and
/// every window's schedule reproduces from its serialized explorer token
/// alone, so a failing window in a CI log is enough to replay it locally.
#[test]
fn exhaustive_single_crash_window_sweep() {
    let n = 24;
    let keys = Workload::UniformRandom.generate(n, 13);
    let sorter = PramSorter::new(SortConfig::new(3).seed(13));
    // Determine the failure-free run length.
    let baseline = sorter.sort(&keys).unwrap().report.metrics.cycles;
    for crash_cycle in 0..baseline {
        let plan = FailurePlan::new().crash_at(crash_cycle, Pid::new(0));
        let outcome = sorter
            .sort_under(&keys, &mut SyncScheduler, &plan)
            .unwrap_or_else(|e| panic!("crash at {crash_cycle}: {e}"));
        check_sorted_permutation(&keys, &outcome.sorted)
            .unwrap_or_else(|e| panic!("crash at {crash_cycle}: {e}"));

        // Replay-token round trip for a subsample of windows (the token
        // machinery is schedule-level, so a spread of windows suffices):
        // serialize → deserialize → identical script → identical run.
        if crash_cycle % 13 != 0 {
            continue;
        }
        let target = PhaseTarget::new(Phase::EndToEnd, keys.clone(), 3)
            .seed(13)
            .with_failures(plan.clone());
        let script = ScheduleScript::new(ExploreTarget::label(&target))
            .preempt_at(crash_cycle / 2, 1)
            .with_failures(&plan);
        let token = script.to_token();
        let parsed = ScheduleScript::from_token(&token)
            .unwrap_or_else(|e| panic!("window {crash_cycle}: token did not parse: {e}"));
        assert_eq!(
            parsed, script,
            "window {crash_cycle}: token round-trip drifted"
        );
        let (m1, o1) = Explorer::replay(&target, &script);
        let (m2, o2) = Explorer::replay(&target, &parsed);
        assert_eq!(o1, o2, "window {crash_cycle}: replays diverged ({token})");
        assert_eq!(o1.violation, None, "window {crash_cycle}: {token}");
        let mut layout = MemoryLayout::new();
        let sort_layout = SortLayout::layout(&mut layout, n);
        assert_eq!(
            sort_layout.read_output(m1.memory()),
            sort_layout.read_output(m2.memory()),
            "window {crash_cycle}: memory diverged across replays ({token})"
        );
    }
}

/// Same sweep for the write-all substrate with two processors: crash
/// either one at every cycle.
#[test]
fn exhaustive_crash_sweep_write_all() {
    let jobs = 16;
    let build = || {
        let mut layout = MemoryLayout::new();
        let out = layout.region(jobs);
        let wat = Wat::layout(&mut layout, jobs);
        let mut machine = Machine::new(layout.total());
        for p in wat.processes(2, |_| WriteAllWorker::new(out, 1)) {
            machine.add_process(p);
        }
        (machine, wat, out)
    };
    let (mut m0, _, _) = build();
    let baseline = m0.run(&mut SyncScheduler, 100_000).unwrap().metrics.cycles;
    for victim in 0..2 {
        for crash_cycle in 0..baseline {
            let (mut machine, wat, out) = build();
            let plan = FailurePlan::new().crash_at(crash_cycle, Pid::new(victim));
            machine
                .run_with_failures(&mut SyncScheduler, &plan, 100_000)
                .unwrap();
            assert!(
                wat.all_done(machine.memory()),
                "victim {victim} @ {crash_cycle}"
            );
            assert_eq!(
                machine.memory().snapshot(out.range()),
                vec![1; jobs],
                "victim {victim} @ {crash_cycle}"
            );
        }
    }
}
