//! Cross-crate integration tests: every sorting implementation in the
//! workspace must agree with every other (and with `std`) on the same
//! inputs, across execution substrates.

use wait_free_sort::baselines::{BitonicNetwork, LockedParallelSorter, SimulatedNetworkSorter};
use wait_free_sort::pram::{failure::FailurePlan, RandomScheduler, SyncScheduler};
use wait_free_sort::wfsort::low_contention::LowContentionSorter;
use wait_free_sort::wfsort::{
    check_sorted_permutation, Allocation, PramSorter, SortConfig, Workload,
};
use wait_free_sort::wfsort_native::WaitFreeSorter;

/// Every implementation sorts the same input to the same output.
#[test]
fn all_sorters_agree() {
    let n = 256; // 4^4 so the LC sorter participates
    for (wi, w) in Workload::all().into_iter().enumerate() {
        let keys = w.generate(n, 77 + wi as u64);
        let mut expect = keys.clone();
        expect.sort_unstable();

        let det = PramSorter::new(SortConfig::new(32)).sort(&keys).unwrap();
        assert_eq!(det.sorted, expect, "PramSorter deterministic / {w}");

        let rnd = PramSorter::new(SortConfig::new(32).allocation(Allocation::Randomized))
            .sort(&keys)
            .unwrap();
        assert_eq!(rnd.sorted, expect, "PramSorter randomized / {w}");

        let lc = LowContentionSorter::default().sort(&keys).unwrap();
        assert_eq!(lc.sorted, expect, "LowContentionSorter / {w}");

        let native = WaitFreeSorter::new(4).sort(&keys);
        assert_eq!(native, expect, "WaitFreeSorter / {w}");

        let sim = SimulatedNetworkSorter::new(16).sort(&keys).unwrap();
        assert_eq!(sim.sorted, expect, "SimulatedNetworkSorter / {w}");

        let locked_input: Vec<u64> = keys.iter().map(|&k| (k + 10_000) as u64).collect();
        let locked = LockedParallelSorter::new(4).sort(&locked_input);
        let locked_back: Vec<i64> = locked.into_iter().map(|k| k as i64 - 10_000).collect();
        assert_eq!(locked_back, expect, "LockedParallelSorter / {w}");

        let mut bitonic_data = keys.clone();
        BitonicNetwork::new(n).sort_parallel(&mut bitonic_data, 4);
        assert_eq!(bitonic_data, expect, "BitonicNetwork / {w}");
    }
}

/// The PRAM sort is correct under every scheduler in the crate.
#[test]
fn pram_sort_under_all_schedulers() {
    let keys = Workload::UniformRandom.generate(96, 5);
    let sorter = PramSorter::new(SortConfig::new(12).seed(5));
    let no_failures = FailurePlan::new();

    let sync = sorter
        .sort_under(&keys, &mut SyncScheduler, &no_failures)
        .unwrap();
    check_sorted_permutation(&keys, &sync.sorted).unwrap();

    let mut random = RandomScheduler::new(3, 0.3);
    let rnd = sorter.sort_under(&keys, &mut random, &no_failures).unwrap();
    check_sorted_permutation(&keys, &rnd.sorted).unwrap();

    let mut single = wait_free_sort::pram::SingleStepScheduler::new();
    let seq = sorter.sort_under(&keys, &mut single, &no_failures).unwrap();
    check_sorted_permutation(&keys, &seq.sorted).unwrap();

    let mut rr = wait_free_sort::pram::RoundRobinScheduler::new(9, 3);
    let rrr = sorter.sort_under(&keys, &mut rr, &no_failures).unwrap();
    check_sorted_permutation(&keys, &rrr.sorted).unwrap();
}

/// Write-once watching (Lemma 2.5's "child pointers, once set, are never
/// changed") holds through a full concurrent sort run.
#[test]
fn child_pointers_are_write_once_during_full_sort() {
    let keys = Workload::UniformRandom.generate(128, 11);
    let sorter = PramSorter::new(SortConfig::new(128).seed(11));
    let mut prepared = sorter.prepare(&keys);
    for region in prepared.layout.elems.child_regions() {
        prepared
            .machine
            .memory_mut()
            .watch_write_once(region.range());
    }
    // Any write-once violation panics inside the run.
    prepared
        .machine
        .run(&mut SyncScheduler, prepared.budget)
        .unwrap();
    let out = prepared.layout.read_output(prepared.machine.memory());
    check_sorted_permutation(&keys, &out).unwrap();
}

/// Crash storms on every wait-free implementation; all still sort.
#[test]
fn crash_storms_across_implementations() {
    let keys = Workload::RandomPermutation.generate(64, 21);
    let mut expect = keys.clone();
    expect.sort_unstable();
    for seed in 0..5 {
        let plan = FailurePlan::random_crashes(8, 0.8, 500, seed);

        let det = PramSorter::new(SortConfig::new(8).seed(seed))
            .sort_under(&keys, &mut SyncScheduler, &plan)
            .unwrap();
        assert_eq!(det.sorted, expect, "PramSorter seed {seed}");

        let sim = SimulatedNetworkSorter::new(8)
            .sort_under(&keys, &mut SyncScheduler, &plan)
            .unwrap();
        assert_eq!(sim.sorted, expect, "SimulatedNetworkSorter seed {seed}");
    }
    // LC sorter has P = N = 64 processors; crash 60 of them.
    for seed in 0..3 {
        let plan = FailurePlan::random_crashes(64, 0.94, 1_000, seed);
        let lc = LowContentionSorter::default()
            .sort_under(&keys, &mut SyncScheduler, &plan)
            .unwrap();
        assert_eq!(lc.sorted, expect, "LowContentionSorter seed {seed}");
    }
}

/// The native implementation interoperates with simulator-validated
/// outputs on identical inputs (same tie-breaking rule).
#[test]
fn native_and_pram_produce_identical_permutations() {
    // With duplicate keys the *permutation* (not just the keys) must
    // agree, because both tie-break by element index.
    let keys: Vec<i64> = vec![5, 3, 5, 3, 5, 1, 1, 3];
    let job = wait_free_sort::wfsort_native::SortJob::new(keys.clone());
    job.run();
    let native_perm = job.permutation();
    assert_eq!(native_perm, vec![6, 7, 2, 4, 8, 1, 3, 5]);
}

/// Empty and unit inputs across the public entry points.
#[test]
fn degenerate_inputs_everywhere() {
    assert!(PramSorter::new(SortConfig::new(4))
        .sort(&[])
        .unwrap()
        .sorted
        .is_empty());
    assert_eq!(
        PramSorter::new(SortConfig::new(4))
            .sort(&[9])
            .unwrap()
            .sorted,
        vec![9]
    );
    assert!(WaitFreeSorter::new(2).sort::<u64>(&[]).is_empty());
    assert_eq!(WaitFreeSorter::new(2).sort(&[4u64]), vec![4]);
    assert!(SimulatedNetworkSorter::new(2)
        .sort(&[])
        .unwrap()
        .sorted
        .is_empty());
}

/// Model requirements, verified: the paper's algorithms genuinely need
/// the CRCW model they are stated in — enforcing CREW or EREW on a
/// multi-processor run fails, while any single-processor run is
/// trivially EREW-clean.
#[test]
fn algorithms_require_crcw() {
    use wait_free_sort::pram::{MachineError, ModelPolicy};

    let keys = Workload::RandomPermutation.generate(32, 3);

    // P >= 2 deterministic sort violates CREW (everyone CASes the root).
    let sorter = PramSorter::new(SortConfig::new(4).seed(3));
    let mut prepared = sorter.prepare(&keys);
    prepared.machine.enforce_model(ModelPolicy::Crew);
    let err = prepared
        .machine
        .run(&mut SyncScheduler, prepared.budget)
        .unwrap_err();
    assert!(matches!(
        err,
        MachineError::ModelViolation {
            policy: ModelPolicy::Crew,
            ..
        }
    ));

    // A single processor is EREW-clean by construction.
    let solo = PramSorter::new(SortConfig::new(1).seed(3));
    let mut prepared = solo.prepare(&keys);
    prepared.machine.enforce_model(ModelPolicy::Erew);
    prepared
        .machine
        .run(&mut SyncScheduler, prepared.budget)
        .expect("one processor can never collide with itself");
    let out = prepared.layout.read_output(prepared.machine.memory());
    check_sorted_permutation(&keys, &out).unwrap();
}

/// Heavyweight stress runs, excluded from the default suite; run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "stress: large native sorts (run with --ignored in release)"]
fn stress_native_large_sorts() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1);
    let keys: Vec<u64> = (0..1_000_000).map(|_| rng.gen()).collect();
    let mut expect = keys.clone();
    expect.sort_unstable();
    let sorted = WaitFreeSorter::new(8).sort(&keys);
    assert_eq!(sorted, expect);
    let casualty = WaitFreeSorter::new(8).sort_with_casualties(&keys, 10_000);
    assert_eq!(casualty, expect);
}

/// Large simulated runs, excluded from the default suite.
#[test]
#[ignore = "stress: large PRAM sorts (run with --ignored in release)"]
fn stress_pram_large_sorts() {
    let n = 4096;
    let keys = Workload::RandomPermutation.generate(n, 2);
    let det = PramSorter::new(SortConfig::new(n).seed(2))
        .sort(&keys)
        .unwrap();
    check_sorted_permutation(&keys, &det.sorted).unwrap();
    assert_eq!(det.report.metrics.max_contention, n - 1);

    let lc = wait_free_sort::wfsort::low_contention::LowContentionSorter::default()
        .sort(&keys)
        .unwrap();
    check_sorted_permutation(&keys, &lc.sorted).unwrap();
    assert!(lc.report.metrics.max_contention <= 64); // sqrt(4096)
}
