//! Acceptance tests for the native telemetry layer (DESIGN.md §9).
//!
//! The headline check is *cross-model parity*: a single-threaded
//! instrumented native sort must report exactly the operation counts the
//! PRAM simulator meters for the same input — the native counters are
//! only trustworthy as a stand-in for the paper's measures (§1.2, §3) if
//! the two models agree where they are comparable. With one participant
//! there are no races, so the native descent count equals the simulator's
//! build-phase `cas_ops`, the traversal visits equal the simulator's
//! phase-2/3 write counts, and every child-pointer CAS must succeed.

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use wait_free_sort::pram::{Machine, MemoryLayout, Pid, SyncScheduler, Word};
use wait_free_sort::wat::Wat;
use wait_free_sort::wfsort::{
    machine_with_sized_tree, machine_with_tree, BuildTreeWorker, ElementArrays, FindPlaceProcess,
    TreeSumProcess, Workload,
};
use wait_free_sort::wfsort_native::{NativeAllocation, SortJob, WaitFreeSorter};

/// One participant, no contention: the native report's phase counters
/// must equal the simulator's `Metrics` op counts for the same keys.
///
/// * build: `descent_steps` (levels visited during insertion) = the
///   build machine's `cas_ops` — the simulator CASes once per level
///   (Figure 4), the native path reads first and CASes only on EMPTY,
///   so the *descent* count is the model-independent quantity;
/// * build: `cas_attempts` = N-1 (one successful install per element)
///   and `cas_failures` = 0 — single-threaded, no race can be lost;
/// * sum: `visits` = the sum machine's `writes` (= N: every node's size
///   is computed and written exactly once);
/// * place: `visits` = half the place machine's `writes` (the simulator
///   writes `place` and `place_done` per node; a visit covers both).
#[test]
fn single_threaded_report_matches_simulator_op_counts() {
    const N: usize = 512;
    let sim_keys: Vec<Word> = Workload::RandomPermutation.generate(N, 97);
    let native_keys: Vec<u64> = sim_keys.iter().map(|&k| k as u64).collect();

    // Native, one instrumented participant.
    let job = SortJob::with_tracked(native_keys.clone(), NativeAllocation::Deterministic, 1);
    let report = WaitFreeSorter::new(1).run_job_with_report(&job);
    let mut expect = native_keys.clone();
    expect.sort_unstable();
    assert_eq!(job.into_sorted(), expect, "native sort must be correct");

    let p = &report.per_phase;
    assert_eq!(p.build.cas_failures, 0, "no races to lose single-threaded");
    assert_eq!(report.cas_failure_rate, 0.0);
    assert_eq!(p.build.cas_attempts, (N - 1) as u64);
    assert_eq!(p.sum.skips, 0, "nobody else precomputes subtrees");
    assert_eq!(p.place.skips, 0);
    assert_eq!(p.scatter.claims, N as u64, "one scatter job per element");

    // Simulator phase 1: same keys, one processor through the build WAT.
    let mut layout = MemoryLayout::new();
    let arrays = ElementArrays::layout(&mut layout, N);
    let bwat = Wat::layout(&mut layout, N - 1);
    let mut m1 = Machine::with_seed(layout.total(), 0);
    arrays.load_keys(m1.memory_mut(), &sim_keys);
    for proc in bwat.processes(1, |_| BuildTreeWorker::for_full_sort(arrays)) {
        m1.add_process(proc);
    }
    m1.run(&mut SyncScheduler, 100_000_000).unwrap();
    assert_eq!(
        p.build.descent_steps,
        m1.metrics().cas_ops,
        "native descent steps must equal the simulator's per-level CASes"
    );

    // Simulator phase 2 on the prebuilt tree.
    let (mut m2, arrays) = machine_with_tree(&sim_keys, 0);
    m2.add_process(Box::new(TreeSumProcess::new(arrays, Pid::new(0), 1)));
    m2.run(&mut SyncScheduler, 100_000_000).unwrap();
    assert_eq!(
        p.sum.visits,
        m2.metrics().writes,
        "native sum visits must equal the simulator's size writes"
    );
    assert_eq!(p.sum.visits, N as u64);

    // Simulator phase 3 on the prebuilt sized tree.
    let (mut m3, arrays) = machine_with_sized_tree(&sim_keys, 0);
    m3.add_process(Box::new(FindPlaceProcess::new(arrays, Pid::new(0), 1)));
    m3.run(&mut SyncScheduler, 100_000_000).unwrap();
    assert_eq!(
        2 * p.place.visits,
        m3.metrics().writes,
        "the simulator writes place and place_done per native place visit"
    );
    assert_eq!(p.place.visits, N as u64);
}

/// The randomized allocation reports through the same counters: the work
/// totals (which are allocation-independent) must match the
/// deterministic run on identical keys; only the WAT bookkeeping
/// (claims/probes split, descent order) may differ.
#[test]
fn randomized_allocation_reports_same_work_totals() {
    let keys: Vec<u64> = Workload::RandomPermutation
        .generate(600, 11)
        .iter()
        .map(|&k| k as u64)
        .collect();
    let mut expect = keys.clone();
    expect.sort_unstable();

    let mut reports = Vec::new();
    for allocation in [
        NativeAllocation::Deterministic,
        NativeAllocation::Randomized,
    ] {
        let job = SortJob::with_tracked(keys.clone(), allocation, 1);
        reports.push(WaitFreeSorter::new(1).run_job_with_report(&job));
        assert_eq!(job.into_sorted(), expect);
    }
    let (det, rnd) = (&reports[0].per_phase, &reports[1].per_phase);
    assert_eq!(det.build.cas_attempts, rnd.build.cas_attempts);
    assert_eq!(rnd.build.cas_failures, 0);
    assert_eq!(det.sum.visits, rnd.sum.visits);
    assert_eq!(det.place.visits, rnd.place.visits);
    assert_eq!(det.scatter.claims, rnd.scatter.claims);
}

/// Instrumentation must not change the sort's complexity class: the
/// generous bound here (1.5x + 5ms slack on the minimum of 5 runs)
/// guards against an accidental hot-path regression — a shared counter,
/// a false-sharing layout, an allocation per checkpoint — while staying
/// robust to CI timer noise. The *exact* overhead (a few percent) is
/// recorded in EXPERIMENTS.md E24c.
#[test]
fn instrumentation_overhead_is_bounded() {
    // The E5 workload: a random permutation of 0..N.
    let n: u64 = 40_000;
    let mut keys: Vec<u64> = (0..n).collect();
    keys.shuffle(&mut StdRng::seed_from_u64(5));
    let mut expect = keys.clone();
    expect.sort_unstable();

    let sorter = WaitFreeSorter::new(2);
    let (mut plain, mut instrumented) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        let t = std::time::Instant::now();
        assert_eq!(sorter.sort(&keys), expect);
        plain = plain.min(t.elapsed().as_secs_f64());

        let t = std::time::Instant::now();
        let (sorted, report) = sorter.sort_with_report(&keys);
        instrumented = instrumented.min(t.elapsed().as_secs_f64());
        assert_eq!(sorted, expect);
        assert!(report.total_ops() > 0, "a real run must count something");
        assert_eq!(report.per_worker.len(), 2);
    }
    assert!(
        instrumented <= plain * 1.5 + 0.005,
        "instrumented sort took {instrumented:.4}s vs {plain:.4}s plain"
    );
}
