//! Equivalence suite for the `SortOptions` unification: every named
//! `sort_*` front-end on `WaitFreeSorter` is a thin wrapper over the
//! builder's single `run` path, so each wrapper must produce exactly
//! the output of the equivalent builder call — and both must match a
//! sequential baseline, under plans, deadlines, shards, and arenas.

use std::time::Duration;

use wait_free_sort::wfsort_native::{
    ChaosPlan, NativeAllocation, ShardConfig, SortArena, SortOptions, WaitFreeSorter,
};

fn random_keys(n: usize, seed: u64) -> Vec<u64> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..1_000_000)).collect()
}

fn expect_sorted(keys: &[u64]) -> Vec<u64> {
    let mut out = keys.to_vec();
    out.sort_unstable();
    out
}

#[test]
fn builder_and_wrappers_agree_on_plain_sorts() {
    for (n, threads, seed) in [
        (0usize, 2usize, 1u64),
        (1, 2, 2),
        (500, 1, 3),
        (5_000, 4, 4),
    ] {
        let keys = random_keys(n, seed);
        let expect = expect_sorted(&keys);
        let sorter = WaitFreeSorter::new(threads);
        assert_eq!(sorter.sort(&keys), expect, "sort n={n} t={threads}");
        assert_eq!(
            sorter.options().run(&keys).sorted,
            expect,
            "options n={n} t={threads}"
        );
        let (sorted, _report) = sorter.sort_with_report(&keys);
        assert_eq!(sorted, expect, "report n={n} t={threads}");
    }
}

#[test]
fn builder_and_wrappers_agree_on_sharded_sorts() {
    let keys = random_keys(20_000, 5);
    let expect = expect_sorted(&keys);
    let sorter = WaitFreeSorter::new(4);
    assert_eq!(sorter.sort_sharded(&keys), expect);
    assert_eq!(sorter.sort_sharded_with(&keys, 16), expect);
    assert_eq!(sorter.options().shards(16).run(&keys).sorted, expect);
    // Auto shard selection (0) and the single-tree path compute the
    // same permutation, not just the same multiset.
    assert_eq!(
        sorter.options().shards(0).run(&keys).permutation,
        sorter.options().run(&keys).permutation
    );
}

#[test]
fn builder_tolerates_every_degenerate_shape_the_raw_paths_reject() {
    // The raw sharded constructors panic on n < 2; the builder falls
    // back to a sequential copy. Shard counts above n and `shards(0)`
    // (auto) are fine too.
    for shards in [0usize, 1, 7, 1_000] {
        for n in [0usize, 1, 2, 3] {
            let keys = random_keys(n, 6 + n as u64);
            let outcome = SortOptions::new().threads(2).shards(shards).run(&keys);
            assert_eq!(
                outcome.sorted,
                expect_sorted(&keys),
                "n={n} shards={shards}"
            );
            assert_eq!(outcome.permutation.len(), n);
        }
    }
}

#[test]
fn shard_robustness_knobs_flow_through_and_normalize() {
    // The builder exposes the overpartition factor, the balance target
    // τ, and the recursion depth; degenerate values (0 factor, τ ≤ 1 or
    // non-finite, 0 levels) normalize to the defaults instead of
    // panicking or changing the output.
    let defaults = SortOptions::new().shard_config();
    assert_eq!(defaults, ShardConfig::default());
    let normalized = SortOptions::new()
        .overpartition_factor(0)
        .max_shard_imbalance(f64::NAN)
        .max_levels(0)
        .shard_config();
    assert_eq!(normalized, defaults);
    assert_eq!(
        SortOptions::new()
            .overpartition_factor(4)
            .max_shard_imbalance(1.5)
            .max_levels(2)
            .shard_config(),
        ShardConfig {
            overpartition_factor: 4,
            max_shard_imbalance: 1.5,
            max_levels: 2,
            ..ShardConfig::default()
        }
    );

    // Every knob combination — including the degenerate ones — sorts a
    // duplicate flood to the same stable permutation as the defaults.
    let keys: Vec<u64> = (0..3_000u64).map(|i| (i * 13) % 7).collect();
    let baseline = SortOptions::new().threads(2).shards(8).run(&keys);
    for (factor, tau, levels) in [
        (0usize, 0.0f64, 0usize), // all-degenerate: pure defaults
        (1, 2.0, 1),              // minimal robust sampler
        (16, 1.2, 1),             // heavy overpartitioning, tight τ
        (1, 1.2, 2),              // multi-level recursion engaged
    ] {
        let outcome = SortOptions::new()
            .threads(2)
            .shards(8)
            .overpartition_factor(factor)
            .max_shard_imbalance(tau)
            .max_levels(levels)
            .report(true)
            .run(&keys);
        assert_eq!(
            outcome.permutation, baseline.permutation,
            "factor={factor} tau={tau} levels={levels}"
        );
        let shard = outcome.report.unwrap().shard.unwrap();
        assert!(
            shard.requested_imbalance > 1.0,
            "factor={factor} tau={tau} levels={levels}: report carries normalized τ"
        );
    }
}

#[test]
fn plan_and_deadline_wrappers_match_builder_composition() {
    let keys = random_keys(4_000, 7);
    let expect = expect_sorted(&keys);
    let sorter = WaitFreeSorter::new(4);
    let plan = ChaosPlan::random_crashes(4, 0.75, 100, 17);

    assert_eq!(sorter.sort_with_plan(&keys, &plan), expect);
    assert_eq!(
        sorter.options().plan(plan.clone()).run(&keys).sorted,
        expect
    );
    assert_eq!(sorter.sort_with_deadline(&keys, Duration::ZERO), expect);
    assert_eq!(
        sorter.options().deadline(Duration::ZERO).run(&keys).sorted,
        expect
    );
    assert_eq!(
        sorter.sort_with_deadline_under(&keys, Duration::ZERO, &plan),
        expect
    );
    assert_eq!(
        sorter
            .options()
            .deadline(Duration::ZERO)
            .plan(plan)
            .run(&keys)
            .sorted,
        expect
    );
}

#[test]
fn total_crash_plan_still_sorts_through_builder() {
    let keys = random_keys(2_000, 8);
    // Every scripted worker crashes immediately; the calling thread is
    // the survivor of last resort in the builder's drive path.
    let plan = ChaosPlan::new(3)
        .crash_at(0, 1)
        .crash_at(1, 1)
        .crash_at(2, 1);
    let outcome = SortOptions::new()
        .threads(3)
        .plan(plan)
        .report(true)
        .run(&keys);
    assert_eq!(outcome.sorted, expect_sorted(&keys));
    // Cohort slots: 3 plan workers + the fallback caller.
    assert_eq!(outcome.report.unwrap().per_worker.len(), 4);
}

#[test]
fn casualties_wrapper_still_always_completes() {
    let keys = random_keys(3_000, 9);
    let expect = expect_sorted(&keys);
    for abandon_after in [1usize, 10, 1_000] {
        assert_eq!(
            WaitFreeSorter::new(4).sort_with_casualties(&keys, abandon_after),
            expect,
            "abandon_after={abandon_after}"
        );
    }
    // Single-threaded: no helpers to kill, plain sort.
    assert_eq!(
        WaitFreeSorter::new(1).sort_with_casualties(&keys, 1),
        expect
    );
}

#[test]
fn cached_key_wrapper_is_stable_and_matches_builder_permutation() {
    let words: Vec<String> = (0..200)
        .map(|i| {
            let len = (i * 7) % 5 + 1;
            std::iter::repeat_n(char::from(b'a' + (i % 26) as u8), len).collect()
        })
        .collect();
    let by_len = WaitFreeSorter::new(2).sort_by_cached_key(&words, |w| w.len());
    // Stability: equal keys keep input order.
    let mut expect = words.clone();
    expect.sort_by_key(|w| w.len());
    assert_eq!(by_len, expect);
}

#[test]
fn run_into_matches_run_across_arena_rounds() {
    let opts = SortOptions::new().threads(2).report(true);
    let mut arena: SortArena<u64> = SortArena::new();
    let mut out = Vec::new();
    for round in 0..3u64 {
        let keys = random_keys(2_000 + 300 * round as usize, 20 + round);
        let report = opts.run_into(&keys, &mut arena, &mut out);
        let outcome = opts.run(&keys);
        assert_eq!(out, outcome.sorted, "round {round}");
        assert!(report.is_some());
    }
    assert_eq!(arena.sorts(), 3);
    assert_eq!(arena.recycled(), 2);
}

#[test]
fn allocation_and_grain_knobs_flow_through() {
    let keys = random_keys(4_000, 30);
    let expect = expect_sorted(&keys);
    let outcome = SortOptions::new()
        .threads(2)
        .allocation(NativeAllocation::Randomized)
        .grain(8)
        .report(true)
        .run(&keys);
    assert_eq!(outcome.sorted, expect);
    // Randomized WAT descent probes instead of reserving assignments.
    assert!(outcome.report.unwrap().per_phase.build.probes > 0);
}
