//! Property-based tests over the sorting implementations: for arbitrary
//! inputs, processor counts, seeds and failure patterns, every sorter
//! returns a sorted permutation of its input.

use proptest::collection::vec;
use proptest::prelude::*;

use wait_free_sort::baselines::SimulatedNetworkSorter;
use wait_free_sort::pram::{failure::FailurePlan, SyncScheduler};
use wait_free_sort::wfsort::low_contention::LowContentionSorter;
use wait_free_sort::wfsort::{check_sorted_permutation, Allocation, PramSorter, SortConfig};
use wait_free_sort::wfsort_native::WaitFreeSorter;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PRAM sort: arbitrary keys, processor count and seed.
    #[test]
    fn pram_sort_is_sorted_permutation(
        keys in vec(-1000i64..1000, 0..80),
        nprocs in 1usize..24,
        seed in 0u64..1000,
    ) {
        let outcome = PramSorter::new(SortConfig::new(nprocs).seed(seed))
            .sort(&keys)
            .expect("wait-free sort completes");
        prop_assert!(check_sorted_permutation(&keys, &outcome.sorted).is_ok());
    }

    /// Randomized allocation: same contract.
    #[test]
    fn randomized_alloc_is_sorted_permutation(
        keys in vec(-1000i64..1000, 2..60),
        nprocs in 1usize..16,
        seed in 0u64..1000,
    ) {
        let outcome = PramSorter::new(
            SortConfig::new(nprocs).seed(seed).allocation(Allocation::Randomized),
        )
        .sort(&keys)
        .expect("wait-free sort completes");
        prop_assert!(check_sorted_permutation(&keys, &outcome.sorted).is_ok());
    }

    /// Crash injection: any crash pattern leaving one survivor is
    /// harmless to correctness.
    #[test]
    fn pram_sort_survives_arbitrary_crash_plans(
        keys in vec(0i64..500, 4..48),
        fraction in 0.0f64..1.0,
        horizon in 1u64..400,
        seed in 0u64..1000,
    ) {
        let p = 8;
        let plan = FailurePlan::random_crashes(p, fraction, horizon, seed);
        let outcome = PramSorter::new(SortConfig::new(p).seed(seed))
            .sort_under(&keys, &mut SyncScheduler, &plan)
            .expect("a survivor always finishes");
        prop_assert!(check_sorted_permutation(&keys, &outcome.sorted).is_ok());
    }

    /// Native threads: arbitrary keys and thread counts.
    #[test]
    fn native_sort_is_sorted_permutation(
        keys in vec(any::<i32>(), 0..400),
        threads in 1usize..6,
    ) {
        let keys: Vec<i64> = keys.into_iter().map(i64::from).collect();
        let sorted = WaitFreeSorter::new(threads).sort(&keys);
        prop_assert!(check_sorted_permutation(&keys, &sorted).is_ok());
    }

    /// Native threads with casualties: still a sorted permutation.
    #[test]
    fn native_sort_with_casualties(
        keys in vec(any::<i16>(), 2..300),
        abandon in 1usize..200,
    ) {
        let keys: Vec<i64> = keys.into_iter().map(i64::from).collect();
        let sorted = WaitFreeSorter::new(4).sort_with_casualties(&keys, abandon);
        prop_assert!(check_sorted_permutation(&keys, &sorted).is_ok());
    }

    /// The simulated-network baseline keeps the same contract on
    /// power-of-two sizes.
    #[test]
    fn simulated_network_is_sorted_permutation(
        exp in 1u32..6,
        seed in 0u64..100,
        nprocs in 1usize..12,
    ) {
        let n = 1usize << exp;
        let keys: Vec<i64> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(seed * 2 + 1) % 97) as i64)
            .collect();
        let outcome = SimulatedNetworkSorter::new(nprocs).sort(&keys).unwrap();
        prop_assert!(check_sorted_permutation(&keys, &outcome.sorted).is_ok());
    }
}

proptest! {
    // The LC sorter simulates P = N processors; keep cases small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Low-contention sort on its supported sizes.
    #[test]
    fn low_contention_sort_is_sorted_permutation(
        k in 1u32..4,
        seed in 0u64..50,
    ) {
        let n = 4usize.pow(k);
        let keys: Vec<i64> = (0..n)
            .map(|i| ((i as u64 * 31 + seed * 17) % 64) as i64)
            .collect();
        let outcome = LowContentionSorter::default().sort(&keys).unwrap();
        prop_assert!(check_sorted_permutation(&keys, &outcome.sorted).is_ok());
    }
}
