//! Acceptance tests for the schedule-exploration engine: exhaustive
//! bounded-preemption coverage of the tiny shapes completes and reports
//! its state count, and a seeded invariant break (the Figure 6 routine
//! *as printed*, which is crash-unsafe) yields a minimized schedule that
//! replays to the same failure from its serialized token alone.

use pram::failure::FailurePlan;
use pram::{ExploreTarget, Explorer, Pid, ScheduleScript, Word};
use wfsort::{Phase, PhaseTarget};

fn keys(n: usize) -> Vec<Word> {
    (0..n as Word).map(|i| (i * 7) % n as Word).collect()
}

#[test]
fn exhaustive_n3_p3_build_tree_completes_and_reports_state_count() {
    let target = PhaseTarget::new(Phase::Build, keys(3), 3);
    let report = Explorer::new(2).exhaustive(&target);
    assert!(
        report.counterexample.is_none(),
        "phase 1 failed an explored schedule: {:?}",
        report.counterexample
    );
    assert!(
        report.stats.runs > 100,
        "implausibly few schedules explored: {}",
        report.stats.runs
    );
    // Coverage reaches the preemption bound, and the per-depth profile
    // accounts for every run.
    assert_eq!(report.stats.runs_by_depth.len(), 3);
    assert!(report.stats.runs_by_depth.iter().all(|&c| c > 0));
    assert_eq!(
        report.stats.runs,
        report.stats.runs_by_depth.iter().sum::<u64>()
    );
}

#[test]
fn exhaustive_composes_crash_plans_into_every_schedule() {
    // Crash late enough that plenty of two-runnable branch points exist
    // before the plan thins the schedule down to one survivor.
    let plan = FailurePlan::new().crash_at(10, Pid::new(0));
    let target = PhaseTarget::new(Phase::Sum, keys(3), 2).with_failures(plan);
    let report = Explorer::new(2).exhaustive(&target);
    assert!(
        report.counterexample.is_none(),
        "phase 2 must survive the crash on every schedule: {:?}",
        report.counterexample
    );
    assert!(report.stats.runs > 10, "runs: {}", report.stats.runs);
}

#[test]
fn seeded_invariant_break_minimizes_and_replays_from_its_token() {
    // The mutation test: Figure 6 exactly as printed skips any element
    // whose `place` is already written, so a crash between the write and
    // the subtree descent strands the subtree on some schedule.
    let mut found = None;
    for crash_cycle in 4..120 {
        let plan = FailurePlan::new().crash_at(crash_cycle, Pid::new(0));
        let target = PhaseTarget::new(Phase::PlaceFaithful, keys(8), 2).with_failures(plan);
        // Skip crash cycles that kill even the default schedule — the
        // engine's job is finding losses that *need* adversarial
        // preemption.
        let empty = ScheduleScript::new(ExploreTarget::label(&target));
        if Explorer::replay(&target, &empty).1.violation.is_some() {
            continue;
        }
        if let Some(ce) = Explorer::new(2).exhaustive(&target).counterexample {
            found = Some((target, ce));
            break;
        }
    }
    let (target, ce) = found.expect("no crash cycle broke the verbatim Figure 6");
    assert!(
        (1..=6).contains(&ce.script.preemptions().len()),
        "expected a minimal 1..=6-preemption schedule: {:?}",
        ce.script
    );

    // The serialized token alone reproduces the identical failure.
    let token = ce.script.to_token();
    let parsed = ScheduleScript::from_token(&token).expect("emitted token must parse");
    assert_eq!(parsed, ce.script, "token round-trip changed the script");
    let (_, replayed) = Explorer::replay(&target, &parsed);
    assert_eq!(
        replayed.violation,
        Some(ce.violation),
        "token did not replay to the same violation: {token}"
    );

    // Tokens are self-contained: the crash plan is folded in, so even a
    // plan-free target reproduces the loss from the token.
    let bare = PhaseTarget::new(Phase::PlaceFaithful, keys(8), 2);
    assert_eq!(ExploreTarget::failure_plan(&bare).len(), 0);
    let (_, bare_replay) = Explorer::replay(&bare, &parsed);
    assert!(
        bare_replay.violation.is_some(),
        "token was not self-contained: {token}"
    );
}

#[test]
fn fixed_place_phase_survives_the_same_mutation_campaign() {
    // Control arm: the crash-safe postorder variant passes the exact
    // campaign that breaks the verbatim routine.
    for crash_cycle in 4..60 {
        let plan = FailurePlan::new().crash_at(crash_cycle, Pid::new(0));
        let target = PhaseTarget::new(Phase::Place, keys(8), 2).with_failures(plan);
        let report = Explorer::new(1).exhaustive(&target);
        assert!(
            report.counterexample.is_none(),
            "crash at {crash_cycle}: {:?}",
            report.counterexample
        );
    }
}
