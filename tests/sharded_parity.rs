//! Differential tests: the sharded large-N path against the single-tree
//! path.
//!
//! The sharded pipeline (splitter partition → bucket fill → per-shard
//! pivot-tree sorts) is specified to compute *exactly* the permutation
//! the single-tree [`SortJob`] computes — the fill phase preserves
//! original-index order within each shard, so the inner sorts'
//! `(key, local index)` tie-breaks compose to the global `(key, index)`
//! order. That lets these tests compare permutations element-for-element
//! instead of settling for "both sorted", across shard counts, thread
//! counts, allocation flavors, and the PR-1 chaos storms.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wait_free_sort::wfsort_native::{
    recommended_shards, ChaosParticipation, ChaosPlan, NativeAllocation, QuitAfter, ShardedSortJob,
    SortJob, WaitFreeSorter,
};

const SHARD_SWEEP: [usize; 4] = [1, 2, 8, 64];

/// The E25/E26 shape trio: uniform random, few-distinct (long equal-key
/// chains — the tie-break stress), and a periodic sawtooth (the worst
/// case for stride-positioned splitter samples).
fn shapes(n: usize, seed: u64) -> Vec<(&'static str, Vec<u64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let uniform: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
    let few: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
    let sawtooth: Vec<u64> = (0..n).map(|i| (i % 199) as u64).collect();
    vec![
        ("uniform-random", uniform),
        ("few-distinct", few),
        ("sawtooth", sawtooth),
    ]
}

/// Single-threaded, deterministic allocation: the sharded permutation
/// must be bit-identical to the single-tree one for every shape and
/// shard count — including duplicate-heavy shapes where a stability bug
/// would sort correctly but permute differently.
#[test]
fn sharded_permutation_is_bit_identical_to_single_tree() {
    for (shape, keys) in shapes(900, 26) {
        let single = SortJob::new(keys.clone());
        single.run();
        let expect = single.permutation();
        for shards in SHARD_SWEEP {
            let sharded = ShardedSortJob::new(keys.clone(), shards);
            sharded.run();
            assert_eq!(
                sharded.permutation(),
                expect,
                "{shape}: S={shards} diverged from the single tree"
            );
        }
    }
}

/// Four racing threads, both WAT flavors: races may reorder *who* does
/// the work but never *what* gets written — the permutation is a pure
/// function of the keys, so it must still match the single-tree one.
#[test]
fn four_thread_sharded_runs_agree_with_single_tree() {
    for (shape, keys) in shapes(4_000, 27) {
        let single = SortJob::new(keys.clone());
        single.run();
        let expect = single.permutation();
        for allocation in [
            NativeAllocation::Deterministic,
            NativeAllocation::Randomized,
        ] {
            for shards in SHARD_SWEEP {
                let job = ShardedSortJob::with_workers(keys.clone(), allocation, 4, shards);
                crossbeam::thread::scope(|s| {
                    for _ in 0..4 {
                        let job = &job;
                        s.spawn(move |_| job.run());
                    }
                })
                .unwrap();
                assert_eq!(
                    job.permutation(),
                    expect,
                    "{shape}: {allocation:?} S={shards} diverged under 4 threads"
                );
            }
        }
    }
}

/// PR-1 chaos storms at shard granularity: seeded plans reap 75% of a
/// 4-worker cohort at random checkpoints; the survivors (no caller
/// fallback) must finish every phase and still produce the single-tree
/// permutation. 25 seeds × 4 shard counts = 100 storms.
#[test]
fn chaos_storms_preserve_parity_across_shard_counts() {
    let keys = shapes(800, 28).swap_remove(1).1; // few-distinct: hardest ties
    let single = SortJob::new(keys.clone());
    single.run();
    let expect = single.permutation();
    for shards in SHARD_SWEEP {
        for seed in 0..25u64 {
            let plan = ChaosPlan::random_crashes(4, 0.75, 150, seed);
            assert!(plan.survivors() >= 1, "seed {seed}: no survivor");
            let job = ShardedSortJob::with_workers(
                keys.clone(),
                NativeAllocation::Deterministic,
                plan.workers(),
                shards,
            );
            crossbeam::thread::scope(|s| {
                for w in 0..plan.workers() {
                    let (job, plan) = (&job, &plan);
                    s.spawn(move |_| job.participate(&mut ChaosParticipation::new(plan, w)));
                }
            })
            .unwrap();
            assert!(
                job.is_complete(),
                "S={shards} seed {seed}: survivors failed to complete"
            );
            assert_eq!(
                job.permutation(),
                expect,
                "S={shards} seed {seed}: storm changed the permutation"
            );
        }
    }
}

/// The all-crash edge through the public front-end: every scripted
/// worker dies at checkpoint 3, so the caller finishes all three phases
/// alone (wait-freedom at shard granularity).
#[test]
fn sort_sharded_with_plan_survives_total_crash() {
    let keys = shapes(600, 29).swap_remove(2).1;
    let mut expect = keys.clone();
    expect.sort_unstable();
    let mut plan = ChaosPlan::new(4);
    for w in 0..4 {
        plan = plan.crash_at(w, 3);
    }
    for shards in SHARD_SWEEP {
        let sorted = WaitFreeSorter::new(2).sort_sharded_with_plan(&keys, &plan, shards);
        assert_eq!(sorted, expect, "S={shards}");
    }
}

/// Abandonment sweep: a quitter abandons after every possible number of
/// participation checks — hitting phase boundaries, mid-block points,
/// and mid-inner-sort points — and a late joiner must always be able to
/// finish from exactly that state. The publish gates guarantee a
/// half-sorted shard was never marked done.
#[test]
fn every_abandonment_point_is_recoverable_by_a_late_joiner() {
    let keys = shapes(400, 30).swap_remove(0).1;
    let single = SortJob::new(keys.clone());
    single.run();
    let expect = single.permutation();
    for allocation in [
        NativeAllocation::Deterministic,
        NativeAllocation::Randomized,
    ] {
        for budget in (1..400).step_by(7) {
            let job = ShardedSortJob::with_workers(keys.clone(), allocation, 2, 8);
            job.participate(&mut QuitAfter(budget));
            job.run();
            assert!(job.is_complete(), "{allocation:?} budget {budget}");
            assert_eq!(
                job.permutation(),
                expect,
                "{allocation:?} budget {budget}: quitter corrupted the sort"
            );
        }
    }
}

/// Single-threaded, crash-free, deterministic allocation: every sharded
/// counter is exactly pinned. One worker claims each element once in
/// partition, each block once in fill, each shard once in shard-sort;
/// the per-shard claim counts are all 1; sizes sum to `n`; and the
/// inner sorts' scatter claims cover exactly the elements of shards big
/// enough to need an inner sort.
#[test]
fn single_threaded_sharded_counters_are_exactly_pinned() {
    let n = 2_000usize;
    for (shape, keys) in shapes(n, 31) {
        for shards in SHARD_SWEEP {
            let (sorted, report) = WaitFreeSorter::new(1).sort_sharded_with_report(&keys, shards);
            let mut expect = keys.clone();
            expect.sort_unstable();
            assert_eq!(sorted, expect, "{shape} S={shards}");

            let shard = report.shard.as_ref().expect("sharded report payload");
            let blocks = shard.partition_blocks as u64;
            assert_eq!(shard.shards, shards, "{shape} S={shards}");
            assert_eq!(
                report.per_phase.partition.claims, n as u64,
                "{shape} S={shards}: partition claims ≠ n"
            );
            assert_eq!(
                report.per_phase.partition.block_claims, blocks,
                "{shape} S={shards}: partition block claims ≠ B"
            );
            assert_eq!(
                report.per_phase.fill.claims, blocks,
                "{shape} S={shards}: fill claims ≠ B"
            );
            assert_eq!(
                report.per_phase.shard_sort.claims, shards as u64,
                "{shape} S={shards}: shard-sort claims ≠ S"
            );
            assert_eq!(report.per_phase.partition.probes, 0, "deterministic WAT");
            assert_eq!(shard.per_shard.len(), shards);
            assert_eq!(
                shard.per_shard.iter().map(|s| s.size).sum::<usize>(),
                n,
                "{shape} S={shards}: sizes do not cover the input"
            );
            assert!(
                shard.per_shard.iter().all(|s| s.claims == 1),
                "{shape} S={shards}: a crash-free lone worker claims each shard once"
            );
            assert!(shard.imbalance() >= 1.0, "{shape} S={shards}");

            // Inner sorts: shards of size 0 or 1 skip the pivot tree, so
            // scatter claims count exactly the remaining elements.
            let inner_elems: usize = shard
                .per_shard
                .iter()
                .map(|s| s.size)
                .filter(|&sz| sz >= 2)
                .sum();
            assert_eq!(
                report.per_phase.scatter.claims, inner_elems as u64,
                "{shape} S={shards}: inner scatter claims"
            );
        }
    }
}

/// `recommended_shards` feeds the zero-config front-end; pin its shape
/// so a regression can't silently turn the sharded path into a one-shard
/// (pure overhead) or 10⁶-shard (pure bookkeeping) configuration.
#[test]
fn recommended_shards_tracks_input_and_cohort() {
    assert_eq!(recommended_shards(1_000, 1), 1);
    assert_eq!(recommended_shards(1_000, 8), 8);
    assert_eq!(recommended_shards(1 << 20, 4), 128);
    assert_eq!(recommended_shards(1 << 30, 4), 256, "capped");
    assert_eq!(recommended_shards(5, 16), 5, "never exceeds n");
    // And the zero-config entry point actually sorts with it.
    let keys: Vec<u64> = (0..9_000u64).rev().collect();
    let sorted = WaitFreeSorter::new(4).sort_sharded(&keys);
    assert_eq!(sorted, (0..9_000u64).collect::<Vec<_>>());
}
