//! Differential tests: the sharded large-N path against the single-tree
//! path, swept over the shared adversarial shape battery.
//!
//! The sharded pipeline (duplicate-robust splitter partition → bucket
//! fill → greedy bucket→shard assignment with per-unit sorts) is
//! specified to compute *exactly* the permutation the single-tree
//! [`SortJob`] computes — the fill phase preserves original-index order
//! within each bucket, so the inner sorts' `(key, local index)`
//! tie-breaks compose to the global `(key, index)` order. That lets
//! these tests compare permutations element-for-element instead of
//! settling for "both sorted", across shard counts, thread counts,
//! allocation flavors, robustness configs, and the PR-1 chaos storms.
//!
//! Input shapes come from [`wait_free_sort::testshapes`], the shared
//! adversarial battery (duplicate floods, Zipf skew, pre-sorted runs,
//! periodic sawtooths) — the shapes that historically break
//! splitter-based partitioning.

use wait_free_sort::testshapes;
use wait_free_sort::wfsort_native::{
    recommended_shards, ChaosParticipation, ChaosPlan, ClassifyKernel, MetricSlot,
    NativeAllocation, PartitionStrategy, QuitAfter, RunToCompletion, ShardConfig, ShardedSortJob,
    SortJob, SortOptions, WaitFreeSorter,
};

/// Both explicit classify kernels — every differential sweep that takes
/// a config runs over this pair, so a ladder bug cannot hide behind the
/// auto heuristic picking the binary search (or vice versa).
const KERNELS: [ClassifyKernel; 2] = [ClassifyKernel::BinarySearch, ClassifyKernel::Ladder];

const SHARD_SWEEP: [usize; 4] = [1, 2, 8, 64];

/// The stable permutation computed the boring way: 1-based indices
/// ordered by `(key, index)` — the oracle both sorting paths must match.
fn stable_permutation(keys: &[u64]) -> Vec<usize> {
    let mut perm: Vec<usize> = (1..=keys.len()).collect();
    perm.sort_by_key(|&i| (keys[i - 1], i));
    perm
}

/// Single-threaded, deterministic allocation: the sharded permutation
/// must be bit-identical to the single-tree one for every adversarial
/// shape and shard count — including duplicate-heavy shapes where a
/// stability bug would sort correctly but permute differently.
#[test]
fn sharded_permutation_is_bit_identical_to_single_tree() {
    for (shape, keys) in testshapes::adversarial_suite(900, 26) {
        let single = SortJob::new(keys.clone());
        single.run();
        let expect = single.permutation();
        assert_eq!(expect, stable_permutation(&keys), "{shape}: oracle");
        for shards in SHARD_SWEEP {
            let sharded = ShardedSortJob::new(keys.clone(), shards);
            sharded.run();
            assert_eq!(
                sharded.permutation(),
                expect,
                "{shape}: S={shards} diverged from the single tree"
            );
        }
    }
}

/// Both explicit classify kernels over the full adversarial battery:
/// the kernel is a pure throughput knob, so the ladder's permutation
/// must be bit-identical to the binary search's (and to the single
/// tree's) on every shape and shard count — including the duplicate
/// floods whose equality-bucket routing the ladder folds into its
/// final rung compare.
#[test]
fn both_kernels_are_bit_identical_across_the_adversarial_battery() {
    for (shape, keys) in testshapes::adversarial_suite(900, 26) {
        let expect = stable_permutation(&keys);
        for kernel in KERNELS {
            for shards in SHARD_SWEEP {
                let job = ShardedSortJob::with_config(
                    keys.clone(),
                    NativeAllocation::Deterministic,
                    1,
                    shards,
                    ShardConfig {
                        classify_kernel: kernel,
                        ..ShardConfig::default()
                    },
                );
                job.run();
                assert_eq!(
                    job.permutation(),
                    expect,
                    "{shape}: {kernel:?} S={shards} diverged from the single tree"
                );
            }
        }
    }
}

/// Four racing threads, both WAT flavors: races may reorder *who* does
/// the work but never *what* gets written — the permutation is a pure
/// function of the keys, so it must still match the single-tree one.
/// The sweep includes the equality-bucket boundary shapes (all-equal,
/// two-valued, runs-of-duplicates), so racing workers publish trivial
/// fills and pivot-tree units side by side.
#[test]
fn four_thread_sharded_runs_agree_with_single_tree() {
    for (shape, keys) in testshapes::adversarial_suite(2_000, 27) {
        let expect = stable_permutation(&keys);
        for allocation in [
            NativeAllocation::Deterministic,
            NativeAllocation::Randomized,
        ] {
            for shards in SHARD_SWEEP {
                let job = ShardedSortJob::with_workers(keys.clone(), allocation, 4, shards);
                crossbeam::thread::scope(|s| {
                    for _ in 0..4 {
                        let job = &job;
                        s.spawn(move |_| job.run());
                    }
                })
                .unwrap();
                assert_eq!(
                    job.permutation(),
                    expect,
                    "{shape}: {allocation:?} S={shards} diverged under 4 threads"
                );
            }
        }
    }
}

/// Four racing threads through the non-default robustness configs: the
/// minimal overpartition factor, a tight τ that forces heavy equality
/// chunking, and the multi-level path re-sharding oversized range
/// buckets — each over a duplicate-flood shape so equality-bucket
/// boundaries land inside racing workers' assignments.
#[test]
fn four_thread_runs_agree_across_robustness_configs() {
    let configs = [
        ShardConfig {
            overpartition_factor: 1,
            classify_kernel: ClassifyKernel::Ladder,
            ..ShardConfig::default()
        },
        ShardConfig {
            max_shard_imbalance: 1.2,
            classify_kernel: ClassifyKernel::BinarySearch,
            ..ShardConfig::default()
        },
        ShardConfig {
            overpartition_factor: 1,
            max_shard_imbalance: 1.2,
            max_levels: 2,
            classify_kernel: ClassifyKernel::Ladder,
            ..ShardConfig::default()
        },
    ];
    for (shape, keys) in [
        ("two-valued", testshapes::two_valued(2_000, 40)),
        (
            "runs-of-duplicates",
            testshapes::runs_of_duplicates(2_000, 17, 41),
        ),
        ("uniform-random", testshapes::uniform(2_000, 42)),
    ] {
        let expect = stable_permutation(&keys);
        for config in configs {
            for shards in [8usize, 64] {
                let job = ShardedSortJob::with_config(
                    keys.clone(),
                    NativeAllocation::Deterministic,
                    4,
                    shards,
                    config,
                );
                crossbeam::thread::scope(|s| {
                    for _ in 0..4 {
                        let job = &job;
                        s.spawn(move |_| job.run());
                    }
                })
                .unwrap();
                assert_eq!(
                    job.permutation(),
                    expect,
                    "{shape}: {config:?} S={shards} diverged under 4 threads"
                );
            }
        }
    }
}

/// PR-1 chaos storms at shard granularity: seeded plans reap 75% of a
/// 4-worker cohort at random checkpoints; the survivors (no caller
/// fallback) must finish every phase and still produce the single-tree
/// permutation. 25 seeds × 4 shard counts = 100 storms.
#[test]
fn chaos_storms_preserve_parity_across_shard_counts() {
    let keys = testshapes::few_distinct(800, 64, 28); // hardest ties
    let expect = stable_permutation(&keys);
    for shards in SHARD_SWEEP {
        for seed in 0..25u64 {
            let plan = ChaosPlan::random_crashes(4, 0.75, 150, seed);
            assert!(plan.survivors() >= 1, "seed {seed}: no survivor");
            let job = ShardedSortJob::with_workers(
                keys.clone(),
                NativeAllocation::Deterministic,
                plan.workers(),
                shards,
            );
            crossbeam::thread::scope(|s| {
                for w in 0..plan.workers() {
                    let (job, plan) = (&job, &plan);
                    s.spawn(move |_| job.participate(&mut ChaosParticipation::new(plan, w)));
                }
            })
            .unwrap();
            assert!(
                job.is_complete(),
                "S={shards} seed {seed}: survivors failed to complete"
            );
            assert_eq!(
                job.permutation(),
                expect,
                "S={shards} seed {seed}: storm changed the permutation"
            );
        }
    }
}

/// Chaos storms through the overpartitioned and multi-level paths: the
/// crash points now land inside equality-chunk trivial fills and inner
/// re-shard jobs, and redoing a whole shard must rewrite identical
/// values. Two duplicate floods × two configs × 10 seeds.
#[test]
fn chaos_storms_preserve_parity_on_robust_configs() {
    let configs = [
        ShardConfig {
            overpartition_factor: 1,
            max_shard_imbalance: 1.2,
            max_levels: 1,
            classify_kernel: ClassifyKernel::Ladder,
            ..ShardConfig::default()
        },
        ShardConfig {
            overpartition_factor: 2,
            max_shard_imbalance: 1.2,
            max_levels: 2,
            classify_kernel: ClassifyKernel::BinarySearch,
            ..ShardConfig::default()
        },
    ];
    for keys in [testshapes::all_equal(800), testshapes::two_valued(800, 29)] {
        let expect = stable_permutation(&keys);
        for config in configs {
            for seed in 0..10u64 {
                let plan = ChaosPlan::random_crashes(4, 0.75, 150, seed);
                let job = ShardedSortJob::with_config(
                    keys.clone(),
                    NativeAllocation::Deterministic,
                    plan.workers(),
                    8,
                    config,
                );
                crossbeam::thread::scope(|s| {
                    for w in 0..plan.workers() {
                        let (job, plan) = (&job, &plan);
                        s.spawn(move |_| job.participate(&mut ChaosParticipation::new(plan, w)));
                    }
                })
                .unwrap();
                assert!(job.is_complete(), "{config:?} seed {seed}");
                assert_eq!(job.permutation(), expect, "{config:?} seed {seed}");
            }
        }
    }
}

/// The all-crash edge through the public front-end: every scripted
/// worker dies at checkpoint 3, so the caller finishes all three phases
/// alone (wait-freedom at shard granularity).
#[test]
fn sort_sharded_with_plan_survives_total_crash() {
    let keys = testshapes::sawtooth(600, 199);
    let mut expect = keys.clone();
    expect.sort_unstable();
    let mut plan = ChaosPlan::new(4);
    for w in 0..4 {
        plan = plan.crash_at(w, 3);
    }
    for shards in SHARD_SWEEP {
        let sorted = WaitFreeSorter::new(2).sort_sharded_with_plan(&keys, &plan, shards);
        assert_eq!(sorted, expect, "S={shards}");
    }
}

/// Abandonment sweep: a quitter abandons after every possible number of
/// participation checks — hitting phase boundaries, mid-block points,
/// and mid-inner-sort points — and a late joiner must always be able to
/// finish from exactly that state. The publish gates guarantee a
/// half-sorted shard was never marked done.
#[test]
fn every_abandonment_point_is_recoverable_by_a_late_joiner() {
    let keys = testshapes::uniform(400, 30);
    let expect = stable_permutation(&keys);
    for allocation in [
        NativeAllocation::Deterministic,
        NativeAllocation::Randomized,
    ] {
        for budget in (1..400).step_by(7) {
            let job = ShardedSortJob::with_workers(keys.clone(), allocation, 2, 8);
            job.participate(&mut QuitAfter(budget));
            job.run();
            assert!(job.is_complete(), "{allocation:?} budget {budget}");
            assert_eq!(
                job.permutation(),
                expect,
                "{allocation:?} budget {budget}: quitter corrupted the sort"
            );
        }
    }
}

/// Abandonment sweep through the multi-level path: the quitter can now
/// die inside an inner re-shard job's own three phases, and the outer
/// publish gate must still keep the half-finished shard unclaimed.
#[test]
fn abandonment_inside_recursion_is_recoverable() {
    let keys = testshapes::uniform(400, 33);
    let expect = stable_permutation(&keys);
    let config = ShardConfig {
        overpartition_factor: 1,
        max_shard_imbalance: 1.2,
        max_levels: 2,
        ..ShardConfig::default()
    };
    for budget in (1..400).step_by(7) {
        let job = ShardedSortJob::with_config(
            keys.clone(),
            NativeAllocation::Deterministic,
            2,
            2,
            config,
        );
        job.participate(&mut QuitAfter(budget));
        job.run();
        assert!(job.is_complete(), "budget {budget}");
        assert_eq!(job.permutation(), expect, "budget {budget}");
    }
}

/// Abandonment sweep over both classify kernels: a quitter can die
/// between the block-start item (which classified the whole block and
/// published its histogram) and the block's trailing no-op items, and a
/// late joiner redoing the block must rewrite byte-identical `piece_of`
/// entries *and* byte-identical histogram counts — under either kernel.
#[test]
fn abandonment_is_recoverable_under_both_kernels() {
    let keys = testshapes::runs_of_duplicates(400, 11, 34);
    let expect = stable_permutation(&keys);
    for kernel in KERNELS {
        for budget in (1..400).step_by(13) {
            let job = ShardedSortJob::with_config(
                keys.clone(),
                NativeAllocation::Deterministic,
                2,
                8,
                ShardConfig {
                    classify_kernel: kernel,
                    ..ShardConfig::default()
                },
            );
            job.participate(&mut QuitAfter(budget));
            job.run();
            assert!(job.is_complete(), "{kernel:?} budget {budget}");
            assert_eq!(job.permutation(), expect, "{kernel:?} budget {budget}");
        }
    }
}

/// Red-first pin for the ISSUE-9 fused histogram: entering the Fill
/// phase must cost O(B·P) — the per-block histogram reduction — not the
/// O(n) `piece_of` re-scan every participant used to pay. A second
/// participant joining after the sort is already complete does no claim
/// work at all, so its fill-phase `setup_steps` is *exactly* the
/// offset-table reduction; against the pre-fusion `column_offsets()`
/// this assertion reads `n` (50 000), not `B·P` (a few hundred).
#[test]
fn fill_entry_setup_is_blocks_times_pieces_not_n() {
    let n = 50_000usize;
    let keys = testshapes::uniform(n, 35);
    let job = ShardedSortJob::with_workers(keys, NativeAllocation::Deterministic, 2, 8);
    let table = (job.partition_blocks() * job.buckets()) as u64;
    assert!(
        table < n as u64 / 4,
        "shape precondition: B·P = {table} must be far below n = {n} for this pin to bite"
    );

    let first = MetricSlot::new();
    job.participate_instrumented(&mut RunToCompletion, &first);
    assert!(job.is_complete());

    // The late joiner: the partition and fill WATs are fully done, so
    // beyond the idempotent redo of its own initial-assignment block
    // (the WAT runs that one without consulting the done bit) its only
    // fill-phase cost is rebuilding the offset table from the published
    // histograms.
    let late = MetricSlot::new();
    job.participate_instrumented(&mut RunToCompletion, &late);

    for (who, slot) in [("first", &first), ("late", &late)] {
        let m = slot.snapshot();
        assert_eq!(
            m.phases.fill.setup_steps, table,
            "{who} participant's fill entry must reduce exactly the B·P histogram table"
        );
    }
    assert!(
        late.snapshot().phases.partition.claims <= job.partition_grain() as u64,
        "late joiner re-claims at most its initial block — everything else was done"
    );
}

/// Single-threaded, crash-free, deterministic allocation: every sharded
/// counter is exactly pinned. One worker claims each element once in
/// partition, each block once in fill, each shard once in shard-sort;
/// the per-shard claim counts are all 1; assigned sizes sum to `n`; and
/// the inner pivot-tree sorts' scatter claims cover exactly the
/// elements of work units that actually needed a tree — equality
/// chunks, singletons, and already-non-decreasing range buckets are
/// trivial fills and claim nothing.
#[test]
fn single_threaded_sharded_counters_are_exactly_pinned() {
    let n = 2_000usize;
    for (shape, keys) in [
        ("uniform-random", testshapes::uniform(n, 31)),
        ("few-distinct", testshapes::few_distinct(n, 64, 31)),
        ("sawtooth", testshapes::sawtooth(n, 199)),
    ] {
        for shards in SHARD_SWEEP {
            let (sorted, report) = WaitFreeSorter::new(1).sort_sharded_with_report(&keys, shards);
            let mut expect = keys.clone();
            expect.sort_unstable();
            assert_eq!(sorted, expect, "{shape} S={shards}");

            let shard = report.shard.as_ref().expect("sharded report payload");
            let blocks = shard.partition_blocks as u64;
            assert_eq!(shard.shards, shards, "{shape} S={shards}");
            assert_eq!(
                report.per_phase.partition.claims, n as u64,
                "{shape} S={shards}: partition claims ≠ n"
            );
            assert_eq!(
                report.per_phase.partition.block_claims, blocks,
                "{shape} S={shards}: partition block claims ≠ B"
            );
            assert_eq!(
                report.per_phase.fill.claims, blocks,
                "{shape} S={shards}: fill claims ≠ B"
            );
            assert_eq!(
                report.per_phase.partition.kernel_blocks, blocks,
                "{shape} S={shards}: a lone worker classifies each block exactly once"
            );
            assert_eq!(
                report.per_phase.fill.setup_steps,
                blocks * shard.buckets.len() as u64,
                "{shape} S={shards}: fill entry reduces exactly the B·P histogram table"
            );
            assert_eq!(
                report.per_phase.shard_sort.claims, shards as u64,
                "{shape} S={shards}: shard-sort claims ≠ S"
            );
            assert_eq!(report.per_phase.partition.probes, 0, "deterministic WAT");
            assert_eq!(shard.per_shard.len(), shards);
            assert_eq!(
                shard.per_shard.iter().map(|s| s.size).sum::<usize>(),
                n,
                "{shape} S={shards}: sizes do not cover the input"
            );
            assert!(
                shard.per_shard.iter().all(|s| s.claims == 1),
                "{shape} S={shards}: a crash-free lone worker claims each shard once"
            );
            assert!(shard.imbalance() >= 1.0, "{shape} S={shards}");
            assert_eq!(
                shard.buckets.iter().map(|b| b.size).sum::<usize>(),
                n,
                "{shape} S={shards}: bucket sizes do not cover the input"
            );

            // Reconstruct which range buckets needed a pivot tree. A
            // range bucket's members are exactly the input keys inside
            // its closed value span (neighboring buckets hold values
            // outside it), in original order — if that order is already
            // non-decreasing the unit was a trivial fill, otherwise its
            // inner sort claimed one scatter slot per element.
            let mut start = 0usize;
            let mut inner_elems = 0usize;
            for b in &shard.buckets {
                let end = start + b.size;
                if !b.equality && b.size >= 2 {
                    let (lo, hi) = (sorted[start], sorted[end - 1]);
                    let members: Vec<u64> = keys
                        .iter()
                        .copied()
                        .filter(|&k| k >= lo && k <= hi)
                        .collect();
                    assert_eq!(members.len(), b.size, "{shape} S={shards}: span");
                    if !members.windows(2).all(|w| w[0] <= w[1]) {
                        inner_elems += b.size;
                    }
                }
                start = end;
            }
            assert_eq!(
                report.per_phase.scatter.claims, inner_elems as u64,
                "{shape} S={shards}: inner scatter claims"
            );
        }
    }
}

/// Regression pin for the PR-5 splitter bug: stride sampling without
/// deduplication turns an all-equal input into S copies of one splitter,
/// `partition_point(|s| s <= key)` routes every key past all of them,
/// and a single shard swallows the whole input (imbalance ≈ S). The
/// robust overpartitioned path must bound the measured imbalance by the
/// requested τ = 2.0 instead — and still produce the stable permutation.
///
/// Written red-first: against the stride sampler this fails with
/// imbalance == S for every S ≥ 2.
#[test]
fn overpartitioning_bounds_all_equal_imbalance() {
    let n = 40_000usize;
    let keys = wait_free_sort::testshapes::all_equal(n);
    for shards in [8usize, 64] {
        let (sorted, report) = WaitFreeSorter::new(2).sort_sharded_with_report(&keys, shards);
        assert_eq!(sorted, keys, "S={shards}");
        let shard = report.shard.expect("sharded report payload");
        let imbalance = shard.imbalance();
        assert!(
            imbalance <= 2.0,
            "S={shards}: all-equal imbalance {imbalance} exceeds the requested 2.0 \
             (duplicate splitters collapsed the input into one shard)"
        );
        assert_eq!(
            shard.equality_buckets, 1,
            "S={shards}: one value, one bucket"
        );
    }
}

/// The ISSUE-7 acceptance gate at full scale: all-equal, Zipf(1.0), and
/// pre-sorted inputs at N = 1M with S ∈ {8, 64} must come out with
/// measured imbalance ≤ 2.0 *and* a permutation bit-identical to the
/// single-tree path's. The single-tree oracle is computed by a stable
/// std sort over `(key, index)` — the same permutation by construction
/// (pinned against the real single-tree job at smaller N above), since
/// actually running a million monotone inserts through one pivot tree is
/// the quadratic cliff the sharded path exists to avoid.
///
/// Runs in seconds even under debug: the mass-weighted splitter sample
/// routes every heavy value into an equality bucket (a trivial fill), so
/// no duplicate chain ever reaches a pivot tree.
#[test]
fn acceptance_shapes_at_one_million_meet_the_balance_bound() {
    let n = 1_000_000usize;
    for (shape, keys) in [
        ("all-equal", testshapes::all_equal(n)),
        ("zipf-1.0", testshapes::zipf(n, 1024, 7)),
        ("pre-sorted", testshapes::presorted(n)),
    ] {
        let expect = stable_permutation(&keys);
        for shards in [8usize, 64] {
            let outcome = SortOptions::new()
                .threads(4)
                .shards(shards)
                .report(true)
                .run(&keys);
            assert_eq!(
                outcome.permutation, expect,
                "{shape} S={shards}: permutation diverged at N=1M"
            );
            let report = outcome.report.expect("report requested");
            let shard = report.shard.expect("sharded payload");
            let imbalance = shard.imbalance();
            assert!(
                imbalance <= 2.0,
                "{shape} S={shards}: imbalance {imbalance} > 2.0 at N=1M"
            );
            assert!(shard.within_requested(), "{shape} S={shards}");
        }
    }
}

/// The in-place Fill against its materialized differential oracle over
/// the full adversarial battery: [`PartitionStrategy`] trades auxiliary
/// memory against republication work, never an output byte, so the two
/// permutations must be bit-identical on every shape and shard count —
/// including the duplicate floods whose equality buckets the in-place
/// fill publishes as final values without any shard-phase pass.
#[test]
fn in_place_strategy_is_bit_identical_across_the_adversarial_battery() {
    for (shape, keys) in testshapes::adversarial_suite(900, 36) {
        let expect = stable_permutation(&keys);
        for shards in SHARD_SWEEP {
            let job = ShardedSortJob::with_config(
                keys.clone(),
                NativeAllocation::Deterministic,
                1,
                shards,
                ShardConfig {
                    partition_strategy: PartitionStrategy::InPlace,
                    ..ShardConfig::default()
                },
            );
            job.run();
            assert_eq!(
                job.permutation(),
                expect,
                "{shape}: in-place S={shards} diverged from the stable oracle"
            );
        }
    }
}

/// Red-first regression for ISSUE-10's in-place abandonment story: a
/// worker crashed mid-cycle — mid-fill-block (half the unit's slots
/// still empty), or mid-publication (mixed pending/final tags) — must
/// leave a state from which survivors redo the block whole, with **no
/// element duplicated and none dropped**. The permutation-is-a-bijection
/// check is the direct no-dup/no-drop pin; the oracle equality pins the
/// order on top. Swept over both WAT flavors × both classify kernels,
/// with the quit budget walking through every phase.
///
/// Red-first: against a strawman in-place fill that used plain stores
/// instead of CAS-from-empty, a preempted filler waking after survivors
/// finalized the unit resurrects its stale fill value over a final one —
/// the bijection check catches exactly that duplicate/drop pair.
#[test]
fn in_place_abandonment_never_duplicates_or_drops_an_element() {
    let keys = testshapes::runs_of_duplicates(400, 11, 37);
    let expect = stable_permutation(&keys);
    for allocation in [
        NativeAllocation::Deterministic,
        NativeAllocation::Randomized,
    ] {
        for kernel in KERNELS {
            for budget in (1..400).step_by(13) {
                let job = ShardedSortJob::with_config(
                    keys.clone(),
                    allocation,
                    2,
                    8,
                    ShardConfig {
                        partition_strategy: PartitionStrategy::InPlace,
                        classify_kernel: kernel,
                        ..ShardConfig::default()
                    },
                );
                job.participate(&mut QuitAfter(budget));
                job.run();
                assert!(
                    job.is_complete(),
                    "{allocation:?} {kernel:?} budget {budget}"
                );
                let perm = job.permutation();
                let mut seen = vec![false; keys.len()];
                for &v in &perm {
                    assert!(
                        v >= 1 && v <= keys.len() && !seen[v - 1],
                        "{allocation:?} {kernel:?} budget {budget}: \
                         element {v} duplicated or out of range"
                    );
                    seen[v - 1] = true;
                }
                assert_eq!(
                    perm, expect,
                    "{allocation:?} {kernel:?} budget {budget}: order diverged"
                );
            }
        }
    }
}

/// Chaos storms on the in-place path: seeded plans reap 75% of a
/// 4-worker cohort at random checkpoints, so crash points land inside
/// fill CAS loops and mid-publication windows; survivors must rebuild
/// every torn unit and still produce the stable permutation. The
/// duplicate-flood shape routes most elements through equality buckets
/// (final at fill), leaving the range units small and tearable.
#[test]
fn chaos_storms_preserve_parity_in_place() {
    let keys = testshapes::few_distinct(800, 64, 38);
    let expect = stable_permutation(&keys);
    for shards in [2usize, 8] {
        for seed in 0..15u64 {
            let plan = ChaosPlan::random_crashes(4, 0.75, 150, seed);
            assert!(plan.survivors() >= 1, "seed {seed}: no survivor");
            let job = ShardedSortJob::with_config(
                keys.clone(),
                NativeAllocation::Deterministic,
                plan.workers(),
                shards,
                ShardConfig {
                    partition_strategy: PartitionStrategy::InPlace,
                    ..ShardConfig::default()
                },
            );
            crossbeam::thread::scope(|s| {
                for w in 0..plan.workers() {
                    let (job, plan) = (&job, &plan);
                    s.spawn(move |_| job.participate(&mut ChaosParticipation::new(plan, w)));
                }
            })
            .unwrap();
            assert!(job.is_complete(), "S={shards} seed {seed}");
            assert_eq!(
                job.permutation(),
                expect,
                "S={shards} seed {seed}: storm changed the in-place permutation"
            );
        }
    }
}

/// Four racing live threads — no crashes, just races — on the in-place
/// path: two claimants publishing the same unit concurrently write
/// byte-identical final values, so the permutation stays a pure function
/// of the keys under any interleaving.
#[test]
fn racing_threads_agree_in_place() {
    for (shape, keys) in [
        ("uniform-random", testshapes::uniform(2_000, 39)),
        ("two-valued", testshapes::two_valued(2_000, 39)),
    ] {
        let expect = stable_permutation(&keys);
        for allocation in [
            NativeAllocation::Deterministic,
            NativeAllocation::Randomized,
        ] {
            let job = ShardedSortJob::with_config(
                keys.clone(),
                allocation,
                4,
                8,
                ShardConfig {
                    partition_strategy: PartitionStrategy::InPlace,
                    ..ShardConfig::default()
                },
            );
            crossbeam::thread::scope(|s| {
                for _ in 0..4 {
                    let job = &job;
                    s.spawn(move |_| job.run());
                }
            })
            .unwrap();
            assert_eq!(
                job.permutation(),
                expect,
                "{shape}: {allocation:?} diverged under 4 racing in-place threads"
            );
        }
    }
}

/// `recommended_shards` feeds the zero-config front-end; pin its shape
/// so a regression can't silently turn the sharded path into a one-shard
/// (pure overhead) or 10⁶-shard (pure bookkeeping) configuration.
#[test]
fn recommended_shards_tracks_input_and_cohort() {
    assert_eq!(recommended_shards(1_000, 1), 1);
    assert_eq!(recommended_shards(1_000, 8), 8);
    assert_eq!(recommended_shards(1 << 20, 4), 128);
    assert_eq!(recommended_shards(1 << 30, 4), 256, "capped");
    assert_eq!(recommended_shards(5, 16), 5, "never exceeds n");
    // And the zero-config entry point actually sorts with it.
    let keys: Vec<u64> = (0..9_000u64).rev().collect();
    let sorted = WaitFreeSorter::new(4).sort_sharded(&keys);
    assert_eq!(sorted, (0..9_000u64).collect::<Vec<_>>());
}
