//! Property-based tests of the simulator itself: for randomly generated
//! programs, the machine's metrics must satisfy their defining
//! invariants, traces must match the counters, and runs must be
//! reproducible.

use proptest::collection::vec;
use proptest::prelude::*;

use wait_free_sort::pram::{
    FnProcess, Machine, Op, OpResult, Pid, Process, SingleStepScheduler, SyncScheduler,
};

/// A compact program description: a list of ops each process executes in
/// order (Halt appended implicitly).
#[derive(Clone, Debug)]
enum MiniOp {
    Read(usize),
    Write(usize, i64),
    Cas(usize, i64, i64),
    Nop,
}

fn mini_op_strategy(cells: usize) -> impl Strategy<Value = MiniOp> {
    prop_oneof![
        (0..cells).prop_map(MiniOp::Read),
        (0..cells, -5i64..5).prop_map(|(a, v)| MiniOp::Write(a, v)),
        (0..cells, -5i64..5, -5i64..5).prop_map(|(a, e, n)| MiniOp::Cas(a, e, n)),
        Just(MiniOp::Nop),
    ]
}

/// Builds a process that executes `script` then halts.
fn scripted(script: Vec<MiniOp>) -> Box<dyn Process> {
    let mut index = 0;
    Box::new(FnProcess::new(move |_last: Option<OpResult>| {
        if index >= script.len() {
            return Op::Halt;
        }
        let op = match script[index] {
            MiniOp::Read(a) => Op::Read(a),
            MiniOp::Write(a, v) => Op::Write(a, v),
            MiniOp::Cas(a, e, n) => Op::Cas {
                addr: a,
                expected: e,
                new: n,
            },
            MiniOp::Nop => Op::Nop,
        };
        index += 1;
        op
    }))
}

const CELLS: usize = 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Metrics invariants for arbitrary programs under the synchronous
    /// scheduler.
    #[test]
    fn metrics_invariants_hold(
        programs in vec(vec(mini_op_strategy(CELLS), 0..20), 1..6),
        seed in 0u64..1000,
    ) {
        let nprocs = programs.len();
        let total_script_ops: usize = programs.iter().flatten().filter(|o| !matches!(o, MiniOp::Nop)).count();
        let mut m = Machine::with_seed(CELLS, seed);
        for p in programs {
            m.add_process(scripted(p));
        }
        let report = m.run(&mut SyncScheduler, 10_000).expect("scripts terminate");

        let met = &report.metrics;
        // Work decomposition.
        prop_assert_eq!(met.total_ops, met.reads + met.writes + met.cas_ops);
        // Every non-Nop scripted op executed exactly once.
        prop_assert_eq!(met.total_ops, total_script_ops as u64);
        // Contention can never exceed the processor count, and the
        // histogram over cycles must sum to the cycle count.
        prop_assert!(met.max_contention <= nprocs);
        prop_assert_eq!(
            met.contention_histogram.iter().sum::<u64>(),
            met.cycles
        );
        // QRQW time is at least the cycle count and at most cycles * P.
        prop_assert!(met.qrqw_time >= met.cycles);
        prop_assert!(met.qrqw_time <= met.cycles * nprocs as u64);
        // Steps: everyone steps at most `cycles` times, and the longest
        // script bounds nobody (each halts one step after its last op).
        prop_assert!(met.steps_per_process.iter().all(|&s| s <= met.cycles));
        prop_assert_eq!(report.halted, nprocs);
    }

    /// The trace agrees with the metrics when its capacity is generous.
    #[test]
    fn trace_matches_metrics(
        programs in vec(vec(mini_op_strategy(CELLS), 0..15), 1..4),
        seed in 0u64..100,
    ) {
        let mut m = Machine::with_seed(CELLS, seed);
        m.record_trace(10_000);
        for p in programs {
            m.add_process(scripted(p));
        }
        let report = m.run(&mut SyncScheduler, 10_000).unwrap();
        let trace = m.trace().unwrap();
        prop_assert_eq!(trace.dropped(), 0);
        // Every memory op appears in the trace; Nops do not.
        let traced_memory_ops = trace
            .events()
            .filter(|e| e.op.is_memory_access())
            .count() as u64;
        prop_assert_eq!(traced_memory_ops, report.metrics.total_ops);
        // Per-processor filters partition the events.
        let by_pid: usize = (0..m.process_count())
            .map(|i| trace.of(Pid::new(i)).count())
            .sum();
        prop_assert_eq!(by_pid, trace.len());
    }

    /// Same seed, same program => identical cycle count, metrics and
    /// memory image, under both schedulers.
    #[test]
    fn replay_determinism(
        programs in vec(vec(mini_op_strategy(CELLS), 0..15), 1..5),
        seed in 0u64..100,
        sequential in any::<bool>(),
    ) {
        let run = || {
            let mut m = Machine::with_seed(CELLS, seed);
            for p in programs.clone() {
                m.add_process(scripted(p));
            }
            let report = if sequential {
                m.run(&mut SingleStepScheduler::new(), 100_000).unwrap()
            } else {
                m.run(&mut SyncScheduler, 100_000).unwrap()
            };
            (
                report.metrics.cycles,
                report.metrics.total_ops,
                m.memory().snapshot(0..CELLS),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Under the sequential scheduler there is never any contention.
    #[test]
    fn sequential_schedule_never_contends(
        programs in vec(vec(mini_op_strategy(CELLS), 0..15), 1..5),
    ) {
        let mut m = Machine::new(CELLS);
        for p in programs {
            m.add_process(scripted(p));
        }
        let report = m.run(&mut SingleStepScheduler::new(), 100_000).unwrap();
        prop_assert!(report.metrics.max_contention <= 1);
        prop_assert_eq!(report.metrics.total_stalls, 0);
        prop_assert_eq!(report.metrics.qrqw_time, report.metrics.cycles);
    }
}
