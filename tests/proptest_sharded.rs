//! Property-based differential tests for the sharded large-N path:
//! arbitrary keys (duplicates encouraged), named adversarial shapes
//! from [`wait_free_sort::testshapes`], shard counts, thread counts,
//! robustness configs, and abandonment points must never make the
//! sharded permutation diverge from the single-tree one.
//!
//! The shape *strategy* lives here rather than in `testshapes` because
//! `proptest` is a dev-dependency — `src/` cannot name its types.

use proptest::collection::vec;
use proptest::prelude::*;

use wait_free_sort::testshapes;
use wait_free_sort::wfsort_native::{
    piece_by_search, NativeAllocation, PartitionStrategy, QuitAfter, ShardConfig, ShardedSortJob,
    SortJob, SplitterLadder, WaitFreeSorter,
};

/// One named shape from the shared adversarial battery, at a generated
/// size and seed — the proptest view of `testshapes::adversarial_suite`.
fn adversarial_keys() -> impl Strategy<Value = (&'static str, Vec<u64>)> {
    (0usize..9, 2usize..300, any::<u64>())
        .prop_map(|(shape, n, seed)| testshapes::adversarial_suite(n, seed).swap_remove(shape))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every shape in the shared adversarial battery, under arbitrary
    /// shard counts, arbitrary (possibly degenerate) robustness knobs,
    /// and either partition strategy, still computes exactly the
    /// single-tree permutation — the knobs tune balance and memory
    /// traffic, never the output.
    #[test]
    fn adversarial_shapes_match_single_tree_under_any_config(
        (shape, keys) in adversarial_keys(),
        shards in 1usize..40,
        factor in 0usize..12,
        tau_tenths in 10u32..40,
        levels in 0usize..3,
        in_place in any::<bool>(),
    ) {
        let single = SortJob::new(keys.clone());
        single.run();
        let expect = single.permutation();
        let config = ShardConfig {
            overpartition_factor: factor,
            max_shard_imbalance: f64::from(tau_tenths) / 10.0,
            max_levels: levels,
            partition_strategy: if in_place {
                PartitionStrategy::InPlace
            } else {
                PartitionStrategy::Materialized
            },
            ..ShardConfig::default()
        };
        let job = ShardedSortJob::with_config(
            keys, NativeAllocation::Deterministic, 2, shards, config,
        );
        job.run();
        prop_assert_eq!(job.permutation(), expect, "{}", shape);
    }

    /// For arbitrary keys, shard counts (including S > n, so empty and
    /// singleton shards appear), and thread counts, the sharded path
    /// produces exactly the single-tree permutation — the stability
    /// contract at property scale.
    #[test]
    fn sharded_permutation_matches_single_tree(
        keys in vec(0u64..48, 2..300),
        shards in 1usize..80,
        threads in 1usize..4,
    ) {
        let single = SortJob::new(keys.clone());
        single.run();
        let expect = single.permutation();

        let job = ShardedSortJob::with_workers(
            keys, NativeAllocation::Deterministic, threads, shards,
        );
        crossbeam::thread::scope(|s| {
            for _ in 0..threads {
                let job = &job;
                s.spawn(move |_| job.run());
            }
        })
        .unwrap();
        prop_assert_eq!(job.permutation(), expect);
    }

    /// Same property under the randomized LC-WAT flavor: random probing
    /// reorders claims, never values.
    #[test]
    fn randomized_sharded_permutation_matches_single_tree(
        keys in vec(0u64..48, 2..300),
        shards in 1usize..40,
    ) {
        let single = SortJob::new(keys.clone());
        single.run();
        let expect = single.permutation();

        let job = ShardedSortJob::with_workers(
            keys, NativeAllocation::Randomized, 2, shards,
        );
        crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                let job = &job;
                s.spawn(move |_| job.run());
            }
        })
        .unwrap();
        prop_assert_eq!(job.permutation(), expect);
    }

    /// A quitter abandoning after an arbitrary number of checks leaves a
    /// state from which a late joiner recovers the exact single-tree
    /// permutation — the publish gates make half-done shards invisible,
    /// and under the in-place strategy the mixed-tag snapshot protocol
    /// makes half-published units rebuildable.
    #[test]
    fn abandoned_sharded_jobs_recover_exactly(
        keys in vec(0u64..32, 2..200),
        shards in 1usize..24,
        budget in 1usize..500,
        in_place in any::<bool>(),
    ) {
        let single = SortJob::new(keys.clone());
        single.run();
        let expect = single.permutation();

        let job = ShardedSortJob::with_config(
            keys, NativeAllocation::Deterministic, 2, shards,
            ShardConfig {
                partition_strategy: if in_place {
                    PartitionStrategy::InPlace
                } else {
                    PartitionStrategy::Materialized
                },
                ..ShardConfig::default()
            },
        );
        job.participate(&mut QuitAfter(budget));
        job.run();
        prop_assert!(job.is_complete());
        prop_assert_eq!(job.permutation(), expect);
    }

    /// The public front-end agrees with std sort for arbitrary inputs
    /// and shard counts (the trivial n < 2 passthrough included).
    #[test]
    fn sort_sharded_with_matches_std(
        keys in vec(0u64..1_000, 0..250),
        shards in 1usize..32,
        threads in 1usize..4,
    ) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        let sorted = WaitFreeSorter::new(threads).sort_sharded_with(&keys, shards);
        prop_assert_eq!(sorted, expect);
    }

    /// The ISSUE-9 kernel-equivalence pin at property scale: for an
    /// arbitrary strictly-increasing splitter set (built by sort+dedup,
    /// including the empty set) and arbitrary probe keys, the branchless
    /// padded ladder classifies every key to exactly the piece the
    /// reference binary search does — equality buckets, both end
    /// splitters, and keys outside the splitter range included. The
    /// probe pool is drawn from the same narrow domain as the splitters
    /// so equality hits are common, then widened with the splitters
    /// themselves and their off-by-one neighbors.
    #[test]
    fn ladder_classification_matches_binary_search(
        raw in vec(0u64..500, 0..150),
        probes in vec(0u64..500, 1..100),
    ) {
        let mut splitters = raw;
        splitters.sort_unstable();
        splitters.dedup();
        let ladder = SplitterLadder::new(&splitters);
        for &key in probes
            .iter()
            .chain(splitters.iter())
        {
            for key in [key.saturating_sub(1), key, key.saturating_add(1)] {
                prop_assert_eq!(
                    ladder.piece_for(&key),
                    piece_by_search(&splitters, &key),
                    "key {} against {} splitters",
                    key,
                    splitters.len()
                );
            }
        }
    }
}
