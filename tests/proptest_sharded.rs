//! Property-based differential tests for the sharded large-N path:
//! arbitrary keys (duplicates encouraged), shard counts, thread counts,
//! and abandonment points must never make the sharded permutation
//! diverge from the single-tree one.

use proptest::collection::vec;
use proptest::prelude::*;

use wait_free_sort::wfsort_native::{
    NativeAllocation, QuitAfter, ShardedSortJob, SortJob, WaitFreeSorter,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary keys, shard counts (including S > n, so empty and
    /// singleton shards appear), and thread counts, the sharded path
    /// produces exactly the single-tree permutation — the stability
    /// contract at property scale.
    #[test]
    fn sharded_permutation_matches_single_tree(
        keys in vec(0u64..48, 2..300),
        shards in 1usize..80,
        threads in 1usize..4,
    ) {
        let single = SortJob::new(keys.clone());
        single.run();
        let expect = single.permutation();

        let job = ShardedSortJob::with_workers(
            keys, NativeAllocation::Deterministic, threads, shards,
        );
        crossbeam::thread::scope(|s| {
            for _ in 0..threads {
                let job = &job;
                s.spawn(move |_| job.run());
            }
        })
        .unwrap();
        prop_assert_eq!(job.permutation(), expect);
    }

    /// Same property under the randomized LC-WAT flavor: random probing
    /// reorders claims, never values.
    #[test]
    fn randomized_sharded_permutation_matches_single_tree(
        keys in vec(0u64..48, 2..300),
        shards in 1usize..40,
    ) {
        let single = SortJob::new(keys.clone());
        single.run();
        let expect = single.permutation();

        let job = ShardedSortJob::with_workers(
            keys, NativeAllocation::Randomized, 2, shards,
        );
        crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                let job = &job;
                s.spawn(move |_| job.run());
            }
        })
        .unwrap();
        prop_assert_eq!(job.permutation(), expect);
    }

    /// A quitter abandoning after an arbitrary number of checks leaves a
    /// state from which a late joiner recovers the exact single-tree
    /// permutation — the publish gates make half-done shards invisible.
    #[test]
    fn abandoned_sharded_jobs_recover_exactly(
        keys in vec(0u64..32, 2..200),
        shards in 1usize..24,
        budget in 1usize..500,
    ) {
        let single = SortJob::new(keys.clone());
        single.run();
        let expect = single.permutation();

        let job = ShardedSortJob::with_workers(
            keys, NativeAllocation::Deterministic, 2, shards,
        );
        job.participate(&mut QuitAfter(budget));
        job.run();
        prop_assert!(job.is_complete());
        prop_assert_eq!(job.permutation(), expect);
    }

    /// The public front-end agrees with std sort for arbitrary inputs
    /// and shard counts (the trivial n < 2 passthrough included).
    #[test]
    fn sort_sharded_with_matches_std(
        keys in vec(0u64..1_000, 0..250),
        shards in 1usize..32,
        threads in 1usize..4,
    ) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        let sorted = WaitFreeSorter::new(threads).sort_sharded_with(&keys, shards);
        prop_assert_eq!(sorted, expect);
    }
}
