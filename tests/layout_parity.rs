//! Differential tests: the packed pivot-tree layout against the legacy
//! five-parallel-array layout (DESIGN.md §10).
//!
//! The packed [`SharedTree`] changes only *where* the shared words live,
//! never what gets written to them, so the two layouts must be
//! observationally identical: same sorted outputs, same deterministic
//! operation counts, and (single-threaded, where no race can perturb
//! anything) bit-identical CAS tallies. These tests drive the identical
//! `SortJob` pipeline through both layouts via the `PivotTree` trait —
//! the same differential harness `e25_layout_bench` uses for throughput
//! — and extend the PR-1 chaos storms across the block-grain sweep, so
//! grain amortization is exercised under worker crashes too.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wait_free_sort::wfsort_native::{
    recommended_grain, ChaosParticipation, ChaosPlan, LegacySharedTree, NativeAllocation,
    PivotTree, SortArena, SortJob, WaitFreeSorter,
};

/// The E25 shape trio: uniform random, few-distinct (long equal-key
/// chains), and a sawtooth whose descent direction is highly
/// predictable — the shape that killed two earlier packed layouts.
fn shapes(n: usize, seed: u64) -> Vec<(&'static str, Vec<u64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let uniform: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
    let few: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
    let sawtooth: Vec<u64> = (0..n).map(|i| (i % 199) as u64).collect();
    vec![
        ("uniform-random", uniform),
        ("few-distinct", few),
        ("sawtooth", sawtooth),
    ]
}

/// Single-threaded runs are completely deterministic (no races, no
/// interleaving): both layouts must report *identical* operation counts
/// in every phase, and identical outputs.
#[test]
fn single_threaded_counters_are_bit_identical_across_layouts() {
    for (shape, keys) in shapes(700, 7) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        for grain in [1usize, 7] {
            let sorter = WaitFreeSorter::new(1);

            let packed =
                SortJob::with_grain(keys.clone(), NativeAllocation::Deterministic, 1, grain);
            let pr = sorter.run_job_with_report(&packed);
            assert_eq!(packed.into_sorted(), expect, "{shape}: packed unsorted");

            let legacy = SortJob::<u64, LegacySharedTree>::with_layout(
                keys.clone(),
                NativeAllocation::Deterministic,
                1,
                grain,
            );
            let lr = sorter.run_job_with_report(&legacy);
            assert_eq!(legacy.into_sorted(), expect, "{shape}: legacy unsorted");

            let (p, l) = (&pr.per_phase, &lr.per_phase);
            assert_eq!(
                p.build.descent_steps, l.build.descent_steps,
                "{shape} grain {grain}: descent steps diverged"
            );
            assert_eq!(p.build.cas_attempts, l.build.cas_attempts);
            assert_eq!(p.build.cas_failures, 0, "{shape}: no races single-threaded");
            assert_eq!(l.build.cas_failures, 0);
            assert_eq!(p.build.claims, l.build.claims);
            assert_eq!(p.build.block_claims, l.build.block_claims);
            assert_eq!(p.sum.visits, l.sum.visits);
            assert_eq!(p.place.visits, l.place.visits);
            assert_eq!(p.scatter.claims, l.scatter.claims);
            assert_eq!(p.scatter.block_claims, l.scatter.block_claims);
            assert_eq!(
                pr.total_ops(),
                lr.total_ops(),
                "{shape}: op totals diverged"
            );
        }
    }
}

/// Multi-threaded runs race, so counters may differ — but outputs must
/// not, on either layout, at any swept grain.
#[test]
fn concurrent_outputs_agree_across_layouts_and_grains() {
    for (shape, keys) in shapes(1500, 11) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        for grain in [1usize, 2, 7, 64] {
            let sorter = WaitFreeSorter::new(4);

            let packed =
                SortJob::with_grain(keys.clone(), NativeAllocation::Deterministic, 4, grain);
            sorter.run_job(&packed);
            assert_eq!(packed.into_sorted(), expect, "{shape}/B={grain}: packed");

            let legacy = SortJob::<u64, LegacySharedTree>::with_layout(
                keys.clone(),
                NativeAllocation::Deterministic,
                4,
                grain,
            );
            sorter.run_job(&legacy);
            assert_eq!(legacy.into_sorted(), expect, "{shape}/B={grain}: legacy");
        }
    }
}

/// Drives `job` with one `ChaosParticipation` worker per plan slot
/// (the PR-1 storm harness) and reports whether the workers alone
/// completed it.
fn run_chaos_cohort<T: PivotTree>(job: &SortJob<u64, T>, plan: &ChaosPlan) -> bool {
    crossbeam::thread::scope(|s| {
        for w in 0..plan.workers() {
            s.spawn(move |_| job.participate(&mut ChaosParticipation::new(plan, w)));
        }
    })
    .unwrap();
    job.is_complete()
}

/// The PR-1 crash storm, extended across the grain sweep and both
/// layouts: reap 75% of a 4-worker cohort at random checkpoints and
/// require the survivors to finish a correct sort at every block grain.
/// Block-grained claiming changes how much work a mid-block crash
/// strands, so wait-freedom under churn must be re-proven per grain.
#[test]
fn chaos_storm_completes_on_both_layouts_across_grain_sweep() {
    let mut rng = StdRng::seed_from_u64(3);
    let keys: Vec<u64> = (0..600).map(|_| rng.gen_range(0..1_000_000u64)).collect();
    let mut expect = keys.clone();
    expect.sort_unstable();

    for grain in [1usize, 2, 7, 64] {
        for seed in 0..12u64 {
            let plan = ChaosPlan::random_crashes(4, 0.75, 150, seed);

            let packed =
                SortJob::with_grain(keys.clone(), NativeAllocation::Deterministic, 4, grain);
            assert!(
                run_chaos_cohort(&packed, &plan),
                "B={grain} seed {seed}: packed cohort left the sort incomplete"
            );
            assert_eq!(
                packed.into_sorted(),
                expect,
                "B={grain} seed {seed}: packed"
            );

            let legacy = SortJob::<u64, LegacySharedTree>::with_layout(
                keys.clone(),
                NativeAllocation::Deterministic,
                4,
                grain,
            );
            assert!(
                run_chaos_cohort(&legacy, &plan),
                "B={grain} seed {seed}: legacy cohort left the sort incomplete"
            );
            assert_eq!(
                legacy.into_sorted(),
                expect,
                "B={grain} seed {seed}: legacy"
            );
        }
    }
}

/// The recommended grain feeds the default constructors; pin its shape
/// so the sweep above provably covers the auto-selected values.
#[test]
fn recommended_grain_is_clamped_and_swept() {
    assert_eq!(recommended_grain(4096, 1), 64, "big n, one worker: cap");
    assert_eq!(recommended_grain(16, 4), 1, "tiny n: floor");
    assert_eq!(recommended_grain(112, 7), 2);
    assert_eq!(recommended_grain(4096, 8), 64);
    assert_eq!(recommended_grain(1024, 2), 64);
    assert_eq!(recommended_grain(1024, 16), 8);
}

/// A recycled arena must keep producing correct (and identical) results
/// across sorts of different lengths and key mixes — storage reuse, not
/// state reuse.
#[test]
fn arena_reuse_matches_fresh_sorts() {
    let sorter = WaitFreeSorter::new(2);
    let mut arena = SortArena::new();
    let mut out = Vec::new();
    for (i, (_, keys)) in shapes(900, 13).into_iter().enumerate() {
        // Vary the length so the arena both grows and shrinks.
        let keys = &keys[..keys.len() - i * 100];
        let mut expect = keys.to_vec();
        expect.sort_unstable();
        sorter.sort_into(keys, &mut arena, &mut out);
        assert_eq!(out, expect, "arena sort diverged on round {i}");
        assert_eq!(
            sorter.sort(keys),
            expect,
            "fresh sort diverged on round {i}"
        );
        assert!(arena.is_warm(), "arena should retain storage after a sort");
    }
}
