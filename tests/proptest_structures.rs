//! Property-based tests on the supporting data structures: work
//! assignment trees, the fat-tree geometry, the bitonic network and the
//! simulator's own invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use wait_free_sort::baselines::BitonicNetwork;
use wait_free_sort::pram::{Machine, MemoryLayout, SyncScheduler};
use wait_free_sort::wat::{LcWat, Wat, WriteAllWorker};
use wait_free_sort::wfsort::low_contention::{FatCursor, FatTree};
use wait_free_sort::wfsort::Side;
use wait_free_sort::wfsort_native::AtomicWat;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The deterministic WAT solves write-all for any job/processor
    /// combination (the Kanellakis–Shvartsman contract).
    #[test]
    fn wat_write_all_covers_everything(
        jobs in 1usize..120,
        nprocs in 1usize..24,
        seed in 0u64..500,
    ) {
        let mut layout = MemoryLayout::new();
        let out = layout.region(jobs);
        let wat = Wat::layout(&mut layout, jobs);
        let mut machine = Machine::with_seed(layout.total(), seed);
        for p in wat.processes(nprocs, |_| WriteAllWorker::new(out, 1)) {
            machine.add_process(p);
        }
        machine.run(&mut SyncScheduler, 10_000_000).expect("terminates");
        prop_assert!(wat.all_done(machine.memory()));
        prop_assert_eq!(machine.memory().snapshot(out.range()), vec![1; jobs]);
    }

    /// Same contract for the randomized LC-WAT.
    #[test]
    fn lcwat_write_all_covers_everything(
        jobs in 1usize..80,
        nprocs in 1usize..16,
        seed in 0u64..500,
    ) {
        let mut layout = MemoryLayout::new();
        let out = layout.region(jobs);
        let wat = LcWat::layout(&mut layout, jobs);
        let mut machine = Machine::with_seed(layout.total(), seed);
        for p in wat.processes(nprocs, seed, |_| WriteAllWorker::new(out, 1)) {
            machine.add_process(p);
        }
        machine.run(&mut SyncScheduler, 50_000_000).expect("terminates w.p. 1");
        prop_assert!(wat.all_done(machine.memory()));
        prop_assert_eq!(machine.memory().snapshot(out.range()), vec![1; jobs]);
    }

    /// The native WAT executes every job at least once for any
    /// participation pattern that includes one persistent thread.
    #[test]
    fn atomic_wat_with_random_deserters(
        jobs in 1usize..200,
        budgets in vec(1usize..50, 0..6),
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let wat = AtomicWat::new(jobs);
        let counts: Vec<AtomicUsize> = (0..jobs).map(|_| AtomicUsize::new(0)).collect();
        crossbeam::thread::scope(|s| {
            let total = budgets.len() + 1;
            for (t, budget) in budgets.iter().enumerate() {
                let wat = &wat;
                let counts = &counts;
                let mut b = *budget;
                s.spawn(move |_| {
                    wat.participate(t, total, |j| {
                        counts[j].fetch_add(1, Ordering::Relaxed);
                    }, move || { b = b.saturating_sub(1); b > 0 });
                });
            }
            let wat = &wat;
            let counts = &counts;
            s.spawn(move |_| {
                wat.participate(budgets.len(), total, |j| {
                    counts[j].fetch_add(1, Ordering::Relaxed);
                }, || true);
            });
        }).unwrap();
        prop_assert!(wat.all_done());
        prop_assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    /// FatCursor midpoints visit every slice rank exactly once, children
    /// partition ranges, and depth stays logarithmic.
    #[test]
    fn fat_cursor_partitions_any_slice(m in 1usize..300) {
        let mut layout = MemoryLayout::new();
        let fat = FatTree::layout(&mut layout, m, 1);
        let nodes = fat.nodes();
        prop_assert_eq!(nodes.len(), m);
        let mut mids: Vec<usize> = nodes.iter().map(|n| n.cursor.mid()).collect();
        mids.sort_unstable();
        prop_assert_eq!(mids, (0..m).collect::<Vec<_>>());
        // Depth bound: heap index < 2^(ceil(log2 m) + 2).
        let max_h = nodes.iter().map(|n| n.cursor.h).max().unwrap();
        prop_assert!(max_h < 4 * m.next_power_of_two().max(2));
    }

    /// In-order traversal of the fat-tree shape is rank order (it is the
    /// balanced BST over the sorted slice).
    #[test]
    fn fat_cursor_inorder_is_sorted(m in 1usize..120) {
        fn inorder(c: FatCursor, out: &mut Vec<usize>) {
            if let Some(l) = c.child(Side::Small) {
                inorder(l, out);
            }
            out.push(c.mid());
            if let Some(r) = c.child(Side::Big) {
                inorder(r, out);
            }
        }
        let mut seq = Vec::new();
        inorder(FatCursor::root(m), &mut seq);
        prop_assert_eq!(seq, (0..m).collect::<Vec<_>>());
    }

    /// The bitonic network sorts arbitrary values (not just the 0-1
    /// inputs of the exhaustive unit test).
    #[test]
    fn bitonic_sorts_arbitrary_values(
        exp in 1u32..8,
        keys in vec(any::<i32>(), 128),
    ) {
        let n = 1usize << exp;
        let mut data: Vec<i32> = keys.into_iter().take(n).collect();
        prop_assume!(data.len() == n);
        let mut expect = data.clone();
        expect.sort_unstable();
        BitonicNetwork::new(n).sort_sequential(&mut data);
        prop_assert_eq!(data, expect);
    }

    /// Machine determinism: identical seeds and programs give identical
    /// cycle counts and memory images.
    #[test]
    fn machine_runs_are_reproducible(
        jobs in 1usize..40,
        nprocs in 1usize..8,
        seed in 0u64..100,
    ) {
        let run = || {
            let mut layout = MemoryLayout::new();
            let out = layout.region(jobs);
            let wat = Wat::layout(&mut layout, jobs);
            let mut machine = Machine::with_seed(layout.total(), seed);
            for p in wat.processes(nprocs, |_| WriteAllWorker::new(out, 1)) {
                machine.add_process(p);
            }
            let report = machine.run(&mut SyncScheduler, 10_000_000).unwrap();
            (report.metrics.cycles, report.metrics.total_ops,
             machine.memory().snapshot(out.range()))
        };
        prop_assert_eq!(run(), run());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Counting networks satisfy the step property at quiescence for any
    /// token count, entry-wire pattern, and concurrency level.
    #[test]
    fn counting_network_step_property(
        width_exp in 1u32..5,
        nprocs in 1usize..12,
        tokens in 1usize..6,
        seed in 0u64..100,
    ) {
        use wait_free_sort::baselines::{count_with, CounterKind};
        use wait_free_sort::pram::SyncScheduler;
        let width = 1usize << width_exp;
        let out = count_with(
            CounterKind::Network { width },
            nprocs,
            tokens,
            seed,
            &mut SyncScheduler,
        )
        .unwrap();
        let total: i64 = out.counts.iter().sum();
        prop_assert_eq!(total, (nprocs * tokens) as i64);
        // Step property in logical output order: non-increasing, spread <= 1.
        prop_assert!(
            out.counts.windows(2).all(|w| w[0] >= w[1]),
            "not monotone: {:?}",
            out.counts
        );
        prop_assert!(
            out.counts.first().unwrap() - out.counts.last().unwrap() <= 1,
            "spread > 1: {:?}",
            out.counts
        );
    }
}
