//! Umbrella crate for the reproduction of *"A Wait-Free Sorting
//! Algorithm"* (Shavit, Upfal, Zemach; PODC 1997).
//!
//! This facade re-exports every workspace crate so the examples in
//! `examples/` and the integration tests in `tests/` can use one coherent
//! namespace:
//!
//! * [`pram`] — cycle-accurate CRCW PRAM simulator with contention
//!   metering, schedulers and failure injection.
//! * [`wat`] — work-assignment structures: WATs (write-all), LC-WATs,
//!   winner selection and write-most.
//! * [`wfsort`] — the paper's three-phase wait-free sort on the PRAM
//!   model, deterministic, randomized and low-contention variants.
//! * [`wfsort_native`] — the same algorithm on real threads with std
//!   atomics.
//! * [`baselines`] — the algorithms the paper compares against.
//! * [`testshapes`] — deterministic adversarial input generators shared
//!   by the differential test suites and the benches.
//!
//! # Quickstart
//!
//! ```
//! use wait_free_sort::wfsort_native::WaitFreeSorter;
//!
//! let data: Vec<u64> = (0..1000).rev().collect();
//! let sorted = WaitFreeSorter::new(4).sort(&data);
//! assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
//! ```

#![forbid(unsafe_code)]

pub mod testshapes;

pub use baselines;
pub use pram;
pub use wat;
pub use wfsort;
pub use wfsort_native;
