//! Deterministic adversarial input generators shared by the test and
//! bench harnesses.
//!
//! Every sharded-path claim in this repo is differential ("bit-identical
//! to the single-tree permutation") or quantitative ("imbalance ≤ τ"),
//! and both kinds are only as strong as the input shapes they are swept
//! over. This module centralizes the shapes that historically break
//! splitter-based partitioning — duplicate floods, heavy skew,
//! pre-sorted and periodic inputs — so `tests/sharded_parity.rs`,
//! `tests/proptest_sharded.rs`, and `e26_sharded_bench` all draw from
//! one list instead of each hand-rolling a subset.
//!
//! Everything here is a pure function of its arguments: the generators
//! seed [`rand::rngs::StdRng`] explicitly, so a failing case replays
//! from its printed `(shape, n, seed)` triple alone.
//!
//! Proptest *strategies* over these shapes live in the test files
//! themselves (`proptest` is a dev-dependency, so `src/` cannot name its
//! types); see `tests/proptest_sharded.rs` for the canonical
//! `prop_map`-over-shape-index pattern.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` copies of one key — the shape that collapses naive splitter
/// sampling entirely (every sampled candidate is equal, so without
/// deduplication every "splitter" is the same key and one shard
/// receives the whole input).
pub fn all_equal(n: usize) -> Vec<u64> {
    vec![7; n]
}

/// Random draws from exactly two values: the smallest nontrivial
/// duplicate-flood, with both equality-bucket boundaries exercised.
pub fn two_valued(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..2u64) * 1000).collect()
}

/// Zipf(1.0) draws over `1..=universe`: value `k` with probability
/// proportional to `1/k`, the canonical heavy-skew shape from the
/// robust sample-sort literature. Sampled by binary search over an
/// integer cumulative-weight table (no floating-point RNG), so the
/// output is identical on every platform for a given seed.
pub fn zipf(n: usize, universe: u64, seed: u64) -> Vec<u64> {
    assert!(universe >= 1, "zipf needs a non-empty universe");
    // Fixed-point harmonic weights: weight(k) = SCALE / k.
    const SCALE: u64 = 1 << 24;
    let mut cumulative = Vec::with_capacity(universe as usize);
    let mut total = 0u64;
    for k in 1..=universe {
        total += SCALE / k;
        cumulative.push(total);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let r = rng.gen_range(0..total);
            cumulative.partition_point(|&c| c <= r) as u64 + 1
        })
        .collect()
}

/// `0, 1, …, n-1`: already sorted. Harmless for splitters, adversarial
/// for insertion-order pivot trees (monotone inserts build a path), so
/// any path that feeds a pre-sorted run through a pivot tree shows up
/// as a timing cliff here.
pub fn presorted(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

/// `n-1, …, 1, 0`: sorted backwards — the mirror pivot-tree path case.
pub fn reverse_sorted(n: usize) -> Vec<u64> {
    (0..n as u64).rev().collect()
}

/// `i % period`: the periodic shape that aliases with stride-positioned
/// splitter samples (the E25/E26 worst case for sampling).
pub fn sawtooth(n: usize, period: u64) -> Vec<u64> {
    assert!(period >= 1, "sawtooth needs a non-zero period");
    (0..n as u64).map(|i| i % period).collect()
}

/// Random values repeated in runs of `run_len`: long equal-key chains at
/// random positions, stressing both equality buckets and the stable
/// tie-break order across run boundaries.
pub fn runs_of_duplicates(n: usize, run_len: usize, seed: u64) -> Vec<u64> {
    assert!(run_len >= 1, "runs need a non-zero length");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let value = rng.gen_range(0..1_000u64);
        let take = run_len.min(n - out.len());
        out.extend(std::iter::repeat_n(value, take));
    }
    out
}

/// Uniform random draws over the full `u64` range — the benign control
/// shape every sweep should include.
pub fn uniform(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

/// Random draws from `values` distinct keys — long equal chains with a
/// controllable distinct count.
pub fn few_distinct(n: usize, values: u64, seed: u64) -> Vec<u64> {
    assert!(values >= 1, "need at least one distinct value");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..values)).collect()
}

/// The named adversarial battery: every shape above at size `n`, as
/// `(name, keys)` pairs. This is the list the sharded parity suite and
/// the E26/E28 balance tables sweep; add new adversarial shapes here so
/// every harness picks them up at once.
pub fn adversarial_suite(n: usize, seed: u64) -> Vec<(&'static str, Vec<u64>)> {
    vec![
        ("uniform-random", uniform(n, seed)),
        ("all-equal", all_equal(n)),
        ("two-valued", two_valued(n, seed ^ 1)),
        ("zipf-1.0", zipf(n, 1024, seed ^ 2)),
        ("pre-sorted", presorted(n)),
        ("reverse-sorted", reverse_sorted(n)),
        ("sawtooth", sawtooth(n, 199)),
        ("runs-of-duplicates", runs_of_duplicates(n, 17, seed ^ 3)),
        ("few-distinct", few_distinct(n, 64, seed ^ 4)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_sized() {
        for (name, keys) in adversarial_suite(257, 42) {
            assert_eq!(keys.len(), 257, "{name}");
            let again: Vec<(&str, Vec<u64>)> = adversarial_suite(257, 42);
            let twin = &again.iter().find(|(n2, _)| *n2 == name).unwrap().1;
            assert_eq!(&keys, twin, "{name} must replay from its seed");
        }
    }

    #[test]
    fn zipf_is_heavy_headed() {
        let keys = zipf(10_000, 1024, 9);
        assert!(keys.iter().all(|&k| (1..=1024).contains(&k)));
        // Value 1 carries ~1/H(1024) ≈ 13% of the mass; even a weak
        // sampler should put well over 5% of draws there.
        let ones = keys.iter().filter(|&&k| k == 1).count();
        assert!(ones > 500, "zipf head too light: {ones}");
    }

    #[test]
    fn runs_have_equal_chains() {
        let keys = runs_of_duplicates(100, 10, 3);
        assert_eq!(keys.len(), 100);
        assert!(keys.chunks(10).all(|c| c.iter().all(|&k| k == c[0])));
    }
}
