#!/usr/bin/env bash
# Regenerates every experiment table in EXPERIMENTS.md.
#
# Usage: scripts/run_experiments.sh [output-dir]
#
# Markdown goes to <output-dir>/eNN.txt and, because BENCH_OUTPUT_DIR is
# set, each table is also written as CSV alongside it.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-experiment-results}"
mkdir -p "$out"
export BENCH_OUTPUT_DIR="$out"

bins=(
  e1_wat_steps
  e2_writeall_time
  e3_buildtree_bound
  e5_runtime_scaling
  e6_contention
  e7_lcwat
  e8_winner
  e9_failures
  e10_vs_simulation
  e11_native_threads
  e12_presorted
  e13_qrqw_time
  e14_ablations
  e15_async_work
  e16_weak_adversary
  e17_universal
  e18_timeline
  e19_phase_breakdown
  e20_workload_sweep
  e21_counting
)

cargo build --release -p bench
for b in "${bins[@]}"; do
  echo "=== $b ==="
  cargo run --release -q -p bench --bin "$b" | tee "$out/$b.txt"
done
echo
echo "All experiment outputs in $out/"
