//! A command-line playground for the simulated algorithms: pick a
//! sorter, a workload, sizes and a failure story, and see the paper's
//! metrics for that run.
//!
//! Usage:
//!   cargo run --release --example pram_playground -- \
//!       [--sorter det|rand|lc|net|uni] [--workload NAME] \
//!       [--n N] [--p P] [--seed S] [--crash FRACTION] \
//!       [--model crcw|crew|erew] [--trace K]
//!
//! Workloads: uniform permutation sorted reverse few-distinct sawtooth
//! organ-pipe all-equal
//!
//! `--model crew|erew` enforces a stricter PRAM model (the run aborts at
//! the first violation — the paper's algorithms need CRCW, so expect
//! violations with P >= 2); `--trace K` dumps the last K executed
//! operations. Both only apply to `--sorter det|rand` (the entry points
//! that expose the machine).

use wait_free_sort::baselines::{SimulatedNetworkSorter, UniversalSorter};
use wait_free_sort::pram::{failure::FailurePlan, RunReport, SyncScheduler};
use wait_free_sort::wfsort::low_contention::LowContentionSorter;
use wait_free_sort::wfsort::{
    check_sorted_permutation, Allocation, PramSorter, SortConfig, Workload,
};

struct Args {
    sorter: String,
    workload: String,
    n: usize,
    p: usize,
    seed: u64,
    crash: f64,
    model: String,
    trace: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        sorter: "det".into(),
        workload: "permutation".into(),
        n: 256,
        p: 16,
        seed: 1,
        crash: 0.0,
        model: "crcw".into(),
        trace: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            std::process::exit(2);
        });
        match flag.as_str() {
            "--sorter" => args.sorter = value,
            "--workload" => args.workload = value,
            "--n" => args.n = value.parse().expect("--n takes a number"),
            "--p" => args.p = value.parse().expect("--p takes a number"),
            "--seed" => args.seed = value.parse().expect("--seed takes a number"),
            "--crash" => args.crash = value.parse().expect("--crash takes a fraction"),
            "--model" => args.model = value,
            "--trace" => args.trace = value.parse().expect("--trace takes a count"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn workload_by_name(name: &str) -> Workload {
    Workload::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown workload {name}");
        std::process::exit(2);
    })
}

fn print_report(name: &str, report: &RunReport) {
    let m = &report.metrics;
    println!("sorter:            {name}");
    println!("cycles:            {}", m.cycles);
    println!(
        "memory operations: {} ({} reads, {} writes, {} CAS)",
        m.total_ops, m.reads, m.writes, m.cas_ops
    );
    println!("max contention:    {}", m.max_contention);
    if let Some((cycle, cell, count)) = m.peak {
        println!("worst pile-up:     {count} processors on cell {cell} at cycle {cycle}");
    }
    println!("stalls/cycle:      {:.2}", m.amortized_stalls_per_cycle());
    println!("QRQW time:         {}", m.qrqw_time);
    println!("max steps/proc:    {}", m.max_steps_per_process());
    println!("halted / crashed:  {} / {}", report.halted, report.crashed);
}

fn main() {
    let args = parse_args();
    let keys = workload_by_name(&args.workload).generate(args.n, args.seed);
    let plan = if args.crash > 0.0 {
        FailurePlan::random_crashes(args.p, args.crash, 500, args.seed)
    } else {
        FailurePlan::new()
    };
    println!(
        "N = {}, P = {}, workload = {}, seed = {}, crash fraction = {}\n",
        args.n, args.p, args.workload, args.seed, args.crash
    );

    let report = match args.sorter.as_str() {
        "det" | "rand" => {
            let allocation = if args.sorter == "rand" {
                Allocation::Randomized
            } else {
                Allocation::Deterministic
            };
            let sorter = PramSorter::new(
                SortConfig::new(args.p)
                    .seed(args.seed)
                    .allocation(allocation),
            );
            // Drive the machine directly so --model / --trace apply.
            let mut prepared = sorter.prepare(&keys);
            match args.model.as_str() {
                "crcw" => {}
                "crew" => prepared
                    .machine
                    .enforce_model(wait_free_sort::pram::ModelPolicy::Crew),
                "erew" => prepared
                    .machine
                    .enforce_model(wait_free_sort::pram::ModelPolicy::Erew),
                other => {
                    eprintln!("unknown model {other} (crcw|crew|erew)");
                    std::process::exit(2);
                }
            }
            if args.trace > 0 {
                prepared.machine.record_trace(args.trace);
            }
            let result =
                prepared
                    .machine
                    .run_with_failures(&mut SyncScheduler, &plan, prepared.budget);
            if args.trace > 0 {
                println!("--- last {} operations ---", args.trace);
                print!("{}", prepared.machine.trace().unwrap().dump());
                println!("--------------------------\n");
            }
            match result {
                Ok(report) => {
                    let out = prepared.layout.read_output(prepared.machine.memory());
                    check_sorted_permutation(&keys, &out).expect("sorted");
                    report
                }
                Err(e) => {
                    println!("run aborted: {e}");
                    std::process::exit(1);
                }
            }
        }
        "lc" => {
            let outcome = if args.p == args.n {
                LowContentionSorter::default().sort(&keys)
            } else {
                LowContentionSorter::default().sort_with_processors(&keys, args.p)
            }
            .unwrap_or_else(|e| {
                eprintln!("low-contention sorter: {e}");
                std::process::exit(2);
            });
            check_sorted_permutation(&keys, &outcome.sorted).expect("sorted");
            outcome.report
        }
        "net" => {
            let outcome = SimulatedNetworkSorter::new(args.p)
                .sort_under(&keys, &mut SyncScheduler, &plan)
                .expect("wait-free: completes");
            check_sorted_permutation(&keys, &outcome.sorted).expect("sorted");
            outcome.report
        }
        "uni" => {
            let outcome = UniversalSorter::new(args.p.min(64))
                .sort_under(&keys, &mut SyncScheduler, &plan)
                .expect("wait-free: completes");
            check_sorted_permutation(&keys, &outcome.sorted).expect("sorted");
            outcome.report
        }
        other => {
            eprintln!("unknown sorter {other} (det|rand|lc|net|uni)");
            std::process::exit(2);
        }
    };
    print_report(&args.sorter, &report);
    println!("\noutput verified: sorted permutation of the input");
}
