//! The README's "Measuring a sort" snippet, runnable and kept honest by
//! `cargo test --examples`: native telemetry for a single-tree sort,
//! then the sharded large-N path with its per-shard report.
//!
//! Run: `cargo run --release --example measure`

use wait_free_sort::wfsort_native::{recommended_shards, WaitFreeSorter};

fn main() {
    // --- Single-tree telemetry (DESIGN.md §9, EXPERIMENTS.md E24) ---
    let keys: Vec<u64> = (0..100_000).rev().collect();
    let (sorted, report) = WaitFreeSorter::new(4).sort_with_report(&keys);
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    println!(
        "elapsed {:?}: {} ops, CAS failure rate {:.4}, {} help steps",
        report.elapsed,
        report.total_ops(),
        report.cas_failure_rate, // the §1.2 contention proxy on real threads
        report.help_steps(),     // work done beyond the worker's own share
    );
    println!("tree descents: {}", report.per_phase.build.descent_steps);

    // --- Sharded telemetry (DESIGN.md §11, EXPERIMENTS.md E26) ---
    let shards = recommended_shards(keys.len(), 4);
    let (sorted, report) = WaitFreeSorter::new(4).sort_sharded_with_report(&keys, shards);
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    let shard = report
        .shard
        .as_ref()
        .expect("sharded runs carry a shard report");
    println!(
        "sharded ({} shards): elapsed {:?}, partition claims {}, \
         shard claims {}, imbalance {:.2}x",
        shard.shards,
        report.elapsed,
        report.per_phase.partition.claims,
        report.per_phase.shard_sort.claims,
        shard.imbalance(), // max shard over ideal; 1.0 is perfectly even
    );
}
