//! Quickstart: the wait-free sort on native threads and on the simulated
//! CRCW PRAM.
//!
//! Run: `cargo run --release --example quickstart`

use wait_free_sort::wfsort::{PramSorter, SortConfig, Workload};
use wait_free_sort::wfsort_native::WaitFreeSorter;

fn main() {
    // --- Native threads: sort a million keys with 8 workers. ---------
    let data: Vec<u64> = Workload::UniformRandom
        .generate(1_000_000, 42)
        .into_iter()
        .map(|k| k as u64)
        .collect();
    let sorter = WaitFreeSorter::new(8);
    let start = std::time::Instant::now();
    let sorted = sorter.sort(&data);
    println!(
        "native: sorted {} keys with {} threads in {:.1} ms",
        sorted.len(),
        sorter.threads(),
        start.elapsed().as_secs_f64() * 1e3
    );
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));

    // --- Simulated CRCW PRAM: the paper's cost model, measured. ------
    // P = N = 256 processors; the simulator counts cycles, work and the
    // paper's contention metric exactly.
    let keys = Workload::RandomPermutation.generate(256, 7);
    let outcome = PramSorter::new(SortConfig::new(256))
        .sort(&keys)
        .expect("wait-free: always completes");
    assert!(outcome.sorted.windows(2).all(|w| w[0] <= w[1]));
    let m = &outcome.report.metrics;
    println!(
        "pram:   N = P = 256 -> {} cycles ({}x log2 N), {} memory ops, max contention {}",
        m.cycles,
        m.cycles / 8,
        m.total_ops,
        m.max_contention
    );
    println!(
        "        (the paper: O(log N) cycles at P = N, O(P) contention for the \
         deterministic variant — see examples/contention_lab.rs for the O(sqrt P) one)"
    );
}
