//! Contention lab: watch the paper's §3 machinery earn its keep.
//!
//! Sorts the same input with the deterministic §2 algorithm and the
//! low-contention §3 algorithm and prints where each one's worst
//! memory-cell pile-up happened.
//!
//! Run: `cargo run --release --example contention_lab [N]`
//! (N must be 4^k; default 256)

use wait_free_sort::wfsort::low_contention::LowContentionSorter;
use wait_free_sort::wfsort::{PramSorter, SortConfig, Workload};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    if !LowContentionSorter::supports_length(n) {
        eprintln!("N must be 4^k (4, 16, 64, 256, 1024, 4096, ...); got {n}");
        std::process::exit(1);
    }
    let keys = Workload::RandomPermutation.generate(n, 1);

    let det = PramSorter::new(SortConfig::new(n))
        .sort(&keys)
        .expect("sort completes");
    let lc = LowContentionSorter::default()
        .sort(&keys)
        .expect("sort completes");
    assert_eq!(det.sorted, lc.sorted, "both sorts agree");

    println!("N = P = {n}, sqrt(P) = {}", (n as f64).sqrt() as usize);
    for (name, outcome) in [("deterministic (§2)", &det), ("low-contention (§3)", &lc)] {
        let m = &outcome.report.metrics;
        let peak = m
            .peak
            .map(|(cycle, cell, c)| format!("{c} processors on cell {cell} at cycle {cycle}"))
            .unwrap_or_else(|| "none".into());
        println!(
            "  {name:<20} cycles {:>6}  ops {:>8}  max contention {:>5}  \
             stalls/cycle {:>8.1}  peak: {peak}",
            m.cycles,
            m.total_ops,
            m.max_contention,
            m.amortized_stalls_per_cycle(),
        );
    }
    println!(
        "\nThe deterministic variant piles all {n} processors onto the root \
         at the start (contention ~ P); the group/winner/fat-tree pipeline \
         caps the pile-up near sqrt(P). The low-contention run spends more \
         cycles — that is the paper's trade: an additive log factor of time \
         for a sqrt(P) contention bound."
    );
}
