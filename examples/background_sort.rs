//! The introduction's motivating scenario: sorting in the background of
//! other work, with threads reaped when their processor is needed
//! elsewhere and fresh threads spawned when processors free up.
//!
//! A `SortJob` is shared state; *any* thread can join, contribute for a
//! while, and leave — the data structures are never left in a state
//! others cannot finish from.
//!
//! Run: `cargo run --release --example background_sort`

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use wait_free_sort::wfsort_native::{RunToCompletion, SortJob, UntilFlag};

fn main() {
    let n = 2_000_000;
    let keys: Vec<u64> = (0..n).map(|i| (i * 2_654_435_761u64) % 1_000_003).collect();
    let mut expect = keys.clone();
    expect.sort_unstable();

    let job = SortJob::new(keys);
    let reap = AtomicBool::new(false);

    crossbeam::thread::scope(|s| {
        // Phase 1 of the scenario: four background threads start sorting.
        for i in 0..4 {
            let job = &job;
            let reap = &reap;
            s.spawn(move |_| {
                let mut p = UntilFlag::new(reap);
                job.participate(&mut p);
                println!("worker {i}: reaped (complete: {})", job.is_complete());
            });
        }

        // The "OS" suddenly needs those processors: reap all four.
        std::thread::sleep(Duration::from_millis(2));
        reap.store(true, Ordering::Relaxed);
        println!("-- all four background workers reaped mid-sort --");

        // Later, two processors free up: spawn fresh threads. They pick
        // up exactly where the casualties left off.
        std::thread::sleep(Duration::from_millis(1));
        for i in 4..6 {
            let job = &job;
            s.spawn(move |_| {
                job.participate(&mut RunToCompletion);
                println!("worker {i}: finished participation");
            });
        }
    })
    .expect("workers do not panic");

    assert!(job.is_complete());
    let sorted = job.into_sorted();
    assert_eq!(sorted, expect);
    println!("sorted {n} keys correctly despite reaping every original worker");
}
