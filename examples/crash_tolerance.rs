//! Wait-freedom under an adversary: crash almost every simulated
//! processor at adversarially chosen moments (including mid-CAS-protocol
//! and mid-placement), revive one later, and watch the sort finish
//! correctly every time.
//!
//! Run: `cargo run --release --example crash_tolerance`

use wait_free_sort::pram::{failure::FailurePlan, Pid, SingleStepScheduler, SyncScheduler};
use wait_free_sort::wfsort::{check_sorted_permutation, PramSorter, SortConfig, Workload};

fn main() {
    let n = 512;
    let p = 16;
    let keys = Workload::UniformRandom.generate(n, 3);

    // Scenario 1: a staggered massacre — processors die one by one at
    // 25-cycle intervals until only processor 0 survives.
    let mut plan = FailurePlan::new();
    for v in 1..p {
        plan = plan.crash_at(25 * v as u64, Pid::new(v));
    }
    let outcome = PramSorter::new(SortConfig::new(p))
        .sort_under(&keys, &mut SyncScheduler, &plan)
        .expect("one survivor suffices");
    check_sorted_permutation(&keys, &outcome.sorted).expect("correct output");
    println!(
        "staggered massacre: sorted, {} cycles (vs {} with no failures)",
        outcome.report.metrics.cycles,
        PramSorter::new(SortConfig::new(p))
            .sort(&keys)
            .unwrap()
            .report
            .metrics
            .cycles
    );

    // Scenario 2: fail-and-revive — undetectable restarts (§1.1's model).
    let plan = FailurePlan::new()
        .crash_at(40, Pid::new(1))
        .crash_at(45, Pid::new(2))
        .revive_at(400, Pid::new(1))
        .revive_at(800, Pid::new(2));
    let outcome = PramSorter::new(SortConfig::new(4))
        .sort_under(&keys, &mut SyncScheduler, &plan)
        .expect("revivals are harmless");
    check_sorted_permutation(&keys, &outcome.sorted).expect("correct output");
    println!(
        "fail-and-revive:    sorted, {} cycles; revived processors resumed mid-program",
        outcome.report.metrics.cycles
    );

    // Scenario 3: total asynchrony — one operation per cycle, round-robin
    // (every single-core interleaving is a subsequence of this), plus a
    // random crash storm on top.
    let storm = FailurePlan::random_crashes(8, 0.75, 5_000, 99);
    let outcome = PramSorter::new(SortConfig::new(8))
        .sort_under(&keys, &mut SingleStepScheduler::new(), &storm)
        .expect("asynchrony cannot block a wait-free algorithm");
    check_sorted_permutation(&keys, &outcome.sorted).expect("correct output");
    println!(
        "sequential+storm:   sorted, {} cycles, {} of 8 processors crashed",
        outcome.report.metrics.cycles,
        storm.crash_victims()
    );
}
