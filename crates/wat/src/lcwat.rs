//! The Low-Contention Work Assignment Tree of §3.1 (Figure 8).
//!
//! Instead of deterministic climbing, every processor repeatedly probes a
//! *uniformly random* node of the tree and acts on what it finds: it
//! executes and marks unfinished leaves, marks inner nodes whose children
//! are complete, and — the low-contention twist — the processor that
//! completes the root writes `ALLDONE`, which floods *down* the tree so
//! processors discover termination without all polling the root. Lemma 3.1:
//! `O(log P)` time and `O(log P / log log P)` contention w.h.p.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pram::{Memory, MemoryLayout, Op, OpResult, Pid, Process, Word};

use crate::tree::HeapTree;
use crate::worker::{LeafWorker, WorkerOp};

/// Cell value: nothing known about this subtree yet.
pub const EMPTY: Word = 0;
/// Cell value: this subtree's work is complete.
pub const DONE: Word = 1;
/// Cell value: *all* work is complete (termination marker flooding down).
pub const ALLDONE: Word = 2;

/// A low-contention work assignment tree overlaid on shared memory.
///
/// # Examples
///
/// ```
/// use pram::{Machine, MemoryLayout, SyncScheduler};
/// use wat::{LcWat, WriteAllWorker};
///
/// let mut layout = MemoryLayout::new();
/// let output = layout.region(8);
/// let wat = LcWat::layout(&mut layout, 8);
/// let mut machine = Machine::new(layout.total());
/// for p in wat.processes(4, 1, |_| WriteAllWorker::new(output, 1)) {
///     machine.add_process(p);
/// }
/// machine.run(&mut SyncScheduler, 1_000_000)?;
/// assert!(wat.all_done(machine.memory()));
/// # Ok::<(), pram::MachineError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct LcWat {
    tree: HeapTree,
    jobs: usize,
}

impl LcWat {
    /// Reserves shared memory for an LC-WAT covering `jobs` jobs (leaf
    /// count rounded up to a power of two; padding leaves complete on
    /// first probe).
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn layout(layout: &mut MemoryLayout, jobs: usize) -> Self {
        assert!(jobs > 0, "an LC-WAT needs at least one job");
        let leaves = crate::tree::next_power_of_two(jobs);
        let region = layout.region(2 * leaves);
        LcWat {
            tree: HeapTree::new(region, leaves),
            jobs,
        }
    }

    /// The underlying tree geometry.
    pub fn tree(&self) -> &HeapTree {
        &self.tree
    }

    /// Number of real jobs.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether the root records completion of all work.
    pub fn all_done(&self, memory: &Memory) -> bool {
        memory.read(self.tree.addr(self.tree.root())) >= DONE
    }

    /// Spawns one probing process per processor, each with an independent
    /// random stream derived from `seed`.
    pub fn processes<W>(
        &self,
        nprocs: usize,
        seed: u64,
        mut make_worker: impl FnMut(Pid) -> W,
    ) -> Vec<Box<dyn Process>>
    where
        W: LeafWorker + 'static,
    {
        (0..nprocs)
            .map(|i| {
                let pid = Pid::new(i);
                Box::new(LcWatProcess::new(*self, pid, seed, make_worker(pid))) as Box<dyn Process>
            })
            .collect()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    Pick,
    AwaitNode,
    Working,
    LeafDone,
    AwaitLeafWrite,
    AwaitLeft,
    AwaitRight,
    AwaitInnerWrite,
    AwaitFloodLeft,
    AwaitFloodRight,
}

/// One processor running the `low_contention_work` loop of Figure 8.
#[derive(Debug)]
pub struct LcWatProcess<W> {
    wat: LcWat,
    worker: W,
    rng: StdRng,
    state: St,
    /// The node currently probed.
    node: usize,
}

impl<W: LeafWorker> LcWatProcess<W> {
    /// Creates the probing process for `pid`, with randomness derived from
    /// `(seed, pid)`.
    pub fn new(wat: LcWat, pid: Pid, seed: u64, worker: W) -> Self {
        LcWatProcess {
            wat,
            worker,
            rng: StdRng::seed_from_u64(
                seed ^ (pid.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            state: St::Pick,
            node: 1,
        }
    }

    fn tree(&self) -> &HeapTree {
        self.wat.tree()
    }

    /// Value to store when completing `node`: `ALLDONE` at the root (the
    /// termination marker), `DONE` elsewhere.
    fn completion_value(&self, node: usize) -> Word {
        if self.tree().is_root(node) {
            ALLDONE
        } else {
            DONE
        }
    }
}

impl<W: LeafWorker> Process for LcWatProcess<W> {
    fn step(&mut self, mut last: Option<OpResult>) -> Op {
        loop {
            match self.state {
                St::Pick => {
                    let count = self.tree().node_count();
                    self.node = 1 + self.rng.gen_range(0..count);
                    self.state = St::AwaitNode;
                    return Op::Read(self.tree().addr(self.node));
                }
                St::AwaitNode => {
                    let v = last.take().expect("node read pending").read_value();
                    let leaf = self.tree().is_leaf(self.node);
                    match v {
                        EMPTY if leaf => {
                            let job = self.tree().job_of(self.node);
                            if job < self.wat.jobs {
                                self.worker.begin(job);
                                self.state = St::Working;
                            } else {
                                self.state = St::LeafDone;
                            }
                        }
                        EMPTY => {
                            self.state = St::AwaitLeft;
                            return Op::Read(self.tree().addr(self.tree().left(self.node)));
                        }
                        DONE => self.state = St::Pick,
                        _ => {
                            // ALLDONE. Figure 8 propagates it to the
                            // children of an inner node and quits. At a
                            // leaf there is nothing to propagate; any
                            // ALLDONE sighting already implies the root
                            // completed, so quitting immediately is sound
                            // (and only shortens the run).
                            if leaf {
                                return Op::Halt;
                            }
                            self.state = St::AwaitFloodLeft;
                            return Op::Write(
                                self.tree().addr(self.tree().left(self.node)),
                                ALLDONE,
                            );
                        }
                    }
                }
                St::Working => match self.worker.step(last.take()) {
                    WorkerOp::Op(op) => return op,
                    WorkerOp::Done => self.state = St::LeafDone,
                },
                St::LeafDone => {
                    self.state = St::AwaitLeafWrite;
                    return Op::Write(
                        self.tree().addr(self.node),
                        self.completion_value(self.node),
                    );
                }
                St::AwaitLeafWrite => {
                    last.take();
                    // A single-node tree's leaf is the root: its write was
                    // ALLDONE and the work is finished.
                    if self.tree().is_root(self.node) {
                        return Op::Halt;
                    }
                    self.state = St::Pick;
                }
                St::AwaitLeft => {
                    let v = last.take().expect("left read pending").read_value();
                    if v >= DONE {
                        self.state = St::AwaitRight;
                        return Op::Read(self.tree().addr(self.tree().right(self.node)));
                    }
                    self.state = St::Pick;
                }
                St::AwaitRight => {
                    let v = last.take().expect("right read pending").read_value();
                    if v >= DONE {
                        self.state = St::AwaitInnerWrite;
                        return Op::Write(
                            self.tree().addr(self.node),
                            self.completion_value(self.node),
                        );
                    }
                    self.state = St::Pick;
                }
                St::AwaitInnerWrite => {
                    last.take();
                    self.state = St::Pick;
                }
                St::AwaitFloodLeft => {
                    last.take();
                    self.state = St::AwaitFloodRight;
                    return Op::Write(self.tree().addr(self.tree().right(self.node)), ALLDONE);
                }
                St::AwaitFloodRight => {
                    last.take();
                    return Op::Halt;
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "lc-wat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::WriteAllWorker;
    use pram::{Machine, Region, SyncScheduler};

    fn solve(jobs: usize, nprocs: usize, seed: u64) -> (Machine, LcWat, Region) {
        let mut layout = MemoryLayout::new();
        let out = layout.region(jobs);
        let wat = LcWat::layout(&mut layout, jobs);
        let mut machine = Machine::with_seed(layout.total(), seed);
        for p in wat.processes(nprocs, seed, |_| WriteAllWorker::new(out, 1)) {
            machine.add_process(p);
        }
        (machine, wat, out)
    }

    #[test]
    fn write_all_completes_and_all_processors_exit() {
        let (mut m, wat, out) = solve(32, 32, 5);
        let report = m.run(&mut SyncScheduler, 1_000_000).unwrap();
        assert_eq!(m.memory().snapshot(out.range()), vec![1; 32]);
        assert!(wat.all_done(m.memory()));
        assert_eq!(report.halted, 32);
    }

    #[test]
    fn works_with_fewer_processors_than_jobs() {
        let (mut m, wat, out) = solve(64, 4, 9);
        m.run(&mut SyncScheduler, 1_000_000).unwrap();
        assert_eq!(m.memory().snapshot(out.range()), vec![1; 64]);
        assert!(wat.all_done(m.memory()));
    }

    #[test]
    fn works_with_non_power_of_two_jobs() {
        let (mut m, wat, out) = solve(21, 8, 13);
        m.run(&mut SyncScheduler, 1_000_000).unwrap();
        assert_eq!(m.memory().snapshot(out.range()), vec![1; 21]);
        assert!(wat.all_done(m.memory()));
    }

    #[test]
    fn single_job_single_processor() {
        let (mut m, wat, out) = solve(1, 1, 2);
        m.run(&mut SyncScheduler, 10_000).unwrap();
        assert_eq!(m.memory().snapshot(out.range()), vec![1]);
        assert!(wat.all_done(m.memory()));
    }

    #[test]
    fn survives_crashes_leaving_one_processor() {
        let (mut m, wat, out) = solve(16, 8, 3);
        let mut plan = pram::failure::FailurePlan::new();
        for v in 1..8 {
            plan = plan.crash_at(2 * v as u64, Pid::new(v));
        }
        m.run_with_failures(&mut SyncScheduler, &plan, 1_000_000)
            .unwrap();
        assert_eq!(m.memory().snapshot(out.range()), vec![1; 16]);
        assert!(wat.all_done(m.memory()));
    }

    #[test]
    fn lemma_3_1_logarithmic_time_growth() {
        // Time should grow like O(log P), so quadrupling P should add a
        // bounded number of cycles rather than multiplying them. We allow
        // a loose factor because the constant in Lemma 3.1 is large.
        let t = |p: usize| {
            let (mut m, _, _) = solve(p, p, 77);
            m.run(&mut SyncScheduler, 10_000_000)
                .unwrap()
                .metrics
                .cycles
        };
        let t64 = t(64);
        let t1024 = t(1024);
        // log(1024)/log(64) = 10/6; even with noise the ratio must stay
        // far below the linear ratio 16.
        assert!(
            (t1024 as f64) < (t64 as f64) * 6.0,
            "time not logarithmic: t(64)={t64} t(1024)={t1024}"
        );
    }

    #[test]
    fn contention_stays_well_below_p() {
        let p = 256;
        let (mut m, _, _) = solve(p, p, 21);
        let report = m.run(&mut SyncScheduler, 10_000_000).unwrap();
        // Lemma 3.1: O(log P / log log P) w.h.p. — allow slack but insist
        // we are an order of magnitude below P.
        assert!(
            report.metrics.max_contention <= p / 8,
            "contention {} too close to P={p}",
            report.metrics.max_contention
        );
    }

    #[test]
    fn completes_under_sequential_scheduler() {
        let (mut m, wat, out) = solve(16, 8, 4);
        m.run(&mut pram::SingleStepScheduler::new(), 10_000_000)
            .unwrap();
        assert_eq!(m.memory().snapshot(out.range()), vec![1; 16]);
        assert!(wat.all_done(m.memory()));
    }

    #[test]
    fn completes_under_random_scheduler() {
        let (mut m, wat, out) = solve(16, 8, 6);
        m.run(&mut pram::RandomScheduler::new(2, 0.3), 10_000_000)
            .unwrap();
        assert_eq!(m.memory().snapshot(out.range()), vec![1; 16]);
        assert!(wat.all_done(m.memory()));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let (mut m, _, _) = solve(16, 16, seed);
            m.run(&mut SyncScheduler, 1_000_000).unwrap().metrics.cycles
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_jobs_rejected() {
        let mut layout = MemoryLayout::new();
        LcWat::layout(&mut layout, 0);
    }
}
