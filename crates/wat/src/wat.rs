//! The deterministic Work Assignment Tree of §2.1 (Figures 1 and 2).
//!
//! A WAT is a complete binary tree whose leaves are jobs and whose inner
//! nodes record completion of their subtrees. The `next_element` routine
//! (Figure 1, after Algorithm X of Buss et al.) marks the caller's node
//! `DONE`, climbs while the sibling subtree is finished, and descends into
//! the first unfinished subtree it finds — all in `O(log N)` operations,
//! which is what makes the construction wait-free (Lemma 2.1).

use pram::{Memory, MemoryLayout, Op, OpResult, Pid, Process, Word};

use crate::tree::HeapTree;
use crate::worker::{LeafWorker, WorkerOp};

/// Cell value: subtree not yet complete.
pub const NOT_DONE: Word = 0;
/// Cell value: subtree complete.
pub const DONE: Word = 1;

/// A Work Assignment Tree overlaid on shared memory.
#[derive(Clone, Copy, Debug)]
pub struct Wat {
    tree: HeapTree,
    jobs: usize,
}

impl Wat {
    /// Reserves shared memory for a WAT covering `jobs` jobs.
    ///
    /// The leaf count is `jobs` rounded up to a power of two; padding
    /// leaves carry no work and are marked `DONE` on first visit.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn layout(layout: &mut MemoryLayout, jobs: usize) -> Self {
        assert!(jobs > 0, "a WAT needs at least one job");
        let leaves = crate::tree::next_power_of_two(jobs);
        let region = layout.region(2 * leaves);
        Wat {
            tree: HeapTree::new(region, leaves),
            jobs,
        }
    }

    /// The underlying tree geometry.
    pub fn tree(&self) -> &HeapTree {
        &self.tree
    }

    /// Number of real jobs (excluding padding leaves).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether the root is marked `DONE` — i.e. all work is complete.
    pub fn all_done(&self, memory: &Memory) -> bool {
        memory.read(self.tree.addr(self.tree.root())) == DONE
    }

    /// Number of tree nodes currently marked `DONE`.
    pub fn done_count(&self, memory: &Memory) -> usize {
        self.tree
            .nodes()
            .filter(|&n| memory.read(self.tree.addr(n)) == DONE)
            .count()
    }

    /// Spawns one worker process per processor, as the skeleton algorithm
    /// of Figure 2 does, returning the created process boxes.
    pub fn processes<W>(
        &self,
        nprocs: usize,
        mut make_worker: impl FnMut(Pid) -> W,
    ) -> Vec<Box<dyn Process>>
    where
        W: LeafWorker + 'static,
    {
        (0..nprocs)
            .map(|i| {
                let pid = Pid::new(i);
                Box::new(WatProcess::new(*self, pid, nprocs, make_worker(pid))) as Box<dyn Process>
            })
            .collect()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    Init,
    Working,
    MarkCur,
    AwaitMark,
    ClimbCheck,
    AwaitSibling,
    AwaitParentMark,
    DescendCheck,
    AwaitLeft,
    AwaitRight,
}

/// One processor executing the skeleton wait-free algorithm of Figure 2
/// over a [`Wat`], running a [`LeafWorker`] on every leaf it is assigned.
#[derive(Debug)]
pub struct WatProcess<W> {
    wat: Wat,
    pid: Pid,
    nprocs: usize,
    worker: W,
    state: St,
    cur: usize,
}

impl<W: LeafWorker> WatProcess<W> {
    /// Creates the process for `pid` of `nprocs`, starting (per Figure 2)
    /// at leaf `leaves * pid / nprocs`.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is zero or `pid` is out of range.
    pub fn new(wat: Wat, pid: Pid, nprocs: usize, worker: W) -> Self {
        assert!(nprocs > 0, "need at least one processor");
        assert!(pid.index() < nprocs, "pid out of range");
        WatProcess {
            wat,
            pid,
            nprocs,
            worker,
            state: St::Init,
            cur: 0,
        }
    }

    /// Creates a process that skips the initial leaf work and enters the
    /// tree by calling `next_element` on `job`'s leaf (marking it done and
    /// climbing from there). Used by strategies that hand off to the WAT
    /// after doing their own allocation first, like the randomized scheme
    /// at the end of §2.3 of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `job` is not a leaf of the WAT or `pid`/`nprocs` are
    /// invalid as for [`WatProcess::new`].
    pub fn resuming_at(wat: Wat, pid: Pid, nprocs: usize, worker: W, job: usize) -> Self {
        let mut p = Self::new(wat, pid, nprocs, worker);
        p.cur = p.tree().leaf_node(job);
        p.state = St::MarkCur;
        p
    }

    fn tree(&self) -> &HeapTree {
        self.wat.tree()
    }

    /// Enters the leaf `self.cur`: begins worker if it is a real job,
    /// otherwise goes straight to marking it done.
    fn enter_leaf(&mut self) -> St {
        let job = self.tree().job_of(self.cur);
        if job < self.wat.jobs {
            self.worker.begin(job);
            St::Working
        } else {
            St::MarkCur
        }
    }
}

impl<W: LeafWorker> Process for WatProcess<W> {
    fn step(&mut self, mut last: Option<OpResult>) -> Op {
        loop {
            match self.state {
                St::Init => {
                    let leaves = self.tree().leaves();
                    let job = leaves * self.pid.index() / self.nprocs;
                    self.cur = self.tree().leaf_node(job);
                    self.state = self.enter_leaf();
                }
                St::Working => match self.worker.step(last.take()) {
                    WorkerOp::Op(op) => return op,
                    WorkerOp::Done => self.state = St::MarkCur,
                },
                St::MarkCur => {
                    self.state = St::AwaitMark;
                    return Op::Write(self.tree().addr(self.cur), DONE);
                }
                St::AwaitMark => {
                    last.take();
                    self.state = St::ClimbCheck;
                }
                St::ClimbCheck => {
                    if self.tree().is_root(self.cur) {
                        return Op::Halt;
                    }
                    self.state = St::AwaitSibling;
                    return Op::Read(self.tree().addr(self.tree().sibling(self.cur)));
                }
                St::AwaitSibling => {
                    let v = last.take().expect("sibling read pending").read_value();
                    if v == DONE {
                        let parent = self.tree().parent(self.cur);
                        self.cur = parent;
                        self.state = St::AwaitParentMark;
                        return Op::Write(self.tree().addr(parent), DONE);
                    }
                    self.cur = self.tree().sibling(self.cur);
                    self.state = St::DescendCheck;
                }
                St::AwaitParentMark => {
                    last.take();
                    self.state = St::ClimbCheck;
                }
                St::DescendCheck => {
                    if self.tree().is_leaf(self.cur) {
                        self.state = self.enter_leaf();
                        continue;
                    }
                    self.state = St::AwaitLeft;
                    return Op::Read(self.tree().addr(self.tree().left(self.cur)));
                }
                St::AwaitLeft => {
                    let v = last.take().expect("left read pending").read_value();
                    if v != DONE {
                        self.cur = self.tree().left(self.cur);
                        self.state = St::DescendCheck;
                        continue;
                    }
                    self.state = St::AwaitRight;
                    return Op::Read(self.tree().addr(self.tree().right(self.cur)));
                }
                St::AwaitRight => {
                    let v = last.take().expect("right read pending").read_value();
                    if v != DONE {
                        self.cur = self.tree().right(self.cur);
                        self.state = St::DescendCheck;
                        continue;
                    }
                    // Both children DONE but this node not yet marked: the
                    // outdated-information case of Figure 1 — next_element
                    // returns this inner node and the skeleton immediately
                    // re-enters it, marking it DONE and resuming the climb.
                    self.state = St::MarkCur;
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "wat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{BusyWorker, NopWorker, WriteAllWorker};
    use pram::{Machine, MachineError, SingleStepScheduler, SyncScheduler};

    /// Builds a machine solving write-all over `jobs` cells with `nprocs`
    /// processors; returns (machine, wat, output region).
    fn write_all_machine(jobs: usize, nprocs: usize, seed: u64) -> (Machine, Wat, pram::Region) {
        let mut layout = MemoryLayout::new();
        let out = layout.region(jobs);
        let wat = Wat::layout(&mut layout, jobs);
        let mut machine = Machine::with_seed(layout.total(), seed);
        for p in wat.processes(nprocs, |_| WriteAllWorker::new(out, 1)) {
            machine.add_process(p);
        }
        (machine, wat, out)
    }

    fn assert_write_all_solved(machine: &Machine, wat: &Wat, out: &pram::Region, jobs: usize) {
        let values = machine.memory().snapshot(out.range());
        assert_eq!(values, vec![1; jobs], "every cell written");
        assert!(wat.all_done(machine.memory()), "root marked done");
    }

    #[test]
    fn write_all_single_processor() {
        let (mut m, wat, out) = write_all_machine(8, 1, 0);
        m.run(&mut SyncScheduler, 10_000).unwrap();
        assert_write_all_solved(&m, &wat, &out, 8);
    }

    #[test]
    fn write_all_p_equals_n() {
        let (mut m, wat, out) = write_all_machine(16, 16, 0);
        m.run(&mut SyncScheduler, 10_000).unwrap();
        assert_write_all_solved(&m, &wat, &out, 16);
    }

    #[test]
    fn write_all_more_processors_than_jobs() {
        let (mut m, wat, out) = write_all_machine(4, 16, 0);
        m.run(&mut SyncScheduler, 10_000).unwrap();
        assert_write_all_solved(&m, &wat, &out, 4);
    }

    #[test]
    fn write_all_non_power_of_two_jobs() {
        let (mut m, wat, out) = write_all_machine(13, 5, 3);
        m.run(&mut SyncScheduler, 10_000).unwrap();
        assert_write_all_solved(&m, &wat, &out, 13);
    }

    #[test]
    fn write_all_under_sequential_schedule() {
        let (mut m, wat, out) = write_all_machine(8, 4, 0);
        m.run(&mut SingleStepScheduler::new(), 100_000).unwrap();
        assert_write_all_solved(&m, &wat, &out, 8);
    }

    #[test]
    fn write_all_survives_crashes_of_all_but_one() {
        let jobs = 16;
        let nprocs = 8;
        let (mut m, wat, out) = write_all_machine(jobs, nprocs, 1);
        // Crash processors 1..8 at staggered early cycles; processor 0
        // must finish everything alone.
        let mut plan = pram::failure::FailurePlan::new();
        for v in 1..nprocs {
            plan = plan.crash_at(v as u64, Pid::new(v));
        }
        m.run_with_failures(&mut SyncScheduler, &plan, 100_000)
            .unwrap();
        assert_write_all_solved(&m, &wat, &out, jobs);
    }

    #[test]
    fn crashed_everyone_means_no_progress_but_no_hang() {
        let (mut m, _wat, out) = write_all_machine(4, 2, 0);
        let plan = pram::failure::FailurePlan::new()
            .crash_at(0, Pid::new(0))
            .crash_at(0, Pid::new(1));
        let report = m
            .run_with_failures(&mut SyncScheduler, &plan, 1000)
            .unwrap();
        assert_eq!(report.crashed, 2);
        assert_eq!(m.memory().snapshot(out.range()), vec![0, 0, 0, 0]);
    }

    #[test]
    fn lemma_2_3_time_bound_with_p_equals_n() {
        // Lemma 2.3: with P = N and K-step leaves the skeleton finishes in
        // O(K + log N) cycles. Verify with a generous constant.
        for &n in &[16usize, 64, 256] {
            for &k in &[0usize, 4, 16] {
                let mut layout = MemoryLayout::new();
                let out = layout.region(n);
                let wat = Wat::layout(&mut layout, n);
                let mut machine = Machine::with_seed(layout.total(), 7);
                for p in wat.processes(n, |_| BusyWorker::new(out, k)) {
                    machine.add_process(p);
                }
                let report = machine.run(&mut SyncScheduler, 1_000_000).unwrap();
                let log_n = (n as f64).log2();
                let bound = 10.0 * (k as f64 + log_n) + 20.0;
                assert!(
                    (report.metrics.cycles as f64) < bound,
                    "n={n} k={k}: {} cycles exceeds O(K + log N) bound {bound}",
                    report.metrics.cycles
                );
            }
        }
    }

    #[test]
    fn lemma_2_1_per_call_step_bound() {
        // next_element is wait-free: a single processor finishing the whole
        // tree makes at most O(N) total steps (N leaves, each next_element
        // call O(log N)).
        let n = 64;
        let mut layout = MemoryLayout::new();
        let wat = Wat::layout(&mut layout, n);
        let mut machine = Machine::new(layout.total());
        for p in wat.processes(1, |_| NopWorker) {
            machine.add_process(p);
        }
        let report = machine.run(&mut SyncScheduler, 1_000_000).unwrap();
        let steps = report.metrics.steps_per_process[0] as f64;
        let bound = 8.0 * (n as f64) + 8.0 * (n as f64).log2();
        assert!(steps < bound, "{steps} steps exceeds bound {bound}");
    }

    #[test]
    fn busy_worker_executes_every_leaf_at_least_once() {
        let jobs = 32;
        let mut layout = MemoryLayout::new();
        let out = layout.region(jobs);
        let wat = Wat::layout(&mut layout, jobs);
        let mut machine = Machine::with_seed(layout.total(), 11);
        for p in wat.processes(6, |_| BusyWorker::new(out, 2)) {
            machine.add_process(p);
        }
        machine.run(&mut SyncScheduler, 100_000).unwrap();
        let counts = machine.memory().snapshot(out.range());
        assert!(
            counts.iter().all(|&c| c >= 1),
            "some leaf never executed: {counts:?}"
        );
    }

    #[test]
    fn cycle_limit_too_small_reports_error() {
        let (mut m, _, _) = write_all_machine(64, 2, 0);
        let err = m.run(&mut SyncScheduler, 3).unwrap_err();
        assert!(matches!(err, MachineError::CycleLimitExceeded { .. }));
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_jobs_rejected() {
        let mut layout = MemoryLayout::new();
        Wat::layout(&mut layout, 0);
    }

    #[test]
    fn resuming_at_skips_initial_work_and_continues() {
        // A process resuming at job 3 must not run job 3's work again —
        // it marks the leaf done and climbs/descends from there, still
        // covering every other job.
        let jobs = 8;
        let mut layout = MemoryLayout::new();
        let out = layout.region(jobs);
        let wat = Wat::layout(&mut layout, jobs);
        let mut machine = Machine::new(layout.total());
        machine.add_process(Box::new(WatProcess::resuming_at(
            wat,
            Pid::new(0),
            1,
            WriteAllWorker::new(out, 1),
            3,
        )));
        machine.run(&mut SyncScheduler, 100_000).unwrap();
        assert!(wat.all_done(machine.memory()));
        let values = machine.memory().snapshot(out.range());
        assert_eq!(values[3], 0, "resumed job's own work must be skipped");
        for (j, &v) in values.iter().enumerate() {
            if j != 3 {
                assert_eq!(v, 1, "job {j} must still run");
            }
        }
    }

    #[test]
    fn single_job_single_processor() {
        let (mut m, wat, out) = write_all_machine(1, 1, 0);
        m.run(&mut SyncScheduler, 100).unwrap();
        assert_write_all_solved(&m, &wat, &out, 1);
    }
}
