//! Leaf work: what a work-assignment structure hands out.
//!
//! The skeleton algorithm of Figure 2 calls an abstract `func(i)` on each
//! leaf `i`. A [`LeafWorker`] is that `func` as a resumable state machine,
//! so leaf work composes with the simulator's one-memory-op-per-cycle
//! accounting: the surrounding process drives the worker one operation at
//! a time and regains control when the worker reports completion.

use pram::{Op, OpResult, Region, Word};

/// What a [`LeafWorker`] wants next: another memory operation, or done.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerOp {
    /// Perform this shared-memory operation and resume me with its result.
    Op(Op),
    /// The job is complete; the surrounding process takes over. Costs no
    /// cycle by itself.
    Done,
}

/// A resumable unit of leaf work, the `func()` of the paper's Figure 2.
///
/// Lifecycle: the owning process calls [`LeafWorker::begin`] with a job
/// number, then repeatedly [`LeafWorker::step`]; each returned
/// [`WorkerOp::Op`] is executed by the machine and its result fed to the
/// next `step` call. [`WorkerOp::Done`] yields control back.
pub trait LeafWorker {
    /// Starts work on leaf job `job`.
    fn begin(&mut self, job: usize);

    /// Advances the job by one operation. `last` carries the result of the
    /// previously returned operation (`None` right after [`begin`]).
    ///
    /// [`begin`]: LeafWorker::begin
    fn step(&mut self, last: Option<OpResult>) -> WorkerOp;
}

/// The canonical write-all worker: job `j` writes `value` into cell `j` of
/// the target region. Substituting this worker into a WAT yields the
/// Kanellakis–Shvartsman *write-all* solution of §2.1.
#[derive(Clone, Debug)]
pub struct WriteAllWorker {
    target: Region,
    value: Word,
    job: usize,
    wrote: bool,
}

impl WriteAllWorker {
    /// Creates a worker writing `value` into each cell of `target`.
    pub fn new(target: Region, value: Word) -> Self {
        WriteAllWorker {
            target,
            value,
            job: 0,
            wrote: false,
        }
    }
}

impl LeafWorker for WriteAllWorker {
    fn begin(&mut self, job: usize) {
        self.job = job;
        self.wrote = false;
    }

    fn step(&mut self, _last: Option<OpResult>) -> WorkerOp {
        if self.wrote {
            WorkerOp::Done
        } else {
            self.wrote = true;
            WorkerOp::Op(Op::Write(self.target.at(self.job), self.value))
        }
    }
}

/// A worker that completes instantly without touching memory; useful for
/// measuring the overhead of the assignment structure itself (K = 0 in
/// Lemma 2.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct NopWorker;

impl LeafWorker for NopWorker {
    fn begin(&mut self, _job: usize) {}

    fn step(&mut self, _last: Option<OpResult>) -> WorkerOp {
        WorkerOp::Done
    }
}

/// A worker that burns exactly `k` cycles of local work per leaf (the
/// `K`-step `func` of Lemma 2.3) and then increments cell `job` of the
/// target region so tests can verify every leaf was executed.
#[derive(Clone, Debug)]
pub struct BusyWorker {
    target: Region,
    k: usize,
    remaining: usize,
    job: usize,
    state: BusyState,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BusyState {
    Burning,
    Reading,
    Writing,
    Finished,
}

impl BusyWorker {
    /// Creates a worker doing `k` local steps then one read-increment-write
    /// on `target[job]`.
    pub fn new(target: Region, k: usize) -> Self {
        BusyWorker {
            target,
            k,
            remaining: 0,
            job: 0,
            state: BusyState::Finished,
        }
    }
}

impl LeafWorker for BusyWorker {
    fn begin(&mut self, job: usize) {
        self.job = job;
        self.remaining = self.k;
        self.state = BusyState::Burning;
    }

    fn step(&mut self, last: Option<OpResult>) -> WorkerOp {
        loop {
            match self.state {
                BusyState::Burning => {
                    if self.remaining == 0 {
                        self.state = BusyState::Reading;
                        continue;
                    }
                    self.remaining -= 1;
                    return WorkerOp::Op(Op::Nop);
                }
                BusyState::Reading => {
                    self.state = BusyState::Writing;
                    return WorkerOp::Op(Op::Read(self.target.at(self.job)));
                }
                BusyState::Writing => {
                    let v = last.expect("read result pending").read_value();
                    self.state = BusyState::Finished;
                    return WorkerOp::Op(Op::Write(self.target.at(self.job), v + 1));
                }
                BusyState::Finished => return WorkerOp::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::MemoryLayout;

    #[test]
    fn write_all_worker_emits_single_write() {
        let mut l = MemoryLayout::new();
        let r = l.region(4);
        let mut w = WriteAllWorker::new(r, 1);
        w.begin(2);
        assert_eq!(w.step(None), WorkerOp::Op(Op::Write(r.at(2), 1)));
        assert_eq!(w.step(Some(OpResult::Write)), WorkerOp::Done);
    }

    #[test]
    fn write_all_worker_is_reusable_across_jobs() {
        let mut l = MemoryLayout::new();
        let r = l.region(4);
        let mut w = WriteAllWorker::new(r, 7);
        w.begin(0);
        assert_eq!(w.step(None), WorkerOp::Op(Op::Write(r.at(0), 7)));
        assert_eq!(w.step(Some(OpResult::Write)), WorkerOp::Done);
        w.begin(3);
        assert_eq!(w.step(None), WorkerOp::Op(Op::Write(r.at(3), 7)));
    }

    #[test]
    fn nop_worker_is_instant() {
        let mut w = NopWorker;
        w.begin(5);
        assert_eq!(w.step(None), WorkerOp::Done);
    }

    #[test]
    fn busy_worker_burns_k_cycles_then_increments() {
        let mut l = MemoryLayout::new();
        let r = l.region(2);
        let mut w = BusyWorker::new(r, 3);
        w.begin(1);
        for _ in 0..3 {
            assert_eq!(w.step(Some(OpResult::Nop)), WorkerOp::Op(Op::Nop));
        }
        assert_eq!(w.step(Some(OpResult::Nop)), WorkerOp::Op(Op::Read(r.at(1))));
        assert_eq!(
            w.step(Some(OpResult::Read(4))),
            WorkerOp::Op(Op::Write(r.at(1), 5))
        );
        assert_eq!(w.step(Some(OpResult::Write)), WorkerOp::Done);
    }

    #[test]
    fn busy_worker_with_zero_k_goes_straight_to_read() {
        let mut l = MemoryLayout::new();
        let r = l.region(1);
        let mut w = BusyWorker::new(r, 0);
        w.begin(0);
        assert_eq!(w.step(None), WorkerOp::Op(Op::Read(r.at(0))));
    }
}
