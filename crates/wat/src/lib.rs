//! Work-assignment structures from *"A Wait-Free Sorting Algorithm"*
//! (Shavit, Upfal, Zemach; PODC 1997).
//!
//! The paper's conclusion singles out three "simple, efficient and of low
//! enough contention" building blocks that this crate provides as reusable
//! PRAM programs for the [`pram`] simulator:
//!
//! * [`Wat`] / [`WatProcess`] — the deterministic Work Assignment Tree of
//!   §2.1 (Figures 1–2), solving *write-all*: no job is lost even if the
//!   processor holding it crashes, and each `next_element` call costs
//!   `O(log N)` steps (Lemma 2.1).
//! * [`LcWat`] / [`LcWatProcess`] — the low-contention randomized variant
//!   of §3.1 (Figure 8): random probing plus a downward-flooding `ALLDONE`
//!   marker; `O(log P)` time and `O(log P / log log P)` contention w.h.p.
//!   (Lemma 3.1).
//! * [`WinnerTree`] / [`WinnerProcess`] — low-contention winner selection
//!   of §3.2 (Figure 9): randomized exponential arrival waves and a single
//!   root CAS; `O(log P)` time and contention (Lemma 3.2).
//! * [`WriteMostProcess`] — the randomized *write-most* scatter of §3.2
//!   used to fill the fat tree.
//!
//! Leaf work is abstracted by [`LeafWorker`], the `func()` of the paper's
//! skeleton algorithm (Figure 2), so the same assignment structures drive
//! write-all, tree building, and anything else.
//!
//! # Example: wait-free write-all
//!
//! ```
//! use pram::{Machine, MemoryLayout, SyncScheduler};
//! use wat::{Wat, WriteAllWorker};
//!
//! let jobs = 16;
//! let mut layout = MemoryLayout::new();
//! let output = layout.region(jobs);
//! let wat = Wat::layout(&mut layout, jobs);
//!
//! let mut machine = Machine::new(layout.total());
//! for p in wat.processes(4, |_| WriteAllWorker::new(output, 1)) {
//!     machine.add_process(p);
//! }
//! machine.run(&mut SyncScheduler, 100_000)?;
//! assert_eq!(machine.memory().snapshot(output.range()), vec![1; jobs]);
//! # Ok::<(), pram::MachineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lcwat;
pub mod tree;
pub mod wat;
pub mod winner;
pub mod worker;
pub mod write_most;

pub use crate::lcwat::{LcWat, LcWatProcess, ALLDONE, EMPTY};
pub use crate::tree::HeapTree;
pub use crate::wat::{Wat, WatProcess, DONE, NOT_DONE};
pub use crate::winner::{WinnerProcess, WinnerTree};
pub use crate::worker::{BusyWorker, LeafWorker, NopWorker, WorkerOp, WriteAllWorker};
pub use crate::write_most::{Source, WriteMostProcess};
