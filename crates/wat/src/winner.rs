//! Low-contention winner selection of §3.2 (Figure 9).
//!
//! Between the group phase and the fat-tree phase of the low-contention
//! sort, one group's result must be chosen. Processors enter a binary tree
//! in randomized exponential waves (geometric coin-flip back-off), ascend
//! from their leaf until they meet a non-`EMPTY` node, compare-and-swap
//! their candidate at the root if they get that far, and copy the value
//! they saw one level back down. The first processor through pays one CAS;
//! the waves keep the number of simultaneous climbers — and hence
//! contention — at `O(log P)` (Lemma 3.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pram::{Memory, MemoryLayout, Op, OpResult, Pid, Process, Region, Word};

use crate::tree::HeapTree;

/// Cell value: no winner information here yet.
pub const EMPTY: Word = 0;

/// The shared winner-selection tree plus a per-processor result array.
///
/// # Examples
///
/// ```
/// use pram::{Machine, MemoryLayout, Pid, SyncScheduler, Word};
/// use wat::WinnerTree;
///
/// let mut layout = MemoryLayout::new();
/// let wt = WinnerTree::layout(&mut layout, 8);
/// let mut machine = Machine::new(layout.total());
/// // Processor i proposes candidate i + 1.
/// for p in wt.processes(7, 4, |pid| pid.index() as Word + 1) {
///     machine.add_process(p);
/// }
/// machine.run(&mut SyncScheduler, 100_000)?;
/// let winner = wt.winner(machine.memory()).expect("one winner chosen");
/// assert!((1..=8).contains(&winner));
/// // Every processor observed the same winner.
/// for i in 0..8 {
///     assert_eq!(wt.observed_winner(machine.memory(), Pid::new(i)), Some(winner));
/// }
/// # Ok::<(), pram::MachineError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct WinnerTree {
    tree: HeapTree,
    results: Region,
    nprocs: usize,
}

impl WinnerTree {
    /// Reserves shared memory for selecting a winner among `nprocs`
    /// processors: a tree with `nprocs` (rounded up to a power of two)
    /// leaves and one result cell per processor into which each records
    /// the winner it observed.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is zero.
    pub fn layout(layout: &mut MemoryLayout, nprocs: usize) -> Self {
        assert!(nprocs > 0, "need at least one processor");
        let leaves = crate::tree::next_power_of_two(nprocs);
        let region = layout.region(2 * leaves);
        let results = layout.region(nprocs);
        WinnerTree {
            tree: HeapTree::new(region, leaves),
            results,
            nprocs,
        }
    }

    /// The underlying tree geometry.
    pub fn tree(&self) -> &HeapTree {
        &self.tree
    }

    /// The per-processor result region: cell `i` receives the winner
    /// processor `i` observed. Downstream phases read their cell to learn
    /// the winner.
    pub fn results_region(&self) -> Region {
        self.results
    }

    /// The winner stored at the root, or `None` if selection has not
    /// completed.
    pub fn winner(&self, memory: &Memory) -> Option<Word> {
        match memory.read(self.tree.addr(self.tree.root())) {
            EMPTY => None,
            w => Some(w),
        }
    }

    /// The winner recorded by processor `pid`, or `None` if it has not
    /// finished.
    pub fn observed_winner(&self, memory: &Memory, pid: Pid) -> Option<Word> {
        match memory.read(self.results.at(pid.index())) {
            EMPTY => None,
            w => Some(w),
        }
    }

    /// Spawns the selection process for every processor. `candidate_of`
    /// supplies each processor's candidate value (must be non-`EMPTY`).
    pub fn processes(
        &self,
        seed: u64,
        wait_unit: usize,
        mut candidate_of: impl FnMut(Pid) -> Word,
    ) -> Vec<Box<dyn Process>> {
        (0..self.nprocs)
            .map(|i| {
                let pid = Pid::new(i);
                Box::new(WinnerProcess::new(
                    *self,
                    pid,
                    candidate_of(pid),
                    wait_unit,
                    seed,
                )) as Box<dyn Process>
            })
            .collect()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    Waiting { remaining: usize },
    AwaitNode,
    AwaitCas,
    WriteLeft,
    AwaitLeft,
    AwaitRight,
    WriteResult,
    AwaitResult,
}

/// One processor executing `select_winner` (Figure 9).
#[derive(Debug)]
pub struct WinnerProcess {
    wt: WinnerTree,
    pid: Pid,
    candidate: Word,
    state: St,
    node: usize,
    value: Word,
}

impl WinnerProcess {
    /// Creates the process for `pid` proposing `candidate`. `wait_unit` is
    /// the constant `K` of Figure 9: a processor that flips `s` heads in a
    /// row waits `K * (log P - s)` cycles before entering the tree.
    ///
    /// # Panics
    ///
    /// Panics if `candidate` is `EMPTY` (the sentinel) or `pid` is out of
    /// range.
    pub fn new(wt: WinnerTree, pid: Pid, candidate: Word, wait_unit: usize, seed: u64) -> Self {
        assert_ne!(
            candidate, EMPTY,
            "candidate must be distinguishable from EMPTY"
        );
        assert!(pid.index() < wt.nprocs, "pid out of range");
        let mut rng =
            StdRng::seed_from_u64(seed ^ (pid.index() as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let log_p = wt.tree.height() as usize;
        let mut s = 0;
        while s < log_p && rng.gen_bool(0.5) {
            s += 1;
        }
        let leaf = wt.tree.leaf_node(pid.index() % wt.tree.leaves());
        WinnerProcess {
            wt,
            pid,
            candidate,
            state: St::Waiting {
                remaining: wait_unit * (log_p - s),
            },
            node: leaf,
            value: EMPTY,
        }
    }

    fn tree(&self) -> &HeapTree {
        &self.wt.tree
    }
}

impl Process for WinnerProcess {
    fn step(&mut self, mut last: Option<OpResult>) -> Op {
        loop {
            match self.state {
                St::Waiting { remaining } => {
                    if remaining > 0 {
                        self.state = St::Waiting {
                            remaining: remaining - 1,
                        };
                        return Op::Nop;
                    }
                    self.state = St::AwaitNode;
                    return Op::Read(self.tree().addr(self.node));
                }
                St::AwaitNode => {
                    let v = last.take().expect("node read pending").read_value();
                    if v != EMPTY {
                        self.value = v;
                        self.state = St::WriteLeft;
                    } else if self.tree().is_root(self.node) {
                        self.state = St::AwaitCas;
                        return Op::Cas {
                            addr: self.tree().addr(self.node),
                            expected: EMPTY,
                            new: self.candidate,
                        };
                    } else {
                        self.node = self.tree().parent(self.node);
                        self.state = St::AwaitNode;
                        return Op::Read(self.tree().addr(self.node));
                    }
                }
                St::AwaitCas => {
                    let result = last.take().expect("cas result pending");
                    self.value = match result {
                        OpResult::Cas { current, .. } => current,
                        other => panic!("unexpected {other:?}"),
                    };
                    self.state = St::WriteLeft;
                }
                St::WriteLeft => {
                    if self.tree().is_leaf(self.node) {
                        self.state = St::WriteResult;
                        continue;
                    }
                    self.state = St::AwaitLeft;
                    return Op::Write(self.tree().addr(self.tree().left(self.node)), self.value);
                }
                St::AwaitLeft => {
                    last.take();
                    self.state = St::AwaitRight;
                    return Op::Write(self.tree().addr(self.tree().right(self.node)), self.value);
                }
                St::AwaitRight => {
                    last.take();
                    self.state = St::WriteResult;
                }
                St::WriteResult => {
                    self.state = St::AwaitResult;
                    return Op::Write(self.wt.results.at(self.pid.index()), self.value);
                }
                St::AwaitResult => {
                    last.take();
                    return Op::Halt;
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "winner-selection"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::{Machine, SyncScheduler};

    fn select(nprocs: usize, seed: u64, wait_unit: usize) -> (Machine, WinnerTree) {
        let mut layout = MemoryLayout::new();
        let wt = WinnerTree::layout(&mut layout, nprocs);
        let mut machine = Machine::with_seed(layout.total(), seed);
        // Candidate of processor i is i + 1 (non-EMPTY).
        for p in wt.processes(seed, wait_unit, |pid| pid.index() as Word + 1) {
            machine.add_process(p);
        }
        (machine, wt)
    }

    #[test]
    fn selects_exactly_one_winner_all_agree() {
        for seed in 0..10 {
            let (mut m, wt) = select(16, seed, 3);
            m.run(&mut SyncScheduler, 100_000).unwrap();
            let winner = wt.winner(m.memory()).expect("winner chosen");
            assert!((1..=16).contains(&winner), "winner {winner} is a candidate");
            for i in 0..16 {
                assert_eq!(
                    wt.observed_winner(m.memory(), Pid::new(i)),
                    Some(winner),
                    "seed {seed}: processor {i} disagrees"
                );
            }
        }
    }

    #[test]
    fn single_processor_wins_immediately() {
        let (mut m, wt) = select(1, 0, 1);
        m.run(&mut SyncScheduler, 1000).unwrap();
        assert_eq!(wt.winner(m.memory()), Some(1));
        assert_eq!(wt.observed_winner(m.memory(), Pid::new(0)), Some(1));
    }

    #[test]
    fn non_power_of_two_processor_count() {
        let (mut m, wt) = select(11, 4, 2);
        m.run(&mut SyncScheduler, 100_000).unwrap();
        let winner = wt.winner(m.memory()).unwrap();
        assert!((1..=11).contains(&winner));
    }

    #[test]
    fn lemma_3_2_time_is_logarithmic() {
        let time = |p: usize| {
            let (mut m, _) = select(p, 99, 2);
            m.run(&mut SyncScheduler, 1_000_000).unwrap().metrics.cycles
        };
        let t16 = time(16);
        let t1024 = time(1024);
        // O(K log P): growing P 64x should grow time ~2.5x, never ~64x.
        assert!(
            (t1024 as f64) < (t16 as f64) * 8.0,
            "time not logarithmic: t(16)={t16}, t(1024)={t1024}"
        );
    }

    #[test]
    fn contention_well_below_p() {
        let p = 512;
        let (mut m, _) = select(p, 42, 3);
        let report = m.run(&mut SyncScheduler, 1_000_000).unwrap();
        assert!(
            report.metrics.max_contention <= 64,
            "contention {} not O(log P) for P={p}",
            report.metrics.max_contention
        );
    }

    #[test]
    fn survives_crash_of_early_wave() {
        // Crash half the processors a few cycles in; the rest must still
        // agree on a winner (possibly a crashed processor's candidate —
        // that is fine, selection is about the value, not the proposer).
        let (mut m, wt) = select(8, 7, 2);
        let mut plan = pram::failure::FailurePlan::new();
        for i in 0..4 {
            plan = plan.crash_at(1, Pid::new(i));
        }
        m.run_with_failures(&mut SyncScheduler, &plan, 100_000)
            .unwrap();
        let winner = wt.winner(m.memory()).expect("survivors chose a winner");
        for i in 4..8 {
            assert_eq!(wt.observed_winner(m.memory(), Pid::new(i)), Some(winner));
        }
    }

    #[test]
    fn agreement_holds_under_asynchrony() {
        // Lemma 3.2's *time/contention* analysis assumes bounded arrival
        // spread, but *agreement* must hold under any schedule.
        for seed in 0..5 {
            let (mut m, wt) = select(16, seed, 2);
            m.run(&mut pram::RandomScheduler::new(seed, 0.3), 1_000_000)
                .unwrap();
            let winner = wt.winner(m.memory()).expect("winner chosen");
            for i in 0..16 {
                assert_eq!(
                    wt.observed_winner(m.memory(), Pid::new(i)),
                    Some(winner),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn agreement_holds_fully_sequentially() {
        let (mut m, wt) = select(8, 3, 1);
        m.run(&mut pram::SingleStepScheduler::new(), 1_000_000)
            .unwrap();
        let winner = wt.winner(m.memory()).unwrap();
        for i in 0..8 {
            assert_eq!(wt.observed_winner(m.memory(), Pid::new(i)), Some(winner));
        }
    }

    #[test]
    #[should_panic(expected = "distinguishable from EMPTY")]
    fn empty_candidate_rejected() {
        let mut layout = MemoryLayout::new();
        let wt = WinnerTree::layout(&mut layout, 2);
        WinnerProcess::new(wt, Pid::new(0), EMPTY, 1, 0);
    }
}
