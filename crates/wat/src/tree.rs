//! Index arithmetic for complete binary trees stored in shared memory.
//!
//! All three work-assignment structures of the paper (the WAT of Figure 1,
//! the LC-WAT of Figure 8 and the winner-selection tree of Figure 9) are
//! complete binary trees kept in a flat array with 1-based heap indexing:
//! node 1 is the root, node `i` has children `2i` and `2i+1`, and the
//! leaves of a tree with `L` leaves occupy nodes `L .. 2L`.

use pram::{Addr, Region};

/// A complete binary tree with a power-of-two number of leaves, overlaid
/// on a shared-memory [`Region`] of `2 * leaves` cells (cell 0 unused).
#[derive(Clone, Copy, Debug)]
pub struct HeapTree {
    region: Region,
    leaves: usize,
}

impl HeapTree {
    /// Overlays a tree with `leaves` leaves on `region`.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is not a positive power of two or the region is
    /// smaller than `2 * leaves` cells.
    pub fn new(region: Region, leaves: usize) -> Self {
        assert!(
            leaves.is_power_of_two(),
            "leaf count must be a power of two"
        );
        assert!(
            region.len() >= 2 * leaves,
            "region of {} cells too small for {leaves} leaves",
            region.len()
        );
        HeapTree { region, leaves }
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// Total number of nodes (`2 * leaves - 1`).
    pub fn node_count(&self) -> usize {
        2 * self.leaves - 1
    }

    /// Height: number of edges from root to a leaf (`log2(leaves)`).
    pub fn height(&self) -> u32 {
        self.leaves.trailing_zeros()
    }

    /// The root node index (always 1).
    pub fn root(&self) -> usize {
        1
    }

    /// Whether `node` is the root.
    pub fn is_root(&self, node: usize) -> bool {
        node == 1
    }

    /// Whether `node` is a leaf.
    pub fn is_leaf(&self, node: usize) -> bool {
        node >= self.leaves
    }

    /// Parent of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is the root.
    pub fn parent(&self, node: usize) -> usize {
        assert!(node > 1, "root has no parent");
        node / 2
    }

    /// Sibling of `node` (the parent's other child).
    ///
    /// # Panics
    ///
    /// Panics if `node` is the root.
    pub fn sibling(&self, node: usize) -> usize {
        assert!(node > 1, "root has no sibling");
        node ^ 1
    }

    /// Left child of `node`.
    pub fn left(&self, node: usize) -> usize {
        2 * node
    }

    /// Right child of `node`.
    pub fn right(&self, node: usize) -> usize {
        2 * node + 1
    }

    /// The node holding leaf number `job` (`0 <= job < leaves`).
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    pub fn leaf_node(&self, job: usize) -> usize {
        assert!(job < self.leaves, "leaf {job} out of range");
        self.leaves + job
    }

    /// The leaf number of a leaf `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a leaf.
    pub fn job_of(&self, node: usize) -> usize {
        assert!(self.is_leaf(node), "node {node} is not a leaf");
        node - self.leaves
    }

    /// Shared-memory address of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a valid node index (`1..2*leaves - 1`... the
    /// region check rejects anything past `2 * leaves`).
    pub fn addr(&self, node: usize) -> Addr {
        assert!(
            node >= 1 && node < 2 * self.leaves,
            "node {node} out of tree"
        );
        self.region.at(node)
    }

    /// Depth of `node` (root = 0).
    pub fn depth(&self, node: usize) -> u32 {
        debug_assert!(node >= 1);
        usize::BITS - 1 - node.leading_zeros()
    }

    /// Iterator over all node indices, root first (breadth-first order).
    pub fn nodes(&self) -> impl Iterator<Item = usize> {
        1..2 * self.leaves
    }
}

/// Rounds `n` up to the next power of two (minimum 1).
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::MemoryLayout;

    fn tree(leaves: usize) -> HeapTree {
        let mut l = MemoryLayout::new();
        let r = l.region(2 * leaves);
        HeapTree::new(r, leaves)
    }

    #[test]
    fn basic_shape() {
        let t = tree(8);
        assert_eq!(t.leaves(), 8);
        assert_eq!(t.node_count(), 15);
        assert_eq!(t.height(), 3);
        assert_eq!(t.root(), 1);
        assert!(t.is_root(1));
        assert!(!t.is_root(2));
    }

    #[test]
    fn family_relations() {
        let t = tree(8);
        assert_eq!(t.parent(5), 2);
        assert_eq!(t.sibling(5), 4);
        assert_eq!(t.sibling(4), 5);
        assert_eq!(t.left(3), 6);
        assert_eq!(t.right(3), 7);
        assert_eq!(t.parent(t.left(3)), 3);
        assert_eq!(t.parent(t.right(3)), 3);
    }

    #[test]
    fn leaves_and_jobs_roundtrip() {
        let t = tree(8);
        for job in 0..8 {
            let node = t.leaf_node(job);
            assert!(t.is_leaf(node));
            assert_eq!(t.job_of(node), job);
        }
        assert!(!t.is_leaf(7));
        assert!(t.is_leaf(8));
    }

    #[test]
    fn depth_runs_root_to_leaf() {
        let t = tree(8);
        assert_eq!(t.depth(1), 0);
        assert_eq!(t.depth(2), 1);
        assert_eq!(t.depth(8), 3);
        assert_eq!(t.depth(15), 3);
    }

    #[test]
    fn addresses_offset_by_region() {
        let mut l = MemoryLayout::new();
        let _pad = l.region(100);
        let r = l.region(16);
        let t = HeapTree::new(r, 8);
        assert_eq!(t.addr(1), 101);
        assert_eq!(t.addr(15), 115);
    }

    #[test]
    fn single_leaf_tree() {
        let t = tree(1);
        assert_eq!(t.node_count(), 1);
        assert!(t.is_leaf(1));
        assert!(t.is_root(1));
        assert_eq!(t.leaf_node(0), 1);
        assert_eq!(t.height(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        tree(6);
    }

    #[test]
    #[should_panic(expected = "root has no parent")]
    fn parent_of_root_panics() {
        tree(2).parent(1);
    }

    #[test]
    fn next_power_of_two_rounds_up() {
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(5), 8);
        assert_eq!(next_power_of_two(8), 8);
    }

    #[test]
    fn nodes_iterates_every_index() {
        let t = tree(4);
        let all: Vec<usize> = t.nodes().collect();
        assert_eq!(all, vec![1, 2, 3, 4, 5, 6, 7]);
    }
}
