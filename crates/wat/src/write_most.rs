//! Randomized *write-most* of §3.2.
//!
//! Write-most is the approximate cousin of write-all: each processor
//! writes `rounds` uniformly random cells of the destination region, so
//! after all processors finish the region is filled with high probability
//! (the paper uses `rounds = log P` to fill the fat tree). It is trivially
//! wait-free — a fixed number of operations per processor, no coordination
//! — which is exactly why the paper prefers it to the non-wait-free binary
//! broadcast used by Gibbons et al.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pram::{Memory, Op, OpResult, Pid, Process, Region, Word};

/// Where the value written to a destination cell comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// A constant value (plain approximate write-all).
    Const(Word),
    /// Read this shared-memory address, then write the value read.
    Cell(pram::Addr),
}

/// One processor of the write-most scatter: `rounds` iterations of "pick a
/// random destination cell, fetch its value per `source_of`, write it".
pub struct WriteMostProcess {
    dst: Region,
    source_of: Box<dyn Fn(usize) -> Source + Send>,
    rounds: usize,
    rng: StdRng,
    state: St,
    dst_index: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    Pick { remaining: usize },
    AwaitRead { remaining: usize },
    AwaitWrite { remaining: usize },
}

impl WriteMostProcess {
    /// Creates the scatter process for `pid`: `rounds` random cells of
    /// `dst`, values determined by `source_of(dst_index)`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is empty or `rounds` is zero.
    pub fn new(
        dst: Region,
        rounds: usize,
        pid: Pid,
        seed: u64,
        source_of: impl Fn(usize) -> Source + Send + 'static,
    ) -> Self {
        assert!(!dst.is_empty(), "destination region must be non-empty");
        assert!(rounds > 0, "need at least one round");
        WriteMostProcess {
            dst,
            source_of: Box::new(source_of),
            rounds,
            rng: StdRng::seed_from_u64(
                seed ^ (pid.index() as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            ),
            state: St::Pick { remaining: 0 },
            dst_index: 0,
        }
    }

    /// Fraction of `dst` cells left unwritten (still equal to `probe`),
    /// for measuring how "most" the write-most achieved.
    pub fn unfilled_fraction(memory: &Memory, dst: Region, empty_value: Word) -> f64 {
        let missing = dst
            .range()
            .filter(|&addr| memory.read(addr) == empty_value)
            .count();
        missing as f64 / dst.len() as f64
    }
}

impl Process for WriteMostProcess {
    fn step(&mut self, mut last: Option<OpResult>) -> Op {
        loop {
            match self.state {
                St::Pick { remaining: 0 } => {
                    // First entry initializes the counter; afterwards 0
                    // remaining means all rounds done.
                    if self.rounds == 0 {
                        return Op::Halt;
                    }
                    let remaining = self.rounds;
                    self.rounds = 0; // consumed into the state machine
                    self.state = St::Pick { remaining };
                }
                St::Pick { remaining } => {
                    self.dst_index = self.rng.gen_range(0..self.dst.len());
                    match (self.source_of)(self.dst_index) {
                        Source::Const(v) => {
                            self.state = St::AwaitWrite {
                                remaining: remaining - 1,
                            };
                            return Op::Write(self.dst.at(self.dst_index), v);
                        }
                        Source::Cell(addr) => {
                            self.state = St::AwaitRead {
                                remaining: remaining - 1,
                            };
                            return Op::Read(addr);
                        }
                    }
                }
                St::AwaitRead { remaining } => {
                    let v = last.take().expect("source read pending").read_value();
                    self.state = St::AwaitWrite { remaining };
                    return Op::Write(self.dst.at(self.dst_index), v);
                }
                St::AwaitWrite { remaining } => {
                    last.take();
                    if remaining == 0 {
                        return Op::Halt;
                    }
                    self.state = St::Pick { remaining };
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "write-most"
    }
}

impl std::fmt::Debug for WriteMostProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteMostProcess")
            .field("dst", &self.dst)
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::{Machine, MemoryLayout, SyncScheduler};

    #[test]
    fn const_scatter_fills_most_cells() {
        let p = 64;
        let mut layout = MemoryLayout::new();
        let dst = layout.region(p);
        let mut machine = Machine::with_seed(layout.total(), 8);
        let rounds = (p as f64).log2() as usize * 2; // 2 log P rounds
        for i in 0..p {
            machine.add_process(Box::new(WriteMostProcess::new(
                dst,
                rounds,
                Pid::new(i),
                9,
                |_| Source::Const(1),
            )));
        }
        machine.run(&mut SyncScheduler, 100_000).unwrap();
        let unfilled = WriteMostProcess::unfilled_fraction(machine.memory(), dst, 0);
        assert!(
            unfilled < 0.05,
            "write-most left {unfilled} of cells unwritten"
        );
    }

    #[test]
    fn cell_source_copies_from_source_region() {
        let mut layout = MemoryLayout::new();
        let src = layout.region(8);
        let dst = layout.region(8);
        let mut machine = Machine::with_seed(layout.total(), 3);
        machine
            .memory_mut()
            .load(src.base(), &[10, 20, 30, 40, 50, 60, 70, 80]);
        for i in 0..8 {
            machine.add_process(Box::new(WriteMostProcess::new(
                dst,
                16,
                Pid::new(i),
                4,
                move |j| Source::Cell(src.at(j)),
            )));
        }
        machine.run(&mut SyncScheduler, 100_000).unwrap();
        for j in 0..8 {
            let v = machine.memory().read(dst.at(j));
            assert!(
                v == 0 || v == ((j as Word + 1) * 10),
                "cell {j} holds {v}, expected 0 or {}",
                (j + 1) * 10
            );
        }
    }

    #[test]
    fn runs_in_bounded_steps_per_processor() {
        // Write-most is deterministic-time wait-free: each round is at
        // most 2 memory ops, so rounds * 2 + O(1) steps per processor.
        let mut layout = MemoryLayout::new();
        let dst = layout.region(32);
        let mut machine = Machine::new(layout.total());
        machine.add_process(Box::new(WriteMostProcess::new(
            dst,
            10,
            Pid::new(0),
            0,
            |_| Source::Const(1),
        )));
        let report = machine.run(&mut SyncScheduler, 1000).unwrap();
        assert!(report.metrics.steps_per_process[0] <= 2 * 10 + 2);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let mut layout = MemoryLayout::new();
        let dst = layout.region(4);
        WriteMostProcess::new(dst, 0, Pid::new(0), 0, |_| Source::Const(1));
    }
}
