//! Lock-based parallel Quicksort — the non-wait-free strawman.
//!
//! A conventional parallel Quicksort: a shared work deque of segments
//! protected by a mutex, workers popping segments, partitioning, and
//! pushing halves back. Throughput is fine; the failure behaviour is the
//! point of contrast with the wait-free sort. A thread that stalls (or
//! dies) *while holding the lock* stalls every other worker — the
//! scenario [`LockedParallelSorter::sort_with_stall`] makes measurable —
//! whereas the wait-free algorithm's survivors are oblivious to such
//! casualties.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

/// Below this segment length workers sort locally instead of splitting.
const SPLIT_CUTOFF: usize = 1024;

/// Work-queue parallel Quicksort over `u64` keys.
///
/// # Examples
///
/// ```
/// use baselines::LockedParallelSorter;
///
/// let sorted = LockedParallelSorter::new(2).sort(&[9, 1, 5, 3]);
/// assert_eq!(sorted, vec![1, 3, 5, 9]);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct LockedParallelSorter {
    threads: usize,
}

/// A segment of the array still to be sorted, as an index range.
type Segment = (usize, usize);

struct Queue {
    segments: Mutex<Vec<Segment>>,
    /// Number of elements not yet inside a fully-sorted segment.
    outstanding: AtomicUsize,
}

impl LockedParallelSorter {
    /// Creates a sorter with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        LockedParallelSorter { threads }
    }

    /// Sorts `keys` into a new vector.
    pub fn sort(&self, keys: &[u64]) -> Vec<u64> {
        self.sort_inner(keys, None)
    }

    /// Sorts while worker 0, once, holds the queue lock for `stall` —
    /// modelling a page fault (or death) inside a critical section. The
    /// sort still finishes (the lock is released afterwards), but the
    /// stall serializes every other worker behind it; benches measure
    /// the cost.
    pub fn sort_with_stall(&self, keys: &[u64], stall: Duration) -> Vec<u64> {
        self.sort_inner(keys, Some(stall))
    }

    fn sort_inner(&self, keys: &[u64], stall: Option<Duration>) -> Vec<u64> {
        let n = keys.len();
        if n < 2 {
            return keys.to_vec();
        }
        // Each worker owns disjoint segments at any moment, so the array
        // is shared as per-cell atomics (no unsafe, tolerable overhead —
        // identical storage to the wait-free competitor, keeping the
        // comparison fair).
        let data: Vec<AtomicUsize> = keys.iter().map(|&k| AtomicUsize::new(k as usize)).collect();
        let queue = Queue {
            segments: Mutex::new(vec![(0, n)]),
            outstanding: AtomicUsize::new(n),
        };
        crossbeam::thread::scope(|s| {
            for t in 0..self.threads {
                let data = &data;
                let queue = &queue;
                let my_stall = if t == 0 { stall } else { None };
                s.spawn(move |_| worker(data, queue, my_stall));
            }
        })
        .expect("workers do not panic");
        data.into_iter().map(|a| a.into_inner() as u64).collect()
    }
}

fn read(data: &[AtomicUsize], i: usize) -> usize {
    data[i].load(Ordering::Relaxed)
}

fn write(data: &[AtomicUsize], i: usize, v: usize) {
    data[i].store(v, Ordering::Relaxed);
}

fn swap_cells(data: &[AtomicUsize], i: usize, j: usize) {
    let a = read(data, i);
    let b = read(data, j);
    write(data, i, b);
    write(data, j, a);
}

fn worker(data: &[AtomicUsize], queue: &Queue, mut stall: Option<Duration>) {
    loop {
        if queue.outstanding.load(Ordering::Acquire) == 0 {
            return;
        }
        let seg = {
            let mut q = queue.segments.lock();
            if let Some(d) = stall.take() {
                // The critical-section stall: everyone else now spins on
                // an empty or unreachable queue until we wake up.
                std::thread::sleep(d);
            }
            q.pop()
        };
        let Some((lo, hi)) = seg else {
            std::thread::yield_now();
            continue;
        };
        let len = hi - lo;
        if len <= SPLIT_CUTOFF {
            // Sort locally: copy out, sort, copy back.
            let mut local: Vec<usize> = (lo..hi).map(|i| read(data, i)).collect();
            local.sort_unstable();
            for (off, v) in local.into_iter().enumerate() {
                write(data, lo + off, v);
            }
            queue.outstanding.fetch_sub(len, Ordering::AcqRel);
            continue;
        }
        // Partition around the middle element.
        let mid = lo + len / 2;
        swap_cells(data, mid, hi - 1);
        let pivot = read(data, hi - 1);
        let mut store = lo;
        for i in lo..hi - 1 {
            if read(data, i) < pivot {
                swap_cells(data, i, store);
                store += 1;
            }
        }
        swap_cells(data, store, hi - 1);
        // The pivot cell is final.
        queue.outstanding.fetch_sub(1, Ordering::AcqRel);
        let mut q = queue.segments.lock();
        if store > lo {
            q.push((lo, store));
        }
        if hi > store + 1 {
            q.push((store + 1, hi));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..1_000_000)).collect()
    }

    #[test]
    fn sorts_random_input() {
        let input = keys(50_000, 1);
        let mut expect = input.clone();
        expect.sort_unstable();
        assert_eq!(LockedParallelSorter::new(4).sort(&input), expect);
    }

    #[test]
    fn sorts_with_one_thread() {
        let input = keys(5_000, 2);
        let mut expect = input.clone();
        expect.sort_unstable();
        assert_eq!(LockedParallelSorter::new(1).sort(&input), expect);
    }

    #[test]
    fn sorts_tiny_and_duplicate_inputs() {
        let s = LockedParallelSorter::new(2);
        assert_eq!(s.sort(&[]), Vec::<u64>::new());
        assert_eq!(s.sort(&[1]), vec![1]);
        assert_eq!(s.sort(&[5, 5, 5, 1, 1]), vec![1, 1, 5, 5, 5]);
    }

    #[test]
    fn stall_delays_but_does_not_break() {
        let input = keys(20_000, 3);
        let mut expect = input.clone();
        expect.sort_unstable();
        let sorted = LockedParallelSorter::new(4).sort_with_stall(&input, Duration::from_millis(5));
        assert_eq!(sorted, expect);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        LockedParallelSorter::new(0);
    }
}
