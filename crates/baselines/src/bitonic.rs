//! Batcher's bitonic sorting network.
//!
//! §1.1 of the paper discusses fault-tolerant sorting built on Batcher's
//! network (Yen et al.) and the `O(log^3 N)` cost of making network sorts
//! wait-free via simulation. This module provides the network itself —
//! `O(log^2 N)` stages of disjoint comparators — with a sequential and a
//! barrier-parallel executor; the wait-free *simulated* executor lives in
//! [`crate::simulated`].

/// A compare-exchange gate on positions `(lo, hi)`: after firing,
/// `data[lo] <= data[hi]`.
pub type Comparator = (usize, usize);

/// A bitonic sorting network for a power-of-two input size: a sequence
/// of stages, each a set of *disjoint* comparators that may fire in
/// parallel.
///
/// # Examples
///
/// ```
/// use baselines::BitonicNetwork;
///
/// let net = BitonicNetwork::new(16);
/// assert_eq!(net.depth(), 10); // log(16) * (log(16) + 1) / 2
/// let mut data = vec![5, 3, 8, 1, 9, 2, 7, 4, 6, 0, 15, 11, 13, 10, 14, 12];
/// net.sort_sequential(&mut data);
/// assert!(data.windows(2).all(|w| w[0] <= w[1]));
/// ```
#[derive(Clone, Debug)]
pub struct BitonicNetwork {
    n: usize,
    stages: Vec<Vec<Comparator>>,
}

impl BitonicNetwork {
    /// Builds the network for inputs of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is zero.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "bitonic networks need power-of-two sizes"
        );
        let mut stages = Vec::new();
        // Standard iterative Batcher bitonic sort: k = block size,
        // j = comparison distance.
        let mut k = 2;
        while k <= n {
            let mut j = k / 2;
            while j >= 1 {
                let mut stage = Vec::with_capacity(n / 2);
                for i in 0..n {
                    let partner = i ^ j;
                    if partner > i {
                        // Ascending block if the k-bit of i is 0.
                        if i & k == 0 {
                            stage.push((i, partner));
                        } else {
                            stage.push((partner, i));
                        }
                    }
                }
                stages.push(stage);
                j /= 2;
            }
            k *= 2;
        }
        BitonicNetwork { n, stages }
    }

    /// Input size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The stages, outermost first.
    pub fn stages(&self) -> &[Vec<Comparator>] {
        &self.stages
    }

    /// Number of stages — `O(log^2 n)`.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Total number of comparators.
    pub fn size(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// Sorts `data` by firing every stage in sequence on one thread.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn sort_sequential<T: Ord>(&self, data: &mut [T]) {
        assert_eq!(data.len(), self.n, "input length mismatch");
        for stage in &self.stages {
            for &(lo, hi) in stage {
                if data[lo] > data[hi] {
                    data.swap(lo, hi);
                }
            }
        }
    }

    /// Sorts `data` with `threads` worker threads, one barrier per stage
    /// (scoped threads re-spawned per stage; the comparators of a stage
    /// are disjoint, so chunks may fire concurrently). This is the
    /// classic *synchronous* parallel network sort — correct only
    /// because every thread finishes a stage before any starts the next,
    /// which is exactly the synchrony assumption wait-freedom removes.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()` or `threads == 0`.
    pub fn sort_parallel<T: Ord + Sync>(&self, data: &mut [T], threads: usize) {
        assert_eq!(data.len(), self.n, "input length mismatch");
        assert!(threads > 0, "need at least one thread");
        if threads == 1 {
            self.sort_sequential(data);
            return;
        }
        for stage in &self.stages {
            // Chunk the data so each comparator's two endpoints land in
            // the same... they do not in general, so instead split the
            // *comparator list* and hand each worker disjoint index
            // pairs. Disjointness within a stage makes the split safe;
            // we realize it through a per-stage scatter buffer of swap
            // decisions to stay within safe Rust.
            let chunk = stage.len().div_ceil(threads);
            let decisions: Vec<Vec<(usize, usize)>> = crossbeam::thread::scope(|s| {
                let data = &*data;
                let handles: Vec<_> = stage
                    .chunks(chunk.max(1))
                    .map(|part| {
                        s.spawn(move |_| {
                            part.iter()
                                .copied()
                                .filter(|&(lo, hi)| data[lo] > data[hi])
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .expect("comparator threads do not panic");
            for part in decisions {
                for (lo, hi) in part {
                    data.swap(lo, hi);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn network_shape_matches_theory() {
        for k in 1..=6u32 {
            let n = 1usize << k;
            let net = BitonicNetwork::new(n);
            // Depth = k(k+1)/2 stages, each of n/2 comparators.
            assert_eq!(net.depth() as u32, k * (k + 1) / 2, "n={n}");
            assert!(net.stages().iter().all(|s| s.len() == n / 2));
            assert_eq!(net.size(), net.depth() * n / 2);
        }
    }

    #[test]
    fn stages_have_disjoint_endpoints() {
        let net = BitonicNetwork::new(32);
        for stage in net.stages() {
            let mut seen = [false; 32];
            for &(lo, hi) in stage {
                assert!(!seen[lo] && !seen[hi], "overlapping comparators");
                seen[lo] = true;
                seen[hi] = true;
            }
        }
    }

    #[test]
    fn sorts_exhaustive_zero_one_inputs() {
        // The 0-1 principle: a network sorts all inputs iff it sorts all
        // 0-1 inputs. Exhaustively verify n = 8.
        let net = BitonicNetwork::new(8);
        for bits in 0u32..256 {
            let mut v: Vec<u32> = (0..8).map(|i| (bits >> i) & 1).collect();
            net.sort_sequential(&mut v);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "failed on {bits:08b}");
        }
    }

    #[test]
    fn sorts_random_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        for k in [4u32, 6, 8] {
            let n = 1usize << k;
            let net = BitonicNetwork::new(n);
            let mut v: Vec<i64> = (0..n).map(|_| rng.gen_range(-500..500)).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            net.sort_sequential(&mut v);
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn parallel_executor_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 256;
        let net = BitonicNetwork::new(n);
        let v: Vec<i64> = (0..n).map(|_| rng.gen_range(0..10_000)).collect();
        let mut a = v.clone();
        let mut b = v;
        net.sort_sequential(&mut a);
        net.sort_parallel(&mut b, 4);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        BitonicNetwork::new(12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_length() {
        BitonicNetwork::new(8).sort_sequential(&mut [1, 2, 3]);
    }
}
