//! Sorting through a Herlihy-style wait-free *universal construction* —
//! the "straight-forward" approach §1.1 of the paper argues against.
//!
//! Herlihy's method makes any sequential object wait-free: processors
//! *announce* pending operations, agree (by CAS consensus) on the next
//! operation to apply, and *help* apply it — every active processor
//! redundantly executes the chosen operation on a fresh copy of the
//! object state. For a "sorted-list object" with `N` insertions this
//! costs `O(k · f)` per operation (`k` concurrent helpers, `f` =
//! object-copy cost), i.e. `Theta(N^2)` time serialized through the
//! object no matter how many processors participate — "this can be
//! detrimental to parallelism as often only one process performs all
//! pending work" (§1.1).
//!
//! Instructively, the wait-free object alone does **not** make the
//! *sort* wait-free: if the processor that owns an element crashes
//! before announcing it, the element is simply never inserted — exactly
//! the paper's observation that "one must still allocate processors to
//! values ... and make sure values aren't lost even if the processor
//! assigned to them fails". So, as the paper's `O(P N log N)` estimate
//! presupposes, element-announcing duty is itself distributed through a
//! Work Assignment Tree; duplicate announcements (the WAT may hand one
//! element to several processors) are deduplicated at apply time by the
//! deterministic version contents.
//!
//! Protocol per log slot `h` (helpers run it redundantly):
//! 1. pick a candidate token from the announce array (scan from
//!    `h mod P`), CAS it into `log[h]` — the slot's consensus;
//! 2. read version `h` (a length-prefixed list of `(key, element)`
//!    pairs), locally insert the winner's element *unless its element
//!    index is already present* (dedup), and write version `h + 1` —
//!    identical values from every helper, a benign race;
//! 3. CAS-clear the winner's announcement (ABA-guarded), CAS
//!    `head: h -> h + 1`.

use pram::{
    failure::FailurePlan, Addr, Machine, MachineError, MemoryLayout, Op, OpResult, Pid, Region,
    RunReport, Scheduler, SyncScheduler, Word,
};
use wat::{LeafWorker, Wat, WorkerOp};

/// Outcome of a universal-construction sort run.
#[derive(Clone, Debug)]
pub struct UniversalSortOutcome {
    /// The sorted keys (the final object version).
    pub sorted: Vec<Word>,
    /// Machine metrics.
    pub report: RunReport,
    /// Log slots consumed (≥ N; > N means duplicated announcements).
    pub operations_applied: usize,
}

/// The universal-construction sorter.
///
/// # Examples
///
/// ```
/// use baselines::UniversalSorter;
///
/// let outcome = UniversalSorter::new(4).sort(&[3, 1, 2])?;
/// assert_eq!(outcome.sorted, vec![1, 2, 3]);
/// // Helping is redundant work: operations applied >= N.
/// assert!(outcome.operations_applied >= 3);
/// # Ok::<(), pram::MachineError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct UniversalSorter {
    /// Number of simulated processors (capped at 64 — the construction's
    /// memory is `O(P · N^2)` because every duplicated announcement may
    /// need its own object version).
    pub nprocs: usize,
    /// Arbitration seed.
    pub seed: u64,
    /// Cycle budget; `None` derives one (`Theta(N^2)` runs need room).
    pub max_cycles: Option<u64>,
}

impl UniversalSorter {
    /// Creates a sorter with `nprocs` simulated processors.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is zero or exceeds 64.
    pub fn new(nprocs: usize) -> Self {
        assert!(nprocs > 0, "need at least one processor");
        assert!(
            nprocs <= 64,
            "universal construction capped at 64 processors"
        );
        UniversalSorter {
            nprocs,
            seed: 0x5eed,
            max_cycles: None,
        }
    }

    /// Sorts on a faultless synchronous PRAM.
    ///
    /// # Errors
    ///
    /// Returns the machine error if the cycle budget is exhausted.
    pub fn sort(&self, keys: &[Word]) -> Result<UniversalSortOutcome, MachineError> {
        self.sort_under(keys, &mut SyncScheduler, &FailurePlan::new())
    }

    /// Sorts under an arbitrary scheduler and failure plan; thanks to the
    /// WAT-distributed announcing duty, the whole sort (not just each
    /// object operation) is wait-free.
    ///
    /// # Errors
    ///
    /// Returns the machine error if the cycle budget is exhausted.
    pub fn sort_under(
        &self,
        keys: &[Word],
        scheduler: &mut dyn Scheduler,
        failures: &FailurePlan,
    ) -> Result<UniversalSortOutcome, MachineError> {
        let n = keys.len();
        if n == 0 {
            return Ok(UniversalSortOutcome {
                sorted: Vec::new(),
                report: Machine::new(0).report(),
                operations_applied: 0,
            });
        }
        let p = self.nprocs.min(n).max(1);
        let mut memlayout = MemoryLayout::new();
        // Worst-case log length: every processor may execute every WAT
        // leaf once (Corollary 2.2), each posting one token.
        let slots = p * n.next_power_of_two() + 1;
        let shared = SharedLayout::layout(&mut memlayout, n, p, slots);
        let announce_wat = Wat::layout(&mut memlayout, n);
        let mut machine = Machine::with_seed(memlayout.total(), self.seed);
        machine.memory_mut().load(shared.input.base(), keys);
        for proc in announce_wat.processes(p, |pid| AnnounceHelpWorker::new(shared, pid, p)) {
            machine.add_process(proc);
        }
        let budget = self
            .max_cycles
            .unwrap_or_else(|| 1_000_000 + 1024 * (n as u64) * (n as u64));
        let report = machine.run_with_failures(scheduler, failures, budget)?;
        let head = machine.memory().read(shared.head.at(0)) as usize;
        let len = machine.memory().read(shared.version_len(head)) as usize;
        debug_assert_eq!(len, n, "final version must contain all elements");
        let sorted = (0..len)
            .map(|i| machine.memory().read(shared.version_entry(head, i).0))
            .collect();
        Ok(UniversalSortOutcome {
            sorted,
            report,
            operations_applied: head,
        })
    }
}

/// Shared-memory plan. Version `v` (`0 <= v <= slots`) occupies
/// `1 + 2n` cells: a length header followed by `(key, element)` pairs.
#[derive(Clone, Copy, Debug)]
struct SharedLayout {
    n: usize,
    input: Region,
    announce: Region,
    log: Region,
    head: Region,
    versions: Region,
}

impl SharedLayout {
    fn layout(l: &mut MemoryLayout, n: usize, p: usize, slots: usize) -> Self {
        SharedLayout {
            n,
            input: l.region(n),
            announce: l.region(p),
            log: l.region(slots),
            head: l.region(1),
            versions: l.region((slots + 1) * (1 + 2 * n)),
        }
    }

    fn version_len(&self, v: usize) -> Addr {
        self.versions.at(v * (1 + 2 * self.n))
    }

    /// `(key cell, element cell)` of entry `i` of version `v`.
    fn version_entry(&self, v: usize, i: usize) -> (Addr, Addr) {
        let base = v * (1 + 2 * self.n) + 1 + 2 * i;
        (self.versions.at(base), self.versions.at(base + 1))
    }
}

/// Encodes an announcement token `(pid, element)` as a non-zero word.
fn token(pid: usize, element: usize, p: usize) -> Word {
    (element * p + pid + 1) as Word
}

/// Decodes a token back to `(pid, element)`.
fn untoken(t: Word, p: usize) -> (usize, usize) {
    let raw = (t - 1) as usize;
    (raw % p, raw / p)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    PostToken,
    AwaitPost,
    CheckMine,
    AwaitMine,
    ReadHead,
    AwaitHead,
    AwaitScan,
    AwaitLogCheck,
    AwaitLogCas,
    AwaitElem,
    AwaitVersionLen,
    AwaitVersionKey,
    AwaitVersionIdx,
    WriteVersion,
    AwaitVersionWrite,
    AwaitLenWrite,
    AwaitAnnounceClear,
    AwaitHeadCas,
    Finished,
}

/// WAT leaf worker: job `j` = "announce element `j` and help the object
/// until the announcement is consumed".
#[derive(Debug)]
struct AnnounceHelpWorker {
    shared: SharedLayout,
    pid: Pid,
    p: usize,
    state: St,
    element: usize,
    my_token: Word,
    head: usize,
    scan_offset: usize,
    winner: Word,
    elem_key: Word,
    read_i: usize,
    write_i: usize,
    version_len: usize,
    pending_key: Word,
    /// `(key, element)` pairs of the version being built.
    buffer: Vec<(Word, Word)>,
}

impl AnnounceHelpWorker {
    fn new(shared: SharedLayout, pid: Pid, p: usize) -> Self {
        AnnounceHelpWorker {
            shared,
            pid,
            p,
            state: St::Finished,
            element: 0,
            my_token: 0,
            head: 0,
            scan_offset: 0,
            winner: 0,
            elem_key: 0,
            read_i: 0,
            write_i: 0,
            version_len: 0,
            pending_key: 0,
            buffer: Vec::new(),
        }
    }

    /// After consensus on `self.winner`, start fetching its key.
    fn fetch_winner_elem(&mut self) -> WorkerOp {
        let (_, elem) = untoken(self.winner, self.p);
        self.state = St::AwaitElem;
        WorkerOp::Op(Op::Read(self.shared.input.at(elem)))
    }
}

impl LeafWorker for AnnounceHelpWorker {
    fn begin(&mut self, job: usize) {
        self.element = job;
        self.my_token = token(self.pid.index(), job, self.p);
        self.state = St::PostToken;
    }

    fn step(&mut self, mut last: Option<OpResult>) -> WorkerOp {
        loop {
            match self.state {
                St::PostToken => {
                    self.state = St::AwaitPost;
                    return WorkerOp::Op(Op::Write(
                        self.shared.announce.at(self.pid.index()),
                        self.my_token,
                    ));
                }
                St::AwaitPost => {
                    last.take();
                    self.state = St::CheckMine;
                }
                St::CheckMine => {
                    self.state = St::AwaitMine;
                    return WorkerOp::Op(Op::Read(self.shared.announce.at(self.pid.index())));
                }
                St::AwaitMine => {
                    let v = last.take().expect("mine pending").read_value();
                    if v != self.my_token {
                        // Consumed (and possibly replaced by nothing):
                        // this job's element is in the object. Done.
                        self.state = St::Finished;
                        return WorkerOp::Done;
                    }
                    self.state = St::ReadHead;
                }
                St::ReadHead => {
                    self.state = St::AwaitHead;
                    return WorkerOp::Op(Op::Read(self.shared.head.at(0)));
                }
                St::AwaitHead => {
                    self.head = last.take().expect("head pending").read_value() as usize;
                    self.scan_offset = 0;
                    self.state = St::AwaitScan;
                    return WorkerOp::Op(Op::Read(self.shared.announce.at(self.head % self.p)));
                }
                St::AwaitScan => {
                    let v = last.take().expect("scan pending").read_value();
                    if v != 0 {
                        self.state = St::AwaitLogCas;
                        return WorkerOp::Op(Op::Cas {
                            addr: self.shared.log.at(self.head),
                            expected: 0,
                            new: v,
                        });
                    }
                    self.scan_offset += 1;
                    if self.scan_offset >= self.p {
                        // Nothing announced — but a chosen-but-unfinished
                        // slot may exist; help it if so.
                        self.state = St::AwaitLogCheck;
                        return WorkerOp::Op(Op::Read(self.shared.log.at(self.head)));
                    }
                    self.state = St::AwaitScan;
                    return WorkerOp::Op(Op::Read(
                        self.shared
                            .announce
                            .at((self.head + self.scan_offset) % self.p),
                    ));
                }
                St::AwaitLogCheck => {
                    let v = last.take().expect("log check pending").read_value();
                    if v == 0 {
                        self.state = St::CheckMine;
                        continue;
                    }
                    self.winner = v;
                    return self.fetch_winner_elem();
                }
                St::AwaitLogCas => {
                    let current = match last.take().expect("log cas pending") {
                        OpResult::Cas { current, .. } => current,
                        other => panic!("unexpected {other:?}"),
                    };
                    self.winner = current;
                    return self.fetch_winner_elem();
                }
                St::AwaitElem => {
                    self.elem_key = last.take().expect("elem pending").read_value();
                    self.buffer.clear();
                    self.read_i = 0;
                    self.state = St::AwaitVersionLen;
                    return WorkerOp::Op(Op::Read(self.shared.version_len(self.head)));
                }
                St::AwaitVersionLen => {
                    self.version_len =
                        last.take().expect("version len pending").read_value() as usize;
                    if self.version_len == 0 {
                        self.finish_buffer();
                        continue;
                    }
                    self.state = St::AwaitVersionKey;
                    return WorkerOp::Op(Op::Read(self.shared.version_entry(self.head, 0).0));
                }
                St::AwaitVersionKey => {
                    self.pending_key = last.take().expect("version key pending").read_value();
                    self.state = St::AwaitVersionIdx;
                    return WorkerOp::Op(Op::Read(
                        self.shared.version_entry(self.head, self.read_i).1,
                    ));
                }
                St::AwaitVersionIdx => {
                    let idx = last.take().expect("version idx pending").read_value();
                    self.buffer.push((self.pending_key, idx));
                    self.read_i += 1;
                    if self.read_i < self.version_len {
                        self.state = St::AwaitVersionKey;
                        return WorkerOp::Op(Op::Read(
                            self.shared.version_entry(self.head, self.read_i).0,
                        ));
                    }
                    self.finish_buffer();
                }
                St::WriteVersion => {
                    if self.write_i < self.buffer.len() {
                        let (key, _idx) = self.buffer[self.write_i];
                        let (key_cell, _) = self.shared.version_entry(self.head + 1, self.write_i);
                        self.state = St::AwaitVersionWrite;
                        return WorkerOp::Op(Op::Write(key_cell, key));
                    }
                    self.state = St::AwaitLenWrite;
                    return WorkerOp::Op(Op::Write(
                        self.shared.version_len(self.head + 1),
                        self.buffer.len() as Word,
                    ));
                }
                St::AwaitVersionWrite => {
                    last.take();
                    // Write the paired element index in the next cycle.
                    let (_, idx) = self.buffer[self.write_i];
                    let (_, idx_cell) = self.shared.version_entry(self.head + 1, self.write_i);
                    self.write_i += 1;
                    self.state = St::WriteVersion;
                    return WorkerOp::Op(Op::Write(idx_cell, idx));
                }
                St::AwaitLenWrite => {
                    last.take();
                    // Clear the consumed announcement, ABA-guarded.
                    let (wpid, _) = untoken(self.winner, self.p);
                    self.state = St::AwaitAnnounceClear;
                    return WorkerOp::Op(Op::Cas {
                        addr: self.shared.announce.at(wpid),
                        expected: self.winner,
                        new: 0,
                    });
                }
                St::AwaitAnnounceClear => {
                    last.take();
                    self.state = St::AwaitHeadCas;
                    return WorkerOp::Op(Op::Cas {
                        addr: self.shared.head.at(0),
                        expected: self.head as Word,
                        new: self.head as Word + 1,
                    });
                }
                St::AwaitHeadCas => {
                    last.take();
                    self.state = St::CheckMine;
                }
                St::Finished => return WorkerOp::Done,
            }
        }
    }
}

impl AnnounceHelpWorker {
    /// Inserts the winner's `(key, element)` into the buffered version —
    /// unless that element is already present (a duplicated announcement
    /// consumed twice) — and starts writing version `head + 1`.
    fn finish_buffer(&mut self) {
        let (_, elem) = untoken(self.winner, self.p);
        let already = self.buffer.iter().any(|&(_, e)| e as usize == elem);
        if !already {
            let entry = (self.elem_key, elem as Word);
            let pos = self
                .buffer
                .partition_point(|&(k, e)| (k, e) <= (entry.0, entry.1));
            self.buffer.insert(pos, entry);
        }
        self.write_i = 0;
        self.state = St::WriteVersion;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn keys(n: usize, seed: u64) -> Vec<Word> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-100..100)).collect()
    }

    fn check(n: usize, p: usize, seed: u64) {
        let input = keys(n, seed);
        let mut expect = input.clone();
        expect.sort_unstable();
        let out = UniversalSorter::new(p).sort(&input).unwrap();
        assert_eq!(out.sorted, expect, "n={n} p={p} seed={seed}");
        assert!(out.operations_applied >= n);
    }

    #[test]
    fn sorts_various_sizes_and_processor_counts() {
        for (n, p) in [(1, 1), (5, 1), (8, 2), (16, 4), (33, 5), (64, 8)] {
            check(n, p, 7);
        }
    }

    #[test]
    fn sorts_with_more_processors_than_elements() {
        check(6, 16, 3);
    }

    #[test]
    fn sorts_duplicate_keys() {
        let input = vec![5, 5, 5, 1, 1, 5];
        let mut expect = input.clone();
        expect.sort_unstable();
        let out = UniversalSorter::new(3).sort(&input).unwrap();
        assert_eq!(out.sorted, expect);
    }

    #[test]
    fn empty_input() {
        let out = UniversalSorter::new(4).sort(&[]).unwrap();
        assert!(out.sorted.is_empty());
    }

    #[test]
    fn token_roundtrip() {
        for pid in 0..7 {
            for elem in 0..11 {
                let t = token(pid, elem, 7);
                assert_ne!(t, 0);
                assert_eq!(untoken(t, 7), (pid, elem));
            }
        }
    }

    #[test]
    fn survives_crashes() {
        let input = keys(24, 5);
        let mut expect = input.clone();
        expect.sort_unstable();
        for seed in 0..3 {
            let plan = FailurePlan::random_crashes(6, 0.6, 2_000, seed);
            let out = UniversalSorter::new(6)
                .sort_under(&input, &mut SyncScheduler, &plan)
                .unwrap();
            assert_eq!(out.sorted, expect, "seed {seed}");
        }
    }

    #[test]
    fn quadratic_time_shape() {
        // The point of this baseline: doubling N roughly quadruples time
        // (object-copy cost), unlike the direct algorithm.
        let t = |n: usize| {
            UniversalSorter::new(8)
                .sort(&keys(n, 1))
                .unwrap()
                .report
                .metrics
                .cycles
        };
        let t32 = t(32);
        let t128 = t(128);
        assert!(
            (t128 as f64) > (t32 as f64) * 6.0,
            "expected ~quadratic growth: t(32)={t32}, t(128)={t128}"
        );
    }

    #[test]
    fn helping_means_all_processors_do_all_work() {
        // Work scales with P (every helper copies every version) — the
        // §1.1 objection made measurable.
        let ops = |p: usize| {
            UniversalSorter::new(p)
                .sort(&keys(48, 2))
                .unwrap()
                .report
                .metrics
                .total_ops
        };
        let w1 = ops(1);
        let w8 = ops(8);
        assert!(
            w8 > 4 * w1,
            "helping should multiply work: P=1 {w1} ops, P=8 {w8} ops"
        );
    }

    #[test]
    #[should_panic(expected = "capped at 64")]
    fn rejects_huge_processor_counts() {
        UniversalSorter::new(65);
    }
}
