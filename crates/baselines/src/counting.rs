//! Bitonic counting networks — the structures behind §1.2.
//!
//! The paper's contention model descends from the counting-network
//! literature it cites (Aiello–Venkatesan–Yung, Busch–Mavronicolas):
//! "much of the subsequent work using formal contention models has dealt
//! with amortized contention of counting networks". This module builds
//! the classic bitonic counting network `Bitonic[w]`
//! (Aspnes–Herlihy–Shavit) on the PRAM simulator so that the claim that
//! motivates the whole §3 exercise — *spreading accesses over many cells
//! beats hammering one* — can be measured on the same machine as the
//! sort (experiment E21).
//!
//! A *balancer* is a toggle cell: tokens entering it leave alternately on
//! its first and second output wire. A *counting network* is a wiring of
//! balancers with the **step property**: after any set of tokens has
//! passed through, the per-output-wire counts `c_0 >= c_1 >= ... >=
//! c_{w-1}` differ by at most one — so output wire order + a per-wire
//! local counter yields a shared counter whose hot cell is split `w`
//! ways.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pram::{
    failure::FailurePlan, Machine, MachineError, MemoryLayout, Op, OpResult, Process, Region,
    RunReport, Scheduler, Word,
};

/// One balancer: its two output wires, first-output first.
type Balancer = (usize, usize);

/// A column: a perfect matching of the `w` wires into balancers.
type Column = Vec<Balancer>;

/// The bitonic counting network `Bitonic[w]`.
#[derive(Clone, Debug)]
pub struct CountingNetwork {
    width: usize,
    columns: Vec<Column>,
    /// `output_order[j]` = the physical wire that is the network's `j`-th
    /// logical output (the recursion permutes outputs).
    output_order: Vec<usize>,
}

impl CountingNetwork {
    /// Builds `Bitonic[width]`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two or is < 2.
    pub fn new(width: usize) -> Self {
        assert!(
            width.is_power_of_two() && width >= 2,
            "counting networks need power-of-two width >= 2"
        );
        let wires: Vec<usize> = (0..width).collect();
        let (columns, output_order) = bitonic(&wires);
        CountingNetwork {
            width,
            columns,
            output_order,
        }
    }

    /// Network width (wires).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of balancer columns — `O(log^2 w)`.
    pub fn depth(&self) -> usize {
        self.columns.len()
    }

    /// Total balancers.
    pub fn size(&self) -> usize {
        self.columns.iter().map(Vec::len).sum()
    }

    /// The columns (each a perfect matching, first-output first).
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The logical output order over physical wires.
    pub fn output_order(&self) -> &[usize] {
        &self.output_order
    }

    /// Routes one token sequentially given mutable balancer states
    /// (toggle bits indexed `[column][balancer]`); returns the logical
    /// output index. Used by tests as the specification executable.
    pub fn route_sequential(&self, enter_wire: usize, states: &mut [Vec<bool>]) -> usize {
        let mut wire = enter_wire;
        for (c, column) in self.columns.iter().enumerate() {
            let (b, &(first, second)) = column
                .iter()
                .enumerate()
                .find(|(_, &(a, b))| a == wire || b == wire)
                .expect("every column is a perfect matching");
            let toggle = &mut states[c][b];
            wire = if !*toggle { first } else { second };
            *toggle = !*toggle;
        }
        self.output_order
            .iter()
            .position(|&w| w == wire)
            .expect("wire is an output")
    }
}

/// Recursive bitonic construction over a wire list; returns (columns,
/// output order).
fn bitonic(wires: &[usize]) -> (Vec<Column>, Vec<usize>) {
    if wires.len() == 1 {
        return (Vec::new(), wires.to_vec());
    }
    let half = wires.len() / 2;
    let (cols_a, out_a) = bitonic(&wires[..half]);
    let (cols_b, out_b) = bitonic(&wires[half..]);
    let mut columns = zip_columns(cols_a, cols_b);
    let (cols_m, out) = merger(&out_a, &out_b);
    columns.extend(cols_m);
    (columns, out)
}

/// The AHS merger `Merger[2k]` over two length-k sorted-output wire
/// lists.
fn merger(a: &[usize], b: &[usize]) -> (Vec<Column>, Vec<usize>) {
    if a.len() == 1 {
        return (vec![vec![(a[0], b[0])]], vec![a[0], b[0]]);
    }
    let a_even: Vec<usize> = a.iter().copied().step_by(2).collect();
    let a_odd: Vec<usize> = a.iter().copied().skip(1).step_by(2).collect();
    let b_even: Vec<usize> = b.iter().copied().step_by(2).collect();
    let b_odd: Vec<usize> = b.iter().copied().skip(1).step_by(2).collect();
    let (cols_0, z0) = merger(&a_even, &b_odd);
    let (cols_1, z1) = merger(&a_odd, &b_even);
    let mut columns = zip_columns(cols_0, cols_1);
    let final_column: Column = z0.iter().zip(&z1).map(|(&x, &y)| (x, y)).collect();
    let out = z0.iter().zip(&z1).flat_map(|(&x, &y)| [x, y]).collect();
    columns.push(final_column);
    (columns, out)
}

/// Merges two column sequences over disjoint wire sets into combined
/// perfect-matching columns (the sequences have equal length by
/// construction symmetry).
fn zip_columns(a: Vec<Column>, b: Vec<Column>) -> Vec<Column> {
    debug_assert_eq!(a.len(), b.len());
    a.into_iter()
        .zip(b)
        .map(|(mut ca, cb)| {
            ca.extend(cb);
            ca
        })
        .collect()
}

/// Outcome of a simulated counting run.
#[derive(Clone, Debug)]
pub struct CountingOutcome {
    /// Final per-logical-output-wire token counts (network mode) or a
    /// single-element vector (central-counter mode).
    pub counts: Vec<Word>,
    /// Machine metrics.
    pub report: RunReport,
}

/// How the shared counter is realized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterKind {
    /// A single cell everyone CAS-increments — `O(P)` contention.
    Central,
    /// Tokens traverse a counting network of the given width and bump a
    /// per-output-wire cell — contention split across balancers.
    Network {
        /// Network width (power of two, >= 2).
        width: usize,
    },
}

/// Runs `nprocs` simulated processors each pushing `tokens` increments
/// through the chosen counter realization.
///
/// # Errors
///
/// Returns the machine error if the cycle budget is exhausted.
///
/// # Panics
///
/// Panics if `nprocs` or `tokens` is zero.
pub fn count_with(
    kind: CounterKind,
    nprocs: usize,
    tokens: usize,
    seed: u64,
    scheduler: &mut dyn Scheduler,
) -> Result<CountingOutcome, MachineError> {
    assert!(nprocs > 0 && tokens > 0, "need processors and tokens");
    let mut layout = MemoryLayout::new();
    match kind {
        CounterKind::Central => {
            let cell = layout.region(1);
            let mut machine = Machine::with_seed(layout.total(), seed);
            for i in 0..nprocs {
                machine.add_process(Box::new(CentralProcess {
                    cell,
                    remaining: tokens,
                    state: CentralSt::Read,
                    seen: 0,
                }));
                let _ = i;
            }
            let report = machine.run_with_failures(scheduler, &FailurePlan::new(), 100_000_000)?;
            let counts = vec![machine.memory().read(cell.at(0))];
            Ok(CountingOutcome { counts, report })
        }
        CounterKind::Network { width } => {
            let network = std::sync::Arc::new(CountingNetwork::new(width));
            // One cell per balancer per column (toggle bits), plus one
            // counter per output wire.
            let balancer_cells: Vec<Region> = network
                .columns()
                .iter()
                .map(|c| layout.region(c.len()))
                .collect();
            let counters = layout.region(width);
            let mut machine = Machine::with_seed(layout.total(), seed);
            for i in 0..nprocs {
                machine.add_process(Box::new(NetworkProcess {
                    network: std::sync::Arc::clone(&network),
                    balancer_cells: balancer_cells.clone(),
                    counters,
                    rng: StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9)),
                    remaining: tokens,
                    state: NetSt::NewToken,
                    wire: 0,
                    column: 0,
                    seen: 0,
                }));
            }
            let report = machine.run_with_failures(scheduler, &FailurePlan::new(), 100_000_000)?;
            let counts = (0..width)
                .map(|j| machine.memory().read(counters.at(j)))
                .collect();
            Ok(CountingOutcome { counts, report })
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CentralSt {
    Read,
    AwaitRead,
    AwaitCas,
}

/// `tokens` fetch-and-increments on one cell via read + CAS retry.
#[derive(Debug)]
struct CentralProcess {
    cell: Region,
    remaining: usize,
    state: CentralSt,
    seen: Word,
}

impl Process for CentralProcess {
    fn step(&mut self, mut last: Option<OpResult>) -> Op {
        loop {
            match self.state {
                CentralSt::Read => {
                    if self.remaining == 0 {
                        return Op::Halt;
                    }
                    self.state = CentralSt::AwaitRead;
                    return Op::Read(self.cell.at(0));
                }
                CentralSt::AwaitRead => {
                    self.seen = last.take().expect("read pending").read_value();
                    self.state = CentralSt::AwaitCas;
                    return Op::Cas {
                        addr: self.cell.at(0),
                        expected: self.seen,
                        new: self.seen + 1,
                    };
                }
                CentralSt::AwaitCas => {
                    let won = last.take().expect("cas pending").cas_won();
                    if won {
                        self.remaining -= 1;
                    }
                    self.state = CentralSt::Read;
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "central-counter"
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NetSt {
    NewToken,
    ReadBalancer,
    AwaitBalancer,
    AwaitToggle,
    ReadCounter,
    AwaitCounter,
    AwaitCounterCas,
}

/// Pushes `tokens` through the network, bumping output-wire counters.
struct NetworkProcess {
    network: std::sync::Arc<CountingNetwork>,
    balancer_cells: Vec<Region>,
    counters: Region,
    rng: StdRng,
    remaining: usize,
    state: NetSt,
    wire: usize,
    column: usize,
    seen: Word,
}

impl NetworkProcess {
    /// The balancer index and pair at the current (column, wire).
    fn here(&self) -> (usize, Balancer) {
        let column = &self.network.columns()[self.column];
        column
            .iter()
            .enumerate()
            .find(|(_, &(a, b))| a == self.wire || b == self.wire)
            .map(|(i, &pair)| (i, pair))
            .expect("perfect matching")
    }
}

impl Process for NetworkProcess {
    fn step(&mut self, mut last: Option<OpResult>) -> Op {
        loop {
            match self.state {
                NetSt::NewToken => {
                    if self.remaining == 0 {
                        return Op::Halt;
                    }
                    self.wire = self.rng.gen_range(0..self.network.width());
                    self.column = 0;
                    self.state = NetSt::ReadBalancer;
                }
                NetSt::ReadBalancer => {
                    if self.column == self.network.depth() {
                        self.state = NetSt::ReadCounter;
                        continue;
                    }
                    let (b, _) = self.here();
                    self.state = NetSt::AwaitBalancer;
                    return Op::Read(self.balancer_cells[self.column].at(b));
                }
                NetSt::AwaitBalancer => {
                    self.seen = last.take().expect("balancer read pending").read_value();
                    let (b, _) = self.here();
                    self.state = NetSt::AwaitToggle;
                    return Op::Cas {
                        addr: self.balancer_cells[self.column].at(b),
                        expected: self.seen,
                        new: 1 - self.seen,
                    };
                }
                NetSt::AwaitToggle => {
                    let won = last.take().expect("toggle pending").cas_won();
                    if !won {
                        // Lost the toggle race; re-read and retry.
                        self.state = NetSt::ReadBalancer;
                        continue;
                    }
                    let (_, (first, second)) = self.here();
                    self.wire = if self.seen == 0 { first } else { second };
                    self.column += 1;
                    self.state = NetSt::ReadBalancer;
                }
                NetSt::ReadCounter => {
                    let j = self
                        .network
                        .output_order()
                        .iter()
                        .position(|&w| w == self.wire)
                        .expect("output wire");
                    self.wire = j; // reuse as the counter slot
                    self.state = NetSt::AwaitCounter;
                    return Op::Read(self.counters.at(j));
                }
                NetSt::AwaitCounter => {
                    self.seen = last.take().expect("counter read pending").read_value();
                    self.state = NetSt::AwaitCounterCas;
                    return Op::Cas {
                        addr: self.counters.at(self.wire),
                        expected: self.seen,
                        new: self.seen + 1,
                    };
                }
                NetSt::AwaitCounterCas => {
                    let won = last.take().expect("counter cas pending").cas_won();
                    if won {
                        self.remaining -= 1;
                        self.state = NetSt::NewToken;
                    } else {
                        self.state = NetSt::AwaitCounter;
                        // Re-read before retrying.
                        let j = self.wire;
                        return Op::Read(self.counters.at(j));
                    }
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "counting-network"
    }
}

impl std::fmt::Debug for NetworkProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkProcess")
            .field("state", &self.state)
            .field("remaining", &self.remaining)
            .finish_non_exhaustive()
    }
}

/// Checks the step property: sorted descending, adjacent counts differ by
/// at most one, and the first/last differ by at most one.
pub fn has_step_property(counts: &[Word]) -> bool {
    let mut sorted = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    sorted == counts
        && counts
            .first()
            .zip(counts.last())
            .is_none_or(|(f, l)| f - l <= 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::{RandomScheduler, SingleStepScheduler, SyncScheduler};

    #[test]
    fn network_shape() {
        for k in 1..=4u32 {
            let w = 1usize << k;
            let net = CountingNetwork::new(w);
            assert_eq!(net.width(), w);
            assert_eq!(net.depth() as u32, k * (k + 1) / 2, "w={w}");
            assert!(net.columns().iter().all(|c| c.len() == w / 2));
            let mut order = net.output_order().to_vec();
            order.sort_unstable();
            assert_eq!(order, (0..w).collect::<Vec<_>>());
        }
    }

    #[test]
    fn columns_are_perfect_matchings() {
        let net = CountingNetwork::new(16);
        for column in net.columns() {
            let mut seen = [false; 16];
            for &(a, b) in column {
                assert!(!seen[a] && !seen[b]);
                seen[a] = true;
                seen[b] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn sequential_routing_counts_perfectly() {
        // The executable specification: tokens fed one at a time exit on
        // consecutive logical outputs (mod w) — the defining behaviour of
        // a counting network in the quiescent case.
        for w in [2usize, 4, 8, 16] {
            let net = CountingNetwork::new(w);
            let mut states: Vec<Vec<bool>> =
                net.columns().iter().map(|c| vec![false; c.len()]).collect();
            let mut counts = vec![0u32; w];
            for t in 0..3 * w {
                // Entering wire is arbitrary; use a rotating choice.
                let out = net.route_sequential(t % w, &mut states);
                counts[out] += 1;
            }
            // Exactly 3 tokens per output.
            assert!(counts.iter().all(|&c| c == 3), "w={w}: {counts:?}");
        }
    }

    #[test]
    fn step_property_checker() {
        assert!(has_step_property(&[3, 3, 2, 2]));
        assert!(has_step_property(&[1, 1, 1, 1]));
        assert!(!has_step_property(&[3, 1, 1, 1]));
        assert!(!has_step_property(&[1, 2, 1, 1]));
        assert!(has_step_property(&[]));
    }

    #[test]
    fn concurrent_counting_has_step_property() {
        for seed in 0..5 {
            let out = count_with(
                CounterKind::Network { width: 8 },
                16,
                4,
                seed,
                &mut SyncScheduler,
            )
            .unwrap();
            assert_eq!(out.counts.iter().sum::<Word>(), 64, "all tokens counted");
            let mut sorted = out.counts.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            assert!(
                sorted.first().unwrap() - sorted.last().unwrap() <= 1,
                "seed {seed}: step property violated: {:?}",
                out.counts
            );
        }
    }

    #[test]
    fn counting_correct_under_asynchrony() {
        let out = count_with(
            CounterKind::Network { width: 4 },
            8,
            3,
            1,
            &mut RandomScheduler::new(3, 0.4),
        )
        .unwrap();
        assert_eq!(out.counts.iter().sum::<Word>(), 24);
        let out = count_with(
            CounterKind::Central,
            8,
            3,
            1,
            &mut SingleStepScheduler::new(),
        )
        .unwrap();
        assert_eq!(out.counts, vec![24]);
    }

    #[test]
    fn central_counter_counts_exactly() {
        let out = count_with(CounterKind::Central, 12, 5, 2, &mut SyncScheduler).unwrap();
        assert_eq!(out.counts, vec![60]);
        // Everyone hammers one cell: contention ~ P.
        assert!(out.report.metrics.max_contention >= 10);
    }

    #[test]
    fn network_splits_contention() {
        let central = count_with(CounterKind::Central, 32, 4, 3, &mut SyncScheduler).unwrap();
        let network = count_with(
            CounterKind::Network { width: 16 },
            32,
            4,
            3,
            &mut SyncScheduler,
        )
        .unwrap();
        assert!(
            network.report.metrics.max_contention * 2 <= central.report.metrics.max_contention,
            "network {} vs central {}",
            network.report.metrics.max_contention,
            central.report.metrics.max_contention
        );
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_bad_width() {
        CountingNetwork::new(6);
    }
}
