//! Baseline sorting algorithms that *"A Wait-Free Sorting Algorithm"*
//! (Shavit, Upfal, Zemach; PODC 1997) compares against, for the
//! experiment harness:
//!
//! * [`seq`] — sequential Quicksort (Hoare) and `std` sort wrappers.
//! * [`bitonic`] — Batcher's bitonic sorting network (§1.1's
//!   fault-tolerant-network discussion), with sequential and
//!   barrier-parallel executors.
//! * [`simulated`] — the network executed stage-by-stage as certified
//!   write-all on the PRAM simulator: the `O(log^3 N)` "transformation
//!   technique" cost the paper's introduction cites, made concrete.
//! * [`locked`] — a conventional lock-based parallel Quicksort: fast, but
//!   a single stalled lock-holder stalls everyone, which is exactly what
//!   wait-freedom rules out.
//! * [`universal`] — sorting through a Herlihy-style universal
//!   construction (announce / consensus / help): wait-free but paying
//!   the `O(k * f)` helping cost of §1.1.
//! * [`counting`] — bitonic counting networks, the structures the
//!   paper's §1.2 contention model descends from, pitted against a
//!   central CAS counter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitonic;
pub mod counting;
pub mod locked;
pub mod seq;
pub mod simulated;
pub mod universal;

pub use bitonic::BitonicNetwork;
pub use counting::{count_with, CounterKind, CountingNetwork, CountingOutcome};
pub use locked::LockedParallelSorter;
pub use seq::quicksort;
pub use simulated::{NetworkSortOutcome, SimulatedNetworkSorter};
pub use universal::{UniversalSortOutcome, UniversalSorter};
