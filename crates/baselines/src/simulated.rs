//! The transformation baseline: a synchronous sorting network made
//! wait-free by simulating each PRAM step with certified write-all.
//!
//! §1.1 of the paper: "One might start with an `O(log N)` sorting
//! algorithm and apply a transformation technique which simulates a
//! reliable PRAM on a faulty one ... an increase in the complexity of
//! the sort to at least `O(log^3 N)`." This module realizes exactly that
//! recipe with the machinery we have: every stage of a Batcher bitonic
//! network (`O(log^2 N)` stages) is executed as a certified write-all
//! pass under its own Work Assignment Tree (`O(log N)` overhead), giving
//! a correct, wait-free — and asymptotically inferior — competitor for
//! experiment E10.

use std::sync::Arc;

use pram::{
    failure::FailurePlan, Machine, Op, OpResult, Pid, Process, Region, RunReport, Scheduler,
    SeqProcess, SyncScheduler, Word,
};
use wat::{LeafWorker, Wat, WatProcess, WorkerOp};

use crate::bitonic::{BitonicNetwork, Comparator};

/// One bitonic stage's compare-exchange gates as WAT leaf work.
///
/// Crash-idempotence: an in-place swap is *not* safe under failures — a
/// processor dying between its two writes duplicates one value and loses
/// another, and re-executors then read the half-updated pair. Reliable-
/// PRAM simulations therefore never update in place; each stage reads an
/// immutable input buffer and writes a fresh output buffer (`min` to the
/// low slot, `max` to the high slot, unconditionally), so any number of
/// re-executions — partial or duplicated — produce identical cells.
#[derive(Clone, Debug)]
struct ComparatorWorker {
    src: Region,
    dst: Region,
    stage: Arc<Vec<Comparator>>,
    state: St,
    lo: usize,
    hi: usize,
    lo_val: Word,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    ReadLo,
    AwaitLo,
    AwaitHi,
    AwaitWriteLo,
    AwaitWriteHi,
    Finished,
}

impl LeafWorker for ComparatorWorker {
    fn begin(&mut self, job: usize) {
        let (lo, hi) = self.stage[job];
        self.lo = lo;
        self.hi = hi;
        self.state = St::ReadLo;
    }

    fn step(&mut self, last: Option<OpResult>) -> WorkerOp {
        match self.state {
            St::ReadLo => {
                self.state = St::AwaitLo;
                WorkerOp::Op(Op::Read(self.src.at(self.lo)))
            }
            St::AwaitLo => {
                self.lo_val = last.expect("lo read pending").read_value();
                self.state = St::AwaitHi;
                WorkerOp::Op(Op::Read(self.src.at(self.hi)))
            }
            St::AwaitHi => {
                let hi_val = last.expect("hi read pending").read_value();
                let (small, large) = if self.lo_val > hi_val {
                    (hi_val, self.lo_val)
                } else {
                    (self.lo_val, hi_val)
                };
                self.lo_val = large;
                self.state = St::AwaitWriteLo;
                WorkerOp::Op(Op::Write(self.dst.at(self.lo), small))
            }
            St::AwaitWriteLo => {
                self.state = St::AwaitWriteHi;
                WorkerOp::Op(Op::Write(self.dst.at(self.hi), self.lo_val))
            }
            St::AwaitWriteHi => {
                self.state = St::Finished;
                WorkerOp::Done
            }
            St::Finished => WorkerOp::Done,
        }
    }
}

/// Outcome of a simulated-network sort run.
#[derive(Clone, Debug)]
pub struct NetworkSortOutcome {
    /// The sorted keys.
    pub sorted: Vec<Word>,
    /// Machine metrics.
    pub report: RunReport,
    /// Number of network stages executed (each one write-all pass).
    pub stages: usize,
}

/// The wait-free-by-simulation network sorter.
///
/// # Examples
///
/// ```
/// use baselines::SimulatedNetworkSorter;
///
/// // Input length must be a power of two (a network constraint).
/// let outcome = SimulatedNetworkSorter::new(4).sort(&[4, 2, 3, 1])?;
/// assert_eq!(outcome.sorted, vec![1, 2, 3, 4]);
/// assert_eq!(outcome.stages, 3); // log(4) * (log(4) + 1) / 2
/// # Ok::<(), pram::MachineError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SimulatedNetworkSorter {
    /// Number of simulated processors.
    pub nprocs: usize,
    /// Arbitration seed.
    pub seed: u64,
    /// Cycle budget; `None` derives one.
    pub max_cycles: Option<u64>,
}

impl SimulatedNetworkSorter {
    /// Creates a sorter with `nprocs` simulated processors.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is zero.
    pub fn new(nprocs: usize) -> Self {
        assert!(nprocs > 0, "need at least one processor");
        SimulatedNetworkSorter {
            nprocs,
            seed: 0x5eed,
            max_cycles: None,
        }
    }

    /// Sorts on a faultless synchronous PRAM.
    ///
    /// # Errors
    ///
    /// Returns the machine error if the cycle budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len()` is not a power of two (a bitonic-network
    /// constraint; pad inputs with `Word::MAX` if needed).
    pub fn sort(&self, keys: &[Word]) -> Result<NetworkSortOutcome, pram::MachineError> {
        self.sort_under(keys, &mut SyncScheduler, &FailurePlan::new())
    }

    /// Sorts under an arbitrary scheduler and failure plan; like the
    /// paper's algorithm this baseline is wait-free, just slower by a
    /// `log^2 N / log N` factor of bookkeeping.
    ///
    /// # Errors
    ///
    /// Returns the machine error if the cycle budget is exhausted.
    pub fn sort_under(
        &self,
        keys: &[Word],
        scheduler: &mut dyn Scheduler,
        failures: &FailurePlan,
    ) -> Result<NetworkSortOutcome, pram::MachineError> {
        let n = keys.len();
        if n < 2 {
            return Ok(NetworkSortOutcome {
                sorted: keys.to_vec(),
                report: Machine::new(0).report(),
                stages: 0,
            });
        }
        let network = BitonicNetwork::new(n);
        let stages: Vec<Arc<Vec<Comparator>>> = network
            .stages()
            .iter()
            .map(|s| Arc::new(s.clone()))
            .collect();

        let mut memlayout = pram::MemoryLayout::new();
        // Double-buffered data: stage s reads buffers[s % 2], writes
        // buffers[(s + 1) % 2] (see ComparatorWorker's idempotence note).
        let buffers = [memlayout.region(n), memlayout.region(n)];
        let wats: Vec<Wat> = stages
            .iter()
            .map(|s| Wat::layout(&mut memlayout, s.len()))
            .collect();
        let mut machine = Machine::with_seed(memlayout.total(), self.seed);
        machine.memory_mut().load(buffers[0].base(), keys);

        for i in 0..self.nprocs {
            let pid = Pid::new(i);
            let chain: Vec<Box<dyn Process>> = stages
                .iter()
                .zip(&wats)
                .enumerate()
                .map(|(s, (stage, wat))| {
                    Box::new(WatProcess::new(
                        *wat,
                        pid,
                        self.nprocs,
                        ComparatorWorker {
                            src: buffers[s % 2],
                            dst: buffers[(s + 1) % 2],
                            stage: Arc::clone(stage),
                            state: St::Finished,
                            lo: 0,
                            hi: 0,
                            lo_val: 0,
                        },
                    )) as Box<dyn Process>
                })
                .collect();
            machine.add_process(Box::new(SeqProcess::new(chain)));
        }
        let budget = self
            .max_cycles
            .unwrap_or_else(|| 100_000 + 64 * (n as u64) * (n as u64));
        let report = machine.run_with_failures(scheduler, failures, budget)?;
        let final_buffer = buffers[network.depth() % 2];
        Ok(NetworkSortOutcome {
            sorted: machine.memory().snapshot(final_buffer.range()),
            report,
            stages: network.depth(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn keys(n: usize, seed: u64) -> Vec<Word> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1000..1000)).collect()
    }

    #[test]
    fn sorts_with_p_equals_n() {
        let input = keys(64, 1);
        let mut expect = input.clone();
        expect.sort_unstable();
        let out = SimulatedNetworkSorter::new(64).sort(&input).unwrap();
        assert_eq!(out.sorted, expect);
        assert_eq!(out.stages, 21); // log=6: 6*7/2
    }

    #[test]
    fn sorts_with_few_processors() {
        let input = keys(128, 2);
        let mut expect = input.clone();
        expect.sort_unstable();
        let out = SimulatedNetworkSorter::new(4).sort(&input).unwrap();
        assert_eq!(out.sorted, expect);
    }

    #[test]
    fn survives_crashes() {
        let input = keys(32, 3);
        let mut expect = input.clone();
        expect.sort_unstable();
        for seed in 0..4 {
            let plan = FailurePlan::random_crashes(8, 0.7, 300, seed);
            let out = SimulatedNetworkSorter::new(8)
                .sort_under(&input, &mut SyncScheduler, &plan)
                .unwrap();
            assert_eq!(out.sorted, expect, "seed {seed}");
        }
    }

    #[test]
    fn log_cubed_shape_versus_direct_sort() {
        // With P = N, time should scale ~log^3 N: the ratio
        // t(4N)/t(N) stays near (log 4N / log N)^3, far below linear.
        let time = |n: usize| {
            SimulatedNetworkSorter::new(n)
                .sort(&keys(n, 7))
                .unwrap()
                .report
                .metrics
                .cycles
        };
        let t64 = time(64);
        let t256 = time(256);
        assert!(
            (t256 as f64) < (t64 as f64) * 4.0,
            "t(64)={t64}, t(256)={t256}"
        );
    }

    #[test]
    fn trivial_inputs() {
        let s = SimulatedNetworkSorter::new(2);
        assert_eq!(s.sort(&[]).unwrap().sorted, Vec::<Word>::new());
        assert_eq!(s.sort(&[5]).unwrap().sorted, vec![5]);
    }
}
