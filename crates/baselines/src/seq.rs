//! Sequential sorting baselines.
//!
//! The paper's algorithm is a parallel Quicksort (Hoare, via the pivot
//! tree); the natural sequential baseline is a classic in-place Quicksort
//! with median-of-three pivoting and an insertion-sort cutoff, plus
//! `std`'s sorts for reference.

/// Below this length, insertion sort beats partitioning.
const INSERTION_CUTOFF: usize = 24;

/// Sorts `data` in place with a classic recursive Quicksort
/// (median-of-three pivot, insertion-sort cutoff, recurse-smaller-side
/// first so stack depth stays `O(log n)`).
///
/// # Examples
///
/// ```
/// let mut v = vec![3, 1, 4, 1, 5, 9, 2, 6];
/// baselines::quicksort(&mut v);
/// assert_eq!(v, vec![1, 1, 2, 3, 4, 5, 6, 9]);
/// ```
pub fn quicksort<T: Ord>(data: &mut [T]) {
    if data.len() <= INSERTION_CUTOFF {
        insertion_sort(data);
        return;
    }
    let pivot = partition(data);
    let (lo, hi) = data.split_at_mut(pivot);
    let hi = &mut hi[1..];
    if lo.len() < hi.len() {
        quicksort(lo);
        quicksort(hi);
    } else {
        quicksort(hi);
        quicksort(lo);
    }
}

/// Simple insertion sort, used below the cutoff.
pub fn insertion_sort<T: Ord>(data: &mut [T]) {
    for i in 1..data.len() {
        let mut j = i;
        while j > 0 && data[j] < data[j - 1] {
            data.swap(j, j - 1);
            j -= 1;
        }
    }
}

/// Hoare-style partition around a median-of-three pivot; returns the
/// pivot's final index.
fn partition<T: Ord>(data: &mut [T]) -> usize {
    let len = data.len();
    let mid = len / 2;
    // Median-of-three: order first, middle, last; use the middle value.
    if data[mid] < data[0] {
        data.swap(mid, 0);
    }
    if data[len - 1] < data[0] {
        data.swap(len - 1, 0);
    }
    if data[len - 1] < data[mid] {
        data.swap(len - 1, mid);
    }
    // Park the pivot just before the end.
    data.swap(mid, len - 2);
    let pivot = len - 2;
    let mut store = 1;
    for i in 1..pivot {
        if data[i] < data[pivot] {
            data.swap(i, store);
            store += 1;
        }
    }
    data.swap(store, pivot);
    store
}

/// `slice::sort_unstable` wrapper, for symmetric bench naming.
pub fn std_sort_unstable<T: Ord>(data: &mut [T]) {
    data.sort_unstable();
}

/// `slice::sort` (stable) wrapper, for symmetric bench naming.
pub fn std_sort_stable<T: Ord>(data: &mut [T]) {
    data.sort();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check(mut v: Vec<i64>) {
        let mut expect = v.clone();
        expect.sort_unstable();
        quicksort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_small_cases() {
        check(vec![]);
        check(vec![1]);
        check(vec![2, 1]);
        check(vec![3, 3, 3]);
        check(vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn sorts_random_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [10usize, 100, 1000, 10_000] {
            check((0..n).map(|_| rng.gen_range(-1000..1000)).collect());
        }
    }

    #[test]
    fn sorts_adversarial_patterns() {
        check((0..5000).collect());
        check((0..5000).rev().collect());
        check((0..5000).map(|i| i % 7).collect());
        let mut organ: Vec<i64> = (0..2500).collect();
        organ.extend((0..2500).rev());
        check(organ);
    }

    #[test]
    fn insertion_sort_standalone() {
        let mut v = vec![4, 2, 5, 1, 3];
        insertion_sort(&mut v);
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn wrappers_sort() {
        let mut a = vec![3, 1, 2];
        std_sort_unstable(&mut a);
        assert_eq!(a, vec![1, 2, 3]);
        let mut b = vec![3, 1, 2];
        std_sort_stable(&mut b);
        assert_eq!(b, vec![1, 2, 3]);
    }
}
