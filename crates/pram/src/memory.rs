//! The shared-memory array of the simulated machine.

use crate::word::{Addr, Word};

/// Flat shared memory of [`Word`] cells, all initialized to zero.
///
/// The memory itself is sequential; concurrency semantics (which of several
/// same-cycle operations wins, how contention is charged) live in
/// [`crate::Machine`], which serializes each cycle's operations in an
/// arbitrary (seeded) order. `Memory` additionally supports *write-once
/// watching*: the sorting algorithm's correctness argument leans on the
/// fact that child pointers, once set, never change (Lemma 2.5), and tests
/// enable watching to turn any violation into a panic.
#[derive(Clone, Debug)]
pub struct Memory {
    cells: Vec<Word>,
    /// For each watched cell: `Some(addr)` ranges recorded as write-once.
    watched: Vec<(Addr, Addr)>,
    /// Cells (within watched ranges) that have been written a first time.
    written_once: Vec<bool>,
}

impl Memory {
    /// Creates a memory of `size` cells, all zero.
    pub fn new(size: usize) -> Self {
        Memory {
            cells: vec![0; size],
            watched: Vec::new(),
            written_once: vec![false; size],
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the memory has zero cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reads the cell at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds — simulated programs are expected
    /// to be memory-safe, and an out-of-range access is a bug in the
    /// algorithm under test, not a recoverable condition.
    pub fn read(&self, addr: Addr) -> Word {
        self.cells[addr]
    }

    /// Writes `value` to the cell at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds, or if the cell lies in a
    /// write-once watched range and is being overwritten with a *different*
    /// value after its first write.
    pub fn write(&mut self, addr: Addr, value: Word) {
        if self.is_watched(addr) && self.written_once[addr] && self.cells[addr] != value {
            panic!(
                "write-once violation at cell {addr}: {} -> {value}",
                self.cells[addr]
            );
        }
        self.cells[addr] = value;
        self.written_once[addr] = true;
    }

    /// Atomic compare-and-swap; returns `(won, value_after)`.
    pub fn compare_and_swap(&mut self, addr: Addr, expected: Word, new: Word) -> (bool, Word) {
        if self.cells[addr] == expected {
            self.write(addr, new);
            (true, new)
        } else {
            (false, self.cells[addr])
        }
    }

    /// Marks `range` as write-once: overwriting a cell in it with a
    /// different value panics. Used by tests to enforce the paper's
    /// "child pointers, once set, are never changed" invariant.
    pub fn watch_write_once(&mut self, range: std::ops::Range<Addr>) {
        assert!(range.end <= self.cells.len(), "watch range out of bounds");
        self.watched.push((range.start, range.end));
    }

    /// Copies a slice of memory out as a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn snapshot(&self, range: std::ops::Range<Addr>) -> Vec<Word> {
        self.cells[range].to_vec()
    }

    /// Bulk-initializes cells starting at `base` from `values`.
    ///
    /// Initialization happens "before time starts" and is exempt from
    /// write-once watching.
    ///
    /// # Panics
    ///
    /// Panics if the values do not fit.
    pub fn load(&mut self, base: Addr, values: &[Word]) {
        self.cells[base..base + values.len()].copy_from_slice(values);
    }

    fn is_watched(&self, addr: Addr) -> bool {
        self.watched.iter().any(|&(s, e)| addr >= s && addr < e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_memory_is_zeroed() {
        let m = Memory::new(8);
        assert_eq!(m.len(), 8);
        assert!(!m.is_empty());
        assert!((0..8).all(|a| m.read(a) == 0));
    }

    #[test]
    fn write_then_read() {
        let mut m = Memory::new(4);
        m.write(2, -7);
        assert_eq!(m.read(2), -7);
    }

    #[test]
    fn cas_succeeds_on_expected_value() {
        let mut m = Memory::new(2);
        let (won, cur) = m.compare_and_swap(0, 0, 5);
        assert!(won);
        assert_eq!(cur, 5);
        assert_eq!(m.read(0), 5);
    }

    #[test]
    fn cas_fails_on_mismatch_and_reports_current() {
        let mut m = Memory::new(2);
        m.write(0, 3);
        let (won, cur) = m.compare_and_swap(0, 0, 5);
        assert!(!won);
        assert_eq!(cur, 3);
        assert_eq!(m.read(0), 3);
    }

    #[test]
    fn write_once_watch_allows_idempotent_rewrite() {
        let mut m = Memory::new(4);
        m.watch_write_once(0..4);
        m.write(1, 9);
        m.write(1, 9); // same value: benign, permitted
        assert_eq!(m.read(1), 9);
    }

    #[test]
    #[should_panic(expected = "write-once violation")]
    fn write_once_watch_catches_mutation() {
        let mut m = Memory::new(4);
        m.watch_write_once(0..4);
        m.write(1, 9);
        m.write(1, 10);
    }

    #[test]
    fn load_is_exempt_from_watch() {
        let mut m = Memory::new(4);
        m.watch_write_once(0..4);
        m.load(0, &[1, 2, 3, 4]);
        assert_eq!(m.snapshot(0..4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn snapshot_copies_range() {
        let mut m = Memory::new(6);
        m.load(0, &[9, 8, 7, 6, 5, 4]);
        assert_eq!(m.snapshot(2..5), vec![7, 6, 5]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        Memory::new(1).read(1);
    }
}
