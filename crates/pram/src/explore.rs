//! Systematic schedule exploration: bounded-preemption enumeration,
//! guided random walks, and minimized replayable counterexamples.
//!
//! Every "w.h.p." lemma in the paper is a claim quantified over schedules,
//! and §4 leaves the *adversarial* scheduler as an open problem. Random
//! seeds sample average schedules; the tail cases where parallel sorting
//! guarantees break are specific interleavings that sampling rarely hits.
//! This module searches for them deterministically.
//!
//! The search space is the set of *serialized* schedules: exactly one
//! processor steps per machine cycle, so the machine's arbitrary-winner
//! arbitration never fires and a run is a pure function of its preemption
//! list. Serialization loses nothing for safety properties — any value a
//! processor can read under a parallel schedule it can also read under
//! some serialization of the same operations — and it is what makes a
//! schedule replayable from a short token.
//!
//! Two search modes, following context-bounded (CHESS-style) model
//! checking:
//!
//! * [`Explorer::exhaustive`] enumerates every serialized schedule with at
//!   most `k` preemptions of tiny shapes (N, P ≤ 4–6). Most concurrency
//!   bugs need very few preemptions, so a small bound covers the
//!   interesting space at a fraction of the full interleaving count.
//! * [`Explorer::guided_walk`] runs seeded random walks for shapes too
//!   large to enumerate, recording every coin flip as a preemption so any
//!   failing walk replays exactly.
//!
//! On a violation — a failed invariant, a failed final verdict, or an
//! exhausted step bound — the explorer shrinks the preemption list to a
//! local minimum and emits a [`ScheduleScript`] whose
//! [`ScheduleScript::to_token`] string reproduces the failure from
//! scratch, including any crash/revive events that were in play.

use std::fmt;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::failure::{FailureEvent, FailurePlan};
use crate::machine::Machine;
use crate::sched::{Scheduler, ScriptedScheduler, StepRecord};
use crate::word::Pid;

/// A serializable schedule: a preemption list plus the crash/revive
/// events composed into the run. Together with a deterministic
/// [`ExploreTarget`] this reproduces one execution exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleScript {
    label: String,
    preemptions: Vec<(u64, usize)>,
    failures: Vec<(u64, FailureEvent)>,
}

impl ScheduleScript {
    /// Creates an empty script (the default schedule: lowest-index
    /// processor runs to completion, then the next).
    ///
    /// # Panics
    ///
    /// Panics if `label` contains `;` or a newline — the token format
    /// reserves both.
    pub fn new(label: impl Into<String>) -> Self {
        let label = label.into();
        assert!(
            !label.contains(';') && !label.contains('\n'),
            "script labels must not contain ';' or newlines"
        );
        ScheduleScript {
            label,
            preemptions: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// Adds a preemption: at `cycle`, switch execution to processor `pid`.
    pub fn preempt_at(mut self, cycle: u64, pid: usize) -> Self {
        self.preemptions.push((cycle, pid));
        self
    }

    /// Schedules processor `pid` to crash just before `cycle` executes.
    pub fn crash_at(mut self, cycle: u64, pid: usize) -> Self {
        self.failures
            .push((cycle, FailureEvent::Crash(Pid::new(pid))));
        self
    }

    /// Schedules processor `pid` to revive just before `cycle` executes.
    pub fn revive_at(mut self, cycle: u64, pid: usize) -> Self {
        self.failures
            .push((cycle, FailureEvent::Revive(Pid::new(pid))));
        self
    }

    /// Folds every event of `plan` into the script (skipping exact
    /// duplicates), so the script replays identically against a target
    /// that no longer applies the plan itself.
    pub fn with_failures(mut self, plan: &FailurePlan) -> Self {
        for (cycle, event) in plan.events() {
            if !self.failures.contains(&(cycle, event)) {
                self.failures.push((cycle, event));
            }
        }
        self
    }

    /// The free-form target label embedded in the token.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The preemption list, as `(cycle, pid)` pairs.
    pub fn preemptions(&self) -> &[(u64, usize)] {
        &self.preemptions
    }

    /// The crash/revive events, as `(cycle, event)` pairs in application
    /// order.
    pub fn failures(&self) -> &[(u64, FailureEvent)] {
        &self.failures
    }

    /// Rebuilds the script's failure events as a [`FailurePlan`],
    /// preserving same-cycle application order.
    pub fn failure_plan(&self) -> FailurePlan {
        let mut plan = FailurePlan::new();
        for &(cycle, event) in &self.failures {
            plan = match event {
                FailureEvent::Crash(pid) => plan.crash_at(cycle, pid),
                FailureEvent::Revive(pid) => plan.revive_at(cycle, pid),
            };
        }
        plan
    }

    /// A copy of the script with preemption `index` removed (the
    /// shrinker's one move).
    fn without_preemption(&self, index: usize) -> ScheduleScript {
        let mut copy = self.clone();
        copy.preemptions.remove(index);
        copy
    }

    /// Serializes the script to a single-line replay token, e.g.
    /// `pram-sched-v1;pre=14:2,90:0;fail=C3:1,R20:1;label=place:n=6:p=3`.
    pub fn to_token(&self) -> String {
        let pre = self
            .preemptions
            .iter()
            .map(|(cycle, pid)| format!("{cycle}:{pid}"))
            .collect::<Vec<_>>()
            .join(",");
        let fail = self
            .failures
            .iter()
            .map(|(cycle, event)| match event {
                FailureEvent::Crash(pid) => format!("C{cycle}:{}", pid.index()),
                FailureEvent::Revive(pid) => format!("R{cycle}:{}", pid.index()),
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("pram-sched-v1;pre={pre};fail={fail};label={}", self.label)
    }

    /// Parses a token produced by [`ScheduleScript::to_token`].
    ///
    /// # Errors
    ///
    /// Returns a [`TokenError`] if the header, a field, or an entry does
    /// not parse.
    pub fn from_token(token: &str) -> Result<ScheduleScript, TokenError> {
        let rest = token
            .trim()
            .strip_prefix("pram-sched-v1;")
            .ok_or(TokenError::BadHeader)?;
        let rest = rest
            .strip_prefix("pre=")
            .ok_or(TokenError::MissingField("pre"))?;
        let (pre_str, rest) = rest
            .split_once(";fail=")
            .ok_or(TokenError::MissingField("fail"))?;
        let (fail_str, label) = rest
            .split_once(";label=")
            .ok_or(TokenError::MissingField("label"))?;

        let parse_pair = |entry: &str| -> Result<(u64, usize), TokenError> {
            let (cycle, pid) = entry
                .split_once(':')
                .ok_or_else(|| TokenError::BadEntry(entry.to_string()))?;
            Ok((
                cycle
                    .parse()
                    .map_err(|_| TokenError::BadEntry(entry.to_string()))?,
                pid.parse()
                    .map_err(|_| TokenError::BadEntry(entry.to_string()))?,
            ))
        };

        let mut preemptions = Vec::new();
        for entry in pre_str.split(',').filter(|e| !e.is_empty()) {
            preemptions.push(parse_pair(entry)?);
        }
        let mut failures = Vec::new();
        for entry in fail_str.split(',').filter(|e| !e.is_empty()) {
            let (kind, pair) = entry.split_at(1);
            let (cycle, pid) = parse_pair(pair)?;
            let event = match kind {
                "C" => FailureEvent::Crash(Pid::new(pid)),
                "R" => FailureEvent::Revive(Pid::new(pid)),
                _ => return Err(TokenError::BadEntry(entry.to_string())),
            };
            failures.push((cycle, event));
        }
        Ok(ScheduleScript {
            label: label.to_string(),
            preemptions,
            failures,
        })
    }
}

/// A malformed replay token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenError {
    /// The token does not start with the `pram-sched-v1;` header.
    BadHeader,
    /// A required `pre=`/`fail=`/`label=` field is missing.
    MissingField(&'static str),
    /// A list entry failed to parse; the payload is the offending entry.
    BadEntry(String),
}

impl fmt::Display for TokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenError::BadHeader => write!(f, "token does not start with 'pram-sched-v1;'"),
            TokenError::MissingField(field) => write!(f, "token is missing the '{field}=' field"),
            TokenError::BadEntry(entry) => write!(f, "token entry '{entry}' does not parse"),
        }
    }
}

impl std::error::Error for TokenError {}

/// What went wrong on an exploration run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A mid-run watcher check or the final verdict failed; the payload is
    /// the target's message.
    Invariant(String),
    /// The run exceeded the target's step limit with work remaining — for
    /// a wait-free algorithm under these (fair by construction) serialized
    /// schedules, a genuine bug.
    NonTermination {
        /// The exhausted cycle limit.
        limit: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Invariant(msg) => write!(f, "invariant violated: {msg}"),
            Violation::NonTermination { limit } => {
                write!(f, "run did not terminate within {limit} cycles")
            }
        }
    }
}

/// A minimized, replayable failure: the shrunk script and the violation
/// it reproduces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// The minimized schedule, self-contained (target failure plan folded
    /// in) and serializable via [`ScheduleScript::to_token`].
    pub script: ScheduleScript,
    /// The violation the script reproduces.
    pub violation: Violation,
}

/// The observable outcome of replaying one schedule; equality across
/// replays is what "identical run" means for token round-trip tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// The violation, if the run failed.
    pub violation: Option<Violation>,
    /// Machine cycles executed.
    pub cycles: u64,
    /// Processes halted normally at the end of the run.
    pub halted: usize,
}

/// Counters accumulated over an exploration.
#[derive(Clone, Debug, Default)]
pub struct ExploreStats {
    /// Schedules executed, including shrink replays.
    pub runs: u64,
    /// Total machine cycles across all runs — the explored state count.
    pub steps: u64,
    /// Runs per preemption count: `runs_by_depth[k]` schedules carried
    /// exactly `k` preemptions. The preemption-bound coverage profile.
    pub runs_by_depth: Vec<u64>,
}

impl ExploreStats {
    fn note(&mut self, depth: usize, cycles: u64) {
        self.runs += 1;
        self.steps += cycles;
        if self.runs_by_depth.len() <= depth {
            self.runs_by_depth.resize(depth + 1, 0);
        }
        self.runs_by_depth[depth] += 1;
    }
}

/// The result of an exploration: statistics plus the first minimized
/// counterexample, if any schedule violated the target.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Exploration counters.
    pub stats: ExploreStats,
    /// The first violation found, minimized — `None` means every explored
    /// schedule passed.
    pub counterexample: Option<Counterexample>,
}

/// Observes machine state after every cycle of an exploration run, for
/// invariants that a final verdict cannot see (e.g. a transiently
/// overwritten write-once cell that is later restored).
pub trait Watcher {
    /// Checks invariants after one cycle; an `Err` ends the run as an
    /// [`Violation::Invariant`].
    fn after_cycle(&mut self, machine: &Machine) -> Result<(), String>;
}

/// A watcher that never objects — the default.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoWatcher;

impl Watcher for NoWatcher {
    fn after_cycle(&mut self, _machine: &Machine) -> Result<(), String> {
        Ok(())
    }
}

/// A system under exploration. Implementations must be deterministic:
/// [`ExploreTarget::build`] called twice must produce machines that behave
/// identically under identical schedules — that is the whole basis of
/// replay.
pub trait ExploreTarget {
    /// Short label (no `;` or newline) embedded in counterexample tokens.
    fn label(&self) -> String;

    /// Builds a fresh machine at cycle zero: processes added, memory
    /// preloaded.
    fn build(&self) -> Machine;

    /// Cycle budget per run; exceeding it is a
    /// [`Violation::NonTermination`].
    fn step_limit(&self) -> u64;

    /// The crash/revive plan composed into every run. The explorer folds
    /// it into emitted counterexamples so their tokens are self-contained.
    fn failure_plan(&self) -> FailurePlan {
        FailurePlan::new()
    }

    /// A fresh per-run watcher for mid-run invariants.
    fn watcher(&self) -> Box<dyn Watcher> {
        Box::new(NoWatcher)
    }

    /// Judges the final state of a run that terminated within its budget.
    ///
    /// # Errors
    ///
    /// An `Err` message becomes a [`Violation::Invariant`].
    fn verdict(&self, machine: &Machine) -> Result<(), String>;
}

/// Configuration for [`Explorer::guided_walk`].
#[derive(Clone, Copy, Debug)]
pub struct WalkConfig {
    /// Maximum number of walks.
    pub walks: u64,
    /// Per-cycle probability of preempting the running processor while an
    /// alternative is runnable.
    pub switch_prob: f64,
    /// Base seed; walk `i` derives its own stream from it.
    pub seed: u64,
    /// Optional wall-clock budget; no new walk starts after it elapses.
    pub budget: Option<Duration>,
}

impl WalkConfig {
    /// A walk configuration with the given count and seed, 10% switch
    /// probability, and no wall-clock budget.
    pub fn new(walks: u64, seed: u64) -> Self {
        WalkConfig {
            walks,
            switch_prob: 0.1,
            seed,
            budget: None,
        }
    }
}

/// The schedule-exploration engine. See the [module docs](self) for the
/// search strategy.
#[derive(Clone, Copy, Debug)]
pub struct Explorer {
    preemption_bound: usize,
}

impl Explorer {
    /// Creates an explorer whose exhaustive mode enumerates schedules
    /// with at most `preemption_bound` preemptions.
    pub fn new(preemption_bound: usize) -> Self {
        Explorer { preemption_bound }
    }

    /// The configured preemption bound.
    pub fn preemption_bound(&self) -> usize {
        self.preemption_bound
    }

    /// Exhaustively explores every serialized schedule of `target` with
    /// at most the configured number of preemptions, stopping at the
    /// first violation (minimized before it is returned).
    ///
    /// Enumeration is replay-based: each executed schedule's decision log
    /// yields the cycles at which an alternative processor was runnable,
    /// and each such alternative — at cycles strictly after the schedule's
    /// last scripted preemption, so no schedule is generated twice —
    /// becomes a child schedule.
    pub fn exhaustive(&self, target: &dyn ExploreTarget) -> ExploreReport {
        let mut stats = ExploreStats::default();
        let mut stack = vec![ScheduleScript::new(target.label())];
        while let Some(script) = stack.pop() {
            let (_, outcome, records) = run_script(target, &script, true, &mut stats);
            if outcome.violation.is_some() {
                let counterexample = self.minimize(target, script, &mut stats);
                return ExploreReport {
                    stats,
                    counterexample: Some(counterexample),
                };
            }
            if script.preemptions().len() >= self.preemption_bound {
                continue;
            }
            let frontier = script.preemptions().last().map_or(0, |&(c, _)| c + 1);
            for record in &records {
                if record.cycle < frontier || record.runnable.len() < 2 {
                    continue;
                }
                for &pid in &record.runnable {
                    if pid != record.chosen {
                        stack.push(script.clone().preempt_at(record.cycle, pid));
                    }
                }
            }
        }
        ExploreReport {
            stats,
            counterexample: None,
        }
    }

    /// Runs seeded random walks over `target`'s schedules, stopping at
    /// the first violation (minimized before it is returned). Every walk
    /// records its coin flips as preemptions, so a failing walk replays
    /// exactly from its script.
    pub fn guided_walk(&self, target: &dyn ExploreTarget, config: &WalkConfig) -> ExploreReport {
        let started = Instant::now();
        let mut stats = ExploreStats::default();
        for walk in 0..config.walks {
            if config.budget.is_some_and(|b| started.elapsed() >= b) {
                break;
            }
            let seed = config
                .seed
                .wrapping_add(walk.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let script = walk_script(target, seed, config.switch_prob, &mut stats);
            if let Some(script) = script {
                let counterexample = self.minimize(target, script, &mut stats);
                return ExploreReport {
                    stats,
                    counterexample: Some(counterexample),
                };
            }
        }
        ExploreReport {
            stats,
            counterexample: None,
        }
    }

    /// Replays `script` against `target`, returning the final machine and
    /// the outcome. Replaying the same script twice yields equal
    /// [`ReplayOutcome`]s and equal memory — the determinism the tokens
    /// stand on.
    pub fn replay(target: &dyn ExploreTarget, script: &ScheduleScript) -> (Machine, ReplayOutcome) {
        let mut stats = ExploreStats::default();
        let (machine, outcome, _) = run_script(target, script, false, &mut stats);
        (machine, outcome)
    }

    /// Greedily shrinks a violating script to a local minimum (no single
    /// preemption can be dropped without losing the violation), then
    /// packages it with the target's failure plan folded in.
    fn minimize(
        &self,
        target: &dyn ExploreTarget,
        script: ScheduleScript,
        stats: &mut ExploreStats,
    ) -> Counterexample {
        let mut best = script;
        loop {
            let mut improved = false;
            for index in 0..best.preemptions().len() {
                let candidate = best.without_preemption(index);
                let (_, outcome, _) = run_script(target, &candidate, false, stats);
                if outcome.violation.is_some() {
                    best = candidate;
                    improved = true;
                    break;
                }
            }
            if !improved {
                break;
            }
        }
        let (_, outcome, _) = run_script(target, &best, false, stats);
        let violation = outcome
            .violation
            .expect("minimized script still violates by construction");
        Counterexample {
            script: best.with_failures(&target.failure_plan()),
            violation,
        }
    }
}

/// Executes one schedule: a fresh machine from `target`, the script's
/// preemptions through a [`ScriptedScheduler`], and the union of the
/// target's and the script's crash/revive events, with the same
/// keep-ticking semantics as [`Machine::run_with_failures`].
fn run_script(
    target: &dyn ExploreTarget,
    script: &ScheduleScript,
    want_records: bool,
    stats: &mut ExploreStats,
) -> (Machine, ReplayOutcome, Vec<StepRecord>) {
    let mut machine = target.build();
    let mut watcher = target.watcher();
    let plan = target.failure_plan();
    let plan = script.failure_plan().merged_for_run(&plan);
    let limit = target.step_limit();
    let mut sched = ScriptedScheduler::new(script.preemptions().to_vec());
    if want_records {
        sched.enable_log();
    }

    let mut violation = None;
    loop {
        let keep_ticking = machine.has_runnable()
            || (machine.has_crashed()
                && plan
                    .last_revive_cycle()
                    .is_some_and(|c| c >= machine.cycle_count()));
        if !keep_ticking {
            break;
        }
        if machine.cycle_count() >= limit {
            violation = Some(Violation::NonTermination { limit });
            break;
        }
        for event in plan.events_at(machine.cycle_count()) {
            match event {
                FailureEvent::Crash(pid) => machine.crash(pid),
                FailureEvent::Revive(pid) => machine.revive(pid),
            }
        }
        machine.cycle(&mut sched);
        if let Err(msg) = watcher.after_cycle(&machine) {
            violation = Some(Violation::Invariant(msg));
            break;
        }
    }
    if violation.is_none() {
        if let Err(msg) = target.verdict(&machine) {
            violation = Some(Violation::Invariant(msg));
        }
    }

    stats.note(script.preemptions().len(), machine.cycle_count());
    let halted = machine.report().halted;
    let outcome = ReplayOutcome {
        violation,
        cycles: machine.cycle_count(),
        halted,
    };
    (machine, outcome, sched.into_log())
}

impl FailurePlan {
    /// The union of `self` and `other` used for one exploration run,
    /// skipping exact duplicates so a token with the target plan already
    /// folded in does not double-apply events.
    fn merged_for_run(&self, other: &FailurePlan) -> FailurePlan {
        let mine: Vec<_> = self.events().collect();
        let mut merged = self.clone();
        for (cycle, event) in other.events() {
            if !mine.contains(&(cycle, event)) {
                merged = match event {
                    FailureEvent::Crash(pid) => merged.crash_at(cycle, pid),
                    FailureEvent::Revive(pid) => merged.revive_at(cycle, pid),
                };
            }
        }
        merged
    }
}

/// One guided walk: runs `target` under a coin-flipping scheduler and
/// returns the recorded script if the run violated, `None` otherwise.
fn walk_script(
    target: &dyn ExploreTarget,
    seed: u64,
    switch_prob: f64,
    stats: &mut ExploreStats,
) -> Option<ScheduleScript> {
    let mut machine = target.build();
    let mut watcher = target.watcher();
    let plan = target.failure_plan();
    let limit = target.step_limit();
    let mut sched = WalkScheduler {
        rng: StdRng::seed_from_u64(seed),
        switch_prob,
        current: None,
        preemptions: Vec::new(),
    };

    let mut violated = false;
    loop {
        let keep_ticking = machine.has_runnable()
            || (machine.has_crashed()
                && plan
                    .last_revive_cycle()
                    .is_some_and(|c| c >= machine.cycle_count()));
        if !keep_ticking {
            break;
        }
        if machine.cycle_count() >= limit {
            violated = true;
            break;
        }
        for event in plan.events_at(machine.cycle_count()) {
            match event {
                FailureEvent::Crash(pid) => machine.crash(pid),
                FailureEvent::Revive(pid) => machine.revive(pid),
            }
        }
        machine.cycle(&mut sched);
        if watcher.after_cycle(&machine).is_err() {
            violated = true;
            break;
        }
    }
    if !violated {
        violated = target.verdict(&machine).is_err();
    }

    let cycles = machine.cycle_count();
    stats.note(sched.preemptions.len(), cycles);
    if violated {
        let mut script = ScheduleScript::new(target.label());
        for (cycle, pid) in sched.preemptions {
            script = script.preempt_at(cycle, pid);
        }
        Some(script)
    } else {
        None
    }
}

/// The guided-walk scheduler: keep the current processor with probability
/// `1 - switch_prob`, otherwise preempt to a uniformly random runnable
/// alternative and record the switch. Its default moves (initial pick,
/// fall-over on halt/crash) match [`ScriptedScheduler`]'s exactly, so the
/// recorded preemption list replays to the identical execution.
struct WalkScheduler {
    rng: StdRng,
    switch_prob: f64,
    current: Option<usize>,
    preemptions: Vec<(u64, usize)>,
}

impl Scheduler for WalkScheduler {
    fn select(&mut self, cycle: u64, runnable: &[Pid], out: &mut Vec<Pid>) {
        if runnable.is_empty() {
            return;
        }
        let choice = match self.current {
            Some(c) if runnable.iter().any(|p| p.index() == c) => {
                if runnable.len() >= 2 && self.rng.gen_bool(self.switch_prob) {
                    let others: Vec<usize> = runnable
                        .iter()
                        .map(|p| p.index())
                        .filter(|&i| i != c)
                        .collect();
                    let pick = others[self.rng.gen_range(0..others.len())];
                    self.preemptions.push((cycle, pick));
                    pick
                } else {
                    c
                }
            }
            _ => runnable[0].index(),
        };
        self.current = Some(choice);
        out.push(Pid::new(choice));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, OpResult};
    use crate::process::{FnProcess, Process};

    /// A read-modify-write incrementor with no CAS: the textbook lost
    /// update. Any schedule that preempts between the read and the write
    /// loses an increment.
    fn incrementor() -> Box<dyn Process> {
        Box::new(FnProcess::new(|last| match last {
            None => Op::Read(0),
            Some(OpResult::Read(v)) => Op::Write(0, v + 1),
            Some(OpResult::Write) => Op::Halt,
            other => panic!("unexpected {other:?}"),
        }))
    }

    /// Two racy incrementors; the invariant is that both increments land.
    struct RacyCounter {
        plan: FailurePlan,
    }

    impl RacyCounter {
        fn new() -> Self {
            RacyCounter {
                plan: FailurePlan::new(),
            }
        }
    }

    impl ExploreTarget for RacyCounter {
        fn label(&self) -> String {
            "racy-counter".into()
        }
        fn build(&self) -> Machine {
            let mut m = Machine::new(1);
            m.add_process(incrementor());
            m.add_process(incrementor());
            m
        }
        fn step_limit(&self) -> u64 {
            100
        }
        fn failure_plan(&self) -> FailurePlan {
            self.plan.clone()
        }
        fn verdict(&self, machine: &Machine) -> Result<(), String> {
            let v = machine.memory().read(0);
            if v == 2 {
                Ok(())
            } else {
                Err(format!("expected counter 2, found {v}"))
            }
        }
    }

    /// A process that spins forever — exercises the non-termination bound.
    struct Spinner;

    impl ExploreTarget for Spinner {
        fn label(&self) -> String {
            "spinner".into()
        }
        fn build(&self) -> Machine {
            let mut m = Machine::new(1);
            m.add_process(Box::new(FnProcess::new(|_| Op::Read(0))));
            m
        }
        fn step_limit(&self) -> u64 {
            25
        }
        fn verdict(&self, _machine: &Machine) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn default_schedule_is_sequential_and_correct() {
        let (machine, outcome) = Explorer::replay(&RacyCounter::new(), &ScheduleScript::new("t"));
        assert_eq!(outcome.violation, None);
        assert_eq!(machine.memory().read(0), 2);
        assert_eq!(outcome.halted, 2);
    }

    #[test]
    fn bound_zero_explores_only_the_default_schedule() {
        let report = Explorer::new(0).exhaustive(&RacyCounter::new());
        assert!(report.counterexample.is_none());
        assert_eq!(report.stats.runs, 1);
        assert_eq!(report.stats.runs_by_depth, vec![1]);
    }

    #[test]
    fn one_preemption_finds_the_lost_update() {
        let report = Explorer::new(1).exhaustive(&RacyCounter::new());
        let ce = report.counterexample.expect("lost update exists");
        assert_eq!(ce.script.preemptions().len(), 1);
        assert!(matches!(&ce.violation, Violation::Invariant(m) if m.contains("counter")));
        assert!(report.stats.runs >= 2, "explored the default first");
    }

    #[test]
    fn counterexample_token_round_trips_to_the_same_run() {
        let target = RacyCounter::new();
        let ce = Explorer::new(1)
            .exhaustive(&target)
            .counterexample
            .expect("lost update exists");
        let token = ce.script.to_token();
        let parsed = ScheduleScript::from_token(&token).expect("token parses");
        assert_eq!(parsed, ce.script);
        let (m1, o1) = Explorer::replay(&target, &ce.script);
        let (m2, o2) = Explorer::replay(&target, &parsed);
        assert_eq!(o1, o2);
        assert_eq!(o1.violation, Some(ce.violation));
        assert_eq!(m1.memory().read(0), m2.memory().read(0));
    }

    #[test]
    fn guided_walk_finds_the_lost_update_and_minimizes_it() {
        let config = WalkConfig {
            walks: 200,
            switch_prob: 0.4,
            seed: 7,
            budget: None,
        };
        let report = Explorer::new(1).guided_walk(&RacyCounter::new(), &config);
        let ce = report.counterexample.expect("walks hit the race");
        assert_eq!(ce.script.preemptions().len(), 1, "shrunk to one switch");
        let (_, outcome) = Explorer::replay(&RacyCounter::new(), &ce.script);
        assert_eq!(outcome.violation, Some(ce.violation));
    }

    #[test]
    fn non_termination_is_reported_with_the_limit() {
        let report = Explorer::new(0).exhaustive(&Spinner);
        let ce = report.counterexample.expect("spinner never halts");
        assert_eq!(ce.violation, Violation::NonTermination { limit: 25 });
    }

    #[test]
    fn target_failure_plan_is_folded_into_the_token() {
        let mut target = RacyCounter::new();
        // Crash processor 1 before it starts and never revive it: only one
        // increment can land, so even the default schedule violates.
        target.plan = FailurePlan::new().crash_at(0, Pid::new(1));
        let report = Explorer::new(0).exhaustive(&target);
        let ce = report.counterexample.expect("one increment is lost");
        assert_eq!(ce.script.failures().len(), 1);
        let token = ce.script.to_token();
        assert!(token.contains("fail=C0:1"), "token: {token}");
        // The token is self-contained: replaying it against a plan-free
        // target reproduces the violation.
        let (_, outcome) = Explorer::replay(&RacyCounter::new(), &ce.script);
        assert_eq!(outcome.violation, Some(ce.violation));
    }

    #[test]
    fn crash_revive_keeps_ticking_through_an_all_down_moment() {
        let mut target = RacyCounter::new();
        target.plan = FailurePlan::new()
            .crash_at(0, Pid::new(0))
            .crash_at(0, Pid::new(1))
            .revive_at(10, Pid::new(0))
            .revive_at(10, Pid::new(1));
        let report = Explorer::new(0).exhaustive(&target);
        assert!(
            report.counterexample.is_none(),
            "revived processors finish the job: {:?}",
            report.counterexample
        );
    }

    #[test]
    fn token_rejects_garbage() {
        assert_eq!(
            ScheduleScript::from_token("not-a-token"),
            Err(TokenError::BadHeader)
        );
        assert_eq!(
            ScheduleScript::from_token("pram-sched-v1;pre=1:2"),
            Err(TokenError::MissingField("fail"))
        );
        assert!(matches!(
            ScheduleScript::from_token("pram-sched-v1;pre=x:y;fail=;label=t"),
            Err(TokenError::BadEntry(_))
        ));
        assert!(matches!(
            ScheduleScript::from_token("pram-sched-v1;pre=;fail=X1:2;label=t"),
            Err(TokenError::BadEntry(_))
        ));
        assert!(TokenError::BadHeader.to_string().contains("pram-sched-v1"));
    }

    #[test]
    fn empty_script_token_round_trips() {
        let script = ScheduleScript::new("empty");
        let parsed = ScheduleScript::from_token(&script.to_token()).unwrap();
        assert_eq!(parsed, script);
        assert_eq!(parsed.label(), "empty");
    }

    #[test]
    #[should_panic(expected = "labels")]
    fn labels_with_semicolons_are_rejected() {
        ScheduleScript::new("a;b");
    }

    #[test]
    fn exhaustive_depth_profile_counts_every_schedule() {
        let report = Explorer::new(1).exhaustive(&Spinner);
        // A lone spinner has no alternatives: depth 1 is unreachable.
        assert_eq!(report.stats.runs_by_depth.len(), 1);
        let report = Explorer::new(1).exhaustive(&RacyCounter::new());
        assert!(report.stats.runs_by_depth.len() >= 2);
    }
}
