//! A cycle-accurate simulator for the CRCW PRAM (Concurrent-Read
//! Concurrent-Write Parallel Random Access Machine).
//!
//! This crate is the execution substrate for the reproduction of
//! *"A Wait-Free Sorting Algorithm"* (Shavit, Upfal, Zemach; PODC 1997).
//! Every complexity claim in that paper is a statement about three
//! quantities of a CRCW PRAM execution:
//!
//! * **time** — the number of synchronous machine cycles,
//! * **work** — the total number of shared-memory operations, and
//! * **contention** — the maximum number of processors accessing any
//!   single memory cell in the same cycle (§1.2 of the paper).
//!
//! The simulator counts exactly these quantities. Programs are expressed as
//! state machines implementing [`Process`]: on every cycle in which the
//! scheduler steps a processor, the processor receives the result of its
//! previous shared-memory operation and emits its next one. This
//! single-operation granularity is the granularity at which *wait-freedom*
//! is defined, and lets an adversarial [`Scheduler`] interleave, delay, or
//! crash processors between any two memory operations.
//!
//! # Example
//!
//! Run two processors that each increment a counter cell with
//! compare-and-swap until it reaches 10:
//!
//! ```
//! use pram::{Machine, Op, OpResult, Process, SyncScheduler, Word};
//!
//! struct Incrementor { last_seen: Option<Word> }
//!
//! impl Process for Incrementor {
//!     fn step(&mut self, last: Option<OpResult>) -> Op {
//!         match last {
//!             None | Some(OpResult::Cas { .. }) => Op::Read(0),
//!             Some(OpResult::Read(v)) if v >= 10 => Op::Halt,
//!             Some(OpResult::Read(v)) => Op::Cas { addr: 0, expected: v, new: v + 1 },
//!             _ => unreachable!(),
//!         }
//!     }
//! }
//!
//! let mut machine = Machine::new(1);
//! machine.add_process(Box::new(Incrementor { last_seen: None }));
//! machine.add_process(Box::new(Incrementor { last_seen: None }));
//! let report = machine.run(&mut SyncScheduler, 10_000).expect("terminates");
//! assert_eq!(machine.memory().read(0), 10);
//! assert!(report.metrics.max_contention <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layout;
mod machine;
mod memory;
mod metrics;
mod op;
mod process;
mod sched;
mod trace;
mod word;

pub mod explore;
pub mod failure;

pub use explore::{
    Counterexample, ExploreReport, ExploreStats, ExploreTarget, Explorer, NoWatcher, ReplayOutcome,
    ScheduleScript, TokenError, Violation, WalkConfig, Watcher,
};
pub use layout::{MemoryLayout, Region};
pub use machine::{Machine, MachineError, ModelPolicy, RunReport};
pub use memory::Memory;
pub use metrics::{CycleReport, Metrics};
pub use op::{Op, OpResult};
pub use process::{FnProcess, Process, ProcessState, SeqProcess};
pub use sched::{
    AdversaryScheduler, RandomScheduler, RoundRobinScheduler, Scheduler, ScriptedScheduler,
    SingleStepScheduler, StepRecord, SyncScheduler,
};
pub use trace::{Trace, TraceEvent};
pub use word::{Addr, Pid, Word};
