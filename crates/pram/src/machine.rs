//! The CRCW PRAM machine: memory + processes + cycle execution.

use std::collections::HashMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::memory::Memory;
use crate::metrics::{AccessKind, CycleReport, Metrics};
use crate::op::{Op, OpResult};
use crate::process::{Process, ProcessState};
use crate::sched::Scheduler;
use crate::word::Pid;

/// The PRAM concurrency model to *enforce* while running.
///
/// The machine always executes with arbitrary-winner CRCW semantics; the
/// stricter policies are verification aids that answer "does this
/// algorithm actually need concurrent reads/writes?" — the question the
/// paper's model discussion (§1.2, QRQW citations) turns on. Under
/// `Crew`, two same-cycle writers to one cell end the run with
/// [`MachineError::ModelViolation`]; under `Erew`, two same-cycle
/// accesses of any kind do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ModelPolicy {
    /// Concurrent reads and writes allowed (the paper's model).
    #[default]
    Crcw,
    /// Concurrent reads allowed, writes exclusive.
    Crew,
    /// All accesses exclusive.
    Erew,
}

/// Error conditions of a simulated run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// The run did not finish within the cycle budget. For a wait-free
    /// algorithm under a fair scheduler this indicates a bug (or a budget
    /// that contradicts the algorithm's step bound).
    CycleLimitExceeded {
        /// The exhausted budget.
        limit: u64,
        /// Processes still runnable when the budget ran out.
        still_runnable: usize,
    },
    /// A cycle violated the enforced [`ModelPolicy`].
    ModelViolation {
        /// The enforced policy.
        policy: ModelPolicy,
        /// Cycle of the first violation.
        cycle: u64,
        /// The contended cell.
        cell: usize,
        /// Same-cycle writers to the cell (writes + CAS).
        writers: usize,
        /// Same-cycle accesses of any kind to the cell.
        accessors: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::CycleLimitExceeded {
                limit,
                still_runnable,
            } => write!(
                f,
                "cycle limit {limit} exceeded with {still_runnable} processes still runnable"
            ),
            MachineError::ModelViolation {
                policy,
                cycle,
                cell,
                writers,
                accessors,
            } => write!(
                f,
                "{policy:?} violation at cycle {cycle}: cell {cell} had {writers} \
                 concurrent writers / {accessors} concurrent accesses"
            ),
        }
    }
}

impl std::error::Error for MachineError {}

/// Summary of a completed run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Aggregated execution metrics.
    pub metrics: Metrics,
    /// Processes that halted normally.
    pub halted: usize,
    /// Processes left crashed at the end of the run.
    pub crashed: usize,
}

struct Slot {
    process: Box<dyn Process>,
    state: ProcessState,
    pending: Option<OpResult>,
}

/// A simulated CRCW PRAM: shared [`Memory`], a set of processes, and the
/// cycle loop that advances them under a [`Scheduler`].
///
/// Concurrency semantics: within a cycle, every selected process issues one
/// operation; the machine serializes the operations of the cycle in a
/// seeded arbitrary order (so concurrent writes have an *arbitrary winner*
/// and at most one of several identical-expectation CASes succeeds), counts
/// every access toward that cycle's per-cell contention, and delivers each
/// result to its issuer at that process's next step.
pub struct Machine {
    memory: Memory,
    slots: Vec<Slot>,
    metrics: Metrics,
    rng: StdRng,
    cycle: u64,
    policy: ModelPolicy,
    violation: Option<MachineError>,
    trace: Option<crate::trace::Trace>,
    // Scratch buffers reused across cycles.
    runnable_buf: Vec<Pid>,
    selected_buf: Vec<Pid>,
    cell_counts: HashMap<usize, usize>,
    write_counts: HashMap<usize, usize>,
}

impl Machine {
    /// Creates a machine with `mem_size` zeroed cells and a default seed.
    pub fn new(mem_size: usize) -> Self {
        Self::with_seed(mem_size, 0x5eed)
    }

    /// Creates a machine whose arbitrary-winner choices derive from `seed`,
    /// for reproducible runs.
    pub fn with_seed(mem_size: usize, seed: u64) -> Self {
        Machine {
            memory: Memory::new(mem_size),
            slots: Vec::new(),
            metrics: Metrics::new(0),
            rng: StdRng::seed_from_u64(seed),
            cycle: 0,
            policy: ModelPolicy::Crcw,
            violation: None,
            trace: None,
            runnable_buf: Vec::new(),
            selected_buf: Vec::new(),
            cell_counts: HashMap::new(),
            write_counts: HashMap::new(),
        }
    }

    /// Enforces `policy` on subsequent cycles (see [`ModelPolicy`]); runs
    /// end with [`MachineError::ModelViolation`] on the first offense.
    pub fn enforce_model(&mut self, policy: ModelPolicy) {
        self.policy = policy;
    }

    /// The first model violation observed so far, if any.
    pub fn model_violation(&self) -> Option<&MachineError> {
        self.violation.as_ref()
    }

    /// Starts recording the last `capacity` executed operations into a
    /// ring-buffer [`crate::Trace`] for post-mortem debugging.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn record_trace(&mut self, capacity: usize) {
        self.trace = Some(crate::trace::Trace::new(capacity));
    }

    /// The recorded trace, if [`Machine::record_trace`] was called.
    pub fn trace(&self) -> Option<&crate::trace::Trace> {
        self.trace.as_ref()
    }

    /// Adds a process; returns its [`Pid`] (dense, in insertion order).
    pub fn add_process(&mut self, process: Box<dyn Process>) -> Pid {
        let pid = Pid::new(self.slots.len());
        self.slots.push(Slot {
            process,
            state: ProcessState::Runnable,
            pending: None,
        });
        self.metrics.ensure_process(pid.index());
        pid
    }

    /// Number of processes ever added.
    pub fn process_count(&self) -> usize {
        self.slots.len()
    }

    /// Shared memory (read-only view).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Shared memory, mutable — for pre-run initialization via
    /// [`Memory::load`] and for watching invariants.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// Current lifecycle state of `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not returned by [`Machine::add_process`].
    pub fn state(&self, pid: Pid) -> ProcessState {
        self.slots[pid.index()].state
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Enables recording the per-cycle contention series (see
    /// [`Metrics::record_timeline`]). Call before running.
    pub fn record_timeline(&mut self, enabled: bool) {
        self.metrics.record_timeline(enabled);
    }

    /// Current cycle number (number of cycles executed so far).
    pub fn cycle_count(&self) -> u64 {
        self.cycle
    }

    /// Crashes `pid`: it takes no further steps until revived. Crashing a
    /// halted process has no effect. This models the wait-free failure
    /// assumption — a crash can occur between any two memory operations.
    pub fn crash(&mut self, pid: Pid) {
        let slot = &mut self.slots[pid.index()];
        if slot.state == ProcessState::Runnable {
            slot.state = ProcessState::Crashed;
        }
    }

    /// Revives a crashed `pid`, which resumes exactly where it stopped —
    /// the *undetectable restart* of the fail-revive model discussed in
    /// §1.1 of the paper.
    pub fn revive(&mut self, pid: Pid) {
        let slot = &mut self.slots[pid.index()];
        if slot.state == ProcessState::Crashed {
            slot.state = ProcessState::Runnable;
        }
    }

    /// Whether any process is still runnable.
    pub fn has_runnable(&self) -> bool {
        self.slots.iter().any(|s| s.state == ProcessState::Runnable)
    }

    /// Whether any process is currently crashed. Together with a failure
    /// plan's pending revivals this decides whether an externally driven
    /// cycle loop (e.g. the schedule explorer) should keep ticking through
    /// a moment where everyone happens to be down.
    pub fn has_crashed(&self) -> bool {
        self.slots.iter().any(|s| s.state == ProcessState::Crashed)
    }

    /// The pids of all currently runnable processes, in ascending order —
    /// the same set a [`Scheduler`] would be offered on the next cycle.
    pub fn runnable_pids(&self) -> Vec<Pid> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state.is_runnable())
            .map(|(i, _)| Pid::new(i))
            .collect()
    }

    /// Executes one machine cycle under `sched` and reports what happened.
    pub fn cycle(&mut self, sched: &mut dyn Scheduler) -> CycleReport {
        self.runnable_buf.clear();
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.state.is_runnable() {
                self.runnable_buf.push(Pid::new(i));
            }
        }
        self.selected_buf.clear();
        sched.select(self.cycle, &self.runnable_buf, &mut self.selected_buf);
        debug_assert!(
            {
                let mut seen = std::collections::HashSet::new();
                self.selected_buf
                    .iter()
                    .all(|p| self.runnable_buf.contains(p) && seen.insert(p.index()))
            },
            "scheduler selected a non-runnable or duplicate pid"
        );

        // Phase A: collect this cycle's operations.
        let mut ops: Vec<(Pid, Op)> = Vec::with_capacity(self.selected_buf.len());
        let mut halted_now = 0;
        let selected = std::mem::take(&mut self.selected_buf);
        for &pid in &selected {
            let slot = &mut self.slots[pid.index()];
            let op = slot.process.step(slot.pending.take());
            self.metrics.record_step(pid.index());
            match op {
                Op::Halt => {
                    slot.state = ProcessState::Halted;
                    halted_now += 1;
                }
                op => ops.push((pid, op)),
            }
        }
        self.selected_buf = selected;

        // Phase B: serialize the operations in an arbitrary (seeded) order.
        ops.shuffle(&mut self.rng);
        self.cell_counts.clear();
        self.write_counts.clear();
        let mut memory_ops = 0;
        for (pid, op) in ops {
            let result = match op {
                Op::Read(addr) => {
                    self.metrics.record_access(addr, AccessKind::Read);
                    *self.cell_counts.entry(addr).or_insert(0) += 1;
                    memory_ops += 1;
                    OpResult::Read(self.memory.read(addr))
                }
                Op::Write(addr, value) => {
                    self.metrics.record_access(addr, AccessKind::Write);
                    *self.cell_counts.entry(addr).or_insert(0) += 1;
                    *self.write_counts.entry(addr).or_insert(0) += 1;
                    memory_ops += 1;
                    self.memory.write(addr, value);
                    OpResult::Write
                }
                Op::Cas {
                    addr,
                    expected,
                    new,
                } => {
                    self.metrics.record_access(addr, AccessKind::Cas);
                    *self.cell_counts.entry(addr).or_insert(0) += 1;
                    *self.write_counts.entry(addr).or_insert(0) += 1;
                    memory_ops += 1;
                    let (won, current) = self.memory.compare_and_swap(addr, expected, new);
                    OpResult::Cas { won, current }
                }
                Op::Nop => OpResult::Nop,
                Op::Halt => unreachable!("halt filtered in phase A"),
            };
            if let Some(trace) = &mut self.trace {
                trace.push(crate::trace::TraceEvent {
                    cycle: self.cycle,
                    pid,
                    op,
                    result: Some(result),
                });
            }
            self.slots[pid.index()].pending = Some(result);
        }

        if self.violation.is_none() {
            let offender = match self.policy {
                ModelPolicy::Crcw => None,
                ModelPolicy::Crew => self
                    .write_counts
                    .iter()
                    .find(|(_, &w)| w >= 2)
                    .map(|(&cell, _)| cell),
                ModelPolicy::Erew => self
                    .cell_counts
                    .iter()
                    .find(|(_, &c)| c >= 2)
                    .map(|(&cell, _)| cell),
            };
            if let Some(cell) = offender {
                self.violation = Some(MachineError::ModelViolation {
                    policy: self.policy,
                    cycle: self.cycle,
                    cell,
                    writers: self.write_counts.get(&cell).copied().unwrap_or(0),
                    accessors: self.cell_counts.get(&cell).copied().unwrap_or(0),
                });
            }
        }

        let max_cell_contention = self.metrics.finish_cycle(&self.cell_counts);
        let report = CycleReport {
            cycle: self.cycle,
            stepped: self.selected_buf.len(),
            memory_ops,
            max_cell_contention,
            halted: halted_now,
        };
        self.cycle += 1;
        report
    }

    /// Runs cycles until no process is runnable, or errors after
    /// `max_cycles`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::CycleLimitExceeded`] if runnable processes
    /// remain after `max_cycles` cycles.
    pub fn run(
        &mut self,
        sched: &mut dyn Scheduler,
        max_cycles: u64,
    ) -> Result<RunReport, MachineError> {
        let start = self.cycle;
        while self.has_runnable() {
            if self.cycle - start >= max_cycles {
                return Err(MachineError::CycleLimitExceeded {
                    limit: max_cycles,
                    still_runnable: self.slots.iter().filter(|s| s.state.is_runnable()).count(),
                });
            }
            self.cycle(sched);
            if let Some(v) = &self.violation {
                return Err(v.clone());
            }
        }
        Ok(self.report())
    }

    /// Runs under `sched`, applying `plan`'s crash/revive events at their
    /// scheduled cycles, until no process is runnable.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::CycleLimitExceeded`] as [`Machine::run`]
    /// does.
    pub fn run_with_failures(
        &mut self,
        sched: &mut dyn Scheduler,
        plan: &crate::failure::FailurePlan,
        max_cycles: u64,
    ) -> Result<RunReport, MachineError> {
        let start = self.cycle;
        // A cycle where everyone happens to be crashed must not end the
        // run if the plan still schedules revivals — in the fail-revive
        // model a crash is just a delay.
        let keep_ticking = |m: &Machine| {
            m.has_runnable()
                || (m.slots.iter().any(|s| s.state == ProcessState::Crashed)
                    && plan.last_revive_cycle().is_some_and(|c| c >= m.cycle))
        };
        while keep_ticking(self) {
            if self.cycle - start >= max_cycles {
                return Err(MachineError::CycleLimitExceeded {
                    limit: max_cycles,
                    still_runnable: self.slots.iter().filter(|s| s.state.is_runnable()).count(),
                });
            }
            for event in plan.events_at(self.cycle) {
                match event {
                    crate::failure::FailureEvent::Crash(pid) => self.crash(pid),
                    crate::failure::FailureEvent::Revive(pid) => self.revive(pid),
                }
            }
            self.cycle(sched);
            if let Some(v) = &self.violation {
                return Err(v.clone());
            }
        }
        Ok(self.report())
    }

    /// Builds the final report without running further.
    pub fn report(&self) -> RunReport {
        RunReport {
            metrics: self.metrics.clone(),
            halted: self
                .slots
                .iter()
                .filter(|s| s.state == ProcessState::Halted)
                .count(),
            crashed: self
                .slots
                .iter()
                .filter(|s| s.state == ProcessState::Crashed)
                .count(),
        }
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("cells", &self.memory.len())
            .field("processes", &self.slots.len())
            .field("cycle", &self.cycle)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::FnProcess;
    use crate::sched::{SingleStepScheduler, SyncScheduler};

    /// A process that writes `value` to `addr` and halts.
    fn writer(addr: usize, value: i64) -> Box<dyn Process> {
        Box::new(FnProcess::new(move |last| match last {
            None => Op::Write(addr, value),
            Some(OpResult::Write) => Op::Halt,
            other => panic!("unexpected {other:?}"),
        }))
    }

    #[test]
    fn single_writer_runs_to_completion() {
        let mut m = Machine::new(4);
        let pid = m.add_process(writer(2, 7));
        let report = m.run(&mut SyncScheduler, 100).unwrap();
        assert_eq!(m.memory().read(2), 7);
        assert_eq!(m.state(pid), ProcessState::Halted);
        assert_eq!(report.halted, 1);
        assert_eq!(report.metrics.writes, 1);
        // One write cycle + one halt cycle.
        assert_eq!(report.metrics.steps_per_process[0], 2);
    }

    #[test]
    fn concurrent_writes_have_arbitrary_winner_and_full_contention() {
        let mut m = Machine::with_seed(1, 42);
        for v in 1..=8 {
            m.add_process(writer(0, v));
        }
        let report = m.run(&mut SyncScheduler, 100).unwrap();
        let final_value = m.memory().read(0);
        assert!((1..=8).contains(&final_value));
        assert_eq!(report.metrics.max_contention, 8);
        assert_eq!(report.metrics.total_stalls, 7);
    }

    #[test]
    fn concurrent_cas_exactly_one_winner() {
        let mut m = Machine::with_seed(1, 9);
        let n = 6;
        for v in 1..=n {
            m.add_process(Box::new(FnProcess::new(move |last| match last {
                None => Op::Cas {
                    addr: 0,
                    expected: 0,
                    new: v,
                },
                Some(OpResult::Cas { won, current }) => {
                    if won {
                        assert_eq!(current, v);
                    } else {
                        assert_ne!(current, 0);
                    }
                    Op::Halt
                }
                other => panic!("unexpected {other:?}"),
            })));
        }
        m.run(&mut SyncScheduler, 100).unwrap();
        assert_ne!(m.memory().read(0), 0);
    }

    #[test]
    fn crash_prevents_steps_and_revive_resumes_in_place() {
        let mut m = Machine::new(2);
        let pid = m.add_process(Box::new(FnProcess::new(move |last| match last {
            None => Op::Read(0),
            Some(OpResult::Read(_)) => Op::Write(1, 99),
            Some(OpResult::Write) => Op::Halt,
            other => panic!("unexpected {other:?}"),
        })));
        let mut sched = SyncScheduler;
        m.cycle(&mut sched); // performed the read
        m.crash(pid);
        for _ in 0..10 {
            m.cycle(&mut sched);
        }
        assert_eq!(m.memory().read(1), 0, "crashed process makes no progress");
        m.revive(pid);
        m.run(&mut sched, 100).unwrap();
        assert_eq!(
            m.memory().read(1),
            99,
            "revived process resumed mid-program"
        );
    }

    #[test]
    fn crash_on_halted_process_is_noop() {
        let mut m = Machine::new(1);
        let pid = m.add_process(writer(0, 1));
        m.run(&mut SyncScheduler, 10).unwrap();
        m.crash(pid);
        assert_eq!(m.state(pid), ProcessState::Halted);
    }

    #[test]
    fn trace_records_executed_operations() {
        let mut m = Machine::new(2);
        m.record_trace(16);
        m.add_process(writer(1, 5));
        m.run(&mut SyncScheduler, 10).unwrap();
        let trace = m.trace().expect("trace enabled");
        assert_eq!(trace.len(), 1, "one memory op executed");
        let e = trace.events().next().unwrap();
        assert_eq!(e.op, Op::Write(1, 5));
        assert_eq!(e.pid, Pid::new(0));
        assert!(trace.dump().contains("write 1 <- 5"));
    }

    #[test]
    fn erew_policy_accepts_single_processor_runs() {
        // One operation per cycle can never collide: any single-processor
        // program is EREW-clean.
        let mut m = Machine::new(2);
        m.enforce_model(ModelPolicy::Erew);
        m.add_process(writer(0, 3));
        m.run(&mut SyncScheduler, 100).unwrap();
        assert!(m.model_violation().is_none());
    }

    #[test]
    fn crew_policy_rejects_concurrent_writers() {
        let mut m = Machine::new(1);
        m.enforce_model(ModelPolicy::Crew);
        m.add_process(writer(0, 1));
        m.add_process(writer(0, 2));
        let err = m.run(&mut SyncScheduler, 100).unwrap_err();
        assert!(matches!(
            err,
            MachineError::ModelViolation {
                policy: ModelPolicy::Crew,
                writers: 2,
                ..
            }
        ));
        assert!(err.to_string().contains("Crew violation"));
    }

    #[test]
    fn crew_policy_allows_concurrent_readers() {
        let mut m = Machine::new(1);
        m.enforce_model(ModelPolicy::Crew);
        for _ in 0..4 {
            m.add_process(Box::new(FnProcess::new(|last| match last {
                None => Op::Read(0),
                Some(OpResult::Read(_)) => Op::Halt,
                other => panic!("unexpected {other:?}"),
            })));
        }
        m.run(&mut SyncScheduler, 100).unwrap();
    }

    #[test]
    fn erew_policy_rejects_concurrent_readers() {
        let mut m = Machine::new(1);
        m.enforce_model(ModelPolicy::Erew);
        for _ in 0..2 {
            m.add_process(Box::new(FnProcess::new(|last| match last {
                None => Op::Read(0),
                Some(OpResult::Read(_)) => Op::Halt,
                other => panic!("unexpected {other:?}"),
            })));
        }
        let err = m.run(&mut SyncScheduler, 100).unwrap_err();
        assert!(matches!(
            err,
            MachineError::ModelViolation {
                policy: ModelPolicy::Erew,
                accessors: 2,
                ..
            }
        ));
    }

    #[test]
    fn run_survives_a_moment_where_everyone_is_down() {
        // Regression test: if every processor is crashed at once but the
        // plan schedules revivals, the run must keep ticking — in the
        // fail-revive model a crash is only a delay.
        let mut m = Machine::new(2);
        m.add_process(writer(0, 7));
        m.add_process(writer(1, 9));
        let plan = crate::failure::FailurePlan::new()
            .crash_at(0, Pid::new(0))
            .crash_at(0, Pid::new(1))
            .revive_at(5, Pid::new(0))
            .revive_at(9, Pid::new(1));
        let report = m
            .run_with_failures(&mut SyncScheduler, &plan, 1000)
            .unwrap();
        assert_eq!(report.halted, 2);
        assert_eq!(m.memory().read(0), 7);
        assert_eq!(m.memory().read(1), 9);
    }

    #[test]
    fn cycle_limit_error_reports_stragglers() {
        let mut m = Machine::new(1);
        // A process that spins forever.
        m.add_process(Box::new(FnProcess::new(|_| Op::Read(0))));
        let err = m.run(&mut SyncScheduler, 50).unwrap_err();
        assert_eq!(
            err,
            MachineError::CycleLimitExceeded {
                limit: 50,
                still_runnable: 1
            }
        );
        assert!(err.to_string().contains("cycle limit 50"));
    }

    #[test]
    fn sequential_schedule_gives_zero_stalls() {
        let mut m = Machine::new(1);
        for v in 1..=4 {
            m.add_process(writer(0, v));
        }
        let report = m.run(&mut SingleStepScheduler::new(), 100).unwrap();
        assert_eq!(report.metrics.max_contention, 1);
        assert_eq!(report.metrics.total_stalls, 0);
    }

    #[test]
    fn nop_costs_a_cycle_but_no_memory_traffic() {
        let mut m = Machine::new(1);
        m.add_process(Box::new(FnProcess::new(|last| match last {
            None => Op::Nop,
            Some(OpResult::Nop) => Op::Halt,
            other => panic!("unexpected {other:?}"),
        })));
        let report = m.run(&mut SyncScheduler, 10).unwrap();
        assert_eq!(report.metrics.total_ops, 0);
        assert_eq!(report.metrics.steps_per_process[0], 2);
    }

    #[test]
    fn same_seed_same_winner() {
        let run = |seed| {
            let mut m = Machine::with_seed(1, seed);
            for v in 1..=8 {
                m.add_process(writer(0, v));
            }
            m.run(&mut SyncScheduler, 100).unwrap();
            m.memory().read(0)
        };
        assert_eq!(run(123), run(123));
    }

    #[test]
    fn report_before_running_is_empty() {
        let m = Machine::new(1);
        let r = m.report();
        assert_eq!(r.halted, 0);
        assert_eq!(r.crashed, 0);
        assert_eq!(r.metrics.cycles, 0);
    }
}
