//! Execution metrics: time, work, and the paper's contention measure.

use std::collections::HashMap;

use crate::word::Addr;

/// Per-cycle observation produced by [`crate::Machine::cycle`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleReport {
    /// Cycle number (0-based).
    pub cycle: u64,
    /// Number of processes stepped this cycle.
    pub stepped: usize,
    /// Number of shared-memory operations issued this cycle.
    pub memory_ops: usize,
    /// Maximum number of processors that accessed any single cell this
    /// cycle — the paper's per-step contention.
    pub max_cell_contention: usize,
    /// Number of processes that halted this cycle.
    pub halted: usize,
}

/// Aggregated metrics for a whole run.
///
/// *Contention* follows §1.2 of the paper: "the maximum number of
/// concurrent accesses to any single variable". We also record the
/// Dwork–Herlihy–Waarts *stall* count (each access to a cell beyond the
/// first in a cycle is one stall) because the related-work discussion is
/// phrased in terms of it.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Total machine cycles executed.
    pub cycles: u64,
    /// Total shared-memory operations (the PRAM *work*).
    pub total_ops: u64,
    /// Total reads.
    pub reads: u64,
    /// Total writes.
    pub writes: u64,
    /// Total compare-and-swaps.
    pub cas_ops: u64,
    /// Maximum per-cycle per-cell contention over the whole run.
    pub max_contention: usize,
    /// Total stalls: sum over cycles and cells of `max(accesses - 1, 0)`.
    pub total_stalls: u64,
    /// Queue-Read Queue-Write time (Gibbons–Matias–Ramachandran, cited in
    /// §3 of the paper): each cycle costs its own maximum per-cell
    /// contention (minimum 1), modelling hardware that services one
    /// request per cell per time step. Low-contention algorithms win
    /// *time* under this charging, not just the contention statistic.
    pub qrqw_time: u64,
    /// Histogram of per-cycle max contention: `contention_histogram[c]` is
    /// the number of cycles whose max contention was exactly `c`.
    pub contention_histogram: Vec<u64>,
    /// Cumulative access counts of the hottest cells (top hotspots),
    /// tracked exactly.
    accesses_per_cell: HashMap<Addr, u64>,
    /// The single worst moment of the run: `(cycle, cell, accesses)` of
    /// the per-cycle per-cell contention maximum.
    pub peak: Option<(u64, Addr, usize)>,
    /// Per-process count of steps taken (indexed by pid), for
    /// wait-freedom bound checks.
    pub steps_per_process: Vec<u64>,
    /// Opt-in per-cycle max-contention series (see
    /// [`Metrics::record_timeline`]); `None` unless enabled.
    pub timeline: Option<Vec<u32>>,
}

impl Metrics {
    /// Creates empty metrics for a machine with `nprocs` processes.
    pub fn new(nprocs: usize) -> Self {
        Metrics {
            steps_per_process: vec![0; nprocs],
            ..Metrics::default()
        }
    }

    /// Enables (or disables) recording the per-cycle contention series —
    /// one `u32` per cycle, so only worth it for runs whose contention
    /// profile you want to plot (e.g. experiment E18's timelines).
    pub fn record_timeline(&mut self, enabled: bool) {
        self.timeline = if enabled { Some(Vec::new()) } else { None };
    }

    /// Ensures `steps_per_process` can index process `pid`.
    pub(crate) fn ensure_process(&mut self, pid: usize) {
        if pid >= self.steps_per_process.len() {
            self.steps_per_process.resize(pid + 1, 0);
        }
    }

    /// Records that `pid` took a step this cycle.
    pub(crate) fn record_step(&mut self, pid: usize) {
        self.ensure_process(pid);
        self.steps_per_process[pid] += 1;
    }

    /// Records one memory access of the given kind to `addr`.
    pub(crate) fn record_access(&mut self, addr: Addr, kind: AccessKind) {
        self.total_ops += 1;
        match kind {
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
            AccessKind::Cas => self.cas_ops += 1,
        }
        *self.accesses_per_cell.entry(addr).or_insert(0) += 1;
    }

    /// Folds one cycle's per-cell access counts into the aggregates and
    /// returns the cycle's max contention.
    pub(crate) fn finish_cycle(&mut self, cell_counts: &HashMap<Addr, usize>) -> usize {
        let (max, argmax) = cell_counts
            .iter()
            .map(|(&a, &c)| (c, a))
            .max()
            .unwrap_or((0, 0));
        if max > self.max_contention {
            self.peak = Some((self.cycles, argmax, max));
        }
        self.max_contention = self.max_contention.max(max);
        for &count in cell_counts.values() {
            self.total_stalls += count.saturating_sub(1) as u64;
        }
        if max >= self.contention_histogram.len() {
            self.contention_histogram.resize(max + 1, 0);
        }
        self.contention_histogram[max] += 1;
        self.cycles += 1;
        self.qrqw_time += max.max(1) as u64;
        if let Some(tl) = &mut self.timeline {
            tl.push(max as u32);
        }
        max
    }

    /// The `k` cells with the most cumulative accesses, hottest first.
    pub fn hotspots(&self, k: usize) -> Vec<(Addr, u64)> {
        let mut v: Vec<(Addr, u64)> = self
            .accesses_per_cell
            .iter()
            .map(|(&a, &c)| (a, c))
            .collect();
        v.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        v.truncate(k);
        v
    }

    /// Maximum steps taken by any single process (the per-process time
    /// bound that wait-freedom arguments constrain).
    pub fn max_steps_per_process(&self) -> u64 {
        self.steps_per_process.iter().copied().max().unwrap_or(0)
    }

    /// Average contention per cycle in the Dwork et al. sense:
    /// `total_stalls / cycles` (0 for an empty run).
    pub fn amortized_stalls_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_stalls as f64 / self.cycles as f64
        }
    }
}

/// Which kind of access is being recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AccessKind {
    Read,
    Write,
    Cas,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_access_updates_counters() {
        let mut m = Metrics::new(2);
        m.record_access(3, AccessKind::Read);
        m.record_access(3, AccessKind::Write);
        m.record_access(4, AccessKind::Cas);
        assert_eq!(m.total_ops, 3);
        assert_eq!(m.reads, 1);
        assert_eq!(m.writes, 1);
        assert_eq!(m.cas_ops, 1);
    }

    #[test]
    fn finish_cycle_tracks_max_contention_and_stalls() {
        let mut m = Metrics::new(0);
        let mut counts = HashMap::new();
        counts.insert(0usize, 3usize);
        counts.insert(1usize, 1usize);
        let max = m.finish_cycle(&counts);
        assert_eq!(max, 3);
        assert_eq!(m.max_contention, 3);
        assert_eq!(m.total_stalls, 2);
        assert_eq!(m.cycles, 1);
        assert_eq!(m.contention_histogram[3], 1);
    }

    #[test]
    fn finish_cycle_on_quiet_cycle() {
        let mut m = Metrics::new(0);
        let max = m.finish_cycle(&HashMap::new());
        assert_eq!(max, 0);
        assert_eq!(m.contention_histogram[0], 1);
    }

    #[test]
    fn hotspots_sorted_by_heat() {
        let mut m = Metrics::new(0);
        for _ in 0..5 {
            m.record_access(10, AccessKind::Read);
        }
        for _ in 0..2 {
            m.record_access(20, AccessKind::Read);
        }
        m.record_access(30, AccessKind::Read);
        assert_eq!(m.hotspots(2), vec![(10, 5), (20, 2)]);
    }

    #[test]
    fn steps_per_process_grows_on_demand() {
        let mut m = Metrics::new(1);
        m.record_step(0);
        m.record_step(4);
        m.record_step(4);
        assert_eq!(m.steps_per_process[0], 1);
        assert_eq!(m.steps_per_process[4], 2);
        assert_eq!(m.max_steps_per_process(), 2);
    }

    #[test]
    fn qrqw_time_charges_contention() {
        let mut m = Metrics::new(0);
        // Quiet cycle: costs 1.
        m.finish_cycle(&HashMap::new());
        assert_eq!(m.qrqw_time, 1);
        // Contended cycle: costs its max contention.
        let mut counts = HashMap::new();
        counts.insert(0usize, 7usize);
        m.finish_cycle(&counts);
        assert_eq!(m.qrqw_time, 8);
    }

    #[test]
    fn timeline_records_when_enabled() {
        let mut m = Metrics::new(0);
        assert!(m.timeline.is_none());
        m.record_timeline(true);
        let mut counts = HashMap::new();
        counts.insert(0usize, 4usize);
        m.finish_cycle(&counts);
        m.finish_cycle(&HashMap::new());
        assert_eq!(m.timeline.as_deref(), Some(&[4u32, 0][..]));
        m.record_timeline(false);
        assert!(m.timeline.is_none());
    }

    #[test]
    fn peak_records_argmax() {
        let mut m = Metrics::new(0);
        let mut counts = HashMap::new();
        counts.insert(5usize, 3usize);
        m.finish_cycle(&counts);
        assert_eq!(m.peak, Some((0, 5, 3)));
        // A later, lower cycle does not displace the peak.
        let mut counts = HashMap::new();
        counts.insert(9usize, 2usize);
        m.finish_cycle(&counts);
        assert_eq!(m.peak, Some((0, 5, 3)));
    }

    #[test]
    fn amortized_stalls() {
        let mut m = Metrics::new(0);
        assert_eq!(m.amortized_stalls_per_cycle(), 0.0);
        let mut counts = HashMap::new();
        counts.insert(0usize, 5usize);
        m.finish_cycle(&counts);
        assert_eq!(m.amortized_stalls_per_cycle(), 4.0);
    }
}
