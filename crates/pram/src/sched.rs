//! Schedulers: who steps on each cycle.
//!
//! Wait-freedom is a claim quantified over *all* schedules. The simulator
//! therefore separates the machine (which executes whatever set of
//! processors the scheduler picks) from the scheduling policy. The
//! [`SyncScheduler`] reproduces the paper's "normal execution" — a
//! faultless synchronous CRCW PRAM, the setting of every run-time lemma —
//! while the others realize the asynchrony and adversity that
//! wait-freedom must survive.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::word::Pid;

/// Chooses, each cycle, which runnable processors take a step.
pub trait Scheduler {
    /// Appends to `out` the subset of `runnable` that steps on `cycle`.
    ///
    /// Implementations must only select pids present in `runnable` and must
    /// not select duplicates; the machine debug-asserts both.
    fn select(&mut self, cycle: u64, runnable: &[Pid], out: &mut Vec<Pid>);
}

/// Synchronous lock-step execution: every runnable processor steps every
/// cycle. This is the faultless CRCW PRAM of the paper's run-time analysis.
#[derive(Clone, Copy, Debug, Default)]
pub struct SyncScheduler;

impl Scheduler for SyncScheduler {
    fn select(&mut self, _cycle: u64, runnable: &[Pid], out: &mut Vec<Pid>) {
        out.extend_from_slice(runnable);
    }
}

/// Each runnable processor independently steps with probability `p` — a
/// simple model of uncoordinated delays (page faults, preemption).
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    rng: StdRng,
    p: f64,
}

impl RandomScheduler {
    /// Creates a scheduler that steps each processor with probability `p`,
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `(0.0, 1.0]`.
    pub fn new(seed: u64, p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "step probability must be in (0, 1]");
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
            p,
        }
    }
}

impl Scheduler for RandomScheduler {
    fn select(&mut self, _cycle: u64, runnable: &[Pid], out: &mut Vec<Pid>) {
        for &pid in runnable {
            if self.rng.gen_bool(self.p) {
                out.push(pid);
            }
        }
        // Never let a cycle go completely idle while work remains; a
        // schedule that steps no one forever says nothing about the
        // algorithm. Pick one survivor at random.
        if out.is_empty() && !runnable.is_empty() {
            out.push(runnable[self.rng.gen_range(0..runnable.len())]);
        }
    }
}

/// Fully sequential execution: exactly one processor steps per cycle, in
/// round-robin order. The extreme point of asynchrony — every interleaving
/// a single-core OS could produce is a subsequence of these.
#[derive(Clone, Copy, Debug, Default)]
pub struct SingleStepScheduler {
    next: usize,
}

impl SingleStepScheduler {
    /// Creates the scheduler starting from the first runnable processor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for SingleStepScheduler {
    fn select(&mut self, _cycle: u64, runnable: &[Pid], out: &mut Vec<Pid>) {
        if runnable.is_empty() {
            return;
        }
        self.next %= runnable.len();
        out.push(runnable[self.next]);
        self.next += 1;
    }
}

/// Steps a fixed-size random subset of processors each cycle — models a
/// machine with fewer cores than threads under an oblivious OS scheduler.
#[derive(Clone, Debug)]
pub struct RoundRobinScheduler {
    rng: StdRng,
    width: usize,
}

impl RoundRobinScheduler {
    /// Creates a scheduler that steps `width` random runnable processors
    /// per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(seed: u64, width: usize) -> Self {
        assert!(width > 0, "scheduler width must be positive");
        RoundRobinScheduler {
            rng: StdRng::seed_from_u64(seed),
            width,
        }
    }
}

impl Scheduler for RoundRobinScheduler {
    fn select(&mut self, _cycle: u64, runnable: &[Pid], out: &mut Vec<Pid>) {
        if runnable.len() <= self.width {
            out.extend_from_slice(runnable);
            return;
        }
        let mut pool: Vec<Pid> = runnable.to_vec();
        pool.shuffle(&mut self.rng);
        out.extend(pool.into_iter().take(self.width));
    }
}

/// One scheduling decision taken by a [`ScriptedScheduler`]: the cycle,
/// the processor that stepped, and the runnable alternatives it was chosen
/// from. The schedule explorer ([`crate::explore::Explorer`]) branches on
/// these records to enumerate preemption points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepRecord {
    /// Machine cycle of the decision.
    pub cycle: u64,
    /// Index of the processor that stepped.
    pub chosen: usize,
    /// Indices of every processor that was runnable at that cycle
    /// (including `chosen`), in ascending order.
    pub runnable: Vec<usize>,
}

/// A deterministic one-processor-per-cycle scheduler driven by an explicit
/// preemption script.
///
/// The default policy keeps stepping the current processor while it stays
/// runnable and falls over to the lowest-index runnable processor when it
/// halts or crashes. A scripted preemption `(cycle, pid)` overrides the
/// default at exactly that cycle, switching to `pid` if it is runnable
/// (and silently keeping the default otherwise, so shrunk scripts stay
/// well-formed). Because exactly one processor steps per cycle, the
/// machine's arbitrary-winner arbitration never fires: a run is
/// reproducible from the preemption list alone, which is what makes the
/// explorer's replay tokens possible.
#[derive(Clone, Debug, Default)]
pub struct ScriptedScheduler {
    preemptions: Vec<(u64, usize)>,
    cursor: usize,
    current: Option<usize>,
    logging: bool,
    log: Vec<StepRecord>,
}

impl ScriptedScheduler {
    /// Creates a scheduler that applies `preemptions` — `(cycle, pid)`
    /// pairs — on top of the default keep-running-then-lowest-index
    /// policy. The list is sorted by cycle; at most one preemption fires
    /// per cycle.
    pub fn new(mut preemptions: Vec<(u64, usize)>) -> Self {
        preemptions.sort_by_key(|&(cycle, _)| cycle);
        ScriptedScheduler {
            preemptions,
            cursor: 0,
            current: None,
            logging: false,
            log: Vec::new(),
        }
    }

    /// Enables recording a [`StepRecord`] per decision (the explorer's
    /// branching input). Off by default to keep replays cheap.
    pub fn enable_log(&mut self) {
        self.logging = true;
    }

    /// The decisions recorded so far (empty unless
    /// [`ScriptedScheduler::enable_log`] was called).
    pub fn log(&self) -> &[StepRecord] {
        &self.log
    }

    /// Consumes the scheduler, returning its decision log.
    pub fn into_log(self) -> Vec<StepRecord> {
        self.log
    }
}

impl Scheduler for ScriptedScheduler {
    fn select(&mut self, cycle: u64, runnable: &[Pid], out: &mut Vec<Pid>) {
        if runnable.is_empty() {
            return;
        }
        // Preemptions scheduled for cycles where nobody was runnable are
        // skipped, never applied late: replay must not depend on how long
        // an all-crashed gap lasted.
        while self.cursor < self.preemptions.len() && self.preemptions[self.cursor].0 < cycle {
            self.cursor += 1;
        }
        let mut choice = match self.current {
            Some(c) if runnable.iter().any(|p| p.index() == c) => c,
            _ => runnable[0].index(),
        };
        if self.cursor < self.preemptions.len() && self.preemptions[self.cursor].0 == cycle {
            let (_, pid) = self.preemptions[self.cursor];
            self.cursor += 1;
            if runnable.iter().any(|p| p.index() == pid) {
                choice = pid;
            }
        }
        self.current = Some(choice);
        if self.logging {
            self.log.push(StepRecord {
                cycle,
                chosen: choice,
                runnable: runnable.iter().map(|p| p.index()).collect(),
            });
        }
        out.push(Pid::new(choice));
    }
}

/// A scripted adversary: an arbitrary closure over (cycle, runnable set).
///
/// Tests use this to stall victims at the worst possible moments, e.g.
/// suspending a processor that has just won a CAS, to show other
/// processors still finish.
pub struct AdversaryScheduler<F>
where
    F: FnMut(u64, &[Pid]) -> Vec<Pid>,
{
    policy: F,
}

impl<F> AdversaryScheduler<F>
where
    F: FnMut(u64, &[Pid]) -> Vec<Pid>,
{
    /// Wraps an arbitrary scheduling policy.
    pub fn new(policy: F) -> Self {
        AdversaryScheduler { policy }
    }
}

impl<F> Scheduler for AdversaryScheduler<F>
where
    F: FnMut(u64, &[Pid]) -> Vec<Pid>,
{
    fn select(&mut self, cycle: u64, runnable: &[Pid], out: &mut Vec<Pid>) {
        out.extend((self.policy)(cycle, runnable));
    }
}

impl<F> std::fmt::Debug for AdversaryScheduler<F>
where
    F: FnMut(u64, &[Pid]) -> Vec<Pid>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdversaryScheduler").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(v: &[usize]) -> Vec<Pid> {
        v.iter().map(|&i| Pid::new(i)).collect()
    }

    #[test]
    fn sync_selects_everyone() {
        let mut s = SyncScheduler;
        let mut out = Vec::new();
        s.select(0, &pids(&[0, 1, 2]), &mut out);
        assert_eq!(out, pids(&[0, 1, 2]));
    }

    #[test]
    fn single_step_cycles_through() {
        let mut s = SingleStepScheduler::new();
        let r = pids(&[0, 1, 2]);
        let mut seen = Vec::new();
        for c in 0..6 {
            let mut out = Vec::new();
            s.select(c, &r, &mut out);
            assert_eq!(out.len(), 1);
            seen.push(out[0].index());
        }
        assert_eq!(seen, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn single_step_handles_shrinking_runnable_set() {
        let mut s = SingleStepScheduler::new();
        let mut out = Vec::new();
        s.select(0, &pids(&[0, 1, 2]), &mut out);
        out.clear();
        s.select(1, &pids(&[2]), &mut out);
        assert_eq!(out, pids(&[2]));
    }

    #[test]
    fn random_scheduler_never_idles_forever() {
        let mut s = RandomScheduler::new(7, 0.01);
        let r = pids(&[0, 1]);
        for c in 0..100 {
            let mut out = Vec::new();
            s.select(c, &r, &mut out);
            assert!(!out.is_empty());
            assert!(out.iter().all(|p| r.contains(p)));
        }
    }

    #[test]
    #[should_panic(expected = "step probability")]
    fn random_scheduler_rejects_zero_probability() {
        RandomScheduler::new(0, 0.0);
    }

    #[test]
    fn round_robin_respects_width() {
        let mut s = RoundRobinScheduler::new(3, 2);
        let r = pids(&[0, 1, 2, 3, 4]);
        for c in 0..50 {
            let mut out = Vec::new();
            s.select(c, &r, &mut out);
            assert_eq!(out.len(), 2);
            let mut sorted: Vec<usize> = out.iter().map(|p| p.index()).collect();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 2, "no duplicate picks");
        }
    }

    #[test]
    fn round_robin_selects_all_when_few_runnable() {
        let mut s = RoundRobinScheduler::new(3, 4);
        let mut out = Vec::new();
        s.select(0, &pids(&[0, 1]), &mut out);
        assert_eq!(out, pids(&[0, 1]));
    }

    #[test]
    fn random_scheduler_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = RandomScheduler::new(seed, 0.5);
            let r = pids(&[0, 1, 2, 3]);
            let mut all = Vec::new();
            for c in 0..20 {
                let mut out = Vec::new();
                s.select(c, &r, &mut out);
                all.push(out);
            }
            all
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should differ");
    }

    #[test]
    fn round_robin_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = RoundRobinScheduler::new(seed, 2);
            let r = pids(&[0, 1, 2, 3, 4]);
            let mut all = Vec::new();
            for c in 0..20 {
                let mut out = Vec::new();
                s.select(c, &r, &mut out);
                all.push(out);
            }
            all
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn scripted_default_runs_lowest_index_to_completion() {
        let mut s = ScriptedScheduler::new(Vec::new());
        let mut out = Vec::new();
        s.select(0, &pids(&[0, 1, 2]), &mut out);
        assert_eq!(out, pids(&[0]));
        out.clear();
        // Processor 0 is gone: fall over to the lowest-index survivor.
        s.select(1, &pids(&[1, 2]), &mut out);
        assert_eq!(out, pids(&[1]));
        out.clear();
        // ...and stick with it while it stays runnable.
        s.select(2, &pids(&[1, 2]), &mut out);
        assert_eq!(out, pids(&[1]));
    }

    #[test]
    fn scripted_preemption_switches_at_its_cycle() {
        let mut s = ScriptedScheduler::new(vec![(1, 2)]);
        let r = pids(&[0, 1, 2]);
        let mut chosen = Vec::new();
        for c in 0..4 {
            let mut out = Vec::new();
            s.select(c, &r, &mut out);
            chosen.push(out[0].index());
        }
        assert_eq!(chosen, vec![0, 2, 2, 2]);
    }

    #[test]
    fn scripted_preemption_to_non_runnable_pid_is_ignored() {
        let mut s = ScriptedScheduler::new(vec![(0, 7)]);
        let mut out = Vec::new();
        s.select(0, &pids(&[0, 1]), &mut out);
        assert_eq!(out, pids(&[0]));
    }

    #[test]
    fn scripted_missed_preemption_is_never_applied_late() {
        let mut s = ScriptedScheduler::new(vec![(1, 1)]);
        let r = pids(&[0, 1]);
        let mut out = Vec::new();
        s.select(0, &r, &mut out);
        out.clear();
        // Cycle 1 had nobody runnable (select not called); the preemption
        // must not fire at cycle 2.
        s.select(2, &r, &mut out);
        assert_eq!(out, pids(&[0]));
    }

    #[test]
    fn scripted_log_records_alternatives() {
        let mut s = ScriptedScheduler::new(vec![(1, 1)]);
        s.enable_log();
        let r = pids(&[0, 1]);
        for c in 0..2 {
            let mut out = Vec::new();
            s.select(c, &r, &mut out);
        }
        let log = s.into_log();
        assert_eq!(
            log,
            vec![
                StepRecord {
                    cycle: 0,
                    chosen: 0,
                    runnable: vec![0, 1]
                },
                StepRecord {
                    cycle: 1,
                    chosen: 1,
                    runnable: vec![0, 1]
                },
            ]
        );
    }

    #[test]
    fn adversary_runs_policy() {
        let mut s = AdversaryScheduler::new(|cycle, runnable: &[Pid]| {
            if cycle % 2 == 0 {
                runnable.to_vec()
            } else {
                Vec::new()
            }
        });
        let r = pids(&[0, 1]);
        let mut out = Vec::new();
        s.select(0, &r, &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        s.select(1, &r, &mut out);
        assert!(out.is_empty());
    }
}
