//! Execution tracing: a bounded ring buffer of per-operation events.
//!
//! Developing a new PRAM state machine usually fails as "the run never
//! terminates" or "cell X holds the wrong value", with no visibility into
//! the interleaving that caused it. The trace records every executed
//! operation — `(cycle, pid, op, result)` — in a fixed-capacity ring
//! buffer so the tail of a misbehaving run can be dumped without paying
//! unbounded memory on long runs.
//!
//! Enable with [`crate::Machine::record_trace`]; read back with
//! [`crate::Machine::trace`].

use std::collections::VecDeque;
use std::fmt;

use crate::op::{Op, OpResult};
use crate::word::Pid;

/// One executed operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle in which the operation executed.
    pub cycle: u64,
    /// The issuing processor.
    pub pid: Pid,
    /// The operation.
    pub op: Op,
    /// Its result (`None` for [`Op::Halt`], which produces none).
    pub result: Option<OpResult>,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>6}] {:>5} ", self.cycle, self.pid.to_string())?;
        match (self.op, self.result) {
            (Op::Read(a), Some(OpResult::Read(v))) => write!(f, "read  {a} -> {v}"),
            (Op::Write(a, v), _) => write!(f, "write {a} <- {v}"),
            (
                Op::Cas {
                    addr,
                    expected,
                    new,
                },
                Some(OpResult::Cas { won, current }),
            ) => {
                write!(
                    f,
                    "cas   {addr}: {expected} -> {new} ({}; now {current})",
                    if won { "won" } else { "lost" }
                )
            }
            (Op::Nop, _) => write!(f, "nop"),
            (Op::Halt, _) => write!(f, "halt"),
            (op, result) => write!(f, "{op:?} -> {result:?}"),
        }
    }
}

/// Fixed-capacity ring buffer of [`TraceEvent`]s (oldest evicted first).
#[derive(Clone, Debug)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            events: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if full.
    pub(crate) fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Only the events of one processor, oldest first.
    pub fn of(&self, pid: Pid) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.pid == pid)
    }

    /// Only the events touching one cell, oldest first.
    pub fn touching(&self, addr: crate::Addr) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.op.addr() == Some(addr))
    }

    /// Renders the retained tail as text, one event per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier events dropped ...\n",
                self.dropped
            ));
        }
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, pid: usize, op: Op, result: Option<OpResult>) -> TraceEvent {
        TraceEvent {
            cycle,
            pid: Pid::new(pid),
            op,
            result,
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::new(2);
        t.push(ev(0, 0, Op::Nop, Some(OpResult::Nop)));
        t.push(ev(1, 0, Op::Nop, Some(OpResult::Nop)));
        t.push(ev(2, 0, Op::Nop, Some(OpResult::Nop)));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.events().next().unwrap().cycle, 1);
    }

    #[test]
    fn filters_by_pid_and_cell() {
        let mut t = Trace::new(10);
        t.push(ev(0, 0, Op::Read(5), Some(OpResult::Read(1))));
        t.push(ev(0, 1, Op::Write(5, 2), Some(OpResult::Write)));
        t.push(ev(1, 0, Op::Read(7), Some(OpResult::Read(0))));
        assert_eq!(t.of(Pid::new(0)).count(), 2);
        assert_eq!(t.of(Pid::new(1)).count(), 1);
        assert_eq!(t.touching(5).count(), 2);
        assert_eq!(t.touching(7).count(), 1);
        assert_eq!(t.touching(9).count(), 0);
    }

    #[test]
    fn display_formats_are_readable() {
        let read = ev(3, 1, Op::Read(4), Some(OpResult::Read(9)));
        assert_eq!(read.to_string(), "[     3]    P1 read  4 -> 9");
        let cas = ev(
            4,
            2,
            Op::Cas {
                addr: 8,
                expected: 0,
                new: 5,
            },
            Some(OpResult::Cas {
                won: true,
                current: 5,
            }),
        );
        assert!(cas.to_string().contains("cas   8: 0 -> 5 (won; now 5)"));
    }

    #[test]
    fn dump_mentions_dropped_events() {
        let mut t = Trace::new(1);
        t.push(ev(0, 0, Op::Nop, Some(OpResult::Nop)));
        t.push(ev(1, 0, Op::Nop, Some(OpResult::Nop)));
        let dump = t.dump();
        assert!(dump.contains("1 earlier events dropped"));
        assert!(dump.contains("nop"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Trace::new(0);
    }
}
