//! Bump allocation of shared-memory regions.
//!
//! PRAM programs address flat memory; a [`MemoryLayout`] carves that flat
//! space into named [`Region`]s so each algorithm crate can lay out its
//! arrays (`A`, the WAT, the winner tree, ...) without hard-coding
//! addresses.

use crate::word::Addr;

/// Bump allocator over the machine's address space.
#[derive(Clone, Debug, Default)]
pub struct MemoryLayout {
    next: Addr,
}

impl MemoryLayout {
    /// Starts a layout at address 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves `len` consecutive cells and returns the region.
    pub fn region(&mut self, len: usize) -> Region {
        let base = self.next;
        self.next += len;
        Region { base, len }
    }

    /// Total cells reserved so far — the memory size the machine needs.
    pub fn total(&self) -> usize {
        self.next
    }
}

/// A contiguous range of shared-memory cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    base: Addr,
    len: usize,
}

impl Region {
    /// A sub-window of `len` cells starting at `base` of an existing
    /// region, for structures that carve one allocation into per-group
    /// chunks. The caller is responsible for `base` lying inside memory
    /// it owns.
    pub fn window(base: Addr, len: usize) -> Region {
        Region { base, len }
    }

    /// First address of the region.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` — regions bound-check so that a logic error in
    /// an algorithm cannot silently alias another algorithm's memory.
    pub fn at(&self, i: usize) -> Addr {
        assert!(
            i < self.len,
            "index {i} out of region of length {}",
            self.len
        );
        self.base + i
    }

    /// The region as a `std::ops::Range` of addresses.
    pub fn range(&self) -> std::ops::Range<Addr> {
        self.base..self.base + self.len
    }

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.base + self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_contiguous() {
        let mut l = MemoryLayout::new();
        let a = l.region(10);
        let b = l.region(5);
        assert_eq!(a.base(), 0);
        assert_eq!(a.len(), 10);
        assert_eq!(b.base(), 10);
        assert_eq!(b.len(), 5);
        assert_eq!(l.total(), 15);
        assert!(a.range().all(|addr| !b.contains(addr)));
    }

    #[test]
    fn at_addresses_elements() {
        let mut l = MemoryLayout::new();
        let _pad = l.region(7);
        let r = l.region(3);
        assert_eq!(r.at(0), 7);
        assert_eq!(r.at(2), 9);
        assert!(r.contains(8));
        assert!(!r.contains(10));
    }

    #[test]
    #[should_panic(expected = "out of region")]
    fn at_checks_bounds() {
        let mut l = MemoryLayout::new();
        let r = l.region(3);
        r.at(3);
    }

    #[test]
    fn empty_region() {
        let mut l = MemoryLayout::new();
        let r = l.region(0);
        assert!(r.is_empty());
        assert_eq!(r.range().count(), 0);
    }
}
