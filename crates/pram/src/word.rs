//! Fundamental value types of the simulated machine.

use std::fmt;

/// The machine word stored in every shared-memory cell.
///
/// A signed 64-bit word is wide enough for keys, indices and the sentinel
/// values (`EMPTY`, `DONE`, ...) used by the paper's algorithms, which are
/// conventionally encoded as non-positive numbers so they can never collide
/// with 1-based array indices.
pub type Word = i64;

/// Address of a shared-memory cell.
pub type Addr = usize;

/// Identifier of a simulated processor.
///
/// Processor IDs are dense and zero-based: a machine with `P` processors
/// uses IDs `0..P`. The sorting algorithm reads the *bits* of the ID to
/// spread processors over subtrees (Figure 5 of the paper), which
/// [`Pid::bit`] exposes directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(usize);

impl Pid {
    /// Creates a processor ID from its dense index.
    pub fn new(index: usize) -> Self {
        Pid(index)
    }

    /// Returns the dense index of this processor.
    pub fn index(self) -> usize {
        self.0
    }

    /// Returns bit `d` (0 = least significant) of the processor ID.
    ///
    /// Phase 2 of the sort uses bit `d` at tree depth `d` to decide which
    /// child a processor visits first.
    pub fn bit(self, d: u32) -> bool {
        if d >= usize::BITS {
            false
        } else {
            (self.0 >> d) & 1 == 1
        }
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for Pid {
    fn from(index: usize) -> Self {
        Pid(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_roundtrip() {
        let p = Pid::new(17);
        assert_eq!(p.index(), 17);
        assert_eq!(Pid::from(17usize), p);
    }

    #[test]
    fn pid_bits_match_binary_representation() {
        let p = Pid::new(0b1011_0100);
        assert!(!p.bit(0));
        assert!(!p.bit(1));
        assert!(p.bit(2));
        assert!(!p.bit(3));
        assert!(p.bit(4));
        assert!(p.bit(5));
        assert!(!p.bit(6));
        assert!(p.bit(7));
        assert!(!p.bit(63));
    }

    #[test]
    fn pid_bit_past_word_width_is_zero() {
        let p = Pid::new(usize::MAX);
        assert!(p.bit(usize::BITS - 1));
        assert!(!p.bit(usize::BITS));
        assert!(!p.bit(200));
    }

    #[test]
    fn pid_display_is_compact() {
        assert_eq!(Pid::new(3).to_string(), "P3");
    }

    #[test]
    fn pid_ordering_follows_index() {
        assert!(Pid::new(1) < Pid::new(2));
    }
}
