//! Shared-memory operations and their results.

use crate::word::{Addr, Word};

/// One shared-memory operation, issued by a [`crate::Process`] per cycle.
///
/// A PRAM processor performs at most one shared-memory access per machine
/// cycle; local computation between accesses is free, following standard
/// PRAM cost accounting. [`Op::Nop`] burns a cycle without touching memory
/// (used e.g. by the winner-selection wait loop of Figure 9, whose delays
/// must cost real time but no memory traffic).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Read the cell at the address; the value arrives in the next step as
    /// [`OpResult::Read`].
    Read(Addr),
    /// Write the value to the cell. Under arbitrary-winner CRCW semantics
    /// concurrent writers all "succeed" but one value persists.
    Write(Addr, Word),
    /// Atomic compare-and-swap: if the cell holds `expected`, store `new`.
    /// The next step receives [`OpResult::Cas`] with the outcome.
    Cas {
        /// Cell to operate on.
        addr: Addr,
        /// Value the cell must currently hold for the swap to occur.
        expected: Word,
        /// Value stored on success.
        new: Word,
    },
    /// Spend one cycle on local computation; no memory access, no contention.
    Nop,
    /// The process has finished; it will never be stepped again.
    Halt,
}

impl Op {
    /// The address this operation touches, if it accesses memory at all.
    pub fn addr(&self) -> Option<Addr> {
        match *self {
            Op::Read(a) | Op::Write(a, _) | Op::Cas { addr: a, .. } => Some(a),
            Op::Nop | Op::Halt => None,
        }
    }

    /// Whether the operation accesses shared memory (and therefore counts
    /// toward work and contention).
    pub fn is_memory_access(&self) -> bool {
        self.addr().is_some()
    }
}

/// Result of the previous [`Op`], delivered on a process's next step.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpResult {
    /// Value read from the cell.
    Read(Word),
    /// The write was applied (possibly overwritten by a concurrent winner;
    /// arbitrary-CRCW writers do not learn whether they won).
    Write,
    /// Outcome of a compare-and-swap.
    Cas {
        /// `true` if this processor's CAS installed `new`.
        won: bool,
        /// The cell's value after all of this cycle's operations on it.
        current: Word,
    },
    /// A [`Op::Nop`] cycle elapsed.
    Nop,
}

impl OpResult {
    /// Convenience accessor: the value carried by a read result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::Read`]; processes use this
    /// when their state machine guarantees the previous op was a read.
    pub fn read_value(&self) -> Word {
        match *self {
            OpResult::Read(v) => v,
            ref other => panic!("expected read result, got {other:?}"),
        }
    }

    /// Convenience accessor: whether a CAS result won.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::Cas`].
    pub fn cas_won(&self) -> bool {
        match *self {
            OpResult::Cas { won, .. } => won,
            ref other => panic!("expected CAS result, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_of_memory_ops() {
        assert_eq!(Op::Read(3).addr(), Some(3));
        assert_eq!(Op::Write(4, 9).addr(), Some(4));
        assert_eq!(
            Op::Cas {
                addr: 5,
                expected: 0,
                new: 1
            }
            .addr(),
            Some(5)
        );
        assert_eq!(Op::Nop.addr(), None);
        assert_eq!(Op::Halt.addr(), None);
    }

    #[test]
    fn memory_access_classification() {
        assert!(Op::Read(0).is_memory_access());
        assert!(Op::Write(0, 0).is_memory_access());
        assert!(Op::Cas {
            addr: 0,
            expected: 0,
            new: 1
        }
        .is_memory_access());
        assert!(!Op::Nop.is_memory_access());
        assert!(!Op::Halt.is_memory_access());
    }

    #[test]
    fn read_value_accessor() {
        assert_eq!(OpResult::Read(42).read_value(), 42);
    }

    #[test]
    #[should_panic(expected = "expected read result")]
    fn read_value_panics_on_other_results() {
        OpResult::Write.read_value();
    }

    #[test]
    fn cas_won_accessor() {
        assert!(OpResult::Cas {
            won: true,
            current: 1
        }
        .cas_won());
        assert!(!OpResult::Cas {
            won: false,
            current: 1
        }
        .cas_won());
    }

    #[test]
    #[should_panic(expected = "expected CAS result")]
    fn cas_won_panics_on_other_results() {
        OpResult::Nop.cas_won();
    }
}
