//! The process abstraction: programs as per-cycle state machines.

use crate::op::{Op, OpResult};

/// A simulated PRAM program, advanced one shared-memory operation at a time.
///
/// On every cycle in which the scheduler steps this process, the machine
/// calls [`Process::step`] with the result of the *previous* operation
/// (`None` on the very first step) and executes the operation the call
/// returns. Returning [`Op::Halt`] retires the process.
///
/// Implementations are state machines: any amount of local computation may
/// happen inside `step`, but each shared-memory access must be its own
/// step. That granularity is what makes wait-freedom observable — the
/// scheduler may suspend or crash the process between any two operations.
pub trait Process {
    /// Receives the previous operation's result and returns the next
    /// operation.
    fn step(&mut self, last: Option<OpResult>) -> Op;

    /// A short human-readable label for diagnostics.
    fn label(&self) -> &'static str {
        "process"
    }
}

/// Lifecycle state of a process inside a [`crate::Machine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessState {
    /// Eligible for scheduling.
    Runnable,
    /// Returned [`Op::Halt`]; finished normally.
    Halted,
    /// Crashed by failure injection; takes no further steps (unless
    /// revived in the fail-revive model).
    Crashed,
}

impl ProcessState {
    /// Whether the process can be scheduled this cycle.
    pub fn is_runnable(self) -> bool {
        self == ProcessState::Runnable
    }
}

/// A process defined by a closure, convenient for tests.
///
/// The closure receives the previous result and returns the next op.
pub struct FnProcess<F: FnMut(Option<OpResult>) -> Op> {
    f: F,
}

impl<F: FnMut(Option<OpResult>) -> Op> FnProcess<F> {
    /// Wraps a closure as a [`Process`].
    pub fn new(f: F) -> Self {
        FnProcess { f }
    }
}

impl<F: FnMut(Option<OpResult>) -> Op> Process for FnProcess<F> {
    fn step(&mut self, last: Option<OpResult>) -> Op {
        (self.f)(last)
    }

    fn label(&self) -> &'static str {
        "fn-process"
    }
}

impl<F: FnMut(Option<OpResult>) -> Op> std::fmt::Debug for FnProcess<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnProcess").finish_non_exhaustive()
    }
}

/// Runs a sequence of processes back to back, without any barrier.
///
/// When the current stage returns [`Op::Halt`], the next stage starts *in
/// the same cycle* — mirroring the paper's phase structure, where "any
/// processor that completes the first phase immediately goes on to the
/// second phase" with no synchronization. The composite halts when the
/// last stage halts.
pub struct SeqProcess {
    stages: Vec<Box<dyn Process>>,
    current: usize,
    fresh: bool,
}

impl SeqProcess {
    /// Chains `stages` into a single process.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<Box<dyn Process>>) -> Self {
        assert!(!stages.is_empty(), "need at least one stage");
        SeqProcess {
            stages,
            current: 0,
            fresh: true,
        }
    }

    /// Index of the stage currently executing (for diagnostics).
    pub fn current_stage(&self) -> usize {
        self.current
    }
}

impl Process for SeqProcess {
    fn step(&mut self, mut last: Option<OpResult>) -> Op {
        loop {
            // A freshly entered stage must not see the previous stage's
            // final op result.
            let fed = if self.fresh { None } else { last.take() };
            self.fresh = false;
            match self.stages[self.current].step(fed) {
                Op::Halt => {
                    if self.current + 1 == self.stages.len() {
                        return Op::Halt;
                    }
                    self.current += 1;
                    self.fresh = true;
                }
                op => return op,
            }
        }
    }

    fn label(&self) -> &'static str {
        self.stages[self.current].label()
    }
}

impl std::fmt::Debug for SeqProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeqProcess")
            .field("stages", &self.stages.len())
            .field("current", &self.current)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runnable_classification() {
        assert!(ProcessState::Runnable.is_runnable());
        assert!(!ProcessState::Halted.is_runnable());
        assert!(!ProcessState::Crashed.is_runnable());
    }

    #[test]
    fn fn_process_threads_results() {
        let mut p = FnProcess::new(|last| match last {
            None => Op::Read(0),
            Some(OpResult::Read(v)) => Op::Write(1, v + 1),
            Some(OpResult::Write) => Op::Halt,
            other => panic!("unexpected {other:?}"),
        });
        assert_eq!(p.step(None), Op::Read(0));
        assert_eq!(p.step(Some(OpResult::Read(5))), Op::Write(1, 6));
        assert_eq!(p.step(Some(OpResult::Write)), Op::Halt);
        assert_eq!(p.label(), "fn-process");
    }

    fn one_shot(op: Op) -> Box<dyn Process> {
        let mut fired = false;
        Box::new(FnProcess::new(move |_| {
            if fired {
                Op::Halt
            } else {
                fired = true;
                op
            }
        }))
    }

    #[test]
    fn seq_runs_stages_in_order_without_gap_cycles() {
        let mut seq = SeqProcess::new(vec![one_shot(Op::Write(0, 1)), one_shot(Op::Write(1, 2))]);
        assert_eq!(seq.current_stage(), 0);
        assert_eq!(seq.step(None), Op::Write(0, 1));
        // Stage 0 halts on its second step; stage 1's first op is emitted
        // in the same cycle.
        assert_eq!(seq.step(Some(OpResult::Write)), Op::Write(1, 2));
        assert_eq!(seq.current_stage(), 1);
        assert_eq!(seq.step(Some(OpResult::Write)), Op::Halt);
    }

    #[test]
    fn seq_does_not_leak_results_across_stages() {
        // Stage 1 must see None on its first step, not stage 0's final
        // result.
        let stage1 = Box::new(FnProcess::new(|last| {
            assert!(last.is_none(), "fresh stage saw stale result {last:?}");
            Op::Halt
        }));
        let mut seq = SeqProcess::new(vec![one_shot(Op::Read(0)), stage1]);
        assert_eq!(seq.step(None), Op::Read(0));
        assert_eq!(seq.step(Some(OpResult::Read(7))), Op::Halt);
    }

    #[test]
    fn seq_single_stage_is_transparent() {
        let mut seq = SeqProcess::new(vec![one_shot(Op::Nop)]);
        assert_eq!(seq.step(None), Op::Nop);
        assert_eq!(seq.step(Some(OpResult::Nop)), Op::Halt);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn seq_rejects_empty() {
        SeqProcess::new(Vec::new());
    }
}
