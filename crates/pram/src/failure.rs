//! Failure injection: crash and revive plans.
//!
//! Wait-freedom (Herlihy) requires every operation to finish in a bounded
//! number of its *own* steps regardless of other processors' failures. The
//! plans here script those failures: deterministic crash schedules for
//! regression tests, and seeded random schedules for stochastic sweeps
//! like experiment E9.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::word::Pid;

/// A crash or revive of one processor at a scheduled cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureEvent {
    /// Stop stepping the processor.
    Crash(Pid),
    /// Resume a crashed processor in place (undetectable restart).
    Revive(Pid),
}

/// A schedule of [`FailureEvent`]s keyed by cycle, applied by
/// [`crate::Machine::run_with_failures`] just before each cycle executes.
#[derive(Clone, Debug, Default)]
pub struct FailurePlan {
    events: Vec<(u64, FailureEvent)>,
}

impl FailurePlan {
    /// Creates an empty plan (no failures — the paper's "normal
    /// execution").
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `pid` to crash at `cycle`.
    pub fn crash_at(mut self, cycle: u64, pid: Pid) -> Self {
        self.events.push((cycle, FailureEvent::Crash(pid)));
        self
    }

    /// Schedules `pid` to revive at `cycle`.
    pub fn revive_at(mut self, cycle: u64, pid: Pid) -> Self {
        self.events.push((cycle, FailureEvent::Revive(pid)));
        self
    }

    /// Builds a plan that crashes a random `fraction` of the first
    /// `nprocs` processors at random cycles within `0..horizon`,
    /// deterministically from `seed`. At least one processor is always
    /// left alive: a run in which *everyone* crashes trivially cannot
    /// sort.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0.0, 1.0]` or `nprocs` is 0.
    pub fn random_crashes(nprocs: usize, fraction: f64, horizon: u64, seed: u64) -> Self {
        assert!(nprocs > 0, "need at least one processor");
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let max_victims = nprocs - 1;
        let victims = ((nprocs as f64 * fraction).round() as usize).min(max_victims);
        let mut pool: Vec<usize> = (0..nprocs).collect();
        pool.shuffle(&mut rng);
        let mut plan = FailurePlan::new();
        for &v in pool.iter().take(victims) {
            let cycle = rng.gen_range(0..horizon.max(1));
            plan.events.push((cycle, FailureEvent::Crash(Pid::new(v))));
        }
        plan
    }

    /// Builds a fail-revive storm (§1.1's model: processors fail and
    /// "later possibly revive and proceed in an undetectable manner"):
    /// each of the first `nprocs` processors suffers `rounds` independent
    /// crash/revive pairs at random cycles within `0..horizon`,
    /// deterministically from `seed`. Unlike [`FailurePlan::random_crashes`]
    /// every processor may be hit — revivals guarantee eventual progress.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` or `horizon` is zero.
    pub fn random_crash_revive(nprocs: usize, rounds: usize, horizon: u64, seed: u64) -> Self {
        assert!(nprocs > 0, "need at least one processor");
        assert!(horizon > 0, "need a positive horizon");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FailurePlan::new();
        for p in 0..nprocs {
            for _ in 0..rounds {
                // Crashes land strictly before `horizon`...
                let down = rng.gen_range(0..horizon);
                let up = rng.gen_range(down..horizon);
                plan.events.push((down, FailureEvent::Crash(Pid::new(p))));
                plan.events.push((up, FailureEvent::Revive(Pid::new(p))));
            }
            // ...and a final revive at `horizon` guarantees overlapping
            // pairs can never leave the processor permanently down.
            plan.events
                .push((horizon, FailureEvent::Revive(Pid::new(p))));
        }
        plan
    }

    /// Every scheduled `(cycle, event)` pair in insertion order — the
    /// order [`FailurePlan::events_at`] applies same-cycle events in.
    /// The schedule explorer uses this to fold a target's plan into its
    /// self-contained replay tokens.
    pub fn events(&self) -> impl Iterator<Item = (u64, FailureEvent)> + '_ {
        self.events.iter().copied()
    }

    /// All events scheduled for `cycle`.
    pub fn events_at(&self, cycle: u64) -> impl Iterator<Item = FailureEvent> + '_ {
        self.events
            .iter()
            .filter(move |&&(c, _)| c == cycle)
            .map(|&(_, e)| e)
    }

    /// The latest cycle at which this plan schedules a revive, if any.
    /// The machine's run loop uses this to keep ticking through a moment
    /// where *every* processor happens to be down but revivals are still
    /// pending.
    pub fn last_revive_cycle(&self) -> Option<u64> {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, FailureEvent::Revive(_)))
            .map(|&(c, _)| c)
            .max()
    }

    /// Total number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of distinct processors this plan ever crashes.
    pub fn crash_victims(&self) -> usize {
        let mut pids: Vec<usize> = self
            .events
            .iter()
            .filter_map(|&(_, e)| match e {
                FailureEvent::Crash(p) => Some(p.index()),
                FailureEvent::Revive(_) => None,
            })
            .collect();
        pids.sort_unstable();
        pids.dedup();
        pids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events() {
        let plan = FailurePlan::new()
            .crash_at(3, Pid::new(0))
            .crash_at(3, Pid::new(1))
            .revive_at(7, Pid::new(0));
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        let at3: Vec<_> = plan.events_at(3).collect();
        assert_eq!(
            at3,
            vec![
                FailureEvent::Crash(Pid::new(0)),
                FailureEvent::Crash(Pid::new(1))
            ]
        );
        let at7: Vec<_> = plan.events_at(7).collect();
        assert_eq!(at7, vec![FailureEvent::Revive(Pid::new(0))]);
        assert!(plan.events_at(5).next().is_none());
    }

    #[test]
    fn random_crashes_leaves_a_survivor() {
        for seed in 0..20 {
            let plan = FailurePlan::random_crashes(8, 1.0, 100, seed);
            assert!(plan.crash_victims() <= 7, "seed {seed} crashed everyone");
        }
    }

    #[test]
    fn random_crashes_is_deterministic_in_seed() {
        let a = FailurePlan::random_crashes(16, 0.5, 50, 7);
        let b = FailurePlan::random_crashes(16, 0.5, 50, 7);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn random_crashes_fraction_zero_is_empty() {
        let plan = FailurePlan::random_crashes(8, 0.0, 100, 1);
        assert!(plan.is_empty());
        assert_eq!(plan.crash_victims(), 0);
    }

    #[test]
    fn crash_victims_deduplicates() {
        let plan = FailurePlan::new()
            .crash_at(1, Pid::new(2))
            .crash_at(5, Pid::new(2));
        assert_eq!(plan.crash_victims(), 1);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn random_crashes_rejects_bad_fraction() {
        FailurePlan::random_crashes(8, 1.5, 100, 1);
    }

    #[test]
    fn crash_revive_storm_always_ends_revived() {
        for seed in 0..10 {
            let plan = FailurePlan::random_crash_revive(4, 3, 50, seed);
            // Simulate the event stream per processor: the final state
            // must be alive for everyone.
            for p in 0..4 {
                let mut alive = true;
                for cycle in 0..=50u64 {
                    for e in plan.events_at(cycle) {
                        match e {
                            FailureEvent::Crash(pid) if pid.index() == p => alive = false,
                            FailureEvent::Revive(pid) if pid.index() == p => alive = true,
                            _ => {}
                        }
                    }
                }
                assert!(alive, "seed {seed}: processor {p} left crashed");
            }
        }
    }

    #[test]
    fn crash_revive_storm_is_deterministic() {
        let a = FailurePlan::random_crash_revive(3, 2, 40, 9);
        let b = FailurePlan::random_crash_revive(3, 2, 40, 9);
        assert_eq!(a.events, b.events);
        assert_eq!(a.len(), 3 * (2 * 2 + 1));
    }

    #[test]
    #[should_panic(expected = "positive horizon")]
    fn crash_revive_rejects_zero_horizon() {
        FailurePlan::random_crash_revive(2, 1, 0, 0);
    }
}
