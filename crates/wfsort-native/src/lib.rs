//! Native multi-threaded implementation of the wait-free sorting
//! algorithm of Shavit, Upfal and Zemach (PODC 1997), using std atomics.
//!
//! Where the [`wfsort`] crate runs the algorithm on a simulated CRCW PRAM
//! (to measure the quantities the paper's lemmas bound), this crate runs
//! the same three phases on real threads:
//!
//! * child pointers are installed with `compare_exchange` (Figure 4);
//! * subtree sizes and ranks are *benign races* — every writer stores the
//!   same deterministic value — published with release stores;
//! * work allocation uses the same Work Assignment Trees, so a reaped or
//!   crashed thread's work is picked up by survivors.
//!
//! The headline property carries over: [`SortJob::participate`] may be
//! called from any number of threads, joining and abandoning at will, and
//! the sort completes as long as any one participant keeps running.
//!
//! That claim is exercised by a chaos harness built into the crate:
//! [`ChaosPlan`] scripts seeded, per-worker fault schedules (crash,
//! stall, pause, jitter) injected at participation checkpoints via
//! [`ChaosParticipation`]; a [`Watchdog`] diffs heartbeat snapshots
//! ([`ProgressReport`]) to tell reaped-but-progressing runs from wedged
//! ones; and [`WaitFreeSorter::sort_with_plan`] /
//! [`WaitFreeSorter::sort_with_deadline`] expose graceful degradation as
//! ordinary sorting entry points.
//!
//! For large inputs a *sharded* path ([`ShardedSortJob`],
//! [`WaitFreeSorter::sort_sharded`]) puts sample-sort splitters in front
//! of the algorithm: partition into [`recommended_shards`] buckets, then
//! run one independent pivot-tree sort per shard, every phase driven by
//! the same Work Assignment Trees so crash recovery holds at shard
//! granularity. It computes exactly the permutation the single-tree path
//! does.
//!
//! Above the one-array front-ends sits a service layer ([`service`]):
//! [`SortService`] runs many tenants' jobs over a shared worker pool
//! with admission control, per-job deadlines and budgets, pooled
//! [`SortArena`]s, and chaos-proven tenant isolation — a [`ChaosPlan`]
//! that crashes every worker on one job strands only that job, which a
//! [`WatchdogRegistry`]-backed recovery path hands to a fresh stint.
//! The one-array front-ends themselves are thin wrappers over a single
//! [`SortOptions`] builder pipeline.
//!
//! A telemetry layer ([`metrics`]) mirrors the simulator's measurement
//! role on real threads: [`WaitFreeSorter::sort_with_report`] returns a
//! [`SortReport`] of per-phase and per-worker operation counts, with the
//! build phase's CAS-failure rate standing in for the paper's §1.2
//! contention measure (DESIGN.md §9).
//!
//! # Example
//!
//! ```
//! use wfsort_native::WaitFreeSorter;
//!
//! let data: Vec<u64> = (0..10_000).rev().collect();
//! let sorted = WaitFreeSorter::new(4).sort(&data);
//! assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
//! ```
//!
//! [`wfsort`]: ../wfsort/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod fault;
mod job;
mod lcwat;
#[cfg(feature = "legacy-layout")]
pub mod legacy;
pub mod metrics;
pub mod service;
mod shard;
mod sorter;
mod tree;
mod wat;
mod watchdog;

pub use arena::SortArena;
pub use fault::{
    ChaosParticipation, ChaosPlan, CheckpointCounter, FaultAction, SharedBudget, WithDeadline,
};
pub use job::{
    descent_side, recommended_grain, NativeAllocation, Participation, QuitAfter, RunToCompletion,
    SortJob, DEFAULT_TRACKED_PARTICIPANTS,
};
pub use lcwat::AtomicLcWat;
#[cfg(feature = "legacy-layout")]
pub use legacy::LegacySharedTree;
pub use metrics::{
    BucketStat, BuildMetrics, MetricSlot, PhaseMetrics, ScatterMetrics, ShardPhaseMetrics,
    ShardReport, ShardStat, SortReport, TraversalMetrics, WorkerMetrics,
};
pub use service::{
    JobError, JobOptions, JobReport, JobResult, JobTicket, Rejected, ServiceConfig, ServiceStats,
    SortService,
};
pub use shard::{
    piece_by_search, recommended_shards, ClassifyKernel, PartitionStrategy, ShardConfig,
    ShardedSortJob, SplitterLadder, IN_PLACE_AUTO_MIN, LADDER_AUTO_MAX_SPLITTERS,
};
pub use sorter::{sort_with_churn, SortOptions, SortOutcome, UntilFlag, WaitFreeSorter};
pub use tree::{PivotTree, SharedTree, Side, EMPTY};
pub use wat::{Assignment, AtomicWat};
pub use watchdog::{
    Health, ParticipantProgress, ProgressReport, SortPhase, Watchdog, WatchdogRegistry,
};
