//! A multi-tenant sorting service over a shared worker pool.
//!
//! [`SortService`] turns the one-array front-ends of this crate into a
//! *system under load*: many tenants submit sort jobs concurrently, a
//! fixed pool of workers schedules them job-granularly, and the paper's
//! wait-freedom guarantee becomes the service's isolation story — a
//! worker that crashes or stalls mid-job (scripted by a [`ChaosPlan`])
//! strands only *its* job, which the service's [`WatchdogRegistry`]
//! bookkeeping detects and hands to a fresh worker; every other tenant's
//! job completes bit-identically to a sequential sort.
//!
//! The moving parts:
//!
//! * **Admission control** — a bounded queue; [`SortService::submit`]
//!   returns a typed [`Rejected`] error (`QueueFull` / `ShuttingDown`)
//!   instead of blocking, and the service counts every rejection.
//! * **Job-granular scheduling** — large jobs become shared [`SortJob`]s
//!   that several pool workers co-participate in (claims re-enter the
//!   queue so idle workers join); small jobs run whole in one worker's
//!   pooled [`SortArena`], batched [`ServiceConfig::small_batch`] at a
//!   time to amortize dispatch. Queued tenants are picked deficit-style
//!   by [`JobOptions::weight`] — ties fall back to queue order, so
//!   unweighted workloads stay FIFO.
//! * **Work conservation** — a worker that finds the queue empty joins
//!   the largest in-flight plan-free cohort job as an extra participant
//!   (a *helper stint*) instead of sleeping; the paper's helping
//!   discipline guarantees extra participants only speed a sort up,
//!   never change its result.
//! * **Deadlines and budgets** — per-job wall-clock deadlines and
//!   participation-check budgets are enforced at the same checkpoints
//!   the chaos harness uses; an expired job fails with a clean
//!   [`JobError`], never a panic, and never touches other jobs.
//! * **Crash recovery** — when a chaos-scripted worker abandons a job
//!   and no other stint is running or queued for it, the service reaps
//!   it: up to [`ServiceConfig::max_recoveries`] fresh stints are
//!   dispatched (wait-freedom guarantees one surviving participant
//!   finishes the abandoned structures); past that the job alone fails
//!   with [`JobError::WorkersLost`].
//! * **Graceful shutdown** — [`SortService::shutdown`] stops admitting,
//!   drains every in-flight job, joins the pool, and returns the final
//!   [`ServiceStats`].
//!
//! # Example
//!
//! ```
//! use wfsort_native::service::{JobOptions, ServiceConfig, SortService};
//!
//! let service = SortService::start(ServiceConfig::default().workers(2));
//! let keys: Vec<u64> = (0..2_000).rev().collect();
//! let ticket = service.submit(keys, JobOptions::default()).unwrap();
//! let result = ticket.wait();
//! let sorted = result.sorted.unwrap();
//! assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
//! let stats = service.shutdown();
//! assert_eq!(stats.admitted, 1);
//! assert_eq!(stats.completed, 1);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::arena::SortArena;
use crate::fault::{ChaosParticipation, ChaosPlan, SharedBudget};
use crate::job::{recommended_grain, NativeAllocation, Participation, SortJob};
use crate::metrics::{MetricSlot, SortReport, WorkerMetrics};
use crate::shard::{
    recommended_shards, ClassifyKernel, PartitionStrategy, ShardConfig, ShardedSortJob,
};
use crate::watchdog::{ProgressReport, WatchdogRegistry};

/// Configuration for [`SortService::start`]. All knobs have serviceable
/// defaults; override with the builder methods.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    workers: usize,
    queue_capacity: usize,
    small_sort_cutoff: usize,
    sharded_cutoff: usize,
    small_batch: usize,
    max_recoveries: usize,
    default_deadline: Option<Duration>,
    classify_kernel: ClassifyKernel,
    partition_strategy: PartitionStrategy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            queue_capacity: 64,
            small_sort_cutoff: 1024,
            sharded_cutoff: 1 << 17,
            small_batch: 8,
            max_recoveries: 2,
            default_deadline: None,
            classify_kernel: ClassifyKernel::Auto,
            partition_strategy: PartitionStrategy::Auto,
        }
    }
}

impl ServiceConfig {
    /// Pool size: how many worker threads serve the queue.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "a service needs at least one worker");
        self.workers = workers;
        self
    }

    /// Admission bound: jobs queued (not yet claimed) beyond this are
    /// rejected with [`Rejected::QueueFull`].
    ///
    /// # Panics
    ///
    /// Panics if `queue_capacity` is zero.
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        assert!(queue_capacity > 0, "the queue needs at least one slot");
        self.queue_capacity = queue_capacity;
        self
    }

    /// Inputs shorter than this run whole inside one worker's pooled
    /// [`SortArena`] instead of becoming a shared cohort job.
    pub fn small_sort_cutoff(mut self, cutoff: usize) -> Self {
        self.small_sort_cutoff = cutoff;
        self
    }

    /// Inputs at least this long become shared *sharded* cohort jobs
    /// ([`ShardedSortJob`] with [`recommended_shards`] shards) instead
    /// of single-tree jobs — the duplicate-robust overpartitioned path,
    /// so one tenant's adversarial key distribution cannot collapse its
    /// job onto one shard. A [`JobOptions::plan`] rides along: its
    /// stints replay their fault scripts at shard granularity.
    /// `usize::MAX` disables the sharded route.
    pub fn sharded_cutoff(mut self, cutoff: usize) -> Self {
        self.sharded_cutoff = cutoff;
        self
    }

    /// How many small jobs one worker drains per queue claim (dispatch
    /// amortization). `1` disables batching.
    ///
    /// # Panics
    ///
    /// Panics if `small_batch` is zero.
    pub fn small_batch(mut self, small_batch: usize) -> Self {
        assert!(small_batch > 0, "the small batch needs at least one slot");
        self.small_batch = small_batch;
        self
    }

    /// How many times a stranded job (every worker crashed) is handed to
    /// a fresh stint before it fails with [`JobError::WorkersLost`].
    pub fn max_recoveries(mut self, max_recoveries: usize) -> Self {
        self.max_recoveries = max_recoveries;
        self
    }

    /// Deadline applied to jobs whose [`JobOptions`] set none.
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// The [`ClassifyKernel`] every sharded-route job runs — the
    /// default `Auto` resolves per job by splitter count. A service
    /// knob rather than a per-job one: the kernel changes throughput
    /// only, never an output byte, so it belongs with the other
    /// routing defaults.
    pub fn classify_kernel(mut self, kernel: ClassifyKernel) -> Self {
        self.classify_kernel = kernel;
        self
    }

    /// The [`PartitionStrategy`] every sharded-route job runs — the
    /// default `Auto` resolves per job by input size, so tenants past
    /// the sharded cutoff (which sits above
    /// [`IN_PLACE_AUTO_MIN`](crate::IN_PLACE_AUTO_MIN) by default) get
    /// the in-place memory win automatically. Like the kernel knob this
    /// never changes an output byte, so it belongs with the routing
    /// defaults rather than [`JobOptions`].
    pub fn partition_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.partition_strategy = strategy;
        self
    }
}

/// Per-job knobs for [`SortService::submit`]. The default is a plain
/// sort: no deadline, no budget, co-scheduled across the whole pool,
/// no fault injection.
#[derive(Clone, Debug, Default)]
pub struct JobOptions {
    deadline: Option<Duration>,
    budget: Option<u64>,
    helpers: Option<usize>,
    plan: Option<ChaosPlan>,
    weight: Option<u32>,
}

impl JobOptions {
    /// Wall-clock deadline, measured from admission. A job that is still
    /// incomplete when a participant samples the clock past the deadline
    /// fails with [`JobError::DeadlineExpired`].
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Work budget: total participation checks across all of the job's
    /// stints. An over-budget job fails with
    /// [`JobError::BudgetExhausted`].
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// How many pool workers co-participate in this job (clamped to at
    /// least one). Defaults to the pool size, or to the [`ChaosPlan`]'s
    /// worker count when a plan is set.
    pub fn helpers(mut self, helpers: usize) -> Self {
        self.helpers = Some(helpers.max(1));
        self
    }

    /// Scripted fault injection: each of the job's stints takes the next
    /// plan slot and replays its deterministic fault schedule; stints
    /// beyond the plan's worker count run fault-free. A plan forces the
    /// job onto a shared-cohort path regardless of size — single-tree
    /// below [`ServiceConfig::sharded_cutoff`], sharded at or past it —
    /// so crash recovery exercises the wait-free structures of whichever
    /// pipeline the job would run.
    pub fn plan(mut self, plan: ChaosPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Scheduling weight (clamped to at least 1; the default is 1).
    /// When queued tenants compete for a free worker, the deficit-style
    /// pick services higher weights proportionally more often: every
    /// tenant passed over accrues `weight` credit, the highest credit
    /// wins the next pick (ties break toward higher weight, then queue
    /// order), and the winner's credit resets to zero. A weight-8
    /// tenant therefore overtakes same-credit weight-1 tenants and wins
    /// ~8x the picks under sustained backlog, while a weight-1 tenant's
    /// credit still grows every pass — it is picked after a bounded
    /// number of passes, never starved.
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = Some(weight.max(1));
        self
    }
}

/// Why [`SortService::submit`] refused a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The admission queue is at capacity; retry after backpressure
    /// clears. The service's `rejected_queue_full` counter records it.
    QueueFull {
        /// The configured [`ServiceConfig::queue_capacity`].
        capacity: usize,
    },
    /// [`SortService::shutdown`] has begun; no new work is admitted.
    ShuttingDown,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} slots)")
            }
            Rejected::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Why an admitted job failed. Failures are per-job: they never affect
/// other tenants' jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The job's deadline passed before the sort completed.
    DeadlineExpired,
    /// The job's participation-check budget ran out.
    BudgetExhausted {
        /// The configured budget.
        budget: u64,
    },
    /// Every worker dispatched to the job crashed, and the configured
    /// [`ServiceConfig::max_recoveries`] fresh stints crashed too.
    WorkersLost {
        /// Recovery stints dispatched before giving up.
        recoveries: usize,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::DeadlineExpired => write!(f, "deadline expired before the sort completed"),
            JobError::BudgetExhausted { budget } => {
                write!(f, "participation budget of {budget} checks exhausted")
            }
            JobError::WorkersLost { recoveries } => {
                write!(f, "all workers lost after {recoveries} recovery attempts")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Per-job telemetry returned with every [`JobResult`].
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The service-assigned job id.
    pub id: u64,
    /// Input length.
    pub n: usize,
    /// Time from admission to first worker stint.
    pub queued: Duration,
    /// End-to-end time from admission to publication (queueing
    /// included).
    pub elapsed: Duration,
    /// Worker stints that participated (including recovery stints).
    pub stints: usize,
    /// Recovery dispatches after the job was stranded by crashes.
    pub recoveries: usize,
    /// Aggregated per-phase / per-worker sort telemetry, as
    /// [`crate::WaitFreeSorter::sort_with_report`] reports it, covering
    /// the stints that had finished when the result was published (a
    /// sibling stint racing the publisher may land just after).
    pub sort: SortReport,
}

/// What a job produced: the sorted keys (or a typed [`JobError`]) plus
/// the per-job [`JobReport`].
#[derive(Clone, Debug)]
pub struct JobResult<K> {
    /// The sorted keys, or why the job failed.
    pub sorted: Result<Vec<K>, JobError>,
    /// Telemetry for this job.
    pub report: JobReport,
}

/// Handle to an admitted job; redeem with [`JobTicket::wait`].
pub struct JobTicket<K: Ord> {
    state: Arc<JobState<K>>,
}

impl<K: Ord> fmt::Debug for JobTicket<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobTicket").field("id", &self.id()).finish()
    }
}

impl<K: Ord> JobTicket<K> {
    /// The service-assigned job id.
    pub fn id(&self) -> u64 {
        self.state.id
    }

    /// Blocks until the job is published and returns its result. Always
    /// returns: every admitted job is published exactly once — with the
    /// sorted keys, or with a typed [`JobError`].
    pub fn wait(self) -> JobResult<K> {
        let mut done = self.state.done.lock().unwrap();
        loop {
            if let Some(result) = done.take() {
                return result;
            }
            done = self.state.ready.wait(done).unwrap();
        }
    }

    /// Returns the result if the job has already been published,
    /// without blocking; the ticket is returned otherwise.
    pub fn try_wait(self) -> Result<JobResult<K>, JobTicket<K>> {
        let taken = self.state.done.lock().unwrap().take();
        match taken {
            Some(result) => Ok(result),
            None => Err(self),
        }
    }
}

/// Service-level counters, snapshot by [`SortService::stats`] and
/// returned by [`SortService::shutdown`]. Monotonic over the service's
/// lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs accepted into the queue.
    pub admitted: u64,
    /// Submissions refused with [`Rejected::QueueFull`].
    pub rejected_queue_full: u64,
    /// Submissions refused with [`Rejected::ShuttingDown`].
    pub rejected_shutting_down: u64,
    /// Jobs published with sorted output.
    pub completed: u64,
    /// Jobs published with [`JobError::DeadlineExpired`].
    pub deadline_expired: u64,
    /// Jobs published with [`JobError::BudgetExhausted`].
    pub budget_exhausted: u64,
    /// Jobs published with [`JobError::WorkersLost`].
    pub workers_lost: u64,
    /// Recovery stints dispatched for stranded jobs (a job that crashes,
    /// recovers, and completes counts here *and* in `completed`).
    pub crash_recoveries: u64,
    /// Small jobs drained as batch extras on another job's queue claim.
    pub small_batched: u64,
    /// Stints dispatched by the scheduler's deficit-style queue pick —
    /// first claims, co-scheduling claims, and recovery claims alike.
    /// Every stint the service runs is accounted by exactly one of
    /// `queue_picks`, `small_batched`, or `helper_stints`.
    pub queue_picks: u64,
    /// Queue picks where accrued credit (or a weight tie-break)
    /// overtook FIFO order — the picked job was not at the queue front.
    /// Always `<= queue_picks`.
    pub weighted_picks: u64,
    /// Work-conserving helper stints: an idle worker that found the
    /// queue empty joined the largest in-flight shared job as an extra
    /// participant instead of sleeping.
    pub helper_stints: u64,
}

impl ServiceStats {
    /// Total refused submissions.
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full + self.rejected_shutting_down
    }

    /// Jobs published with any [`JobError`].
    pub fn failed(&self) -> u64 {
        self.deadline_expired + self.budget_exhausted + self.workers_lost
    }
}

#[derive(Debug, Default)]
struct Counters {
    admitted: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_shutting_down: AtomicU64,
    completed: AtomicU64,
    deadline_expired: AtomicU64,
    budget_exhausted: AtomicU64,
    workers_lost: AtomicU64,
    crash_recoveries: AtomicU64,
    small_batched: AtomicU64,
    queue_picks: AtomicU64,
    weighted_picks: AtomicU64,
    helper_stints: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_shutting_down: self.rejected_shutting_down.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            budget_exhausted: self.budget_exhausted.load(Ordering::Relaxed),
            workers_lost: self.workers_lost.load(Ordering::Relaxed),
            crash_recoveries: self.crash_recoveries.load(Ordering::Relaxed),
            small_batched: self.small_batched.load(Ordering::Relaxed),
            queue_picks: self.queue_picks.load(Ordering::Relaxed),
            weighted_picks: self.weighted_picks.load(Ordering::Relaxed),
            helper_stints: self.helper_stints.load(Ordering::Relaxed),
        }
    }
}

/// The job's payload: tiny inputs copy straight through, small inputs
/// run whole in one worker's pooled arena, everything else is a shared
/// wait-free cohort job that several stints co-participate in — the
/// single tree for mid-sized inputs, the duplicate-robust sharded
/// pipeline past [`ServiceConfig::sharded_cutoff`].
enum Work<K: Ord> {
    Tiny(Mutex<Option<Vec<K>>>),
    Small(Mutex<Option<Vec<K>>>),
    Shared(Box<SortJob<K>>),
    SharedSharded(Box<ShardedSortJob<K>>),
}

struct JobState<K: Ord> {
    id: u64,
    n: usize,
    work: Work<K>,
    deadline: Option<Instant>,
    budget: Option<(AtomicU64, u64)>,
    plan: Option<ChaosPlan>,
    /// Scheduling weight from [`JobOptions::weight`] (at least 1).
    weight: u64,
    /// Deficit credit: accrued (by `weight`) each time the scheduler
    /// passes this job's queue entries over, reset when it wins a pick.
    /// Mutated only under the queue lock.
    sched_credit: AtomicU64,
    /// Whether this job has been listed for helper joins; set at most
    /// once, by the stint that first claims it from the queue.
    helper_listed: AtomicBool,
    /// Next [`ChaosPlan`] slot a stint takes; slots past the plan run
    /// fault-free.
    next_plan_slot: AtomicUsize,
    /// Additional co-scheduling claims to re-queue (shared jobs only).
    /// Mutated only under the queue lock.
    remaining_claims: AtomicUsize,
    /// Queue entries currently outstanding for this job. Mutated only
    /// under the queue lock.
    queued_entries: AtomicUsize,
    /// Stints currently between claim and post-stint bookkeeping.
    /// Mutated only under the queue lock.
    active_stints: AtomicUsize,
    /// Recovery dispatches so far.
    recoveries: AtomicUsize,
    /// Set once, by whichever stint publishes the result.
    published: AtomicBool,
    submitted: Instant,
    first_start: Mutex<Option<Instant>>,
    stint_metrics: Mutex<Vec<WorkerMetrics>>,
    done: Mutex<Option<JobResult<K>>>,
    ready: Condvar,
}

impl<K: Ord> JobState<K> {
    fn is_small(&self) -> bool {
        matches!(self.work, Work::Tiny(_) | Work::Small(_))
    }

    /// Whether an idle worker may still join this job as a helper
    /// stint: an unpublished, incomplete cohort job with no chaos plan
    /// (a helper would consume a scripted plan slot out from under the
    /// fault schedule) and no budget (helper checkpoints would drain
    /// the tenant's budget behind its back).
    fn joinable(&self) -> bool {
        if self.plan.is_some() || self.budget.is_some() || self.published.load(Ordering::Acquire) {
            return false;
        }
        match &self.work {
            Work::Shared(job) => !job.is_complete(),
            Work::SharedSharded(job) => !job.is_complete(),
            Work::Tiny(_) | Work::Small(_) => false,
        }
    }
}

/// Composes the service's per-stint stopping conditions — budget, then
/// deadline, then the chaos script — and remembers which one fired.
struct StintParticipation<'a> {
    budget: Option<SharedBudget<'a>>,
    deadline: Option<Instant>,
    chaos: Option<ChaosParticipation<'a>>,
    checks: u32,
    cause: Option<StopCause>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StopCause {
    Budget,
    Deadline,
    Chaos,
}

impl<'a> StintParticipation<'a> {
    fn for_job<K: Ord>(job: &'a JobState<K>) -> Self {
        let chaos = job.plan.as_ref().and_then(|plan| {
            let slot = job.next_plan_slot.fetch_add(1, Ordering::Relaxed);
            (slot < plan.workers()).then(|| ChaosParticipation::new(plan, slot))
        });
        StintParticipation {
            budget: job
                .budget
                .as_ref()
                .map(|(spent, limit)| SharedBudget::new(spent, *limit)),
            deadline: job.deadline,
            chaos,
            checks: 0,
            cause: None,
        }
    }
}

impl Participation for StintParticipation<'_> {
    fn keep_going(&mut self) -> bool {
        if let Some(budget) = &mut self.budget {
            if !budget.keep_going() {
                self.cause = Some(StopCause::Budget);
                return false;
            }
        }
        if let Some(until) = self.deadline {
            // Sample the clock on the first check and every 16th after,
            // like `WithDeadline`: cheap, and an already-expired deadline
            // is noticed at the first checkpoint.
            self.checks = self.checks.wrapping_add(1);
            if self.checks & 15 == 1 && Instant::now() >= until {
                self.cause = Some(StopCause::Deadline);
                return false;
            }
        }
        if let Some(chaos) = &mut self.chaos {
            if !chaos.keep_going() {
                self.cause = Some(StopCause::Chaos);
                return false;
            }
        }
        true
    }
}

/// The scheduler's shared state, guarded by one mutex: the admission
/// queue plus the help list of in-flight cohort jobs an idle worker may
/// join. All claim bookkeeping happens under this lock.
struct SchedState<K: Ord> {
    /// Admitted jobs (and co-scheduling re-claims) awaiting a worker.
    queue: VecDeque<Arc<JobState<K>>>,
    /// In-flight plan-free, budget-free cohort jobs idle workers can
    /// join as work-conserving helpers. Pruned lazily: published or
    /// completed entries fall out on the next scan.
    helpable: Vec<Arc<JobState<K>>>,
}

struct Inner<K: Ord> {
    config: ServiceConfig,
    sched: Mutex<SchedState<K>>,
    work_ready: Condvar,
    accepting: AtomicBool,
    next_id: AtomicU64,
    registry: Mutex<WatchdogRegistry>,
    counters: Counters,
}

/// A multi-tenant sort service: a shared worker pool, a bounded
/// admission queue, per-job deadlines/budgets, chaos-proven tenant
/// isolation, and graceful shutdown. See the [module docs](self) for
/// the full tour and an example.
#[derive(Debug)]
pub struct SortService<K: Ord + Clone + Send + Sync + 'static> {
    inner: Arc<Inner<K>>,
    pool: Vec<JoinHandle<()>>,
}

impl<K: Ord> fmt::Debug for Inner<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Inner")
            .field("config", &self.config)
            .field("accepting", &self.accepting)
            .finish_non_exhaustive()
    }
}

impl<K: Ord + Clone + Send + Sync + 'static> SortService<K> {
    /// Starts the service: spawns [`ServiceConfig::workers`] pool
    /// threads, all initially idle on the admission queue.
    pub fn start(config: ServiceConfig) -> Self {
        let inner = Arc::new(Inner {
            config: config.clone(),
            sched: Mutex::new(SchedState {
                queue: VecDeque::new(),
                helpable: Vec::new(),
            }),
            work_ready: Condvar::new(),
            accepting: AtomicBool::new(true),
            next_id: AtomicU64::new(1),
            registry: Mutex::new(WatchdogRegistry::new()),
            counters: Counters::default(),
        });
        let pool = (0..config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        SortService { inner, pool }
    }

    /// Submits `keys` for sorting. Non-blocking: returns a
    /// [`JobTicket`] on admission or a typed [`Rejected`] error when the
    /// queue is full or the service is shutting down.
    pub fn submit(&self, keys: Vec<K>, options: JobOptions) -> Result<JobTicket<K>, Rejected> {
        let inner = &*self.inner;
        if !inner.accepting.load(Ordering::Acquire) {
            inner
                .counters
                .rejected_shutting_down
                .fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::ShuttingDown);
        }
        let n = keys.len();
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let helpers = options
            .helpers
            .or_else(|| options.plan.as_ref().map(|p| p.workers()))
            .unwrap_or(inner.config.workers)
            .max(1);
        // A plan forces the shared path so crashes exercise the wait-free
        // recovery story even on small inputs.
        let work = if n < 2 {
            Work::Tiny(Mutex::new(Some(keys)))
        } else if n < inner.config.small_sort_cutoff && options.plan.is_none() && helpers <= 1 {
            Work::Small(Mutex::new(Some(keys)))
        } else {
            // Heartbeat slots for every possible stint: the co-scheduled
            // claims, the recovery stints, slack for a stale claim
            // racing a recovery — and, on jobs idle workers may join as
            // helpers (no plan, no budget), the whole pool.
            let slots = if options.plan.is_none() && options.budget.is_none() {
                helpers.max(inner.config.workers)
            } else {
                helpers
            };
            let tracked = slots + inner.config.max_recoveries + 2;
            if n >= inner.config.sharded_cutoff {
                // Large tenant: the duplicate-robust sharded pipeline.
                // A chaos plan rides along — sharded stints replay
                // their fault scripts at shard granularity, exactly
                // like single-tree stints replay theirs.
                let shards = recommended_shards(n, helpers);
                Work::SharedSharded(Box::new(ShardedSortJob::with_config(
                    keys,
                    NativeAllocation::Deterministic,
                    tracked,
                    shards,
                    ShardConfig {
                        classify_kernel: inner.config.classify_kernel,
                        partition_strategy: inner.config.partition_strategy,
                        ..ShardConfig::default()
                    },
                )))
            } else {
                let grain = recommended_grain(n, helpers);
                Work::Shared(Box::new(SortJob::with_layout(
                    keys,
                    NativeAllocation::Deterministic,
                    tracked,
                    grain,
                )))
            }
        };
        let shared = matches!(work, Work::Shared(_) | Work::SharedSharded(_));
        let job = Arc::new(JobState {
            id,
            n,
            work,
            deadline: options
                .deadline
                .or(inner.config.default_deadline)
                .map(|d| Instant::now() + d),
            budget: options.budget.map(|limit| (AtomicU64::new(0), limit)),
            plan: options.plan,
            weight: u64::from(options.weight.unwrap_or(1).max(1)),
            sched_credit: AtomicU64::new(0),
            helper_listed: AtomicBool::new(false),
            next_plan_slot: AtomicUsize::new(0),
            remaining_claims: AtomicUsize::new(if shared { helpers - 1 } else { 0 }),
            queued_entries: AtomicUsize::new(0),
            active_stints: AtomicUsize::new(0),
            recoveries: AtomicUsize::new(0),
            published: AtomicBool::new(false),
            submitted: Instant::now(),
            first_start: Mutex::new(None),
            stint_metrics: Mutex::new(Vec::new()),
            done: Mutex::new(None),
            ready: Condvar::new(),
        });
        {
            let mut sched = inner.sched.lock().unwrap();
            // Re-check under the lock so a shutdown that drained the
            // queue cannot miss a racing submission.
            if !inner.accepting.load(Ordering::Acquire) {
                inner
                    .counters
                    .rejected_shutting_down
                    .fetch_add(1, Ordering::Relaxed);
                return Err(Rejected::ShuttingDown);
            }
            if sched.queue.len() >= inner.config.queue_capacity {
                inner
                    .counters
                    .rejected_queue_full
                    .fetch_add(1, Ordering::Relaxed);
                return Err(Rejected::QueueFull {
                    capacity: inner.config.queue_capacity,
                });
            }
            job.queued_entries.fetch_add(1, Ordering::Relaxed);
            sched.queue.push_back(Arc::clone(&job));
        }
        if shared {
            inner.registry.lock().unwrap().register(id);
        }
        inner.counters.admitted.fetch_add(1, Ordering::Relaxed);
        self.inner.work_ready.notify_all();
        Ok(JobTicket { state: job })
    }

    /// Snapshot of the service-level counters.
    pub fn stats(&self) -> ServiceStats {
        self.inner.counters.snapshot()
    }

    /// Jobs admitted but not yet claimed by any worker.
    pub fn queue_depth(&self) -> usize {
        self.inner.sched.lock().unwrap().queue.len()
    }

    /// The most recent watchdog progress snapshot for job `id`: the
    /// per-participant heartbeat view for single-tree cohort jobs, the
    /// WAT-frontier fold ([`crate::ShardedSortJob::progress`]) for
    /// sharded ones. Stints feed the [`WatchdogRegistry`] when they
    /// stop for a scripted fault or abandon a job incomplete, so this
    /// returns `None` for small jobs, for jobs no stint has reported
    /// on yet, and for jobs already published (publication retires the
    /// registry entry). Telemetry only: the recovery decision rides the
    /// service's exact stint accounting, not this snapshot.
    pub fn job_progress(&self, id: u64) -> Option<ProgressReport> {
        self.inner.registry.lock().unwrap().last(id).cloned()
    }

    /// Stops admitting new jobs — submissions from here on get
    /// [`Rejected::ShuttingDown`] — while the pool keeps draining
    /// everything already admitted. Idempotent; [`SortService::shutdown`]
    /// implies it. Lets a tenant thread observe the typed rejection while
    /// another thread owns the eventual `shutdown()`.
    pub fn begin_shutdown(&self) {
        self.inner.accepting.store(false, Ordering::Release);
        self.inner.work_ready.notify_all();
    }

    /// Graceful shutdown: stops admitting (new submissions get
    /// [`Rejected::ShuttingDown`]), drains every queued and in-flight
    /// job to publication, joins the pool, and returns the final
    /// counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_in_place();
        self.inner.counters.snapshot()
    }

    fn shutdown_in_place(&mut self) {
        self.inner.accepting.store(false, Ordering::Release);
        self.inner.work_ready.notify_all();
        for handle in self.pool.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<K: Ord + Clone + Send + Sync + 'static> Drop for SortService<K> {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop<K: Ord + Clone + Send + Sync>(inner: &Inner<K>) {
    let mut arena: SortArena<K> = SortArena::new();
    while let Some(job) = next_job(inner) {
        run_stint(inner, &job, &mut arena);
        if job.is_small() && inner.config.small_batch > 1 {
            for extra in claim_small_batch(inner, inner.config.small_batch - 1) {
                inner.counters.small_batched.fetch_add(1, Ordering::Relaxed);
                run_stint(inner, &extra, &mut arena);
            }
        }
    }
}

/// Blocks for the next stint; `None` once the service stops accepting,
/// the queue is fully drained, and nothing in flight can use a helper.
/// All claim bookkeeping happens under the queue lock.
///
/// Queued jobs are picked deficit-style (see [`JobOptions::weight`]);
/// when the queue is empty the worker joins the largest joinable
/// in-flight cohort job as a work-conserving helper stint instead of
/// sleeping on `work_ready`.
fn next_job<K: Ord>(inner: &Inner<K>) -> Option<Arc<JobState<K>>> {
    let mut sched = inner.sched.lock().unwrap();
    loop {
        if let Some((job, overtook)) = pick_queued(&mut sched) {
            if job.remaining_claims.load(Ordering::Relaxed) > 0 {
                // Leave a claim behind so another idle worker co-joins.
                job.remaining_claims.fetch_sub(1, Ordering::Relaxed);
                job.queued_entries.fetch_add(1, Ordering::Relaxed);
                sched.queue.push_back(Arc::clone(&job));
                inner.work_ready.notify_one();
            }
            job.active_stints.fetch_add(1, Ordering::Relaxed);
            inner.counters.queue_picks.fetch_add(1, Ordering::Relaxed);
            if overtook {
                inner
                    .counters
                    .weighted_picks
                    .fetch_add(1, Ordering::Relaxed);
            }
            // First claim of a plan-free, budget-free cohort job: list
            // it for helper joins and wake the idle part of the pool.
            if !job.is_small()
                && job.plan.is_none()
                && job.budget.is_none()
                && !job.helper_listed.swap(true, Ordering::Relaxed)
            {
                sched.helpable.push(Arc::clone(&job));
                inner.work_ready.notify_all();
            }
            return Some(job);
        }
        if let Some(job) = pick_helpable(&mut sched) {
            job.active_stints.fetch_add(1, Ordering::Relaxed);
            inner.counters.helper_stints.fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
        if !inner.accepting.load(Ordering::Acquire) {
            return None;
        }
        sched = inner.work_ready.wait(sched).unwrap();
    }
}

/// Removes and returns the scheduler's next queued job, skipping stale
/// entries for already-published jobs. The pick is deficit-style: the
/// entry with the most accrued credit wins, ties break toward higher
/// weight and then queue order (so unweighted workloads stay FIFO);
/// every passed-over entry accrues its weight in credit and the
/// winner's credit resets. The returned flag reports whether the pick
/// overtook FIFO order — the winner was not the queue front.
fn pick_queued<K: Ord>(sched: &mut SchedState<K>) -> Option<(Arc<JobState<K>>, bool)> {
    loop {
        if sched.queue.is_empty() {
            return None;
        }
        let mut best = 0;
        let mut best_credit = sched.queue[0].sched_credit.load(Ordering::Relaxed);
        let mut best_weight = sched.queue[0].weight;
        for index in 1..sched.queue.len() {
            let credit = sched.queue[index].sched_credit.load(Ordering::Relaxed);
            let weight = sched.queue[index].weight;
            if credit > best_credit || (credit == best_credit && weight > best_weight) {
                best = index;
                best_credit = credit;
                best_weight = weight;
            }
        }
        let overtook = best != 0;
        let job = sched.queue.remove(best).unwrap();
        job.queued_entries.fetch_sub(1, Ordering::Relaxed);
        if job.published.load(Ordering::Acquire) {
            continue; // stale claim of an already-published job
        }
        for passed in sched.queue.iter() {
            passed
                .sched_credit
                .fetch_add(passed.weight, Ordering::Relaxed);
        }
        job.sched_credit.store(0, Ordering::Relaxed);
        return Some((job, overtook));
    }
}

/// The largest in-flight job an idle worker can still join as a helper
/// stint, pruning entries that published or completed. `None` when no
/// in-flight job can use another participant.
fn pick_helpable<K: Ord>(sched: &mut SchedState<K>) -> Option<Arc<JobState<K>>> {
    sched.helpable.retain(|job| job.joinable());
    sched
        .helpable
        .iter()
        .max_by_key(|job| job.n)
        .map(Arc::clone)
}

/// Pulls up to `limit` additional small jobs out of the queue for
/// batched execution on the current worker. Extras drain in admission
/// order regardless of weight: within one batched claim, dispatch
/// amortization is the whole point, and every extra still publishes
/// individually (a deadline already expired at claim time fails that
/// extra alone, batch-mates and the stats ledger unaffected).
fn claim_small_batch<K: Ord>(inner: &Inner<K>, limit: usize) -> Vec<Arc<JobState<K>>> {
    let mut sched = inner.sched.lock().unwrap();
    let mut batch = Vec::new();
    let mut index = 0;
    while index < sched.queue.len() && batch.len() < limit {
        if sched.queue[index].is_small() {
            let job = sched.queue.remove(index).unwrap();
            job.queued_entries.fetch_sub(1, Ordering::Relaxed);
            if !job.published.load(Ordering::Acquire) {
                job.active_stints.fetch_add(1, Ordering::Relaxed);
                batch.push(job);
            }
        } else {
            index += 1;
        }
    }
    batch
}

fn run_stint<K: Ord + Clone + Send + Sync>(
    inner: &Inner<K>,
    job: &Arc<JobState<K>>,
    arena: &mut SortArena<K>,
) {
    job.first_start
        .lock()
        .unwrap()
        .get_or_insert_with(Instant::now);
    match &job.work {
        Work::Tiny(keys) => {
            let taken = keys.lock().unwrap().take();
            if let Some(keys) = taken {
                // Zero or one key: already sorted; never miss a deadline.
                publish(inner, job, Ok(keys));
            }
            finish_stint(inner, job);
        }
        Work::Small(keys) => {
            let taken = keys.lock().unwrap().take();
            if let Some(keys) = taken {
                let mut participation = StintParticipation::for_job(job);
                let slot = MetricSlot::new();
                let grain = recommended_grain(keys.len(), 1);
                let sort_job = arena.prepare(&keys, NativeAllocation::Deterministic, 1, grain);
                sort_job.participate_instrumented(&mut participation, &slot);
                job.stint_metrics.lock().unwrap().push(slot.snapshot());
                if sort_job.is_complete() {
                    let mut out = Vec::with_capacity(keys.len());
                    sort_job.sorted_into(&mut out);
                    publish(inner, job, Ok(out));
                } else {
                    // Small jobs carry no plan, so the stint stopped for
                    // a deadline or budget — publish the typed failure.
                    publish(inner, job, Err(stint_error(job, participation.cause)));
                }
            }
            finish_stint(inner, job);
        }
        Work::Shared(sort_job) => {
            let mut participation = StintParticipation::for_job(job);
            let slot = MetricSlot::new();
            sort_job.participate_instrumented(&mut participation, &slot);
            job.stint_metrics.lock().unwrap().push(slot.snapshot());
            if sort_job.is_complete() {
                let mut out = Vec::with_capacity(job.n);
                sort_job.sorted_into(&mut out);
                publish(inner, job, Ok(out));
                finish_stint(inner, job);
                return;
            }
            match participation.cause {
                Some(StopCause::Deadline) | Some(StopCause::Budget) => {
                    publish(inner, job, Err(stint_error(job, participation.cause)));
                    finish_stint(inner, job);
                }
                Some(StopCause::Chaos) | None => {
                    // A scripted crash (or an abandoned incomplete stint).
                    // Feed the heartbeat snapshot to the watchdog registry
                    // — the service's cross-job health ledger — then let
                    // the shared recovery path decide whether the job is
                    // stranded.
                    inner
                        .registry
                        .lock()
                        .unwrap()
                        .observe(job.id, sort_job.progress());
                    recover_or_fail(inner, job);
                }
            }
        }
        Work::SharedSharded(sort_job) => {
            let mut participation = StintParticipation::for_job(job);
            let slot = MetricSlot::new();
            sort_job.participate_instrumented(&mut participation, &slot);
            job.stint_metrics.lock().unwrap().push(slot.snapshot());
            if sort_job.is_complete() {
                let mut out = Vec::with_capacity(job.n);
                sort_job.sorted_into(&mut out);
                publish(inner, job, Ok(out));
                finish_stint(inner, job);
                return;
            }
            match participation.cause {
                Some(StopCause::Deadline) | Some(StopCause::Budget) => {
                    publish(inner, job, Err(stint_error(job, participation.cause)));
                    finish_stint(inner, job);
                }
                Some(StopCause::Chaos) | None => {
                    // The sharded job's progress signal is the three
                    // WAT frontiers, not per-thread epochs — fold them
                    // into the watchdog snapshot, then let the shared
                    // recovery path decide whether the job is stranded.
                    inner
                        .registry
                        .lock()
                        .unwrap()
                        .observe(job.id, sort_job.progress());
                    recover_or_fail(inner, job);
                }
            }
        }
    }
}

/// Post-crash bookkeeping shared by both cohort-job flavors: decide
/// under the queue lock whether the job is stranded — this was the last
/// active stint and nothing remains queued for it, so no running or
/// future worker will ever finish it — and either dispatch a recovery
/// stint (up to [`ServiceConfig::max_recoveries`]) or fail the job with
/// [`JobError::WorkersLost`].
fn recover_or_fail<K: Ord + Clone>(inner: &Inner<K>, job: &Arc<JobState<K>>) {
    let mut sched = inner.sched.lock().unwrap();
    let stranded = job.active_stints.load(Ordering::Relaxed) == 1
        && job.queued_entries.load(Ordering::Relaxed) == 0
        && !job.published.load(Ordering::Acquire);
    if stranded {
        let dispatched = job.recoveries.fetch_add(1, Ordering::Relaxed);
        if dispatched < inner.config.max_recoveries {
            inner
                .counters
                .crash_recoveries
                .fetch_add(1, Ordering::Relaxed);
            job.queued_entries.fetch_add(1, Ordering::Relaxed);
            sched.queue.push_back(Arc::clone(job));
            job.active_stints.fetch_sub(1, Ordering::Relaxed);
            drop(sched);
            inner.work_ready.notify_one();
            return;
        }
        job.recoveries.fetch_sub(1, Ordering::Relaxed);
        job.active_stints.fetch_sub(1, Ordering::Relaxed);
        drop(sched);
        publish(
            inner,
            job,
            Err(JobError::WorkersLost {
                recoveries: inner.config.max_recoveries,
            }),
        );
        return;
    }
    job.active_stints.fetch_sub(1, Ordering::Relaxed);
}

/// Post-stint bookkeeping for the paths that did not already do it
/// inline: drops this stint from the job's active count.
fn finish_stint<K: Ord>(inner: &Inner<K>, job: &JobState<K>) {
    let _sched = inner.sched.lock().unwrap();
    job.active_stints.fetch_sub(1, Ordering::Relaxed);
}

fn stint_error<K: Ord>(job: &JobState<K>, cause: Option<StopCause>) -> JobError {
    match cause {
        Some(StopCause::Budget) => JobError::BudgetExhausted {
            budget: job.budget.as_ref().map(|(_, limit)| *limit).unwrap_or(0),
        },
        _ => JobError::DeadlineExpired,
    }
}

/// Publishes the job's result exactly once (first caller wins), updates
/// the service counters, wakes the ticket holder, and retires the job
/// from the watchdog registry.
fn publish<K: Ord + Clone>(inner: &Inner<K>, job: &JobState<K>, sorted: Result<Vec<K>, JobError>) {
    if job
        .published
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_err()
    {
        return;
    }
    match &sorted {
        Ok(_) => inner.counters.completed.fetch_add(1, Ordering::Relaxed),
        Err(JobError::DeadlineExpired) => inner
            .counters
            .deadline_expired
            .fetch_add(1, Ordering::Relaxed),
        Err(JobError::BudgetExhausted { .. }) => inner
            .counters
            .budget_exhausted
            .fetch_add(1, Ordering::Relaxed),
        Err(JobError::WorkersLost { .. }) => {
            inner.counters.workers_lost.fetch_add(1, Ordering::Relaxed)
        }
    };
    let elapsed = job.submitted.elapsed();
    let queued = job
        .first_start
        .lock()
        .unwrap()
        .map(|start| start.saturating_duration_since(job.submitted))
        .unwrap_or_default();
    let stints = job.stint_metrics.lock().unwrap().clone();
    let mut sort = SortReport::aggregate(stints, elapsed);
    if let (Work::SharedSharded(sharded), Ok(_)) = (&job.work, &sorted) {
        // A completed sharded job carries its per-shard statistics,
        // like the standalone sharded front-end's report does.
        sort = sort.with_shard(sharded.shard_report());
    }
    let report = JobReport {
        id: job.id,
        n: job.n,
        queued,
        elapsed,
        stints: sort.per_worker.len(),
        recoveries: job.recoveries.load(Ordering::Relaxed),
        sort,
    };
    inner.registry.lock().unwrap().unregister(job.id);
    let mut done = job.done.lock().unwrap();
    *done = Some(JobResult { sorted, report });
    job.ready.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watchdog::SortPhase;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..1_000_000)).collect()
    }

    fn expect_sorted(keys: &[u64]) -> Vec<u64> {
        let mut out = keys.to_vec();
        out.sort_unstable();
        out
    }

    #[test]
    fn sorts_many_tenants_concurrently() {
        let service = SortService::start(ServiceConfig::default().workers(3));
        let inputs: Vec<Vec<u64>> = (0..8).map(|t| random_keys(4_000, 100 + t)).collect();
        let tickets: Vec<_> = inputs
            .iter()
            .map(|keys| service.submit(keys.clone(), JobOptions::default()).unwrap())
            .collect();
        for (keys, ticket) in inputs.iter().zip(tickets) {
            let result = ticket.wait();
            assert_eq!(result.sorted.unwrap(), expect_sorted(keys));
            assert_eq!(result.report.n, keys.len());
            assert!(result.report.stints >= 1);
        }
        let stats = service.shutdown();
        assert_eq!(stats.admitted, 8);
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.failed(), 0);
    }

    #[test]
    fn large_tenants_route_through_the_sharded_path() {
        // Cutoff lowered so the test stays fast: tenants above it run
        // on the overpartitioned sharded pipeline — including the
        // all-equal duplicate flood that used to collapse splitter
        // sampling — tenants below it keep the single-tree path, and a
        // sharded job under an impossible deadline still fails with the
        // typed error instead of hanging.
        let service = SortService::start(ServiceConfig::default().workers(2).sharded_cutoff(2_000));
        let flood = vec![42u64; 6_000];
        let mixed = random_keys(6_000, 400);
        let small = random_keys(1_500, 401);
        let t1 = service
            .submit(flood.clone(), JobOptions::default())
            .unwrap();
        let t2 = service
            .submit(mixed.clone(), JobOptions::default())
            .unwrap();
        let t3 = service
            .submit(small.clone(), JobOptions::default())
            .unwrap();
        assert_eq!(t1.wait().sorted.unwrap(), flood);
        assert_eq!(t2.wait().sorted.unwrap(), expect_sorted(&mixed));
        assert_eq!(t3.wait().sorted.unwrap(), expect_sorted(&small));
        let doomed = service
            .submit(
                mixed.clone(),
                JobOptions::default().deadline(Duration::ZERO),
            )
            .unwrap();
        assert_eq!(doomed.wait().sorted.unwrap_err(), JobError::DeadlineExpired);
        let stats = service.shutdown();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.deadline_expired, 1);
    }

    #[test]
    fn service_partition_strategy_reaches_the_sharded_job() {
        // The routing knob must flow through to the job: an explicit
        // in-place service sorts identically and its report shows the
        // in-place strategy with aux memory pinned to the B·P offset
        // table, while the default Auto resolves by input size (this
        // n sits under IN_PLACE_AUTO_MIN, so it materializes).
        let keys = random_keys(6_000, 905);
        let in_place = SortService::start(
            ServiceConfig::default()
                .workers(2)
                .sharded_cutoff(2_000)
                .partition_strategy(PartitionStrategy::InPlace),
        );
        let result = in_place
            .submit(keys.clone(), JobOptions::default())
            .unwrap()
            .wait();
        assert_eq!(result.sorted.unwrap(), expect_sorted(&keys));
        let shard = result.report.sort.shard.expect("sharded payload");
        assert_eq!(shard.strategy, PartitionStrategy::InPlace);
        assert_eq!(
            shard.aux_bytes,
            (shard.partition_blocks * shard.buckets.len()) as u64 * 8,
            "in-place aux memory is the offsets table alone"
        );
        in_place.shutdown();

        let auto = SortService::start(ServiceConfig::default().workers(2).sharded_cutoff(2_000));
        let result = auto
            .submit(keys.clone(), JobOptions::default())
            .unwrap()
            .wait();
        assert_eq!(result.sorted.unwrap(), expect_sorted(&keys));
        let shard = result.report.sort.shard.expect("sharded payload");
        assert_eq!(
            shard.strategy,
            PartitionStrategy::Materialized,
            "Auto below IN_PLACE_AUTO_MIN keeps the bucket intermediate"
        );
        auto.shutdown();
    }

    #[test]
    fn tiny_and_small_jobs_flow_through() {
        let service = SortService::start(
            ServiceConfig::default()
                .workers(2)
                .small_sort_cutoff(512)
                .small_batch(4),
        );
        let empty = service
            .submit(Vec::<u64>::new(), JobOptions::default())
            .unwrap();
        let one = service.submit(vec![7u64], JobOptions::default()).unwrap();
        let small = service
            .submit(vec![3u64, 1, 2], JobOptions::default())
            .unwrap();
        assert_eq!(empty.wait().sorted.unwrap(), Vec::<u64>::new());
        assert_eq!(one.wait().sorted.unwrap(), vec![7]);
        assert_eq!(small.wait().sorted.unwrap(), vec![1, 2, 3]);
        let stats = service.shutdown();
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn small_batches_are_counted() {
        // Occupy the single worker with a paused shared job, queue a
        // burst of small jobs behind it, and watch the worker drain them
        // all in one batched claim once the pause lifts.
        let service = SortService::start(
            ServiceConfig::default()
                .workers(1)
                .small_sort_cutoff(512)
                .small_batch(8),
        );
        let big = random_keys(2_000, 199);
        let pause = ChaosPlan::new(1).pause_at(0, 1, 50_000);
        let blocker = service
            .submit(big.clone(), JobOptions::default().plan(pause).helpers(1))
            .unwrap();
        let tickets: Vec<_> = (0..5)
            .map(|t| {
                service
                    .submit(random_keys(100, 200 + t), JobOptions::default())
                    .unwrap()
            })
            .collect();
        assert_eq!(blocker.wait().sorted.unwrap(), expect_sorted(&big));
        for ticket in tickets {
            assert!(ticket.wait().sorted.is_ok());
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 6);
        // The first small claim drained the other four as batch extras.
        assert_eq!(stats.small_batched, 4);
    }

    #[test]
    fn zero_deadline_fails_cleanly_without_affecting_others() {
        let service = SortService::start(ServiceConfig::default().workers(2));
        let keys = random_keys(4_000, 300);
        let doomed = service
            .submit(keys.clone(), JobOptions::default().deadline(Duration::ZERO))
            .unwrap();
        let fine = service.submit(keys.clone(), JobOptions::default()).unwrap();
        assert_eq!(doomed.wait().sorted.unwrap_err(), JobError::DeadlineExpired);
        assert_eq!(fine.wait().sorted.unwrap(), expect_sorted(&keys));
        let stats = service.shutdown();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn tiny_jobs_never_miss_deadlines() {
        let service = SortService::start(ServiceConfig::default().workers(1));
        let ticket = service
            .submit(vec![5u64], JobOptions::default().deadline(Duration::ZERO))
            .unwrap();
        assert_eq!(ticket.wait().sorted.unwrap(), vec![5]);
        service.shutdown();
    }

    #[test]
    fn budget_exhaustion_is_typed_and_isolated() {
        let service = SortService::start(ServiceConfig::default().workers(2));
        let keys = random_keys(8_000, 301);
        let starved = service
            .submit(keys.clone(), JobOptions::default().budget(3))
            .unwrap();
        let fine = service.submit(keys.clone(), JobOptions::default()).unwrap();
        assert_eq!(
            starved.wait().sorted.unwrap_err(),
            JobError::BudgetExhausted { budget: 3 }
        );
        assert_eq!(fine.wait().sorted.unwrap(), expect_sorted(&keys));
        let stats = service.shutdown();
        assert_eq!(stats.budget_exhausted, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn crashed_job_recovers_and_completes() {
        let service = SortService::start(ServiceConfig::default().workers(2).max_recoveries(2));
        let keys = random_keys(4_000, 302);
        // Both chaos slots crash almost immediately; the recovery stint
        // runs fault-free and finishes the abandoned structures.
        let plan = ChaosPlan::new(2).crash_at(0, 3).crash_at(1, 5);
        let ticket = service
            .submit(keys.clone(), JobOptions::default().plan(plan).helpers(2))
            .unwrap();
        let result = ticket.wait();
        assert_eq!(result.sorted.unwrap(), expect_sorted(&keys));
        assert!(result.report.recoveries >= 1);
        let stats = service.shutdown();
        assert_eq!(stats.completed, 1);
        assert!(stats.crash_recoveries >= 1);
        assert_eq!(stats.workers_lost, 0);
    }

    #[test]
    fn unrecoverable_job_fails_with_workers_lost() {
        // Chaos slots outnumber claims + recoveries, so every stint the
        // service can dispatch crashes and the job alone fails.
        let service = SortService::start(ServiceConfig::default().workers(1).max_recoveries(1));
        let keys = random_keys(4_000, 303);
        let plan = ChaosPlan::new(8)
            .crash_at(0, 1)
            .crash_at(1, 1)
            .crash_at(2, 1)
            .crash_at(3, 1)
            .crash_at(4, 1)
            .crash_at(5, 1)
            .crash_at(6, 1)
            .crash_at(7, 1);
        let doomed = service
            .submit(keys.clone(), JobOptions::default().plan(plan).helpers(2))
            .unwrap();
        let fine = service.submit(keys.clone(), JobOptions::default()).unwrap();
        assert_eq!(
            doomed.wait().sorted.unwrap_err(),
            JobError::WorkersLost { recoveries: 1 }
        );
        assert_eq!(fine.wait().sorted.unwrap(), expect_sorted(&keys));
        let stats = service.shutdown();
        assert_eq!(stats.workers_lost, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn queue_full_rejects_with_capacity() {
        // No workers consume fast enough to matter: capacity 2, then a
        // third submission while both slots are occupied. Stall the pool
        // with a long chaos pause? Simpler: one worker, first job large
        // enough to hold it while we overfill the queue.
        let service = SortService::start(
            ServiceConfig::default()
                .workers(1)
                .queue_capacity(2)
                .small_sort_cutoff(0),
        );
        let mut tickets = Vec::new();
        let mut rejected = 0;
        // Submit far more than capacity as fast as possible; at least one
        // must bounce (a single worker cannot drain 64 shared jobs of
        // this size instantly), and every admitted one must complete.
        for t in 0..64 {
            match service.submit(
                random_keys(2_000, 400 + t),
                JobOptions::default().helpers(1),
            ) {
                Ok(ticket) => tickets.push(ticket),
                Err(Rejected::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected rejection: {other}"),
            }
        }
        assert!(rejected > 0, "64 instant submissions must overflow 2 slots");
        for ticket in tickets {
            assert!(ticket.wait().sorted.is_ok());
        }
        let stats = service.shutdown();
        assert_eq!(stats.rejected_queue_full, rejected);
        assert_eq!(stats.admitted + stats.rejected(), 64);
    }

    #[test]
    fn shutdown_drains_in_flight_and_rejects_new() {
        let service = SortService::start(ServiceConfig::default().workers(2));
        let inputs: Vec<Vec<u64>> = (0..4).map(|t| random_keys(3_000, 500 + t)).collect();
        let tickets: Vec<_> = inputs
            .iter()
            .map(|keys| service.submit(keys.clone(), JobOptions::default()).unwrap())
            .collect();
        let stats = service.shutdown();
        // Every admitted job was drained to publication before shutdown
        // returned...
        assert_eq!(stats.admitted, 4);
        assert_eq!(stats.completed, 4);
        for (keys, ticket) in inputs.iter().zip(tickets) {
            let result = ticket.try_wait().expect("drained before shutdown returned");
            assert_eq!(result.sorted.unwrap(), expect_sorted(keys));
        }
    }

    #[test]
    fn submissions_after_shutdown_are_typed_rejections() {
        let service = SortService::start(ServiceConfig::default().workers(1));
        let service_ref = &service;
        let ticket = service_ref
            .submit(random_keys(100, 600), JobOptions::default())
            .unwrap();
        assert!(ticket.wait().sorted.is_ok());
        service.begin_shutdown();
        assert_eq!(
            service
                .submit(random_keys(100, 601), JobOptions::default())
                .unwrap_err(),
            Rejected::ShuttingDown
        );
        let stats = service.shutdown();
        assert_eq!(stats.rejected_shutting_down, 1);
    }

    #[test]
    fn ticket_try_wait_round_trips() {
        let service = SortService::start(ServiceConfig::default().workers(1));
        let ticket = service
            .submit(random_keys(500, 700), JobOptions::default())
            .unwrap();
        let id = ticket.id();
        // Redeem through try_wait, looping like a poller would.
        let mut ticket = Some(ticket);
        let result = loop {
            match ticket.take().unwrap().try_wait() {
                Ok(result) => break result,
                Err(t) => {
                    ticket = Some(t);
                    std::thread::yield_now();
                }
            }
        };
        assert_eq!(result.report.id, id);
        assert!(result.sorted.is_ok());
        service.shutdown();
    }

    #[test]
    fn scripted_plans_ride_the_sharded_pipeline() {
        // Red-first pin for the inert-plan bug: a tenant past
        // `sharded_cutoff` that also carries a `ChaosPlan` must run the
        // sharded pipeline *and* replay its fault script there. Before
        // the fix, a plan silently forced the single-tree path, so the
        // sharded pipeline was never exercised under service chaos.
        let service = SortService::start(
            ServiceConfig::default()
                .workers(2)
                .sharded_cutoff(2_000)
                .max_recoveries(2),
        );
        let keys = random_keys(6_000, 900);
        let plan = ChaosPlan::new(2).crash_at(0, 40).crash_at(1, 80);
        let ticket = service
            .submit(keys.clone(), JobOptions::default().plan(plan).helpers(2))
            .unwrap();
        let result = ticket.wait();
        assert_eq!(result.sorted.unwrap(), expect_sorted(&keys));
        assert!(result.report.recoveries >= 1, "both scripted stints crash");
        assert!(
            result.report.sort.per_phase.partition.claims > 0,
            "a chaos-planned large tenant must run the sharded partition \
             phase, not fall back to the single tree"
        );
        let stats = service.shutdown();
        assert!(stats.crash_recoveries >= 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn sharded_job_progress_feeds_the_watchdog() {
        // Red-first pin for the sharded observe blind spot: a crashing
        // sharded stint must feed the watchdog registry a snapshot
        // built from the three sharded WAT frontiers. The first stint
        // crashes mid-partition (observing on the way out); the
        // recovery stint pauses half a second at its first checkpoint,
        // holding the job in flight while the test reads the snapshot.
        let service = SortService::start(ServiceConfig::default().workers(1).sharded_cutoff(2_000));
        let keys = random_keys(6_000, 901);
        let plan = ChaosPlan::new(2).crash_at(0, 60).pause_at(1, 1, 500_000);
        let ticket = service
            .submit(keys.clone(), JobOptions::default().plan(plan).helpers(1))
            .unwrap();
        let id = ticket.id();
        let poll_until = Instant::now() + Duration::from_secs(10);
        let report = loop {
            if let Some(report) = service.job_progress(id) {
                break report;
            }
            assert!(
                Instant::now() < poll_until,
                "no progress snapshot observed for the crashed sharded stint"
            );
            std::thread::sleep(Duration::from_millis(1));
        };
        assert!(!report.complete);
        assert!(
            report.phase >= SortPhase::Partition,
            "snapshot must come from the sharded pipeline, got {:?}",
            report.phase
        );
        assert!(report.build_jobs_total > 0);
        assert_eq!(ticket.wait().sorted.unwrap(), expect_sorted(&keys));
        service.shutdown();
    }

    #[test]
    fn expired_small_batch_extras_fail_individually() {
        // Red-first pin: batch extras whose deadlines already expired
        // at claim time must each publish their own typed deadline
        // error, without poisoning their batch-mates and without
        // unbalancing the ledger (completed + failed == admitted).
        let service = SortService::start(
            ServiceConfig::default()
                .workers(1)
                .small_sort_cutoff(512)
                .small_batch(8),
        );
        let big = random_keys(2_000, 902);
        let pause = ChaosPlan::new(1).pause_at(0, 1, 100_000);
        let blocker = service
            .submit(big.clone(), JobOptions::default().plan(pause).helpers(1))
            .unwrap();
        let live1 = service
            .submit(random_keys(100, 903), JobOptions::default())
            .unwrap();
        let doomed1 = service
            .submit(
                random_keys(100, 904),
                JobOptions::default().deadline(Duration::ZERO),
            )
            .unwrap();
        let doomed2 = service
            .submit(
                random_keys(100, 905),
                JobOptions::default().deadline(Duration::ZERO),
            )
            .unwrap();
        let live2 = service
            .submit(random_keys(100, 906), JobOptions::default())
            .unwrap();
        assert_eq!(blocker.wait().sorted.unwrap(), expect_sorted(&big));
        assert!(live1.wait().sorted.is_ok());
        assert_eq!(
            doomed1.wait().sorted.unwrap_err(),
            JobError::DeadlineExpired
        );
        assert_eq!(
            doomed2.wait().sorted.unwrap_err(),
            JobError::DeadlineExpired
        );
        assert!(live2.wait().sorted.is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.deadline_expired, 2);
        assert_eq!(stats.completed + stats.failed(), stats.admitted);
        // The first small claim drained the other three as batch extras.
        assert_eq!(stats.small_batched, 3);
    }

    #[test]
    fn idle_workers_join_the_largest_inflight_job() {
        // Red-first pin for work conservation: one large planless
        // tenant claimed by a single stint, empty queue — the three
        // idle workers must join it as helper stints instead of
        // sleeping on `work_ready`.
        let service = SortService::start(ServiceConfig::default().workers(4).sharded_cutoff(4_096));
        let keys = random_keys(120_000, 907);
        let ticket = service
            .submit(keys.clone(), JobOptions::default().helpers(1))
            .unwrap();
        let result = ticket.wait();
        assert_eq!(result.sorted.unwrap(), expect_sorted(&keys));
        let stats = service.shutdown();
        assert!(
            stats.helper_stints > 0,
            "idle workers must have joined the in-flight job: {stats:?}"
        );
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.completed + stats.failed(), stats.admitted);
    }

    #[test]
    fn weighted_tenants_overtake_fifo_order() {
        // Red-first pin for weighted scheduling: with the pool blocked,
        // a weight-8 tenant queued *behind* a weight-1 tenant must be
        // picked first once the worker frees (equal accrued credit
        // breaks toward the higher weight).
        let service = SortService::start(ServiceConfig::default().workers(1));
        let big = random_keys(2_000, 908);
        let pause = ChaosPlan::new(1).pause_at(0, 1, 100_000);
        let blocker = service
            .submit(big.clone(), JobOptions::default().plan(pause).helpers(1))
            .unwrap();
        let a_keys = random_keys(3_000, 909);
        let b_keys = random_keys(3_000, 910);
        let a = service
            .submit(a_keys.clone(), JobOptions::default().helpers(1).weight(1))
            .unwrap();
        let b = service
            .submit(b_keys.clone(), JobOptions::default().helpers(1).weight(8))
            .unwrap();
        assert_eq!(blocker.wait().sorted.unwrap(), expect_sorted(&big));
        let a_result = a.wait();
        let b_result = b.wait();
        assert_eq!(a_result.sorted.unwrap(), expect_sorted(&a_keys));
        assert_eq!(b_result.sorted.unwrap(), expect_sorted(&b_keys));
        assert!(
            b_result.report.queued < a_result.report.queued,
            "the weight-8 tenant must start before the weight-1 tenant \
             queued ahead of it (b queued {:?}, a queued {:?})",
            b_result.report.queued,
            a_result.report.queued
        );
        let stats = service.shutdown();
        assert!(
            stats.weighted_picks >= 1,
            "picking b over a is a weighted pick"
        );
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn service_report_telemetry_is_finite_and_consistent() {
        // One worker: the single stint's telemetry must cover the whole
        // input (with co-scheduled stints the publisher may race a
        // sibling's metrics push, so coverage is only eventual).
        let service = SortService::start(ServiceConfig::default().workers(1));
        let keys = random_keys(5_000, 800);
        let ticket = service.submit(keys.clone(), JobOptions::default()).unwrap();
        let result = ticket.wait();
        assert_eq!(result.sorted.unwrap(), expect_sorted(&keys));
        let report = result.report;
        assert!(report.elapsed >= report.queued);
        assert_eq!(report.sort.per_worker.len(), report.stints);
        assert!(report.sort.per_phase.build.claims >= 4_999);
        assert!(report.sort.cas_failure_rate.is_finite());
        service.shutdown();
    }
}
