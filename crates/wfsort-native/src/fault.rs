//! Chaos engineering for the native sorter: seeded, composable fault
//! plans delivered through [`Participation`] checkpoints.
//!
//! The PRAM simulator scripts failures by *cycle*
//! (`pram::failure::FailurePlan`); native threads have no global clock,
//! so the unit of injection here is the *checkpoint* — one
//! [`Participation::keep_going`] consultation, which [`crate::SortJob`]
//! performs at every wait-free operation boundary (WAT claims, tree
//! traversal steps). A [`ChaosPlan`] maps `(worker, checkpoint)` pairs to
//! [`FaultAction`]s; a [`ChaosParticipation`] replays one worker's script
//! deterministically, so a storm that broke a run can be replayed from
//! its seed alone.
//!
//! The adversary modeled here is the paper's §1.1 scenario: threads can
//! be reaped ([`FaultAction::Crash`]), descheduled and silently resumed
//! ([`FaultAction::Pause`]), or slowed by interference
//! ([`FaultAction::Stall`]) — but shared memory is never corrupted and a
//! crash can only land *between* wait-free operations, which is exactly
//! the granularity at which the algorithm promises survivors can finish.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::job::Participation;

/// What a chaos-driven participant does at one checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Abandon participation permanently — the thread is reaped, exactly
    /// like a PRAM processor crash with no revival.
    Crash,
    /// Busy-wait approximately `spins` iterations, then continue — a
    /// straggler slowed by interference (preemption, cache pressure).
    Stall {
        /// Iterations of [`std::hint::spin_loop`] to burn.
        spins: u32,
    },
    /// Sleep for `micros` microseconds, then continue — the §1.1
    /// "fail and later revive in an undetectable manner" adversary: the
    /// thread is gone long enough for the OS to reuse its processor, then
    /// resumes mid-algorithm as if nothing happened.
    Pause {
        /// Sleep duration in microseconds.
        micros: u32,
    },
}

/// Background noise injected at unscripted checkpoints: with probability
/// `probability` per checkpoint, stall for `1..=max_spins` spins.
#[derive(Clone, Copy, Debug)]
struct Jitter {
    probability: f64,
    max_spins: u32,
}

/// A seeded, composable schedule of [`FaultAction`]s for a cohort of
/// workers, keyed by checkpoint index — the native mirror of the PRAM
/// side's `FailurePlan`.
///
/// # Examples
///
/// ```
/// use wfsort_native::{ChaosPlan, FaultAction};
///
/// let plan = ChaosPlan::new(3)
///     .crash_at(0, 40)
///     .stall_at(1, 10, 500)
///     .pause_at(2, 25, 50);
/// assert_eq!(plan.workers(), 3);
/// assert_eq!(plan.crash_victims(), 1);
/// assert_eq!(plan.survivors(), 2);
/// assert_eq!(plan.script(0), &[(40, FaultAction::Crash)]);
/// ```
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// Per-worker scripts, sorted by checkpoint index.
    scripts: Vec<Vec<(u64, FaultAction)>>,
    jitter: Option<Jitter>,
    seed: u64,
}

impl ChaosPlan {
    /// Creates an empty plan for `workers` workers (no faults — every
    /// worker runs to completion).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        ChaosPlan {
            scripts: vec![Vec::new(); workers],
            jitter: None,
            seed: 0,
        }
    }

    /// Number of workers this plan drives.
    pub fn workers(&self) -> usize {
        self.scripts.len()
    }

    fn push(&mut self, worker: usize, checkpoint: u64, action: FaultAction) {
        assert!(worker < self.scripts.len(), "worker out of range");
        let script = &mut self.scripts[worker];
        let pos = script.partition_point(|&(c, _)| c <= checkpoint);
        script.insert(pos, (checkpoint, action));
    }

    /// Schedules `worker` to crash at `checkpoint`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn crash_at(mut self, worker: usize, checkpoint: u64) -> Self {
        self.push(worker, checkpoint, FaultAction::Crash);
        self
    }

    /// Schedules `worker` to busy-wait `spins` iterations at `checkpoint`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn stall_at(mut self, worker: usize, checkpoint: u64, spins: u32) -> Self {
        self.push(worker, checkpoint, FaultAction::Stall { spins });
        self
    }

    /// Schedules `worker` to sleep `micros` microseconds at `checkpoint`
    /// and then revive.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn pause_at(mut self, worker: usize, checkpoint: u64, micros: u32) -> Self {
        self.push(worker, checkpoint, FaultAction::Pause { micros });
        self
    }

    /// Adds seeded background jitter: at every checkpoint with no
    /// scripted event, each worker stalls `1..=max_spins` spins with the
    /// given probability, drawn from a per-worker RNG derived from the
    /// plan seed (see [`ChaosPlan::seeded`]).
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not within `[0, 1]` or `max_spins` is 0.
    pub fn with_jitter(mut self, probability: f64, max_spins: u32) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0, 1]"
        );
        assert!(max_spins > 0, "max_spins must be positive");
        self.jitter = Some(Jitter {
            probability,
            max_spins,
        });
        self
    }

    /// Sets the base seed from which per-worker jitter RNGs are derived.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds a plan that crashes a random `fraction` of `workers` at
    /// random checkpoints within `0..horizon`, deterministically from
    /// `seed`. At least one worker is always left crash-free, mirroring
    /// `FailurePlan::random_crashes` on the PRAM side: a cohort in which
    /// *everyone* crashes trivially cannot finish by itself.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or `fraction` is not within `[0, 1]`.
    pub fn random_crashes(workers: usize, fraction: f64, horizon: u64, seed: u64) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let max_victims = workers - 1;
        let victims = ((workers as f64 * fraction).round() as usize).min(max_victims);
        let mut pool: Vec<usize> = (0..workers).collect();
        pool.shuffle(&mut rng);
        let mut plan = ChaosPlan::new(workers).seeded(seed);
        for &v in pool.iter().take(victims) {
            let checkpoint = rng.gen_range(0..horizon.max(1));
            plan.push(v, checkpoint, FaultAction::Crash);
        }
        plan
    }

    /// Builds a pause/revive storm (§1.1's undetectable-restart model,
    /// natively: the thread sleeps through its slice and silently
    /// resumes): every worker suffers `rounds` pauses of `1..=250`
    /// microseconds at random checkpoints within `0..horizon`,
    /// deterministically from `seed`. Nobody crashes, so any cohort
    /// finishes — delayed, never blocked.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `horizon` is zero.
    pub fn random_pause_revive(workers: usize, rounds: usize, horizon: u64, seed: u64) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(horizon > 0, "need a positive horizon");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = ChaosPlan::new(workers).seeded(seed);
        for w in 0..workers {
            for _ in 0..rounds {
                let checkpoint = rng.gen_range(0..horizon);
                let micros = rng.gen_range(1..=250u32);
                plan.push(w, checkpoint, FaultAction::Pause { micros });
            }
        }
        plan
    }

    /// The script for `worker`, sorted by checkpoint index.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn script(&self, worker: usize) -> &[(u64, FaultAction)] {
        &self.scripts[worker]
    }

    /// Total number of scheduled events across all workers.
    pub fn len(&self) -> usize {
        self.scripts.iter().map(Vec::len).sum()
    }

    /// Whether the plan schedules no events at all.
    pub fn is_empty(&self) -> bool {
        self.scripts.iter().all(Vec::is_empty)
    }

    /// Number of workers this plan ever crashes.
    pub fn crash_victims(&self) -> usize {
        self.scripts
            .iter()
            .filter(|s| s.iter().any(|&(_, a)| a == FaultAction::Crash))
            .count()
    }

    /// Number of workers guaranteed to run to completion (never crashed;
    /// stalls and pauses only delay).
    pub fn survivors(&self) -> usize {
        self.workers() - self.crash_victims()
    }
}

fn busy_wait(spins: u32) {
    for _ in 0..spins {
        std::hint::spin_loop();
    }
}

/// Replays one worker's slice of a [`ChaosPlan`], deterministically:
/// checkpoint `c` is the `c`-th `keep_going` consultation this
/// participant receives, so the fault sequence depends only on
/// `(plan, worker)` — never on scheduling.
///
/// # Examples
///
/// ```
/// use wfsort_native::{ChaosParticipation, ChaosPlan, SortJob};
///
/// let plan = ChaosPlan::new(2).crash_at(0, 30);
/// let job = SortJob::new(vec![5, 2, 8, 1, 9, 3]);
/// crossbeam::thread::scope(|s| {
///     s.spawn(|_| job.participate(&mut ChaosParticipation::new(&plan, 0)));
///     s.spawn(|_| job.participate(&mut ChaosParticipation::new(&plan, 1)));
/// })
/// .unwrap();
/// assert!(job.is_complete()); // worker 1 survives and finishes
/// ```
#[derive(Debug)]
pub struct ChaosParticipation<'a> {
    script: &'a [(u64, FaultAction)],
    jitter: Option<(StdRng, f64, u32)>,
    cursor: usize,
    checkpoint: u64,
    crashed: bool,
    fired: Vec<(u64, FaultAction)>,
}

impl<'a> ChaosParticipation<'a> {
    /// Creates the participation driving `worker` under `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range for the plan.
    pub fn new(plan: &'a ChaosPlan, worker: usize) -> Self {
        assert!(worker < plan.workers(), "worker out of range");
        let jitter = plan.jitter.map(|j| {
            let stream = plan
                .seed
                .wrapping_add((worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_add(1);
            (StdRng::seed_from_u64(stream), j.probability, j.max_spins)
        });
        ChaosParticipation {
            script: plan.script(worker),
            jitter,
            cursor: 0,
            checkpoint: 0,
            crashed: false,
            fired: Vec::new(),
        }
    }

    /// Checkpoints consulted so far.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoint
    }

    /// Whether a scripted crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Every action that actually fired, in order, as `(checkpoint,
    /// action)` — scripted events plus materialized jitter stalls. Equal
    /// across runs with the same plan, seed and worker.
    pub fn fired(&self) -> &[(u64, FaultAction)] {
        &self.fired
    }
}

impl Participation for ChaosParticipation<'_> {
    fn keep_going(&mut self) -> bool {
        if self.crashed {
            return false;
        }
        let c = self.checkpoint;
        self.checkpoint += 1;
        let mut scripted = false;
        while let Some(&(at, action)) = self.script.get(self.cursor) {
            if at > c {
                break;
            }
            self.cursor += 1;
            scripted = true;
            self.fired.push((c, action));
            match action {
                FaultAction::Crash => {
                    self.crashed = true;
                    return false;
                }
                FaultAction::Stall { spins } => busy_wait(spins),
                FaultAction::Pause { micros } => {
                    std::thread::sleep(Duration::from_micros(micros as u64));
                }
            }
        }
        if !scripted {
            if let Some((rng, probability, max_spins)) = &mut self.jitter {
                if rng.gen_bool(*probability) {
                    let spins = rng.gen_range(1..=*max_spins);
                    self.fired.push((c, FaultAction::Stall { spins }));
                    busy_wait(spins);
                }
            }
        }
        true
    }
}

/// Bounds any [`Participation`] by a wall-clock deadline: the inner
/// policy decides normally until the deadline passes, after which the
/// participant abandons. The clock is sampled every 16th checkpoint to
/// keep the common path cheap.
#[derive(Debug)]
pub struct WithDeadline<P> {
    inner: P,
    until: Instant,
    calls: u32,
    expired: bool,
}

impl<P: Participation> WithDeadline<P> {
    /// Wraps `inner`, abandoning once `Instant::now()` reaches `until`.
    pub fn new(inner: P, until: Instant) -> Self {
        WithDeadline {
            inner,
            until,
            calls: 0,
            expired: false,
        }
    }

    /// Whether the deadline has been observed to pass.
    pub fn expired(&self) -> bool {
        self.expired
    }

    /// Recovers the wrapped participation.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Participation> Participation for WithDeadline<P> {
    fn keep_going(&mut self) -> bool {
        if self.expired {
            return false;
        }
        if self.calls & 15 == 0 && Instant::now() >= self.until {
            self.expired = true;
            return false;
        }
        self.calls = self.calls.wrapping_add(1);
        self.inner.keep_going()
    }
}

/// Stops a cohort once its members have collectively burned a shared
/// budget of participation checks — a deterministic reap trigger that
/// cannot race on machine speed the way a wall-clock deadline can.
/// [`crate::sort_with_churn`] reaps its initial cohort this way, and
/// [`crate::service::SortService`] exposes it as the per-job
/// checkpoint-budget knob.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::AtomicU64;
/// use wfsort_native::{SharedBudget, SortJob};
///
/// let job = SortJob::new((0..500i64).rev().collect::<Vec<_>>());
/// let spent = AtomicU64::new(0);
/// job.participate(&mut SharedBudget::new(&spent, 100));
/// assert!(!job.is_complete()); // the budget reaped the participant
/// job.run();
/// assert!(job.is_complete()); // a fresh participant always can finish
/// ```
#[derive(Debug)]
pub struct SharedBudget<'a> {
    spent: &'a AtomicU64,
    budget: u64,
    exhausted: bool,
}

impl<'a> SharedBudget<'a> {
    /// Participates until the shared `spent` counter — incremented once
    /// per checkpoint by every participant sharing it — reaches `budget`.
    pub fn new(spent: &'a AtomicU64, budget: u64) -> Self {
        SharedBudget {
            spent,
            budget,
            exhausted: false,
        }
    }

    /// Whether this participant observed the budget run out.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }
}

impl Participation for SharedBudget<'_> {
    fn keep_going(&mut self) -> bool {
        if self.spent.fetch_add(1, Ordering::Relaxed) < self.budget {
            true
        } else {
            self.exhausted = true;
            false
        }
    }
}

/// Counts checkpoints while delegating to an inner [`Participation`] —
/// used to size exhaustive crash-window sweeps (how many checkpoints does
/// a solo run consult?) and by tests asserting progress.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointCounter<P> {
    inner: P,
    count: u64,
}

impl<P: Participation> CheckpointCounter<P> {
    /// Wraps `inner`.
    pub fn new(inner: P) -> Self {
        CheckpointCounter { inner, count: 0 }
    }

    /// Checkpoints consulted so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl<P: Participation> Participation for CheckpointCounter<P> {
    fn keep_going(&mut self) -> bool {
        self.count += 1;
        self.inner.keep_going()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{RunToCompletion, SortJob};

    #[test]
    fn builder_accumulates_sorted_scripts() {
        let plan = ChaosPlan::new(2)
            .stall_at(0, 9, 10)
            .crash_at(0, 3)
            .pause_at(1, 5, 7);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(
            plan.script(0),
            &[
                (3, FaultAction::Crash),
                (9, FaultAction::Stall { spins: 10 })
            ]
        );
        assert_eq!(plan.script(1), &[(5, FaultAction::Pause { micros: 7 })]);
        assert_eq!(plan.crash_victims(), 1);
        assert_eq!(plan.survivors(), 1);
    }

    #[test]
    fn random_crashes_is_deterministic_in_seed() {
        let a = ChaosPlan::random_crashes(8, 0.5, 100, 7);
        let b = ChaosPlan::random_crashes(8, 0.5, 100, 7);
        for w in 0..8 {
            assert_eq!(a.script(w), b.script(w));
        }
    }

    #[test]
    fn random_crashes_leaves_a_survivor() {
        for seed in 0..20 {
            let plan = ChaosPlan::random_crashes(8, 1.0, 100, seed);
            assert!(plan.crash_victims() <= 7, "seed {seed} crashed everyone");
            assert!(plan.survivors() >= 1);
        }
    }

    #[test]
    fn random_pause_revive_never_crashes() {
        for seed in 0..10 {
            let plan = ChaosPlan::random_pause_revive(4, 3, 50, seed);
            assert_eq!(plan.crash_victims(), 0);
            assert_eq!(plan.survivors(), 4);
            assert_eq!(plan.len(), 4 * 3);
        }
    }

    #[test]
    fn generated_plans_are_pure_functions_of_their_parameters() {
        // Unit mirror of the proptest in `tests/proptest_extensions.rs`:
        // same (shape, seed) ⇒ identical per-worker scripts, across both
        // generators and a spread of parameters.
        for seed in 0..100u64 {
            let workers = 1 + (seed as usize % 8);
            let fraction = (seed % 11) as f64 / 10.0;
            let horizon = 1 + (seed * 7) % 400;
            let a = ChaosPlan::random_crashes(workers, fraction, horizon, seed);
            let b = ChaosPlan::random_crashes(workers, fraction, horizon, seed);
            for w in 0..workers {
                assert_eq!(a.script(w), b.script(w), "crashes: seed {seed} worker {w}");
            }
            assert_eq!(a.crash_victims(), b.crash_victims());
            let rounds = seed as usize % 4;
            let c = ChaosPlan::random_pause_revive(workers, rounds, horizon, seed);
            let d = ChaosPlan::random_pause_revive(workers, rounds, horizon, seed);
            for w in 0..workers {
                assert_eq!(c.script(w), d.script(w), "pauses: seed {seed} worker {w}");
            }
            // A different seed perturbs at least one generated script
            // (vacuously equal plans — no victims, no rounds — excepted).
            let shifted = ChaosPlan::random_crashes(workers, fraction, horizon, seed + 1);
            if a.crash_victims() > 0 && shifted.crash_victims() > 0 {
                let differs = (0..workers).any(|w| a.script(w) != shifted.script(w));
                assert!(differs, "seed {seed}: seed change left every script equal");
            }
        }
    }

    #[test]
    fn participation_replays_script_deterministically() {
        let plan = ChaosPlan::new(1)
            .stall_at(0, 2, 5)
            .stall_at(0, 4, 9)
            .crash_at(0, 6)
            .seeded(3);
        let drive = || {
            let mut p = ChaosParticipation::new(&plan, 0);
            let mut alive = 0;
            while p.keep_going() {
                alive += 1;
                assert!(alive < 100, "crash never fired");
            }
            (alive, p.fired().to_vec(), p.crashed())
        };
        let (a_alive, a_fired, a_crashed) = drive();
        let (b_alive, b_fired, b_crashed) = drive();
        assert_eq!(a_alive, 6);
        assert_eq!(a_alive, b_alive);
        assert_eq!(a_fired, b_fired);
        assert!(a_crashed && b_crashed);
        assert_eq!(
            a_fired,
            vec![
                (2, FaultAction::Stall { spins: 5 }),
                (4, FaultAction::Stall { spins: 9 }),
                (6, FaultAction::Crash),
            ]
        );
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_worker() {
        let plan = ChaosPlan::new(2).with_jitter(0.5, 40).seeded(11);
        let drive = |worker: usize| {
            let mut p = ChaosParticipation::new(&plan, worker);
            for _ in 0..200 {
                assert!(p.keep_going());
            }
            p.fired().to_vec()
        };
        assert_eq!(drive(0), drive(0));
        assert_eq!(drive(1), drive(1));
        // Different workers draw from different streams.
        assert_ne!(drive(0), drive(1));
        // A different base seed produces a different storm.
        let other = ChaosPlan::new(2).with_jitter(0.5, 40).seeded(12);
        let mut p = ChaosParticipation::new(&other, 0);
        for _ in 0..200 {
            assert!(p.keep_going());
        }
        assert_ne!(drive(0), p.fired().to_vec());
    }

    #[test]
    fn chaos_cohort_with_survivor_completes_sort() {
        let keys: Vec<i64> = (0..800).rev().collect();
        let mut expect = keys.clone();
        expect.sort();
        let plan = ChaosPlan::new(3)
            .crash_at(0, 10)
            .pause_at(1, 5, 20)
            .stall_at(1, 15, 200)
            .with_jitter(0.05, 50)
            .seeded(2);
        let job = SortJob::new(keys);
        crossbeam::thread::scope(|s| {
            for w in 0..plan.workers() {
                let (job, plan) = (&job, &plan);
                s.spawn(move |_| job.participate(&mut ChaosParticipation::new(plan, w)));
            }
        })
        .unwrap();
        assert!(job.is_complete());
        assert_eq!(job.into_sorted(), expect);
    }

    #[test]
    fn with_deadline_zero_abandons_immediately() {
        let mut p = WithDeadline::new(RunToCompletion, Instant::now());
        assert!(!p.keep_going());
        assert!(p.expired());
        assert!(!p.keep_going());
    }

    #[test]
    fn with_deadline_far_future_delegates() {
        let mut p = WithDeadline::new(RunToCompletion, Instant::now() + Duration::from_secs(3600));
        for _ in 0..100 {
            assert!(p.keep_going());
        }
        assert!(!p.expired());
    }

    #[test]
    fn shared_budget_reaps_cohort_deterministically() {
        let keys: Vec<i64> = (0..3000).rev().collect();
        let job = SortJob::new(keys);
        let spent = AtomicU64::new(0);
        let mut first = SharedBudget::new(&spent, 200);
        job.participate(&mut first);
        assert!(first.exhausted());
        assert!(!job.is_complete());
        // The budget is shared: a second participant on the same counter
        // is reaped at its very first checkpoint.
        let mut second = SharedBudget::new(&spent, 200);
        job.participate(&mut second);
        assert!(second.exhausted());
        // A fresh budget finishes the abandoned job.
        let fresh = AtomicU64::new(0);
        let mut third = SharedBudget::new(&fresh, u64::MAX);
        job.participate(&mut third);
        assert!(!third.exhausted());
        assert!(job.is_complete());
    }

    #[test]
    fn checkpoint_counter_counts() {
        let job = SortJob::new(vec![3, 1, 2, 5, 4]);
        let mut counter = CheckpointCounter::new(RunToCompletion);
        job.participate(&mut counter);
        assert!(job.is_complete());
        assert!(counter.count() > 0);
    }

    #[test]
    #[should_panic(expected = "worker out of range")]
    fn out_of_range_worker_rejected() {
        ChaosPlan::new(2).crash_at(2, 0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn random_crashes_rejects_bad_fraction() {
        ChaosPlan::random_crashes(4, 1.5, 10, 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        ChaosPlan::new(0);
    }
}
