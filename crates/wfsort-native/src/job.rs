//! A sort job shared by any number of participating threads.
//!
//! [`SortJob`] owns the keys and all shared state; [`SortJob::participate`]
//! runs the four wait-free phases to completion and may be called from as
//! many threads as desired, at any time — the scenario motivating the
//! paper's introduction: threads can be reaped mid-sort (abandon
//! participation) and fresh threads can join later, without the data
//! structures ever being left in a state others cannot finish from.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::lcwat::AtomicLcWat;
use crate::metrics::{Instrument, MetricSlot, NoInstrument};
use crate::tree::{PivotTree, SharedTree, Side, EMPTY};
use crate::wat::AtomicWat;
use crate::watchdog::{ParticipantProgress, ProgressReport, SortPhase};

/// Heartbeat slots allocated by [`SortJob::new`] / [`SortJob::with_allocation`]
/// when the worker count is unknown. Participants beyond the tracked
/// count share slots (their heartbeats alias; `ProgressReport` records
/// how many, and correctness is unaffected). Front-ends that know their
/// worker count size the slot vector exactly via [`SortJob::with_tracked`].
pub const DEFAULT_TRACKED_PARTICIPANTS: usize = 64;

/// Which child a thread's descent visits first at a given depth: the
/// paper's PID-bit trick (Figures 5–6), spreading threads across
/// subtrees so concurrent whole-tree traversals do not stampede down
/// the same path. Bit `depth % usize::BITS` of `tid`, set = SMALL first.
///
/// Branchless — a shift, a mask, and [`Side::from_bit`]'s table lookup —
/// and `#[inline]` because it runs on every level of every sum/place
/// frame. Agrees with the simulator's `Pid::bit` for every depth below
/// `usize::BITS` (property-tested in `tests/proptest_layout.rs`).
///
/// Depths at or beyond `usize::BITS` wrap around and reuse low bits
/// (the simulator's `Pid::bit` instead saturates to BIG-first there —
/// see `pram::word::Pid`). Any fixed choice is correct: the bit only
/// picks a traversal order, and trees that deep — n beyond 2^64 keys,
/// or a pathological spine — are outside both implementations' reach.
#[inline]
pub fn descent_side(tid: usize, depth: u32) -> Side {
    Side::from_bit(tid >> (depth % usize::BITS) & 1 == 1)
}

/// The grain (items per WAT leaf block) [`SortJob::with_tracked`] picks
/// for `n` keys and an expected `workers` cohort: `n / (workers * 8)`,
/// clamped to `1..=64`.
///
/// The `workers * 8` divisor keeps at least ~8 blocks per worker so the
/// WAT can still rebalance around slow or reaped participants; the 64
/// cap bounds the work between two `keep_going` block boundaries and
/// keeps the redo cost of a mid-block crash small. Both constants are
/// exercised by the grain-sweep tests and the E25 grain sweep.
pub fn recommended_grain(n: usize, workers: usize) -> usize {
    (n / (workers.max(1) * 8)).clamp(1, 64)
}

/// Heartbeat bit layout: bit 63 = departed, bits 60..=61 = phase,
/// bits 0..=59 = checkpoint epoch.
const DEPARTED_BIT: u64 = 1 << 63;
const PHASE_SHIFT: u32 = 60;
const EPOCH_MASK: u64 = (1 << PHASE_SHIFT) - 1;

/// One cache line per heartbeat slot so workers publishing epochs on the
/// hot path do not false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct HeartbeatSlot(AtomicU64);

/// Publishes a participant's heartbeat around an inner [`Participation`]:
/// each `keep_going` consultation bumps the epoch and stores it with the
/// current phase; `depart` marks the slot when the participant returns.
struct Monitored<'a, P: Participation> {
    inner: &'a mut P,
    slot: &'a AtomicU64,
    phase: SortPhase,
    epoch: u64,
}

impl<P: Participation> Monitored<'_, P> {
    fn publish(&self) {
        self.slot.store(
            ((self.phase as u64) << PHASE_SHIFT) | (self.epoch & EPOCH_MASK),
            Ordering::Release,
        );
    }

    fn enter_phase(&mut self, phase: SortPhase) {
        self.phase = phase;
        self.publish();
    }

    fn depart(&self) {
        self.slot.store(
            DEPARTED_BIT | ((self.phase as u64) << PHASE_SHIFT) | (self.epoch & EPOCH_MASK),
            Ordering::Release,
        );
    }
}

impl<P: Participation> Participation for Monitored<'_, P> {
    fn keep_going(&mut self) -> bool {
        self.epoch += 1;
        self.publish();
        self.inner.keep_going()
    }
}

/// Controls when a participant abandons the sort, simulating reaping or
/// crashing. Consulted at wait-free operation boundaries.
pub trait Participation {
    /// `false` = abandon now.
    fn keep_going(&mut self) -> bool;
}

/// A mutable reference delegates, so boxed or borrowed policies (`&mut
/// dyn Participation`) drive a sort exactly like the concrete type —
/// what lets one cohort spawn loop mix chaos, deadline, and plain
/// participants.
impl<P: Participation + ?Sized> Participation for &mut P {
    fn keep_going(&mut self) -> bool {
        (**self).keep_going()
    }
}

/// Never abandons.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunToCompletion;

impl Participation for RunToCompletion {
    fn keep_going(&mut self) -> bool {
        true
    }
}

/// Abandons after a fixed number of checks — a deterministic "reap".
#[derive(Clone, Copy, Debug)]
pub struct QuitAfter(pub usize);

impl Participation for QuitAfter {
    fn keep_going(&mut self) -> bool {
        if self.0 == 0 {
            false
        } else {
            self.0 -= 1;
            true
        }
    }
}

/// How jobs are handed to participants (the native analogue of the PRAM
/// sorter's `Allocation`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NativeAllocation {
    /// The deterministic WAT of Figure 2.
    #[default]
    Deterministic,
    /// The randomized LC-WAT of Figure 8: random probing decorrelates
    /// which cache lines concurrent threads touch.
    Randomized,
}

/// A wait-free sort of `keys` in progress (or completed).
///
/// The comparison order is `(key, index)` — the paper's assumption of
/// distinct keys realized by index tie-breaking, which also makes the
/// resulting permutation stable.
///
/// # Examples
///
/// Any number of threads can participate; any of them may abandon at
/// any time and the rest finish the job:
///
/// ```
/// use wfsort_native::{QuitAfter, RunToCompletion, SortJob};
///
/// let job = SortJob::new(vec![5, 2, 8, 1, 9, 3]);
/// crossbeam::thread::scope(|s| {
///     s.spawn(|_| job.participate(&mut QuitAfter(10))); // reaped early
///     s.spawn(|_| job.participate(&mut RunToCompletion));
/// })
/// .unwrap();
/// assert!(job.is_complete());
/// assert_eq!(job.into_sorted(), vec![1, 2, 3, 5, 8, 9]);
/// ```
#[derive(Debug)]
pub struct SortJob<K: Ord, T: PivotTree = SharedTree> {
    keys: Vec<K>,
    tree: T,
    allocation: NativeAllocation,
    build_wat: AtomicWat,
    scatter_wat: AtomicWat,
    build_lcwat: AtomicLcWat,
    scatter_lcwat: AtomicLcWat,
    /// `perm[r - 1]` = element index with rank `r`.
    perm: Vec<AtomicUsize>,
    participants: AtomicUsize,
    /// Per-participant heartbeats, indexed by `tid % heartbeats.len()`.
    /// Sized from the expected worker count when the job is built with
    /// [`SortJob::with_tracked`]; later arrivals alias (recorded in
    /// [`ProgressReport::aliased_participants`]).
    heartbeats: Vec<HeartbeatSlot>,
}

impl<K: Ord> SortJob<K> {
    /// Creates a job for sorting `keys`.
    ///
    /// # Panics
    ///
    /// Panics if `keys` has fewer than 2 elements (nothing to do in
    /// parallel; handle short inputs locally).
    pub fn new(keys: Vec<K>) -> Self {
        Self::with_allocation(keys, NativeAllocation::Deterministic)
    }

    /// Creates a job using the given work-allocation strategy, with
    /// [`DEFAULT_TRACKED_PARTICIPANTS`] heartbeat slots.
    ///
    /// # Panics
    ///
    /// Panics if `keys` has fewer than 2 elements.
    pub fn with_allocation(keys: Vec<K>, allocation: NativeAllocation) -> Self {
        Self::with_tracked(keys, allocation, DEFAULT_TRACKED_PARTICIPANTS)
    }

    /// Creates a job with a heartbeat slot for each of `tracked` expected
    /// participants, so the watchdog can tell every worker apart.
    /// Participants past `tracked` still sort correctly but alias slots
    /// (see [`ProgressReport::aliased_participants`]). Callers that know
    /// their worker count — every [`crate::WaitFreeSorter`] front-end —
    /// should pass it here. The WAT grain defaults to
    /// [`recommended_grain`] for `tracked` workers.
    ///
    /// # Panics
    ///
    /// Panics if `keys` has fewer than 2 elements or `tracked` is zero.
    pub fn with_tracked(keys: Vec<K>, allocation: NativeAllocation, tracked: usize) -> Self {
        let grain = recommended_grain(keys.len(), tracked);
        Self::with_grain(keys, allocation, tracked, grain)
    }

    /// [`SortJob::with_tracked`] with an explicit WAT grain (items per
    /// work-assignment leaf block) instead of the [`recommended_grain`]
    /// heuristic. Grain 1 reproduces the one-element-per-leaf trees
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics if `keys` has fewer than 2 elements, or `tracked` or
    /// `grain` is zero.
    pub fn with_grain(
        keys: Vec<K>,
        allocation: NativeAllocation,
        tracked: usize,
        grain: usize,
    ) -> Self {
        Self::with_layout(keys, allocation, tracked, grain)
    }

    /// Builds a *sharded* job over `keys` instead of a single-tree one:
    /// the input is split by sampled splitters into `shards` buckets
    /// which workers then claim and sort independently (see
    /// [`crate::ShardedSortJob`] for the full pipeline and fault story).
    /// The single-tree constructors on this type remain the right choice
    /// for small inputs; [`crate::recommended_shards`] says when sharding
    /// starts paying.
    ///
    /// # Panics
    ///
    /// Panics if `keys` has fewer than 2 elements or `shards` is zero.
    pub fn with_shards(keys: Vec<K>, shards: usize) -> crate::shard::ShardedSortJob<K>
    where
        K: Clone,
    {
        crate::shard::ShardedSortJob::with_workers(
            keys,
            NativeAllocation::Deterministic,
            DEFAULT_TRACKED_PARTICIPANTS,
            shards,
        )
    }
}

impl<K: Ord, T: PivotTree> SortJob<K, T> {
    /// [`SortJob::with_grain`] generalized over the pivot-tree layout
    /// `T`: the packed [`SharedTree`] by default, or (with the
    /// `legacy-layout` feature) the five-parallel-array
    /// `LegacySharedTree`, so differential tests can drive the identical
    /// pipeline through either memory layout.
    ///
    /// # Panics
    ///
    /// Panics if `keys` has fewer than 2 elements, or `tracked` or
    /// `grain` is zero.
    pub fn with_layout(
        keys: Vec<K>,
        allocation: NativeAllocation,
        tracked: usize,
        grain: usize,
    ) -> Self {
        let n = keys.len();
        assert!(n >= 2, "a sort job needs at least two keys");
        assert!(tracked >= 1, "a sort job needs at least one tracked slot");
        SortJob {
            keys,
            tree: T::with_len(n),
            allocation,
            build_wat: AtomicWat::with_grain(n - 1, grain),
            scatter_wat: AtomicWat::with_grain(n, grain),
            build_lcwat: AtomicLcWat::with_grain(n - 1, grain),
            scatter_lcwat: AtomicLcWat::with_grain(n, grain),
            perm: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            participants: AtomicUsize::new(0),
            heartbeats: (0..tracked).map(|_| HeartbeatSlot::default()).collect(),
        }
    }

    /// Rebuilds this job in place for a fresh sort over `keys`, reusing
    /// every existing allocation (tree cells, WAT nodes, permutation,
    /// heartbeats, and the key vector itself). Exclusive access (`&mut`)
    /// guarantees no participant is running; the arena calls this
    /// between sorts.
    ///
    /// # Panics
    ///
    /// Panics if `keys` has fewer than 2 elements, or `tracked` or
    /// `grain` is zero.
    pub fn recycle_from_slice(
        &mut self,
        keys: &[K],
        allocation: NativeAllocation,
        tracked: usize,
        grain: usize,
    ) where
        K: Clone,
    {
        let n = keys.len();
        assert!(n >= 2, "a sort job needs at least two keys");
        assert!(tracked >= 1, "a sort job needs at least one tracked slot");
        assert!(grain >= 1, "a sort job needs a non-zero grain");
        self.keys.clear();
        self.keys.extend_from_slice(keys);
        self.allocation = allocation;
        self.tree.reset(n);
        self.build_wat.reset(n - 1, grain);
        self.scatter_wat.reset(n, grain);
        self.build_lcwat.reset(n - 1, grain);
        self.scatter_lcwat.reset(n, grain);
        self.perm.truncate(n);
        for slot in &mut self.perm {
            *slot.get_mut() = 0;
        }
        self.perm.resize_with(n, || AtomicUsize::new(0));
        *self.participants.get_mut() = 0;
        self.heartbeats.truncate(tracked);
        for slot in &mut self.heartbeats {
            *slot.0.get_mut() = 0;
        }
        self.heartbeats.resize_with(tracked, HeartbeatSlot::default);
    }

    /// The WAT grain this job was built with (items per leaf block).
    pub fn grain(&self) -> usize {
        self.build_wat.grain()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the job is empty (never true; `new` requires 2+ keys).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Whether the sorted permutation is fully computed.
    pub fn is_complete(&self) -> bool {
        match self.allocation {
            NativeAllocation::Deterministic => self.scatter_wat.all_done(),
            NativeAllocation::Randomized => self.scatter_lcwat.all_done(),
        }
    }

    /// Snapshots the job's progress: per-participant heartbeats (phase,
    /// checkpoint epoch, departed flag) and the build/scatter WAT
    /// frontiers. Safe to call from any thread at any time; intended for
    /// the [`crate::Watchdog`] and for diagnostics. The sharded
    /// pipeline's heartbeat-free counterpart is
    /// [`crate::ShardedSortJob::progress`].
    pub fn progress(&self) -> ProgressReport {
        let participants = self.participants.load(Ordering::Relaxed);
        let tracked_slots = self.heartbeats.len();
        let workers: Vec<ParticipantProgress> = (0..participants.min(tracked_slots))
            .map(|slot| {
                let raw = self.heartbeats[slot].0.load(Ordering::Acquire);
                ParticipantProgress {
                    slot,
                    phase: SortPhase::from_bits(raw >> PHASE_SHIFT),
                    epoch: raw & EPOCH_MASK,
                    departed: raw & DEPARTED_BIT != 0,
                }
            })
            .collect();
        let (build_jobs_done, build_jobs_total, scatter_jobs_done, scatter_jobs_total) =
            match self.allocation {
                NativeAllocation::Deterministic => (
                    self.build_wat.done_jobs(),
                    self.build_wat.jobs(),
                    self.scatter_wat.done_jobs(),
                    self.scatter_wat.jobs(),
                ),
                NativeAllocation::Randomized => (
                    self.build_lcwat.done_jobs(),
                    self.build_lcwat.jobs(),
                    self.scatter_lcwat.done_jobs(),
                    self.scatter_lcwat.jobs(),
                ),
            };
        ProgressReport {
            complete: self.is_complete(),
            phase: workers
                .iter()
                .map(|w| w.phase)
                .max()
                .unwrap_or(SortPhase::Build),
            participants,
            workers,
            tracked_slots,
            aliased_participants: participants.saturating_sub(tracked_slots),
            build_jobs_done,
            build_jobs_total,
            scatter_jobs_done,
            scatter_jobs_total,
        }
    }

    /// Whether phase 1 (tree building) is complete.
    fn build_done(&self) -> bool {
        match self.allocation {
            NativeAllocation::Deterministic => self.build_wat.all_done(),
            NativeAllocation::Randomized => self.build_lcwat.all_done(),
        }
    }

    /// `(key, index)` comparison: is element `a` less than element `b`?
    fn less(&self, a: usize, b: usize) -> bool {
        (&self.keys[a - 1], a) < (&self.keys[b - 1], b)
    }

    /// Runs all four phases as one participant until the sort is complete
    /// or `p` abandons. Wait-free: bounded work between `keep_going`
    /// checks, and progress never depends on any other participant.
    pub fn participate(&self, p: &mut impl Participation) {
        self.participate_inner(p, &NoInstrument);
    }

    /// [`SortJob::participate`], recording per-worker telemetry into
    /// `slot`. Read the counts back with [`MetricSlot::snapshot`] after
    /// this returns; [`crate::WaitFreeSorter::run_job_with_report`] does
    /// the slot bookkeeping for a whole worker cohort.
    pub fn participate_instrumented(&self, p: &mut impl Participation, slot: &MetricSlot) {
        self.participate_inner(p, slot.counters());
    }

    pub(crate) fn participate_inner(&self, p: &mut impl Participation, ins: &impl Instrument) {
        let tid = self.participants.fetch_add(1, Ordering::Relaxed);
        // A nominal thread count for work spreading; any value works, the
        // WAT reassigns everything anyway.
        let nthreads = (tid + 1).max(2);
        let slot = &self.heartbeats[tid % self.heartbeats.len()].0;
        let mut m = Monitored {
            inner: p,
            slot,
            phase: SortPhase::Build,
            epoch: 0,
        };
        m.publish();
        ins.enter_phase(SortPhase::Build);
        self.build_phase(tid, nthreads, &mut m, ins);
        if self.build_done() {
            m.enter_phase(SortPhase::Sum);
            ins.enter_phase(SortPhase::Sum);
            if self.sum_phase(tid, &mut m, ins) {
                m.enter_phase(SortPhase::Place);
                ins.enter_phase(SortPhase::Place);
                if self.place_phase(tid, &mut m, ins) {
                    m.enter_phase(SortPhase::Scatter);
                    ins.enter_phase(SortPhase::Scatter);
                    self.scatter_phase(tid, nthreads, &mut m, ins);
                }
            }
        }
        m.depart();
    }

    /// Convenience: participate and never abandon.
    pub fn run(&self) {
        self.participate(&mut RunToCompletion);
    }

    /// Phase 1: insert every element into the pivot tree (Figure 4).
    fn build_phase(
        &self,
        tid: usize,
        nthreads: usize,
        p: &mut impl Participation,
        ins: &impl Instrument,
    ) {
        // Job j inserts element j + 2 (element 1 is the root).
        let insert = |job: usize| {
            let element = job + 2;
            let mut parent = 1usize;
            loop {
                ins.descent_step();
                let side = if self.less(element, parent) {
                    Side::Small
                } else {
                    Side::Big
                };
                // Figure 4's read-then-CAS: only attempt the install when
                // the slot was observed EMPTY, so every CAS failure is a
                // genuinely lost race — the contention event the metrics
                // count — rather than a routine occupied-slot descent.
                let occupant = match self.tree.child(parent, side) {
                    EMPTY => {
                        let (occupant, installed) =
                            self.tree.install_child_observed(parent, side, element);
                        ins.cas(!installed);
                        occupant
                    }
                    occupied => occupied,
                };
                if occupant == element {
                    return;
                }
                parent = occupant;
            }
        };
        let keep_going = || {
            ins.checkpoint();
            p.keep_going()
        };
        match self.allocation {
            NativeAllocation::Deterministic => {
                self.build_wat
                    .participate_with(tid, nthreads, insert, keep_going, ins);
            }
            NativeAllocation::Randomized => {
                self.build_lcwat
                    .participate_with(tid as u64, insert, keep_going, ins);
            }
        }
    }

    /// Phase 2: subtree sizes (Figure 5); returns `false` if abandoned.
    fn sum_phase(&self, tid: usize, p: &mut impl Participation, ins: &impl Instrument) -> bool {
        // Explicit stack: (node, visit-state). State 0 = first entry,
        // 1 = after first child, 2 = after second child.
        let mut stack: Vec<(usize, u8, usize)> = vec![(1, 0, 0)];
        let mut ret = 0usize;
        while let Some((node, stage, first_sum)) = stack.pop() {
            ins.checkpoint();
            if !p.keep_going() {
                return false;
            }
            let depth = stack.len() as u32;
            let first = descent_side(tid, depth);
            match stage {
                0 => {
                    ins.visit();
                    let s = self.tree.size(node);
                    if s > 0 {
                        ins.skip();
                        ret = s;
                        continue;
                    }
                    let c = self.tree.child(node, first);
                    stack.push((node, 1, 0));
                    if c != EMPTY {
                        stack.push((c, 0, 0));
                        ret = 0;
                    } else {
                        ret = 0;
                    }
                }
                1 => {
                    let sum1 = ret;
                    let c = self.tree.child(node, first.other());
                    stack.push((node, 2, sum1));
                    if c != EMPTY {
                        stack.push((c, 0, 0));
                        ret = 0;
                    } else {
                        ret = 0;
                    }
                }
                _ => {
                    let total = first_sum + ret + 1;
                    self.tree.set_size(node, total);
                    ret = total;
                }
            }
        }
        true
    }

    /// Phase 3: ranks (Figure 6 with the postorder completion flag);
    /// returns `false` if abandoned.
    fn place_phase(&self, tid: usize, p: &mut impl Participation, ins: &impl Instrument) -> bool {
        // Frames: (node, sub, stage).
        let mut stack: Vec<(usize, usize, u8)> = vec![(1, 0, 0)];
        while let Some((node, sub, stage)) = stack.pop() {
            ins.checkpoint();
            if !p.keep_going() {
                return false;
            }
            let depth = stack.len() as u32;
            match stage {
                0 => {
                    ins.visit();
                    if self.tree.place_complete(node) {
                        ins.skip();
                        continue;
                    }
                    let small = self.tree.child(node, Side::Small);
                    let s = if small == EMPTY {
                        0
                    } else {
                        self.tree.size(small)
                    };
                    if self.tree.place(node) == 0 {
                        self.tree.set_place(node, s + sub + 1);
                    }
                    let big = self.tree.child(node, Side::Big);
                    // Children in PID-bit order.
                    let small_first = descent_side(tid, depth) == Side::Small;
                    let kids = if small_first {
                        [(small, sub), (big, sub + s + 1)]
                    } else {
                        [(big, sub + s + 1), (small, sub)]
                    };
                    stack.push((node, sub, 1));
                    for (c, csub) in kids.into_iter().rev() {
                        if c != EMPTY {
                            stack.push((c, csub, 0));
                        }
                    }
                }
                _ => {
                    self.tree.set_place_complete(node);
                }
            }
        }
        true
    }

    /// Phase 4: scatter element indices by rank.
    fn scatter_phase(
        &self,
        tid: usize,
        nthreads: usize,
        p: &mut impl Participation,
        ins: &impl Instrument,
    ) {
        let move_one = |job: usize| {
            let element = job + 1;
            let rank = self.tree.place(element);
            debug_assert!(rank >= 1, "scatter before placement");
            self.perm[rank - 1].store(element, Ordering::Release);
        };
        let keep_going = || {
            ins.checkpoint();
            p.keep_going()
        };
        match self.allocation {
            NativeAllocation::Deterministic => {
                self.scatter_wat
                    .participate_with(tid, nthreads, move_one, keep_going, ins);
            }
            NativeAllocation::Randomized => {
                self.scatter_lcwat
                    .participate_with(tid as u64, move_one, keep_going, ins);
            }
        }
    }

    /// The sorted permutation: entry `r` is the index (1-based) of the
    /// rank-`r + 1` element.
    ///
    /// # Panics
    ///
    /// Panics if the sort is not complete.
    pub fn permutation(&self) -> Vec<usize> {
        assert!(self.is_complete(), "sort not complete");
        self.perm
            .iter()
            .map(|a| a.load(Ordering::Acquire))
            .collect()
    }

    /// Consumes the job, returning the keys in sorted order.
    ///
    /// # Panics
    ///
    /// Panics if the sort is not complete.
    pub fn into_sorted(self) -> Vec<K> {
        let perm = self.permutation();
        let mut slots: Vec<Option<K>> = self.keys.into_iter().map(Some).collect();
        perm.into_iter()
            .map(|i| slots[i - 1].take().expect("permutation is a bijection"))
            .collect()
    }

    /// Writes the keys in sorted order into `out` (cleared first),
    /// leaving the job intact for recycling — the allocation-free
    /// counterpart of [`SortJob::into_sorted`] used by
    /// [`crate::WaitFreeSorter::sort_into`]. Keys are cloned through the
    /// computed permutation; `out`'s capacity is reused.
    ///
    /// # Panics
    ///
    /// Panics if the sort is not complete.
    pub fn sorted_into(&self, out: &mut Vec<K>)
    where
        K: Clone,
    {
        assert!(self.is_complete(), "sort not complete");
        out.clear();
        out.extend(
            self.perm
                .iter()
                .map(|slot| self.keys[slot.load(Ordering::Acquire) - 1].clone()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_participant_sorts() {
        let job = SortJob::new(vec![5, 2, 9, 1, 7, 3]);
        job.run();
        assert!(job.is_complete());
        assert_eq!(job.into_sorted(), vec![1, 2, 3, 5, 7, 9]);
    }

    #[test]
    fn permutation_is_stable_for_duplicates() {
        let job = SortJob::new(vec![2, 1, 2, 1]);
        job.run();
        assert_eq!(job.permutation(), vec![2, 4, 1, 3]);
        assert_eq!(job.into_sorted(), vec![1, 1, 2, 2]);
    }

    #[test]
    fn many_participants_concurrently() {
        let keys: Vec<i64> = (0..5000)
            .map(|i| (i * 2654435761u64 % 10007) as i64)
            .collect();
        let mut expect = keys.clone();
        expect.sort();
        let job = SortJob::new(keys);
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                let job = &job;
                s.spawn(move |_| job.run());
            }
        })
        .unwrap();
        assert_eq!(job.into_sorted(), expect);
    }

    #[test]
    fn quitters_plus_one_survivor_complete() {
        let keys: Vec<i64> = (0..2000).rev().collect();
        let mut expect = keys.clone();
        expect.sort();
        let job = SortJob::new(keys);
        crossbeam::thread::scope(|s| {
            for q in 0..6 {
                let job = &job;
                s.spawn(move |_| job.participate(&mut QuitAfter(50 * (q + 1))));
            }
            let job = &job;
            s.spawn(move |_| job.run());
        })
        .unwrap();
        assert!(job.is_complete());
        assert_eq!(job.into_sorted(), expect);
    }

    #[test]
    fn late_joiner_finishes_abandoned_job() {
        let keys: Vec<i64> = (0..512).map(|i| (i * 37) % 512).collect();
        let mut expect = keys.clone();
        expect.sort();
        let job = SortJob::new(keys);
        // A participant that gives up early...
        job.participate(&mut QuitAfter(20));
        assert!(!job.is_complete());
        // ...and a fresh one that arrives later and completes everything.
        job.run();
        assert!(job.is_complete());
        assert_eq!(job.into_sorted(), expect);
    }

    #[test]
    fn randomized_allocation_sorts() {
        let keys: Vec<i64> = (0..3000).map(|i| (i * 97) % 1009).collect();
        let mut expect = keys.clone();
        expect.sort();
        let job = SortJob::with_allocation(keys, NativeAllocation::Randomized);
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let job = &job;
                s.spawn(move |_| job.run());
            }
        })
        .unwrap();
        assert!(job.is_complete());
        assert_eq!(job.into_sorted(), expect);
    }

    #[test]
    fn randomized_allocation_survives_quitters() {
        let keys: Vec<i64> = (0..600).rev().collect();
        let mut expect = keys.clone();
        expect.sort();
        let job = SortJob::with_allocation(keys, NativeAllocation::Randomized);
        job.participate(&mut QuitAfter(30));
        assert!(!job.is_complete());
        job.run();
        assert_eq!(job.into_sorted(), expect);
    }

    #[test]
    fn works_on_generic_keys() {
        let words = vec!["pear", "apple", "fig", "date", "cherry"];
        let job = SortJob::new(words);
        job.run();
        assert_eq!(
            job.into_sorted(),
            vec!["apple", "cherry", "date", "fig", "pear"]
        );
    }

    #[test]
    fn descent_side_reads_pid_bits() {
        assert_eq!(descent_side(0b101, 0), Side::Small);
        assert_eq!(descent_side(0b101, 1), Side::Big);
        assert_eq!(descent_side(0b101, 2), Side::Small);
        assert_eq!(descent_side(0, 0), Side::Big);
        // Depths past the word width wrap and reuse low bits (documented
        // divergence from the simulator's saturating Pid::bit).
        assert_eq!(descent_side(0b101, usize::BITS), descent_side(0b101, 0));
        assert_eq!(descent_side(0b101, usize::BITS + 1), descent_side(0b101, 1));
    }

    #[test]
    fn tracked_slots_and_aliasing_reported() {
        let job = SortJob::with_tracked(vec![3, 1, 2], NativeAllocation::Deterministic, 2);
        for _ in 0..5 {
            job.participate(&mut QuitAfter(1));
        }
        let r = job.progress();
        assert_eq!(r.tracked_slots, 2);
        assert_eq!(r.participants, 5);
        assert_eq!(r.aliased_participants, 3);
        assert_eq!(r.workers.len(), 2);
    }

    #[test]
    fn instrumented_participant_records_counts() {
        let slot = crate::MetricSlot::new();
        let job = SortJob::new(vec![5, 2, 9, 1, 7, 3]);
        job.participate_instrumented(&mut RunToCompletion, &slot);
        assert!(job.is_complete());
        let m = slot.snapshot();
        // Alone, the worker installs each non-root element with exactly
        // one uncontended CAS and visits each node once per traversal.
        assert_eq!(m.phases.build.cas_attempts, 5);
        assert_eq!(m.phases.build.cas_failures, 0);
        assert_eq!(m.phases.build.claims, 5);
        assert_eq!(m.phases.sum.visits, 6);
        assert_eq!(m.phases.sum.skips, 0);
        assert_eq!(m.phases.place.visits, 6);
        assert_eq!(m.phases.place.skips, 0);
        assert_eq!(m.phases.scatter.claims, 6);
        // Six keys resolve to grain 1, where block and element claims
        // coincide.
        assert_eq!(job.grain(), 1);
        assert_eq!(m.phases.build.block_claims, 5);
        assert_eq!(m.phases.scatter.block_claims, 6);
        assert!(m.checkpoints > 0);
        assert_eq!(job.into_sorted(), vec![1, 2, 3, 5, 7, 9]);
    }

    #[test]
    fn grain_amortizes_block_claims() {
        let keys: Vec<i64> = (0..512).rev().collect();
        let mut expect = keys.clone();
        expect.sort();
        let slot = crate::MetricSlot::new();
        let job = SortJob::with_grain(keys, NativeAllocation::Deterministic, 1, 8);
        job.participate_instrumented(&mut RunToCompletion, &slot);
        let m = slot.snapshot();
        // Per-element counts are grain-independent...
        assert_eq!(m.phases.build.claims, 511);
        assert_eq!(m.phases.build.cas_attempts, 511);
        assert_eq!(m.phases.scatter.claims, 512);
        // ...while structure-level claim traffic shrinks by the grain.
        assert_eq!(m.phases.build.block_claims, 511u64.div_ceil(8));
        assert_eq!(m.phases.scatter.block_claims, 64);
        assert_eq!(job.into_sorted(), expect);
    }

    #[test]
    fn explicit_grains_all_sort_correctly() {
        let keys: Vec<i64> = (0..500).map(|i| (i * 131) % 499).collect();
        let mut expect = keys.clone();
        expect.sort();
        for grain in [1, 2, 7, 64] {
            for allocation in [
                NativeAllocation::Deterministic,
                NativeAllocation::Randomized,
            ] {
                let job = SortJob::with_grain(keys.clone(), allocation, 4, grain);
                crossbeam::thread::scope(|s| {
                    for _ in 0..4 {
                        let job = &job;
                        s.spawn(move |_| job.run());
                    }
                })
                .unwrap();
                assert_eq!(job.into_sorted(), expect, "grain {grain}");
            }
        }
    }

    #[test]
    fn recycled_job_reuses_allocations_for_fresh_sorts() {
        let first: Vec<i64> = (0..300).rev().collect();
        let mut job = SortJob::with_grain(first.clone(), NativeAllocation::Deterministic, 2, 4);
        job.run();
        let mut out = Vec::new();
        job.sorted_into(&mut out);
        let mut expect = first;
        expect.sort();
        assert_eq!(out, expect);

        // Recycle for a different shape (longer input, new grain and
        // allocation) and sort again through the same storage.
        let second: Vec<i64> = (0..450).map(|i| (i * 7) % 113).collect();
        job.recycle_from_slice(&second, NativeAllocation::Randomized, 3, 16);
        assert!(!job.is_complete());
        assert_eq!(job.len(), 450);
        assert_eq!(job.grain(), 16);
        job.run();
        job.sorted_into(&mut out);
        let mut expect = second;
        expect.sort();
        assert_eq!(out, expect);

        // And once more for a shorter input.
        let third: Vec<i64> = vec![9, 3, 7, 1];
        job.recycle_from_slice(&third, NativeAllocation::Deterministic, 1, 1);
        job.run();
        job.sorted_into(&mut out);
        assert_eq!(out, vec![1, 3, 7, 9]);
    }

    #[test]
    #[should_panic(expected = "at least two keys")]
    fn rejects_tiny_input() {
        SortJob::new(vec![1]);
    }

    #[test]
    #[should_panic(expected = "sort not complete")]
    fn permutation_before_completion_panics() {
        let job = SortJob::new(vec![2, 1]);
        job.permutation();
    }
}
