//! The pre-packing pivot-tree layout, kept as a comparison shim.
//!
//! Before DESIGN.md §10 the native tree stored each node's five fields
//! in five separate `Vec<AtomicUsize>`s — `small`, `big`, `size`,
//! `place`, `place_done` — so one traversal visit touched up to five
//! cache lines roughly `n` words apart. This module preserves that
//! layout verbatim behind the `legacy-layout` feature, implementing the
//! same [`PivotTree`] contract as the packed [`crate::SharedTree`], so
//! differential tests and `e25_layout_bench` can run the identical sort
//! pipeline over either memory layout and compare outputs, operation
//! counts, and throughput. It is not part of the supported API surface
//! and takes no further optimization work.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::tree::{PivotTree, Side, EMPTY};

/// The five-parallel-array pivot tree (1-based; index 0 unused).
#[derive(Debug)]
pub struct LegacySharedTree {
    small: Vec<AtomicUsize>,
    big: Vec<AtomicUsize>,
    size: Vec<AtomicUsize>,
    place: Vec<AtomicUsize>,
    place_done: Vec<AtomicUsize>,
}

impl LegacySharedTree {
    /// Creates the shared fields for `n` elements.
    pub fn new(n: usize) -> Self {
        let mk = || (0..n + 1).map(|_| AtomicUsize::new(0)).collect();
        LegacySharedTree {
            small: mk(),
            big: mk(),
            size: mk(),
            place: mk(),
            place_done: mk(),
        }
    }

    fn slot(&self, node: usize, side: Side) -> &AtomicUsize {
        match side {
            Side::Small => &self.small[node],
            Side::Big => &self.big[node],
        }
    }
}

impl PivotTree for LegacySharedTree {
    fn with_len(n: usize) -> Self {
        LegacySharedTree::new(n)
    }

    fn len(&self) -> usize {
        self.small.len() - 1
    }

    #[inline]
    fn child(&self, node: usize, side: Side) -> usize {
        self.slot(node, side).load(Ordering::Acquire)
    }

    fn install_child_observed(&self, node: usize, side: Side, child: usize) -> (usize, bool) {
        match self.slot(node, side).compare_exchange(
            EMPTY,
            child,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => (child, true),
            Err(current) => (current, false),
        }
    }

    #[inline]
    fn size(&self, node: usize) -> usize {
        self.size[node].load(Ordering::Acquire)
    }

    #[inline]
    fn set_size(&self, node: usize, value: usize) {
        self.size[node].store(value, Ordering::Release);
    }

    #[inline]
    fn place(&self, node: usize) -> usize {
        self.place[node].load(Ordering::Acquire)
    }

    #[inline]
    fn set_place(&self, node: usize, value: usize) {
        self.place[node].store(value, Ordering::Release);
    }

    #[inline]
    fn place_complete(&self, node: usize) -> bool {
        self.place_done[node].load(Ordering::Acquire) == 1
    }

    #[inline]
    fn set_place_complete(&self, node: usize) {
        self.place_done[node].store(1, Ordering::Release);
    }

    fn reset(&mut self, n: usize) {
        for vec in [
            &mut self.small,
            &mut self.big,
            &mut self.size,
            &mut self.place,
            &mut self.place_done,
        ] {
            vec.truncate(n + 1);
            for a in vec.iter_mut() {
                *a.get_mut() = 0;
            }
            vec.resize_with(n + 1, || AtomicUsize::new(0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_tree_honors_pivot_contract() {
        let t = LegacySharedTree::new(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.install_child_observed(1, Side::Small, 2), (2, true));
        assert_eq!(t.install_child_observed(1, Side::Small, 3), (2, false));
        assert_eq!(t.child(1, Side::Small), 2);
        assert_eq!(t.child(1, Side::Big), EMPTY);
        t.set_size(1, 4);
        assert_eq!(t.size(1), 4);
        t.set_place(2, 1);
        assert_eq!(t.place(2), 1);
        assert!(!t.place_complete(2));
        t.set_place_complete(2);
        assert!(t.place_complete(2));
    }

    #[test]
    fn legacy_reset_rezeros() {
        let mut t = LegacySharedTree::new(3);
        t.install_child_observed(1, Side::Big, 2);
        t.set_size(1, 3);
        t.set_place(1, 2);
        t.set_place_complete(1);
        t.reset(5);
        assert_eq!(t.len(), 5);
        for node in 1..=5 {
            assert_eq!(t.child(node, Side::Small), EMPTY);
            assert_eq!(t.child(node, Side::Big), EMPTY);
            assert_eq!(t.size(node), 0);
            assert_eq!(t.place(node), 0);
            assert!(!t.place_complete(node));
        }
    }
}
