//! The Low-Contention Work Assignment Tree on native atomics (§3.1,
//! Figure 8).
//!
//! Random probing instead of deterministic climbing: on real hardware
//! the motivation is cache-line ping-pong rather than the PRAM's
//! concurrent-access counts, but the structure is the same — a tree of
//! `AtomicUsize` states where `DONE` percolates up from wherever
//! processors happen to probe and a terminal `ALLDONE` floods down to
//! release them.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{Instrument, NoInstrument};

const EMPTY: usize = 0;
const DONE: usize = 1;
const ALLDONE: usize = 2;

/// A randomized work-assignment tree over `items` items for native
/// threads, handing out blocks of `grain` consecutive items per leaf
/// (see the grain discussion in [`crate::AtomicWat`]).
#[derive(Debug)]
pub struct AtomicLcWat {
    nodes: Vec<AtomicUsize>,
    leaves: usize,
    jobs: usize,
    items: usize,
    grain: usize,
}

impl AtomicLcWat {
    /// Creates an LC-WAT with one item per leaf — [`AtomicLcWat::with_grain`]
    /// at grain 1 (leaf count rounded up to a power of two; padding
    /// leaves complete on first probe).
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero.
    pub fn new(items: usize) -> Self {
        Self::with_grain(items, 1)
    }

    /// Creates an LC-WAT covering `items` items with `grain` items per
    /// leaf block (the last block may be short).
    ///
    /// # Panics
    ///
    /// Panics if `items` or `grain` is zero.
    pub fn with_grain(items: usize, grain: usize) -> Self {
        assert!(items > 0, "an LC-WAT needs at least one job");
        assert!(grain > 0, "an LC-WAT block needs at least one item");
        let jobs = items.div_ceil(grain);
        let leaves = jobs.next_power_of_two();
        AtomicLcWat {
            nodes: (0..2 * leaves).map(|_| AtomicUsize::new(EMPTY)).collect(),
            leaves,
            jobs,
            items,
            grain,
        }
    }

    /// Number of real jobs (leaf blocks).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Number of items covered.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Items per leaf block.
    pub fn grain(&self) -> usize {
        self.grain
    }

    /// The item range job `job` covers.
    pub fn block_range(&self, job: usize) -> std::ops::Range<usize> {
        let start = job * self.grain;
        start..((start + self.grain).min(self.items))
    }

    /// Resizes to cover `items` items at `grain`, zeroing all node
    /// states and reusing the node vector's allocation. Requires
    /// exclusive access — the arena calls it between sorts.
    ///
    /// # Panics
    ///
    /// Panics if `items` or `grain` is zero.
    pub(crate) fn reset(&mut self, items: usize, grain: usize) {
        assert!(items > 0, "an LC-WAT needs at least one job");
        assert!(grain > 0, "an LC-WAT block needs at least one item");
        self.jobs = items.div_ceil(grain);
        self.items = items;
        self.grain = grain;
        self.leaves = self.jobs.next_power_of_two();
        let wanted = 2 * self.leaves;
        self.nodes.truncate(wanted);
        for node in &mut self.nodes {
            *node.get_mut() = EMPTY;
        }
        self.nodes.resize_with(wanted, || AtomicUsize::new(EMPTY));
    }

    /// Whether all jobs are complete.
    pub fn all_done(&self) -> bool {
        self.nodes[1].load(Ordering::Acquire) >= DONE
    }

    /// Number of jobs whose leaves are marked complete — the progress
    /// frontier a watchdog reads. Probing is random, so leaves may lag
    /// the root: once the root reports done, so does every job.
    /// `O(jobs)`: diagnostics only, not for the sort's hot path.
    pub fn done_jobs(&self) -> usize {
        if self.all_done() {
            return self.jobs;
        }
        (0..self.jobs)
            .filter(|j| self.nodes[self.leaves + j].load(Ordering::Acquire) >= DONE)
            .count()
    }

    fn load(&self, node: usize) -> usize {
        self.nodes[node].load(Ordering::Acquire)
    }

    fn store(&self, node: usize, value: usize) {
        self.nodes[node].store(value, Ordering::Release);
    }

    /// Runs `work(item)` for every item as one probing participant (the
    /// Figure 8 loop). Callable from any number of threads; returns when
    /// the participant observes global completion or `keep_going()`
    /// returns `false` (also consulted between a block's items). Leaf
    /// work may be executed more than once across participants and must
    /// be idempotent.
    pub fn participate(
        &self,
        seed: u64,
        work: impl FnMut(usize),
        keep_going: impl FnMut() -> bool,
    ) {
        self.participate_with(seed, work, keep_going, &NoInstrument);
    }

    /// [`AtomicLcWat::participate`] with a metrics sink: `ins` sees one
    /// `block_claim` per leaf block entered, one `claim` per item
    /// executed, and one `probe` for every other probe (already-done
    /// node, empty internal, padding leaf, ALLDONE flood). Random
    /// probing has no reserved initial assignment, so
    /// `own_assignment_done` fires immediately and every step counts as
    /// helping.
    pub(crate) fn participate_with(
        &self,
        seed: u64,
        mut work: impl FnMut(usize),
        mut keep_going: impl FnMut() -> bool,
        ins: &impl Instrument,
    ) {
        ins.own_assignment_done();
        let mut rng = StdRng::seed_from_u64(seed);
        let count = 2 * self.leaves - 1;
        loop {
            if !keep_going() {
                return;
            }
            let node = 1 + rng.gen_range(0..count);
            let is_leaf = node >= self.leaves;
            let is_root = node == 1;
            match self.load(node) {
                EMPTY if is_leaf => {
                    let job = node - self.leaves;
                    if job < self.jobs {
                        ins.block_claim();
                        let range = self.block_range(job);
                        let start = range.start;
                        for item in range {
                            // Abandoning mid-block leaves the leaf
                            // unmarked; survivors redo the whole
                            // (idempotent) block.
                            if item > start && !keep_going() {
                                return;
                            }
                            ins.claim();
                            work(item);
                        }
                        // Consult once more between finishing the block
                        // and publishing it, mirroring the deterministic
                        // WAT (whose loop-top check gates `next_after`).
                        // An abandoning participant must not mark the
                        // leaf: `work` may itself have been cut short by
                        // the same `keep_going` signal — a nested sort
                        // driven inside the closure, as in the sharded
                        // path's shard phase — and publishing would
                        // declare that half-done work complete.
                        if !keep_going() {
                            return;
                        }
                    } else {
                        ins.probe();
                    }
                    self.store(node, if is_root { ALLDONE } else { DONE });
                    if is_root {
                        return;
                    }
                }
                EMPTY => {
                    ins.probe();
                    let left = self.load(2 * node);
                    let right = self.load(2 * node + 1);
                    if left >= DONE && right >= DONE {
                        self.store(node, if is_root { ALLDONE } else { DONE });
                    }
                }
                DONE => {
                    ins.probe();
                }
                _ => {
                    ins.probe();
                    // ALLDONE: flood one level down and quit (at a leaf
                    // there is nothing to flood — quitting is sound, any
                    // ALLDONE sighting implies the root completed).
                    if !is_leaf {
                        self.store(2 * node, ALLDONE);
                        self.store(2 * node + 1, ALLDONE);
                    }
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    #[test]
    fn single_thread_covers_all_jobs() {
        let wat = AtomicLcWat::new(37);
        let counts: Vec<Counter> = (0..37).map(|_| Counter::new(0)).collect();
        wat.participate(
            1,
            |j| {
                counts[j].fetch_add(1, Ordering::Relaxed);
            },
            || true,
        );
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    fn many_threads_cover_all_jobs() {
        let wat = AtomicLcWat::new(200);
        let counts: Vec<Counter> = (0..200).map(|_| Counter::new(0)).collect();
        crossbeam::thread::scope(|s| {
            for t in 0..8u64 {
                let wat = &wat;
                let counts = &counts;
                s.spawn(move |_| {
                    wat.participate(
                        t,
                        |j| {
                            counts[j].fetch_add(1, Ordering::Relaxed);
                        },
                        || true,
                    );
                });
            }
        })
        .unwrap();
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    fn deserters_do_not_lose_work() {
        let wat = AtomicLcWat::new(64);
        let counts: Vec<Counter> = (0..64).map(|_| Counter::new(0)).collect();
        crossbeam::thread::scope(|s| {
            for t in 1..5u64 {
                let wat = &wat;
                let counts = &counts;
                s.spawn(move |_| {
                    let mut budget = 10 * t;
                    wat.participate(
                        t,
                        |j| {
                            counts[j].fetch_add(1, Ordering::Relaxed);
                        },
                        move || {
                            budget = budget.saturating_sub(1);
                            budget > 0
                        },
                    );
                });
            }
            let wat = &wat;
            let counts = &counts;
            s.spawn(move |_| {
                wat.participate(
                    0,
                    |j| {
                        counts[j].fetch_add(1, Ordering::Relaxed);
                    },
                    || true,
                );
            });
        })
        .unwrap();
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    fn single_job_tree_terminates() {
        let wat = AtomicLcWat::new(1);
        let mut ran = 0;
        wat.participate(9, |_| ran += 1, || true);
        assert!(wat.all_done());
        assert_eq!(ran, 1);
    }

    #[test]
    fn grained_probing_covers_all_items() {
        for grain in [2, 7, 64] {
            let wat = AtomicLcWat::with_grain(150, grain);
            assert_eq!(wat.jobs(), 150usize.div_ceil(grain));
            let counts: Vec<Counter> = (0..150).map(|_| Counter::new(0)).collect();
            crossbeam::thread::scope(|s| {
                for t in 0..4u64 {
                    let (wat, counts) = (&wat, &counts);
                    s.spawn(move |_| {
                        wat.participate(
                            t,
                            |item| {
                                counts[item].fetch_add(1, Ordering::Relaxed);
                            },
                            || true,
                        );
                    });
                }
            })
            .unwrap();
            assert!(wat.all_done());
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1),
                "grain {grain}"
            );
        }
    }

    #[test]
    fn grained_mid_block_deserter_is_redone() {
        let wat = AtomicLcWat::with_grain(64, 16);
        let counts: Vec<Counter> = (0..64).map(|_| Counter::new(0)).collect();
        let mut budget = 5;
        wat.participate(
            3,
            |item| {
                counts[item].fetch_add(1, Ordering::Relaxed);
            },
            move || {
                budget -= 1;
                budget > 0
            },
        );
        wat.participate(
            4,
            |item| {
                counts[item].fetch_add(1, Ordering::Relaxed);
            },
            || true,
        );
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    fn abandoning_at_the_publish_gate_leaves_the_block_unmarked() {
        // A single-job tree: the root is the one leaf, so the first
        // probe claims it. The participant survives the loop-top check
        // and the whole block, then abandons exactly at the publish
        // gate — the leaf must stay unmarked for survivors to redo.
        let wat = AtomicLcWat::new(1);
        let mut ran = 0;
        let mut budget = 1i32;
        wat.participate(
            9,
            |_| ran += 1,
            move || {
                budget -= 1;
                budget >= 0
            },
        );
        assert_eq!(ran, 1, "the block itself ran");
        assert!(!wat.all_done(), "abandoned work must not be published");
        wat.participate(4, |_| ran += 1, || true);
        assert!(wat.all_done());
        assert_eq!(ran, 2, "the survivor redid the idempotent block");
    }

    #[test]
    fn reset_reuses_nodes_for_new_shape() {
        let mut wat = AtomicLcWat::with_grain(64, 4);
        wat.participate(1, |_| {}, || true);
        assert!(wat.all_done());
        wat.reset(30, 3);
        assert!(!wat.all_done());
        assert_eq!(wat.jobs(), 10);
        let counts: Vec<Counter> = (0..30).map(|_| Counter::new(0)).collect();
        wat.participate(
            2,
            |item| {
                counts[item].fetch_add(1, Ordering::Relaxed);
            },
            || true,
        );
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_jobs_rejected() {
        AtomicLcWat::new(0);
    }
}
