//! The Low-Contention Work Assignment Tree on native atomics (§3.1,
//! Figure 8).
//!
//! Random probing instead of deterministic climbing: on real hardware
//! the motivation is cache-line ping-pong rather than the PRAM's
//! concurrent-access counts, but the structure is the same — a tree of
//! `AtomicUsize` states where `DONE` percolates up from wherever
//! processors happen to probe and a terminal `ALLDONE` floods down to
//! release them.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{Instrument, NoInstrument};

const EMPTY: usize = 0;
const DONE: usize = 1;
const ALLDONE: usize = 2;

/// A randomized work-assignment tree over `jobs` jobs for native threads.
#[derive(Debug)]
pub struct AtomicLcWat {
    nodes: Vec<AtomicUsize>,
    leaves: usize,
    jobs: usize,
}

impl AtomicLcWat {
    /// Creates an LC-WAT covering `jobs` jobs (leaf count rounded up to a
    /// power of two; padding leaves complete on first probe).
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn new(jobs: usize) -> Self {
        assert!(jobs > 0, "an LC-WAT needs at least one job");
        let leaves = jobs.next_power_of_two();
        AtomicLcWat {
            nodes: (0..2 * leaves).map(|_| AtomicUsize::new(EMPTY)).collect(),
            leaves,
            jobs,
        }
    }

    /// Number of real jobs.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether all jobs are complete.
    pub fn all_done(&self) -> bool {
        self.nodes[1].load(Ordering::Acquire) >= DONE
    }

    /// Number of jobs whose leaves are marked complete — the progress
    /// frontier a watchdog reads. Probing is random, so leaves may lag
    /// the root: once the root reports done, so does every job.
    /// `O(jobs)`: diagnostics only, not for the sort's hot path.
    pub fn done_jobs(&self) -> usize {
        if self.all_done() {
            return self.jobs;
        }
        (0..self.jobs)
            .filter(|j| self.nodes[self.leaves + j].load(Ordering::Acquire) >= DONE)
            .count()
    }

    fn load(&self, node: usize) -> usize {
        self.nodes[node].load(Ordering::Acquire)
    }

    fn store(&self, node: usize, value: usize) {
        self.nodes[node].store(value, Ordering::Release);
    }

    /// Runs `work(job)` for every job as one probing participant (the
    /// Figure 8 loop). Callable from any number of threads; returns when
    /// the participant observes global completion or `keep_going()`
    /// returns `false`. Leaf work may be executed more than once across
    /// participants and must be idempotent.
    pub fn participate(
        &self,
        seed: u64,
        work: impl FnMut(usize),
        keep_going: impl FnMut() -> bool,
    ) {
        self.participate_with(seed, work, keep_going, &NoInstrument);
    }

    /// [`AtomicLcWat::participate`] with a metrics sink: `ins` sees one
    /// `claim` per job executed and one `probe` for every other probe
    /// (already-done node, empty internal, padding leaf, ALLDONE flood).
    /// Random probing has no reserved initial assignment, so
    /// `own_assignment_done` fires immediately and every step counts as
    /// helping.
    pub(crate) fn participate_with(
        &self,
        seed: u64,
        mut work: impl FnMut(usize),
        mut keep_going: impl FnMut() -> bool,
        ins: &impl Instrument,
    ) {
        ins.own_assignment_done();
        let mut rng = StdRng::seed_from_u64(seed);
        let count = 2 * self.leaves - 1;
        loop {
            if !keep_going() {
                return;
            }
            let node = 1 + rng.gen_range(0..count);
            let is_leaf = node >= self.leaves;
            let is_root = node == 1;
            match self.load(node) {
                EMPTY if is_leaf => {
                    let job = node - self.leaves;
                    if job < self.jobs {
                        ins.claim();
                        work(job);
                    } else {
                        ins.probe();
                    }
                    self.store(node, if is_root { ALLDONE } else { DONE });
                    if is_root {
                        return;
                    }
                }
                EMPTY => {
                    ins.probe();
                    let left = self.load(2 * node);
                    let right = self.load(2 * node + 1);
                    if left >= DONE && right >= DONE {
                        self.store(node, if is_root { ALLDONE } else { DONE });
                    }
                }
                DONE => {
                    ins.probe();
                }
                _ => {
                    ins.probe();
                    // ALLDONE: flood one level down and quit (at a leaf
                    // there is nothing to flood — quitting is sound, any
                    // ALLDONE sighting implies the root completed).
                    if !is_leaf {
                        self.store(2 * node, ALLDONE);
                        self.store(2 * node + 1, ALLDONE);
                    }
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    #[test]
    fn single_thread_covers_all_jobs() {
        let wat = AtomicLcWat::new(37);
        let counts: Vec<Counter> = (0..37).map(|_| Counter::new(0)).collect();
        wat.participate(
            1,
            |j| {
                counts[j].fetch_add(1, Ordering::Relaxed);
            },
            || true,
        );
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    fn many_threads_cover_all_jobs() {
        let wat = AtomicLcWat::new(200);
        let counts: Vec<Counter> = (0..200).map(|_| Counter::new(0)).collect();
        crossbeam::thread::scope(|s| {
            for t in 0..8u64 {
                let wat = &wat;
                let counts = &counts;
                s.spawn(move |_| {
                    wat.participate(
                        t,
                        |j| {
                            counts[j].fetch_add(1, Ordering::Relaxed);
                        },
                        || true,
                    );
                });
            }
        })
        .unwrap();
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    fn deserters_do_not_lose_work() {
        let wat = AtomicLcWat::new(64);
        let counts: Vec<Counter> = (0..64).map(|_| Counter::new(0)).collect();
        crossbeam::thread::scope(|s| {
            for t in 1..5u64 {
                let wat = &wat;
                let counts = &counts;
                s.spawn(move |_| {
                    let mut budget = 10 * t;
                    wat.participate(
                        t,
                        |j| {
                            counts[j].fetch_add(1, Ordering::Relaxed);
                        },
                        move || {
                            budget = budget.saturating_sub(1);
                            budget > 0
                        },
                    );
                });
            }
            let wat = &wat;
            let counts = &counts;
            s.spawn(move |_| {
                wat.participate(
                    0,
                    |j| {
                        counts[j].fetch_add(1, Ordering::Relaxed);
                    },
                    || true,
                );
            });
        })
        .unwrap();
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    fn single_job_tree_terminates() {
        let wat = AtomicLcWat::new(1);
        let mut ran = 0;
        wat.participate(9, |_| ran += 1, || true);
        assert!(wat.all_done());
        assert_eq!(ran, 1);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_jobs_rejected() {
        AtomicLcWat::new(0);
    }
}
