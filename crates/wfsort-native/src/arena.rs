//! Reusable sort storage: keep one [`SortArena`] around and repeated
//! sorts stop paying the per-call allocation bill.
//!
//! A fresh [`SortJob`] allocates the packed pivot-tree cells, four WAT
//! node vectors, the permutation vector, the heartbeat slots, and a copy
//! of the keys — all `O(n)`, all thrown away when the job is dropped.
//! [`crate::WaitFreeSorter::sort_into`] instead parks the finished job in
//! an arena; the next sort resets the atomics in place (plain `get_mut`
//! stores — exclusive access between sorts means no synchronization is
//! needed, and the crate stays `forbid(unsafe_code)`) and only grows a
//! vector when the input outgrows it.

use crate::job::{NativeAllocation, SortJob};
use crate::tree::{PivotTree, SharedTree};

/// Retained storage for repeated sorts over the same key type.
///
/// The arena is generic over the pivot-tree layout like [`SortJob`]
/// itself; the default packed [`SharedTree`] is what callers want.
///
/// # Examples
///
/// ```
/// use wfsort_native::{SortArena, WaitFreeSorter};
///
/// let sorter = WaitFreeSorter::new(2);
/// let mut arena = SortArena::new();
/// let mut out = Vec::new();
/// for round in 0..3u64 {
///     let keys: Vec<u64> = (0..100).map(|i| (i * 37 + round) % 101).collect();
///     sorter.sort_into(&keys, &mut arena, &mut out);
///     assert!(out.windows(2).all(|w| w[0] <= w[1]));
/// }
/// ```
#[derive(Debug)]
pub struct SortArena<K: Ord, T: PivotTree = SharedTree> {
    job: Option<SortJob<K, T>>,
    sorts: u64,
    recycled: u64,
}

impl<K: Ord, T: PivotTree> Default for SortArena<K, T> {
    fn default() -> Self {
        SortArena::new()
    }
}

impl<K: Ord, T: PivotTree> SortArena<K, T> {
    /// An empty arena; the first sort through it allocates, later sorts
    /// recycle.
    pub fn new() -> Self {
        SortArena {
            job: None,
            sorts: 0,
            recycled: 0,
        }
    }

    /// Whether the arena currently holds recyclable storage.
    pub fn is_warm(&self) -> bool {
        self.job.is_some()
    }

    /// Jobs prepared through this arena over its lifetime — the reuse
    /// telemetry a pooled-arena host (one arena per worker, shared
    /// across tenants, as [`crate::service::SortService`] pools them)
    /// reads to confirm the allocation bill is actually amortized.
    pub fn sorts(&self) -> u64 {
        self.sorts
    }

    /// How many of those [`SortArena::sorts`] recycled retained storage
    /// instead of allocating fresh. Survives [`SortArena::clear`]: a
    /// clear only forfeits the *next* prepare's recycling.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// Drops the retained storage.
    pub fn clear(&mut self) {
        self.job = None;
    }

    /// Readies a job for sorting `keys`: recycles the retained storage
    /// when warm, allocates fresh otherwise. The returned job is
    /// unstarted; run it via [`SortJob::participate`] (or a
    /// [`crate::WaitFreeSorter`] front-end) and read the result with
    /// [`SortJob::sorted_into`] — it stays parked in the arena for the
    /// next call.
    ///
    /// # Panics
    ///
    /// Panics if `keys` has fewer than 2 elements, or `tracked` or
    /// `grain` is zero.
    pub fn prepare(
        &mut self,
        keys: &[K],
        allocation: NativeAllocation,
        tracked: usize,
        grain: usize,
    ) -> &SortJob<K, T>
    where
        K: Clone,
    {
        self.sorts += 1;
        match &mut self.job {
            Some(job) => {
                self.recycled += 1;
                job.recycle_from_slice(keys, allocation, tracked, grain);
            }
            None => {
                self.job = Some(SortJob::with_layout(
                    keys.to_vec(),
                    allocation,
                    tracked,
                    grain,
                ));
            }
        }
        self.job.as_ref().expect("just installed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::recommended_grain;

    #[test]
    fn arena_recycles_across_shapes() {
        let mut arena: SortArena<u64> = SortArena::new();
        assert!(!arena.is_warm());
        let mut out = Vec::new();
        for (round, n) in [(0u64, 400usize), (1, 700), (2, 64), (3, 700)] {
            let keys: Vec<u64> = (0..n as u64)
                .map(|i| (i * 2654435761) % 1013 + round)
                .collect();
            let grain = recommended_grain(n, 2);
            let job = arena.prepare(&keys, NativeAllocation::Deterministic, 2, grain);
            job.run();
            job.sorted_into(&mut out);
            let mut expect = keys;
            expect.sort_unstable();
            assert_eq!(out, expect, "round {round}");
            assert!(arena.is_warm());
        }
        arena.clear();
        assert!(!arena.is_warm());
        // Four prepares: the first allocated, the other three recycled.
        assert_eq!(arena.sorts(), 4);
        assert_eq!(arena.recycled(), 3);
        // Clearing forfeits only the next prepare's recycling.
        let keys: Vec<u64> = (0..10).rev().collect();
        arena.prepare(&keys, NativeAllocation::Deterministic, 2, 4);
        assert_eq!(arena.sorts(), 5);
        assert_eq!(arena.recycled(), 3);
    }

    #[test]
    fn warm_arena_survives_concurrent_cohorts() {
        let mut arena: SortArena<i64> = SortArena::new();
        let mut out = Vec::new();
        for round in 0..3 {
            let keys: Vec<i64> = (0..2000).map(|i| (i * 193 + round) % 997).collect();
            let job = arena.prepare(&keys, NativeAllocation::Deterministic, 4, 8);
            crossbeam::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(move |_| job.run());
                }
            })
            .unwrap();
            job.sorted_into(&mut out);
            let mut expect = keys;
            expect.sort_unstable();
            assert_eq!(out, expect, "round {round}");
        }
    }
}
