//! Native sort telemetry: per-worker counters behind a crate-private
//! `Instrument` handle, aggregated into a [`SortReport`].
//!
//! The PRAM simulator measures the paper's quantities directly
//! (`pram::Metrics` counts every shared-memory operation and charges
//! QRQW time); real threads have no such vantage point, so this module
//! gives each worker a private counter block — a [`MetricSlot`] — that it
//! increments with plain (non-atomic) stores as it runs. Slots are
//! cache-line padded so two workers' live counters never share a line,
//! and nothing is read until the workers have joined.
//!
//! Instrumentation is threaded through the phases as a generic
//! `Instrument` parameter. The uninstrumented entry points pass
//! `NoInstrument`, whose methods are empty `#[inline]` bodies — after
//! monomorphization the plain `sort` path carries no trace of the
//! counters at all.
//!
//! The headline statistic is [`SortReport::cas_failure_rate`]: the
//! fraction of child-pointer `compare_exchange` attempts that lost a
//! race. A CAS is only attempted after the slot was observed `EMPTY`
//! (Figure 4's read-then-CAS), so a failure is always evidence that
//! another thread wrote the same cell concurrently — the closest native
//! analogue of the paper's §1.2 contention measure ("the maximum number
//! of concurrent accesses to any single variable"). See DESIGN.md §9 for
//! what the proxy does and does not capture.

use std::cell::Cell;
use std::time::Duration;

use crate::shard::PartitionStrategy;
use crate::watchdog::SortPhase;

/// Phase-1 (build) counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildMetrics {
    /// Child-pointer `compare_exchange` attempts. Each is issued only
    /// after the slot was observed `EMPTY`, so single-threaded runs see
    /// exactly `n - 1` attempts (one successful install per element).
    pub cas_attempts: u64,
    /// Attempts that lost the slot to a concurrent writer — the
    /// contention proxy. Zero in any single-threaded run.
    pub cas_failures: u64,
    /// Tree levels stepped during insertion descents (one per node
    /// visited on the root-to-install path, install level included).
    /// Matches the simulator's per-level CAS count for the same input.
    pub descent_steps: u64,
    /// Build-WAT job claims: elements this worker inserted, duplicates
    /// included. Counted per *element* regardless of WAT grain, so the
    /// figure stays comparable across grain settings.
    pub claims: u64,
    /// Build-WAT leaf blocks this worker entered — the structure-level
    /// claim traffic the grain amortizes. Equals `claims` at grain 1;
    /// roughly `claims / grain` otherwise.
    pub block_claims: u64,
    /// Build-WAT bookkeeping steps: internal-node hops (deterministic
    /// WAT) or non-claiming probes (LC-WAT).
    pub probes: u64,
}

/// Counters for the tree-walking phases 2 (sum) and 3 (place).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalMetrics {
    /// Nodes entered (a skip still counts as an entry).
    pub visits: u64,
    /// Entries cut short because another worker had already completed
    /// the subtree (`size > 0` / `place_done` observed set).
    pub skips: u64,
}

/// Counters for one WAT-driven phase of the sharded path (partition,
/// fill, or shard sort — see [`crate::ShardedSortJob`]). The unit a
/// `claim` counts differs per phase: one *element classified*
/// (partition), one *block written into the buckets* (fill), or one
/// *shard entered* (shard sort). All three are zero on the single-tree
/// path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardPhaseMetrics {
    /// WAT job claims this worker executed, duplicates (redone work)
    /// included.
    pub claims: u64,
    /// WAT leaf blocks entered (see [`BuildMetrics::block_claims`]).
    /// Equals `claims` in the fill and shard-sort phases, whose WATs run
    /// at grain 1.
    pub block_claims: u64,
    /// WAT bookkeeping steps (internal hops / non-claiming probes).
    pub probes: u64,
    /// Phase-entry bookkeeping steps. Only the fill phase records any:
    /// one per `(block, bucket)` cell of the fused-histogram reduction
    /// at [`crate::ShardedSortJob`] fill-phase entry — exactly `B·P`
    /// per participant, the red-first pin that no participant rescans
    /// the `n` classifications to enter the phase.
    pub setup_steps: u64,
    /// Batch classify-kernel invocations: partition blocks this worker
    /// classified, redos included. Zero outside the partition phase.
    pub kernel_blocks: u64,
    /// Splitter comparisons the classify kernel performed across those
    /// blocks. The [`crate::ClassifyKernel::Ladder`] performs a fixed
    /// count per element (`SplitterLadder::steps_per_key`); the
    /// binary-search kernel a data-dependent count. Neither feeds
    /// [`PhaseMetrics::total_ops`] — the per-element partition `claims`
    /// already represent that work at element granularity.
    pub classify_steps: u64,
    /// Shared-array and key bytes this worker read or wrote in the
    /// phase — the memory-traffic ledger behind the
    /// [`crate::PartitionStrategy`] bandwidth claim (E26f). Counts
    /// `keys`/`piece_of`/histogram/`bucket`/`out_perm` traffic plus key
    /// clones into unit-sort inputs; private scratch bookkeeping and
    /// the inner unit sorts (identical on both strategies) are
    /// excluded, so the materialized-vs-in-place delta is exactly the
    /// intermediate-buffer traffic.
    pub bytes_touched: u64,
}

/// Phase-4 (scatter) counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScatterMetrics {
    /// Scatter-WAT job claims: rank slots this worker wrote, duplicates
    /// included. Per *element*, grain-independent (see
    /// [`BuildMetrics::claims`]).
    pub claims: u64,
    /// Scatter-WAT leaf blocks this worker entered (see
    /// [`BuildMetrics::block_claims`]).
    pub block_claims: u64,
    /// Scatter-WAT bookkeeping steps (internal hops / non-claiming
    /// probes).
    pub probes: u64,
}

/// One counter block per phase — the per-phase half of a [`SortReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseMetrics {
    /// Phase 1: pivot-tree construction.
    pub build: BuildMetrics,
    /// Phase 2: subtree sizes.
    pub sum: TraversalMetrics,
    /// Phase 3: ranks.
    pub place: TraversalMetrics,
    /// Phase 4: scatter by rank.
    pub scatter: ScatterMetrics,
    /// Sharded phase 1: splitter classification (zero on the
    /// single-tree path). A claim is one element classified.
    pub partition: ShardPhaseMetrics,
    /// Sharded phase 2: bucket writes (zero on the single-tree path).
    /// A claim is one partition block written into the buckets.
    pub fill: ShardPhaseMetrics,
    /// Sharded phase 3: shard claims (zero on the single-tree path).
    /// A claim is one shard entered; the inner per-shard sorts record
    /// into `build`/`sum`/`place`/`scatter` like any other sort.
    pub shard_sort: ShardPhaseMetrics,
}

impl PhaseMetrics {
    /// Adds `other`'s counts into `self` (worker → aggregate folding).
    pub fn absorb(&mut self, other: &PhaseMetrics) {
        self.build.cas_attempts += other.build.cas_attempts;
        self.build.cas_failures += other.build.cas_failures;
        self.build.descent_steps += other.build.descent_steps;
        self.build.claims += other.build.claims;
        self.build.block_claims += other.build.block_claims;
        self.build.probes += other.build.probes;
        self.sum.visits += other.sum.visits;
        self.sum.skips += other.sum.skips;
        self.place.visits += other.place.visits;
        self.place.skips += other.place.skips;
        self.scatter.claims += other.scatter.claims;
        self.scatter.block_claims += other.scatter.block_claims;
        self.scatter.probes += other.scatter.probes;
        for (mine, theirs) in [
            (&mut self.partition, &other.partition),
            (&mut self.fill, &other.fill),
            (&mut self.shard_sort, &other.shard_sort),
        ] {
            mine.claims += theirs.claims;
            mine.block_claims += theirs.block_claims;
            mine.probes += theirs.probes;
            mine.setup_steps += theirs.setup_steps;
            mine.kernel_blocks += theirs.kernel_blocks;
            mine.classify_steps += theirs.classify_steps;
            mine.bytes_touched += theirs.bytes_touched;
        }
    }

    /// Total counted operations across all phases — a coarse native
    /// *work* figure (the analogue of the simulator's `total_ops`).
    pub fn total_ops(&self) -> u64 {
        self.build.cas_attempts
            + self.build.descent_steps
            + self.build.claims
            + self.build.probes
            + self.sum.visits
            + self.place.visits
            + self.scatter.claims
            + self.scatter.probes
            + self.partition.claims
            + self.partition.probes
            + self.fill.claims
            + self.fill.probes
            + self.shard_sort.claims
            + self.shard_sort.probes
    }
}

/// One worker's counters for a whole `participate` call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// Per-phase counts for this worker alone.
    pub phases: PhaseMetrics,
    /// `keep_going` checkpoints consulted (wait-free operation
    /// boundaries — the same events that tick the heartbeat epoch).
    pub checkpoints: u64,
    /// WAT steps (claims + probes) taken after the worker's own initial
    /// assignment was complete — Figure 2's helping traversal. A lone
    /// worker helps through everything by construction, so the share is
    /// interesting *relative to claims* when workers race: high help
    /// with few claims means the worker mostly confirmed others' work.
    /// All LC-WAT steps count as help (random probing has no reserved
    /// assignment).
    pub help_steps: u64,
}

/// One shard's vital statistics inside a [`ShardReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStat {
    /// Elements the splitters routed into this shard. Sizes sum to `n`;
    /// a skewed sample shows up here as outlier sizes.
    pub size: usize,
    /// Times the shard's sort closure was entered, across all workers.
    /// Exactly 1 per shard in a crash-free single-threaded run; higher
    /// counts mean the WAT handed the shard out again (a racing double
    /// claim, or a redo after the first claimant crashed mid-shard).
    pub claims: u64,
}

/// One overpartitioned bucket's vital statistics inside a
/// [`ShardReport`]. Buckets alternate range/equality in key order
/// (bucket `2i` holds keys strictly between splitters, `2i + 1` keys
/// equal to splitter `i`), so the vector is also the key-order layout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BucketStat {
    /// Elements classified into this bucket. Bucket sizes sum to `n`.
    pub size: usize,
    /// Whether this is an equality bucket (all elements share one key
    /// value, so the bucket is publishable by a trivial fill and may be
    /// chunked across shards).
    pub equality: bool,
}

/// Per-shard telemetry for a sharded run, carried in
/// [`SortReport::shard`] by
/// [`crate::WaitFreeSorter::sort_sharded_with_report`].
#[derive(Clone, Debug, Default)]
pub struct ShardReport {
    /// Shard count `S` the job was built with.
    pub shards: usize,
    /// Partition blocks `B` (the fill phase's work units).
    pub partition_blocks: usize,
    /// Elements per partition block (the last block may be short).
    pub partition_grain: usize,
    /// Per-shard size and claim counts, indexed by shard. A shard's
    /// size is the total of the work units greedily assigned to it.
    pub per_shard: Vec<ShardStat>,
    /// Per-bucket sizes in key order (range and equality interleaved) —
    /// the overpartitioned view behind the shard assignment.
    pub buckets: Vec<BucketStat>,
    /// Number of *populated* equality buckets: how many distinct
    /// splitter values actually absorbed duplicates. An all-equal input
    /// reports exactly 1.
    pub equality_buckets: usize,
    /// The τ the job was configured with
    /// ([`crate::ShardConfig::max_shard_imbalance`]) — compare against
    /// the achieved [`ShardReport::imbalance`].
    pub requested_imbalance: f64,
    /// The resolved [`PartitionStrategy`] the job ran under — never
    /// [`PartitionStrategy::Auto`], which the constructor resolves by
    /// input size ([`crate::IN_PLACE_AUTO_MIN`]).
    pub strategy: PartitionStrategy,
    /// Auxiliary bytes the Fill/shard pipeline allocated beyond the
    /// output permutation itself: the `B·P·8` destination-offset table
    /// alone under [`PartitionStrategy::InPlace`], plus the `n·8`
    /// bucket intermediate under [`PartitionStrategy::Materialized`].
    /// E26f pins the in-place value at exactly `B·P·8`.
    pub aux_bytes: u64,
    /// Element moves (slot writes) across fill + shard publication,
    /// redone and raced duplicates included. A crash-free materialized
    /// run moves every element twice (bucket, then output); in-place
    /// moves every element once plus one republication per range slot.
    pub moves: u64,
    /// Times an in-place range unit was found torn (mixed
    /// pending/final tags — a claimant crashed or raced mid-publish)
    /// and its fill order was rebuilt from the stable classification.
    /// Always zero under [`PartitionStrategy::Materialized`] and in
    /// crash-free single-threaded runs.
    pub cycle_restarts: u64,
}

impl ShardReport {
    /// The largest shard's size over the ideal `n / shards` — 1.0 is a
    /// perfectly balanced split, higher means the sampled splitters let
    /// one shard swell (the quantity the `O(S log S)` oversampling
    /// bounds with high probability on random inputs).
    /// Degenerate telemetry (empty input, zero shards, all-zero shard
    /// sizes) reports a neutral 1.0 — never `NaN` or infinity, so the
    /// value is always safe to serialize and the bench validators can
    /// reject non-finite fields unconditionally.
    pub fn imbalance(&self) -> f64 {
        let n: usize = self.per_shard.iter().map(|s| s.size).sum();
        if n == 0 || self.shards == 0 {
            return 1.0;
        }
        let max = self.per_shard.iter().map(|s| s.size).max().unwrap_or(0);
        let ratio = max as f64 * self.shards as f64 / n as f64;
        if ratio.is_finite() {
            ratio
        } else {
            1.0
        }
    }

    /// Whether the achieved [`ShardReport::imbalance`] met the
    /// requested τ. Reports built by the sharded job always carry the
    /// normalized (> 1.0) request, so this is a plain comparison.
    pub fn within_requested(&self) -> bool {
        self.imbalance() <= self.requested_imbalance
    }
}

/// Aggregated telemetry for one sorting run, returned by
/// [`crate::WaitFreeSorter::sort_with_report`] /
/// [`crate::WaitFreeSorter::run_job_with_report`].
#[derive(Clone, Debug)]
pub struct SortReport {
    /// Counts summed over all workers, grouped by phase.
    pub per_phase: PhaseMetrics,
    /// Each worker's own counts, in spawn order.
    pub per_worker: Vec<WorkerMetrics>,
    /// Wall-clock time from first spawn to last join.
    pub elapsed: Duration,
    /// `build.cas_failures / build.cas_attempts`, or `0.0` when no CAS
    /// was attempted — the native §1.2 contention proxy.
    pub cas_failure_rate: f64,
    /// Per-shard statistics when the run went through the sharded path
    /// ([`crate::WaitFreeSorter::sort_sharded_with_report`]); `None` for
    /// single-tree runs.
    pub shard: Option<ShardReport>,
}

impl SortReport {
    /// Folds per-worker counts into a report.
    pub(crate) fn aggregate(per_worker: Vec<WorkerMetrics>, elapsed: Duration) -> SortReport {
        let mut per_phase = PhaseMetrics::default();
        for w in &per_worker {
            per_phase.absorb(&w.phases);
        }
        let attempts = per_phase.build.cas_attempts;
        let cas_failure_rate = if attempts == 0 {
            0.0
        } else {
            per_phase.build.cas_failures as f64 / attempts as f64
        };
        SortReport {
            per_phase,
            per_worker,
            elapsed,
            cas_failure_rate,
            shard: None,
        }
    }

    /// The report of a run that never started (inputs shorter than two
    /// keys are returned as-is without spawning workers).
    pub(crate) fn empty() -> SortReport {
        SortReport::aggregate(Vec::new(), Duration::ZERO)
    }

    /// Attaches per-shard statistics: the sharded front-ends and the
    /// service's sharded publish path call this on completed jobs.
    pub(crate) fn with_shard(mut self, shard: ShardReport) -> SortReport {
        self.shard = Some(shard);
        self
    }

    /// Total counted operations across all workers and phases.
    pub fn total_ops(&self) -> u64 {
        self.per_phase.total_ops()
    }

    /// Help steps summed over workers.
    pub fn help_steps(&self) -> u64 {
        self.per_worker.iter().map(|w| w.help_steps).sum()
    }

    /// Checkpoints summed over workers.
    pub fn checkpoints(&self) -> u64 {
        self.per_worker.iter().map(|w| w.checkpoints).sum()
    }
}

/// Counter sink consulted on the sort's hot paths. All methods default
/// to empty bodies so the uninstrumented path monomorphizes to nothing.
pub(crate) trait Instrument {
    /// The participant moved to `phase`; subsequent events belong to it.
    #[inline]
    fn enter_phase(&self, _phase: SortPhase) {}
    /// A child-pointer CAS was attempted; `failed` = lost the race.
    #[inline]
    fn cas(&self, _failed: bool) {}
    /// One level of an insertion descent.
    #[inline]
    fn descent_step(&self) {}
    /// A WAT job claim (routed to build or scatter by current phase).
    #[inline]
    fn claim(&self) {}
    /// A WAT leaf-block entry (routed by current phase). Fires once per
    /// block where `claim` fires once per item, so it neither feeds
    /// `help_steps` nor `total_ops` — the per-item claim already
    /// represents that work.
    #[inline]
    fn block_claim(&self) {}
    /// A WAT bookkeeping step (routed by current phase).
    #[inline]
    fn probe(&self) {}
    /// A sum/place node entry (routed by current phase).
    #[inline]
    fn visit(&self) {}
    /// A sum/place entry that found the subtree already complete.
    #[inline]
    fn skip(&self) {}
    /// A `keep_going` consultation.
    #[inline]
    fn checkpoint(&self) {}
    /// A batch classify kernel finished one partition block, having
    /// performed `steps` splitter comparisons (routed by current
    /// phase). Like `block_claim`, the invocation itself never feeds
    /// `help_steps` or `total_ops` — the per-item claims already do.
    #[inline]
    fn kernel_block(&self, _steps: u64) {}
    /// Phase-entry bookkeeping of `steps` elements (routed by current
    /// phase) — the fill phase's `O(B·P)` histogram reduction.
    #[inline]
    fn phase_setup(&self, _steps: u64) {}
    /// `n` bytes of shared-array or key traffic on the sharded path
    /// (routed by current phase) — the memory ledger behind the
    /// [`PartitionStrategy`](crate::shard::PartitionStrategy)
    /// bandwidth claim. Counts reads and writes of the shared arrays
    /// (`keys`, `piece_of`, histograms, `bucket`, `out_perm`) plus key
    /// clones into unit-sort inputs; private scratch bookkeeping is
    /// excluded, and inner single-tree unit sorts are uninstrumented
    /// for bytes (identical on both strategies, so the A/B delta is
    /// unaffected).
    #[inline]
    fn bytes(&self, _n: u64) {}
    /// The worker's own initial WAT assignment is complete; subsequent
    /// claims/probes in this phase are helping steps.
    #[inline]
    fn own_assignment_done(&self) {}
}

/// The no-op sink used by the uninstrumented entry points.
pub(crate) struct NoInstrument;

impl Instrument for NoInstrument {}

/// The recording sink: interior-mutable so the work and `keep_going`
/// closures can share it, plain `Cell` stores so recording costs a
/// register-width store per event.
#[derive(Debug)]
pub(crate) struct LocalCounters {
    phase: Cell<SortPhase>,
    helping: Cell<bool>,
    build_cas_attempts: Cell<u64>,
    build_cas_failures: Cell<u64>,
    build_descent_steps: Cell<u64>,
    build_claims: Cell<u64>,
    build_block_claims: Cell<u64>,
    build_probes: Cell<u64>,
    sum_visits: Cell<u64>,
    sum_skips: Cell<u64>,
    place_visits: Cell<u64>,
    place_skips: Cell<u64>,
    scatter_claims: Cell<u64>,
    scatter_block_claims: Cell<u64>,
    scatter_probes: Cell<u64>,
    partition: ShardCells,
    fill: ShardCells,
    shard_sort: ShardCells,
    checkpoints: Cell<u64>,
    help_steps: Cell<u64>,
}

/// One sharded phase's live counters, in [`ShardPhaseMetrics`] field
/// order; the constants below name the indices.
type ShardCells = [Cell<u64>; 7];

/// Index names for the [`ShardCells`] blocks above.
const CLAIMS: usize = 0;
const BLOCK_CLAIMS: usize = 1;
const PROBES: usize = 2;
const SETUP_STEPS: usize = 3;
const KERNEL_BLOCKS: usize = 4;
const CLASSIFY_STEPS: usize = 5;
const BYTES: usize = 6;

impl Default for LocalCounters {
    fn default() -> Self {
        LocalCounters {
            phase: Cell::new(SortPhase::Build),
            helping: Cell::new(false),
            build_cas_attempts: Cell::new(0),
            build_cas_failures: Cell::new(0),
            build_descent_steps: Cell::new(0),
            build_claims: Cell::new(0),
            build_block_claims: Cell::new(0),
            build_probes: Cell::new(0),
            sum_visits: Cell::new(0),
            sum_skips: Cell::new(0),
            place_visits: Cell::new(0),
            place_skips: Cell::new(0),
            scatter_claims: Cell::new(0),
            scatter_block_claims: Cell::new(0),
            scatter_probes: Cell::new(0),
            partition: Default::default(),
            fill: Default::default(),
            shard_sort: Default::default(),
            checkpoints: Cell::new(0),
            help_steps: Cell::new(0),
        }
    }
}

#[inline]
fn bump(cell: &Cell<u64>) {
    cell.set(cell.get() + 1);
}

fn snapshot_cells(cells: &ShardCells) -> ShardPhaseMetrics {
    ShardPhaseMetrics {
        claims: cells[CLAIMS].get(),
        block_claims: cells[BLOCK_CLAIMS].get(),
        probes: cells[PROBES].get(),
        setup_steps: cells[SETUP_STEPS].get(),
        kernel_blocks: cells[KERNEL_BLOCKS].get(),
        classify_steps: cells[CLASSIFY_STEPS].get(),
        bytes_touched: cells[BYTES].get(),
    }
}

impl LocalCounters {
    fn snapshot(&self) -> WorkerMetrics {
        WorkerMetrics {
            phases: PhaseMetrics {
                build: BuildMetrics {
                    cas_attempts: self.build_cas_attempts.get(),
                    cas_failures: self.build_cas_failures.get(),
                    descent_steps: self.build_descent_steps.get(),
                    claims: self.build_claims.get(),
                    block_claims: self.build_block_claims.get(),
                    probes: self.build_probes.get(),
                },
                sum: TraversalMetrics {
                    visits: self.sum_visits.get(),
                    skips: self.sum_skips.get(),
                },
                place: TraversalMetrics {
                    visits: self.place_visits.get(),
                    skips: self.place_skips.get(),
                },
                scatter: ScatterMetrics {
                    claims: self.scatter_claims.get(),
                    block_claims: self.scatter_block_claims.get(),
                    probes: self.scatter_probes.get(),
                },
                partition: snapshot_cells(&self.partition),
                fill: snapshot_cells(&self.fill),
                shard_sort: snapshot_cells(&self.shard_sort),
            },
            checkpoints: self.checkpoints.get(),
            help_steps: self.help_steps.get(),
        }
    }

    #[inline]
    fn help_if_helping(&self) {
        if self.helping.get() {
            bump(&self.help_steps);
        }
    }

    /// The live counter block for the current sharded phase, if the
    /// participant is in one.
    #[inline]
    fn shard_cells(&self) -> Option<&ShardCells> {
        match self.phase.get() {
            SortPhase::Partition => Some(&self.partition),
            SortPhase::Fill => Some(&self.fill),
            SortPhase::ShardSort => Some(&self.shard_sort),
            _ => None,
        }
    }
}

impl Instrument for LocalCounters {
    #[inline]
    fn enter_phase(&self, phase: SortPhase) {
        self.phase.set(phase);
        // Each phase's WAT hands out a fresh initial assignment.
        self.helping.set(false);
    }

    #[inline]
    fn cas(&self, failed: bool) {
        bump(&self.build_cas_attempts);
        if failed {
            bump(&self.build_cas_failures);
        }
    }

    #[inline]
    fn descent_step(&self) {
        bump(&self.build_descent_steps);
    }

    #[inline]
    fn claim(&self) {
        match self.phase.get() {
            SortPhase::Scatter => bump(&self.scatter_claims),
            SortPhase::Partition => bump(&self.partition[CLAIMS]),
            SortPhase::Fill => bump(&self.fill[CLAIMS]),
            SortPhase::ShardSort => bump(&self.shard_sort[CLAIMS]),
            _ => bump(&self.build_claims),
        }
        self.help_if_helping();
    }

    #[inline]
    fn block_claim(&self) {
        match self.phase.get() {
            SortPhase::Scatter => bump(&self.scatter_block_claims),
            SortPhase::Partition => bump(&self.partition[BLOCK_CLAIMS]),
            SortPhase::Fill => bump(&self.fill[BLOCK_CLAIMS]),
            SortPhase::ShardSort => bump(&self.shard_sort[BLOCK_CLAIMS]),
            _ => bump(&self.build_block_claims),
        }
    }

    #[inline]
    fn probe(&self) {
        match self.phase.get() {
            SortPhase::Scatter => bump(&self.scatter_probes),
            SortPhase::Partition => bump(&self.partition[PROBES]),
            SortPhase::Fill => bump(&self.fill[PROBES]),
            SortPhase::ShardSort => bump(&self.shard_sort[PROBES]),
            _ => bump(&self.build_probes),
        }
        self.help_if_helping();
    }

    #[inline]
    fn visit(&self) {
        match self.phase.get() {
            SortPhase::Place => bump(&self.place_visits),
            _ => bump(&self.sum_visits),
        }
    }

    #[inline]
    fn skip(&self) {
        match self.phase.get() {
            SortPhase::Place => bump(&self.place_skips),
            _ => bump(&self.sum_skips),
        }
    }

    #[inline]
    fn checkpoint(&self) {
        bump(&self.checkpoints);
    }

    #[inline]
    fn kernel_block(&self, steps: u64) {
        if let Some(cells) = self.shard_cells() {
            bump(&cells[KERNEL_BLOCKS]);
            let c = &cells[CLASSIFY_STEPS];
            c.set(c.get() + steps);
        }
    }

    #[inline]
    fn phase_setup(&self, steps: u64) {
        if let Some(cells) = self.shard_cells() {
            let c = &cells[SETUP_STEPS];
            c.set(c.get() + steps);
        }
    }

    #[inline]
    fn bytes(&self, n: u64) {
        if let Some(cells) = self.shard_cells() {
            let c = &cells[BYTES];
            c.set(c.get() + n);
        }
    }

    #[inline]
    fn own_assignment_done(&self) {
        self.helping.set(true);
    }
}

/// One worker's live counter block, padded to two cache lines (the
/// span hardware prefetchers treat as a unit on x86) so adjacent
/// workers' hot stores never false-share. Hand one slot to each worker
/// via [`crate::SortJob::participate_instrumented`] and read it back
/// with [`MetricSlot::snapshot`] once the worker has returned.
///
/// A slot is `Send` but deliberately not `Sync` (the counters are plain
/// `Cell`s): exactly one thread may record into it at a time.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct MetricSlot {
    counters: LocalCounters,
}

impl MetricSlot {
    /// A fresh all-zero slot.
    pub fn new() -> Self {
        MetricSlot::default()
    }

    pub(crate) fn counters(&self) -> &LocalCounters {
        &self.counters
    }

    /// The counts recorded so far, as a plain value.
    pub fn snapshot(&self) -> WorkerMetrics {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_routes_by_phase() {
        let c = LocalCounters::default();
        c.cas(false);
        c.cas(true);
        c.descent_step();
        c.block_claim();
        c.claim();
        c.probe();
        c.visit();
        c.enter_phase(SortPhase::Sum);
        c.visit();
        c.skip();
        c.enter_phase(SortPhase::Place);
        c.visit();
        c.enter_phase(SortPhase::Scatter);
        c.block_claim();
        c.claim();
        c.claim();
        c.probe();
        c.checkpoint();
        let m = c.snapshot();
        assert_eq!(m.phases.build.cas_attempts, 2);
        assert_eq!(m.phases.build.cas_failures, 1);
        assert_eq!(m.phases.build.descent_steps, 1);
        assert_eq!(m.phases.build.claims, 1);
        assert_eq!(m.phases.build.block_claims, 1);
        assert_eq!(m.phases.build.probes, 1);
        // Build-phase visit routes to sum (only sum/place ever visit).
        assert_eq!(m.phases.sum.visits, 2);
        assert_eq!(m.phases.sum.skips, 1);
        assert_eq!(m.phases.place.visits, 1);
        assert_eq!(m.phases.scatter.claims, 2);
        assert_eq!(m.phases.scatter.block_claims, 1);
        assert_eq!(m.phases.scatter.probes, 1);
        assert_eq!(m.checkpoints, 1);
    }

    #[test]
    fn recorder_routes_sharded_phases() {
        let c = LocalCounters::default();
        c.enter_phase(SortPhase::Partition);
        c.block_claim();
        c.claim();
        c.claim();
        c.probe();
        c.kernel_block(5);
        c.kernel_block(3);
        c.bytes(100);
        c.enter_phase(SortPhase::Fill);
        c.claim();
        c.block_claim();
        c.phase_setup(12);
        c.bytes(40);
        c.enter_phase(SortPhase::ShardSort);
        c.claim();
        c.probe();
        c.bytes(7);
        // An inner per-shard sort re-enters Build mid-shard-phase; its
        // events must land in the ordinary single-tree buckets...
        c.enter_phase(SortPhase::Build);
        c.cas(false);
        c.claim();
        // Outside any sharded phase, kernel/setup/bytes events are
        // dropped (they have no single-tree analogue to route to).
        c.kernel_block(9);
        c.phase_setup(9);
        c.bytes(999);
        // ...and the shard phase resumes where it left off.
        c.enter_phase(SortPhase::ShardSort);
        c.claim();
        let m = c.snapshot();
        assert_eq!(m.phases.partition.claims, 2);
        assert_eq!(m.phases.partition.block_claims, 1);
        assert_eq!(m.phases.partition.probes, 1);
        assert_eq!(m.phases.partition.kernel_blocks, 2);
        assert_eq!(m.phases.partition.classify_steps, 8);
        assert_eq!(m.phases.partition.setup_steps, 0);
        assert_eq!(m.phases.partition.bytes_touched, 100);
        assert_eq!(m.phases.fill.claims, 1);
        assert_eq!(m.phases.fill.block_claims, 1);
        assert_eq!(m.phases.fill.setup_steps, 12);
        assert_eq!(m.phases.fill.kernel_blocks, 0);
        assert_eq!(m.phases.fill.bytes_touched, 40);
        assert_eq!(m.phases.shard_sort.bytes_touched, 7);
        assert_eq!(m.phases.shard_sort.claims, 2);
        assert_eq!(m.phases.shard_sort.probes, 1);
        assert_eq!(m.phases.build.cas_attempts, 1);
        assert_eq!(m.phases.build.claims, 1);

        // The new buckets flow through aggregation and total_ops.
        assert_eq!(m.phases.shard_sort.kernel_blocks, 0);
        assert_eq!(m.phases.shard_sort.setup_steps, 0);

        let r = SortReport::aggregate(vec![m, m], Duration::ZERO);
        assert_eq!(r.per_phase.partition.claims, 4);
        assert_eq!(r.per_phase.partition.kernel_blocks, 4);
        assert_eq!(r.per_phase.partition.classify_steps, 16);
        assert_eq!(r.per_phase.fill.claims, 2);
        assert_eq!(r.per_phase.fill.setup_steps, 24);
        assert_eq!(r.per_phase.fill.bytes_touched, 80);
        assert_eq!(r.per_phase.shard_sort.claims, 4);
        // Per worker: partition 2+1, fill 1+0, shard 2+1 (claims+probes),
        // plus build cas 1 and claim 1 — block claims never feed
        // total_ops.
        assert_eq!(r.total_ops(), 2 * 9);
        assert!(
            r.shard.is_none(),
            "plain aggregation carries no shard stats"
        );
    }

    #[test]
    fn shard_report_imbalance_is_max_over_ideal() {
        let report = ShardReport {
            shards: 4,
            partition_blocks: 2,
            partition_grain: 64,
            per_shard: vec![
                ShardStat {
                    size: 10,
                    claims: 1,
                },
                ShardStat {
                    size: 30,
                    claims: 1,
                },
                ShardStat {
                    size: 40,
                    claims: 2,
                },
                ShardStat { size: 0, claims: 1 },
            ],
            requested_imbalance: 2.0,
            ..ShardReport::default()
        };
        // max 40 over ideal 80/4 = 20 → 2.0.
        assert!((report.imbalance() - 2.0).abs() < 1e-12);
        assert!(report.within_requested());
        assert!(!ShardReport {
            requested_imbalance: 1.5,
            ..report.clone()
        }
        .within_requested());
    }

    #[test]
    fn imbalance_is_finite_for_degenerate_reports() {
        // Empty input, zero shards, all-zero shard sizes: every
        // degenerate shape must yield a neutral finite 1.0, never
        // NaN or infinity (0/0 and x/0 are the naive formula's traps).
        let empty = ShardReport {
            shards: 4,
            partition_blocks: 0,
            partition_grain: 64,
            ..ShardReport::default()
        };
        assert_eq!(empty.imbalance(), 1.0);
        let zero_shards = ShardReport::default();
        assert_eq!(zero_shards.imbalance(), 1.0);
        let all_zero_sizes = ShardReport {
            shards: 2,
            partition_blocks: 1,
            partition_grain: 64,
            per_shard: vec![
                ShardStat { size: 0, claims: 1 },
                ShardStat { size: 0, claims: 1 },
            ],
            ..ShardReport::default()
        };
        assert_eq!(all_zero_sizes.imbalance(), 1.0);
        assert!(all_zero_sizes.imbalance().is_finite());
    }

    #[test]
    fn help_steps_count_only_after_own_assignment() {
        let c = LocalCounters::default();
        c.claim();
        c.probe();
        c.own_assignment_done();
        c.claim();
        c.probe();
        // Block entries never count as help: the per-item claims inside
        // the block already do.
        c.block_claim();
        assert_eq!(c.snapshot().help_steps, 2);
        // A new phase resets the helping flag.
        c.enter_phase(SortPhase::Scatter);
        c.claim();
        assert_eq!(c.snapshot().help_steps, 2);
    }

    #[test]
    fn aggregate_computes_failure_rate() {
        let mut a = WorkerMetrics::default();
        a.phases.build.cas_attempts = 6;
        a.phases.build.cas_failures = 1;
        let mut b = WorkerMetrics::default();
        b.phases.build.cas_attempts = 2;
        b.phases.build.cas_failures = 1;
        let r = SortReport::aggregate(vec![a, b], Duration::from_millis(5));
        assert_eq!(r.per_phase.build.cas_attempts, 8);
        assert_eq!(r.per_phase.build.cas_failures, 2);
        assert!((r.cas_failure_rate - 0.25).abs() < 1e-12);
        assert_eq!(r.per_worker.len(), 2);
    }

    #[test]
    fn empty_report_has_zero_rate() {
        let r = SortReport::empty();
        assert_eq!(r.cas_failure_rate, 0.0);
        assert_eq!(r.total_ops(), 0);
        assert_eq!(r.help_steps(), 0);
        assert_eq!(r.checkpoints(), 0);
    }

    #[test]
    fn no_instrument_is_inert() {
        // Compiles and does nothing — the uninstrumented path's contract.
        let n = NoInstrument;
        n.enter_phase(SortPhase::Place);
        n.cas(true);
        n.descent_step();
        n.claim();
        n.block_claim();
        n.probe();
        n.visit();
        n.skip();
        n.checkpoint();
        n.kernel_block(3);
        n.phase_setup(7);
        n.own_assignment_done();
    }

    #[test]
    fn metric_slot_is_padded() {
        assert!(std::mem::align_of::<MetricSlot>() >= 128);
        let slot = MetricSlot::new();
        slot.counters().cas(false);
        assert_eq!(slot.snapshot().phases.build.cas_attempts, 1);
    }
}
