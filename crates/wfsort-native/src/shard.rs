//! The sharded large-N sorting path: duplicate-robust sample-sort
//! splitters in front of the paper's wait-free sort.
//!
//! The single-tree [`SortJob`] funnels every element through one pivot
//! tree, so at large N the root's cache line is the whole machine's
//! rendezvous point — exactly the regime where multi-level splitting
//! wins (Axtmann & Sanders, *Robust Massively Parallel Sorting*; see
//! PAPERS.md). A [`ShardedSortJob`] instead runs three wait-free
//! phases, each driven by the same Work Assignment Trees as the
//! single-tree path so the fault story is preserved at every
//! granularity:
//!
//! 1. **Partition** — `k·S` *distinct* splitters are sampled at
//!    construction (stride positions, sorted, deduplicated, thinned
//!    evenly; `k` is [`ShardConfig::overpartition_factor`]). The `d`
//!    splitters define `2d + 1` *buckets* in key order, alternating
//!    *range* buckets (keys strictly between two splitters) and
//!    *equality* buckets (keys equal to one splitter) — the
//!    overpartitioning-plus-equality-buckets construction that makes
//!    duplicate floods and heavy skew harmless: an all-equal input
//!    deduplicates to a single splitter and lands entirely in its
//!    equality bucket. Workers claim blocks of elements from a WAT and
//!    classify each block with the configured [`ClassifyKernel`] — the
//!    scalar binary search or the branchless [`SplitterLadder`], both
//!    computing the identical bucket ids — publishing `piece_of[i]`
//!    *and* the block's per-bucket histogram into a per-block counts
//!    table. All of these stores are benign races: every claimant
//!    computes the same deterministic values.
//! 2. **Fill** — workers claim partition blocks from a second WAT and
//!    copy each element's index into its bucket's contiguous range of
//!    the bucket array. Entering the phase costs each participant only
//!    an `O(B·P)` prefix-sum reduction over the fused histograms (not
//!    an `O(n)` rescan of the classifications). Destinations are a
//!    pure function of the completed classification (block-major,
//!    original order within a block), so redone blocks rewrite
//!    identical values — and the within-bucket order preserves the
//!    original index order, which is what makes the sharded
//!    permutation *identical* to the single-tree one, ties and all.
//! 3. **Shard sort** — the buckets are cut into *work units* (equality
//!    buckets are chunked to at most `(τ-1)·n/S` elements, `τ` being
//!    [`ShardConfig::max_shard_imbalance`]; range buckets stay whole)
//!    and assigned to the `S` shards greedily by measured size, largest
//!    first — a pure function of the completed classification, so every
//!    worker computes the same assignment. Workers claim whole shards
//!    from a third WAT and publish each of the shard's units: equality
//!    chunks and already-non-decreasing range buckets are trivial fills
//!    (the bucket order *is* the stable sorted order), other range
//!    buckets are sorted locally with the packed pivot tree in a
//!    private recycled [`SortArena`] — or, when a range bucket exceeds
//!    the chunk size and [`ShardConfig::max_levels`] allows, re-sharded
//!    one level down. Each bucket owns a contiguous rank range, so
//!    concatenation in key order is free.
//!
//! **Fault story.** A worker that crashes mid-phase leaves its current
//! WAT leaf unmarked and survivors redo the whole unit — an element
//! block, a fill block, or an entire shard (all of its work units). The
//! shard is the coarsest redo unit in the crate, which is the
//! deliberate trade: claim traffic shrinks to `O(S)` for the longest
//! phase, at the cost of redoing up to one shard's units per crash. A
//! participant abandoned *inside* a unit's inner sort signals the WAT
//! through its `keep_going` before the leaf is published, so a
//! half-sorted shard is never marked complete (both WAT flavors gate
//! publication on a final consult).
//!
//! The splitter sample is taken at deterministic stride positions, so a
//! job — and therefore every chaos replay over it — is a pure function
//! of its `(keys, shards, config)` input. Deduplication plus equality
//! buckets remove the duplicate-collapse failure mode entirely;
//! residual skew from an adversarial sample hurts only balance, never
//! correctness, and [`crate::ShardReport::imbalance`] measures it
//! against the requested τ.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crate::arena::SortArena;
use crate::job::{
    recommended_grain, NativeAllocation, Participation, RunToCompletion,
    DEFAULT_TRACKED_PARTICIPANTS,
};
use crate::lcwat::AtomicLcWat;
use crate::metrics::{BucketStat, Instrument, MetricSlot, NoInstrument, ShardReport, ShardStat};
use crate::wat::AtomicWat;
use crate::watchdog::{ProgressReport, SortPhase};

/// The shard count [`crate::WaitFreeSorter::sort_sharded`] picks for
/// `n` keys and a `workers`-thread cohort: `n / 8192`, but at least one
/// shard per worker, capped at 256 and at `n`.
///
/// The `n / 8192` target keeps each shard's pivot tree small enough
/// that its hot path stays in cache instead of chasing pointers across
/// a single tree of all `n` nodes; at least `workers` shards lets every
/// thread hold a distinct shard in the final phase; the 256 cap bounds
/// the splitter binary search and the per-worker `O(B·P)` fill
/// bookkeeping. Mirrors [`recommended_grain`], and like it the
/// constants are exercised by the E26 sweep rather than trusted.
pub fn recommended_shards(n: usize, workers: usize) -> usize {
    (n / 8192).max(workers.max(1)).clamp(1, 256).min(n.max(1))
}

/// Elements per partition block: the claim unit of the partition phase
/// and the work unit of the fill phase. Scales like the WAT grain
/// (about eight blocks per worker) but with a higher floor, since a
/// block is also the unit of fill-phase bookkeeping.
fn partition_grain(n: usize, workers: usize) -> usize {
    (n / (workers.max(1) * 8)).clamp(64, 4096).min(n)
}

/// Which classification kernel the Partition phase runs — how an
/// element's key is turned into its bucket (piece) id.
///
/// Both kernels compute byte-identical classifications (the
/// differential suites and a proptest pin `ladder == binary search`
/// for arbitrary splitter sets), so the choice affects throughput
/// only, never the permutation. Selected via
/// [`ShardConfig::classify_kernel`] /
/// [`crate::SortOptions::classify_kernel`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClassifyKernel {
    /// Resolve by splitter count at construction: the branchless
    /// [`ClassifyKernel::Ladder`] when the (deduplicated) splitter
    /// count is between 1 and [`LADDER_AUTO_MAX_SPLITTERS`], the
    /// [`ClassifyKernel::BinarySearch`] baseline otherwise. The
    /// default.
    #[default]
    Auto,
    /// One `partition_point` binary search plus an equality probe per
    /// element ([`piece_by_search`]) — the PR-5 baseline. Every
    /// comparison is a data-dependent branch, so uniform random keys
    /// mispredict roughly half the probes.
    BinarySearch,
    /// The branchless [`SplitterLadder`]: a flat splitter array padded
    /// to a power of two, walked with a fixed trip count and
    /// cmov-style arithmetic (comparison results are consumed as
    /// integers, never branched on), equality-bucket resolution folded
    /// into the final rung. Classifies a whole partition block per
    /// batch call, amortizing the splitter loads.
    Ladder,
}

/// The splitter-count ceiling under which [`ClassifyKernel::Auto`]
/// resolves to the ladder: `1024` splitters pad to a ≤ 2048-entry rung
/// array — 16 KiB of `u64`s, comfortably L1-resident — while counts
/// past it (factor-64 configs at high shard counts) fall back to the
/// binary search, whose early exits win once the rung array spills out
/// of cache. The E29 criterion sweep covers the ladder side of the
/// boundary; the cutoff is deliberately conservative.
pub const LADDER_AUTO_MAX_SPLITTERS: usize = 1024;

/// How the Fill phase stages the permutation — whether bucket contents
/// are materialized into a separate N-sized intermediate array or
/// exchanged (near-)in-place inside the output buffer itself.
///
/// Both strategies compute the identical stable permutation (the parity
/// suite pins them bit-identical across shapes × kernels × chaos
/// storms); the knob trades memory footprint and traffic against the
/// simplicity of the materialized intermediate. Selected via
/// [`ShardConfig::partition_strategy`] /
/// [`crate::SortOptions::partition_strategy`] /
/// [`crate::service::ServiceConfig::partition_strategy`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Resolve by input size at construction:
    /// [`PartitionStrategy::InPlace`] at or past
    /// [`IN_PLACE_AUTO_MIN`] keys (the regime where the extra N-word
    /// intermediate is real memory), [`PartitionStrategy::Materialized`]
    /// below it. The default; reads back resolved.
    #[default]
    Auto,
    /// The PR-5 pipeline: Fill writes every element's index into a
    /// separate N-sized `bucket` array, and the shard phase reads that
    /// stable intermediate while publishing into the output
    /// permutation. Auxiliary memory is `N·8 + B·P·8` bytes. Kept as
    /// the differential oracle and for callers that want the simplest
    /// redo story (every shared write is idempotent by value).
    Materialized,
    /// The (near-)in-place exchange: Fill publishes bucket contents
    /// directly into the output permutation buffer — equality-bucket
    /// slots as final values, range-bucket slots carrying a high-bit
    /// `PENDING` tag — and the shard phase republishes each range unit
    /// in sorted order over its own slots. The only auxiliary table is
    /// the `B·P` destination-offset reduction (`aux_bytes ≤ B·P·8`,
    /// pinned in-binary by E26f); the N-sized intermediate is never
    /// allocated. Crash/redo safety comes from a monotone slot
    /// protocol rather than idempotent-by-value writes: slots move
    /// `empty → fill value → final value` only (fills are
    /// CAS-from-empty so a preempted filler can never resurrect a
    /// stale value over a final one), a redone unit whose snapshot is
    /// all-final is skipped, and a unit caught mid-publication
    /// (mixed tags — its claimant crashed or is racing) is rebuilt
    /// from the stable classification, never from the torn slots.
    InPlace,
}

/// The input size at or past which [`PartitionStrategy::Auto`] resolves
/// to the in-place exchange: 65 536 keys. Below it the N-word
/// intermediate is at most 512 KiB and the materialized path's plain
/// stores beat the in-place fill's CAS protocol; past it the dropped
/// N-word allocation and the skipped equality-unit republication win
/// on footprint and traffic (the E26f ledger measures both sides).
pub const IN_PLACE_AUTO_MIN: usize = 1 << 16;

/// High bit of an output-permutation slot under
/// [`PartitionStrategy::InPlace`]: set on values the fill phase stages
/// for a *range* bucket (fill order, awaiting the shard phase's sorted
/// republication), clear on final values. The monotone
/// `empty → PENDING-tagged → final` slot lifecycle is what lets a
/// redoing survivor classify a unit's state from one read sweep.
const PENDING: usize = 1 << (usize::BITS - 1);

/// How many slots an in-place publication loop writes between
/// `keep_going` consults — keeps the work between checkpoints bounded
/// (the wait-free contract) and gives chaos scripts real windows to
/// crash a worker *mid-unit*, which is exactly the torn state the
/// mixed-tag recovery path exists for.
const PUBLISH_CONSULT_EVERY: usize = 64;

/// Robustness knobs for the sharded path. [`crate::SortOptions`] is the
/// builder surface; raw construction goes through
/// [`ShardedSortJob::with_config`].
///
/// Degenerate values never panic: [`ShardConfig::normalized`] maps a
/// zero factor or level count and a non-finite or ≤ 1.0 imbalance
/// target back to the defaults, and every constructor normalizes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardConfig {
    /// Overpartition factor `k`: the sampler targets `k·S` distinct
    /// splitters, so up to `2kS + 1` buckets feed the greedy
    /// bucket→shard assignment. `0` selects the default (8); `1` is the
    /// minimal robust sampler — deduplication and equality buckets with
    /// barely any overpartitioning. Normalization caps the factor at 64
    /// to bound the `O(B·P)` fill bookkeeping.
    pub overpartition_factor: usize,
    /// Balance target τ for [`crate::ShardReport::imbalance`]: equality
    /// buckets are chunked to at most `(τ-1)·n/S` elements, so greedy
    /// largest-first assignment keeps every shard under `τ·n/S`
    /// whenever no single range bucket exceeds the chunk size (the
    /// classic list-scheduling bound `max ≤ avg + largest unit`).
    /// Non-finite or ≤ 1.0 values normalize to the default 2.0.
    pub max_shard_imbalance: f64,
    /// Sharding levels: `1` (the default) sorts every oversized range
    /// bucket with the packed pivot tree; `2` re-shards a range bucket
    /// that exceeds the chunk size one level down before pivot-sorting
    /// its sub-buckets. `0` normalizes to 1; values above 4 clamp to 4
    /// (the paper-relevant regime is one extra level).
    pub max_levels: usize,
    /// Which [`ClassifyKernel`] the Partition phase runs. Every value
    /// is valid (the default `Auto` resolves by splitter count at
    /// construction), so normalization passes it through. Recursive
    /// re-shards inherit the knob and re-resolve `Auto` against their
    /// own splitter counts.
    pub classify_kernel: ClassifyKernel,
    /// How the Fill phase stages the permutation (see
    /// [`PartitionStrategy`]). Every value is valid (the default `Auto`
    /// resolves by input size at construction), so normalization passes
    /// it through. Recursive re-shards inherit the knob and re-resolve
    /// `Auto` against their own input sizes.
    pub partition_strategy: PartitionStrategy,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            overpartition_factor: 8,
            max_shard_imbalance: 2.0,
            max_levels: 1,
            classify_kernel: ClassifyKernel::Auto,
            partition_strategy: PartitionStrategy::Auto,
        }
    }
}

impl ShardConfig {
    /// Maps every degenerate knob value onto a usable one (see the
    /// field docs); idempotent, and applied by every constructor.
    pub fn normalized(self) -> Self {
        ShardConfig {
            overpartition_factor: match self.overpartition_factor {
                0 => 8,
                f => f.min(64),
            },
            max_shard_imbalance: if self.max_shard_imbalance.is_finite()
                && self.max_shard_imbalance > 1.0
            {
                self.max_shard_imbalance
            } else {
                2.0
            },
            max_levels: self.max_levels.clamp(1, 4),
            classify_kernel: self.classify_kernel,
            partition_strategy: self.partition_strategy,
        }
    }
}

/// Reference scalar classification: the bucket `key` belongs to under
/// strictly increasing `splitters`, via `partition_point` binary search
/// plus an equality probe. Buckets alternate in key order: `2i` holds
/// keys strictly between splitters `i - 1` and `i` (the outermost two
/// are open-ended), `2i + 1` holds keys equal to splitter `i` — so
/// equal keys always share a bucket and bucket order is key order.
///
/// This is the [`ClassifyKernel::BinarySearch`] kernel and the oracle
/// the [`SplitterLadder`] is differentially pinned against (unit edge
/// cases plus an arbitrary-splitter proptest in
/// `tests/proptest_sharded.rs`).
pub fn piece_by_search<K: Ord>(splitters: &[K], key: &K) -> usize {
    let i = splitters.partition_point(|s| s < key);
    if i < splitters.len() && splitters[i] == *key {
        2 * i + 1
    } else {
        2 * i
    }
}

/// The branchless classification kernel behind
/// [`ClassifyKernel::Ladder`]: the strictly increasing splitters,
/// padded with copies of the last splitter up to a power of two, walked
/// with a fixed trip count and cmov-style arithmetic. Exposed so the
/// differential tests and the `benches/classify.rs` criterion A/B can
/// drive it directly against [`piece_by_search`].
#[derive(Clone, Debug)]
pub struct SplitterLadder<K> {
    /// `splitters` followed by copies of its last element, total length
    /// `(d + 1).next_power_of_two()`. The padding keeps every walk at
    /// the same trip count and makes the post-walk rung index always
    /// in-bounds; copies of the last splitter never change the
    /// `< key` count for keys at or below it, and for keys above it the
    /// count is clamped back to `d`.
    rungs: Vec<K>,
    /// The real (distinct) splitter count `d`.
    distinct: usize,
}

impl<K: Ord + Clone> SplitterLadder<K> {
    /// Builds a ladder over strictly increasing `splitters` (as
    /// produced by the job's deduplicating sampler). An empty slice is
    /// allowed and classifies everything into bucket 0.
    pub fn new(splitters: &[K]) -> Self {
        let distinct = splitters.len();
        let mut rungs = splitters.to_vec();
        if let Some(last) = splitters.last() {
            rungs.resize((distinct + 1).next_power_of_two(), last.clone());
        }
        SplitterLadder { rungs, distinct }
    }

    /// Splitter comparisons one [`SplitterLadder::piece_for`] call
    /// performs — fixed by construction (`log2` of the padded length,
    /// plus the final `<` rung and the folded equality rung), never
    /// data-dependent. The telemetry's `classify_steps` is this times
    /// the elements classified.
    pub fn steps_per_key(&self) -> u64 {
        if self.distinct == 0 {
            return 0;
        }
        u64::from(self.rungs.len().trailing_zeros()) + 2
    }
}

impl<K: Ord> SplitterLadder<K> {
    /// The bucket `key` belongs to — bit-identical to
    /// [`piece_by_search`] over the same splitters, with the
    /// equality-bucket resolution folded into the final rung: the walk
    /// yields `i` = the number of splitters `< key`, and the bucket is
    /// `2i + eq` where `eq` probes rung `i` for equality (rung `d`,
    /// reachable only when `key` exceeds every splitter, is a copy of
    /// the last splitter and can never compare equal there).
    #[inline]
    pub fn piece_for(&self, key: &K) -> usize {
        if self.distinct == 0 {
            return 0;
        }
        let rungs = self.rungs.as_slice();
        let mut base = 0usize;
        let mut len = rungs.len();
        // Branchless lower bound: each comparison picks between two
        // precomputed indices through `select_unpredictable` (a
        // guaranteed conditional move — splitter comparisons on real
        // key streams are coin flips, exactly the case the hint
        // exists for), and the trip count is fixed by the padding.
        while len > 1 {
            let half = len / 2;
            let mid = base + half;
            base = core::hint::select_unpredictable(rungs[mid - 1] < *key, mid, base);
            len -= half;
        }
        base = core::hint::select_unpredictable(rungs[base] < *key, base + 1, base);
        // Keys above every splitter count the padding too; clamp back.
        let i = base.min(self.distinct);
        2 * i + usize::from(rungs[i] == *key)
    }

    /// [`SplitterLadder::piece_for`] over `LANES` keys in one
    /// interleaved walk — bit-identical results, but the fixed trip
    /// count lets all lanes descend in lockstep, so each ladder level
    /// issues `LANES` independent rung loads instead of one. That
    /// overlap of the dependent load/compare chains is where the block
    /// kernel's speedup over per-key [`piece_by_search`] comes from:
    /// a lone walk is latency-bound (every level waits on the previous
    /// rung), while the lanes keep the load ports busy. The comparison
    /// count per key is unchanged ([`SplitterLadder::steps_per_key`]).
    #[inline]
    pub fn piece_for_lanes<const LANES: usize>(&self, keys: [&K; LANES]) -> [usize; LANES] {
        if self.distinct == 0 {
            return [0; LANES];
        }
        let rungs = self.rungs.as_slice();
        let mut base = [0usize; LANES];
        let mut len = rungs.len();
        while len > 1 {
            let half = len / 2;
            for lane in 0..LANES {
                let mid = base[lane] + half;
                base[lane] =
                    core::hint::select_unpredictable(rungs[mid - 1] < *keys[lane], mid, base[lane]);
            }
            len -= half;
        }
        core::array::from_fn(|lane| {
            let at = core::hint::select_unpredictable(
                rungs[base[lane]] < *keys[lane],
                base[lane] + 1,
                base[lane],
            );
            let i = at.min(self.distinct);
            2 * i + usize::from(rungs[i] == *keys[lane])
        })
    }
}

/// Deterministic duplicate-robust splitter sample: stride positions,
/// oversampled by a log factor past the `k·S` target, sorted, reduced
/// to `k·S` evenly-spaced **quantiles of the sample with duplicates
/// kept**, then deduplicated. Strictly increasing output; an all-equal
/// input yields one splitter.
///
/// The quantile-then-dedup order is load-bearing: quantiles of the
/// raw sorted sample are mass-weighted, so a value carrying more than
/// `~1/(k·S)` of the input (a Zipf head, a duplicate flood) always
/// occupies at least one quantile slot and survives as a splitter —
/// its mass then lands in a chunkable *equality* bucket. Deduplicating
/// first and thinning by distinct-value rank would weight every value
/// equally and could drop exactly the heavy keys, leaving their whole
/// mass in one unchunkable range bucket (the imbalance bug the E26d
/// battery pins).
fn sample_splitters<K: Ord + Clone>(keys: &[K], shards: usize, factor: usize) -> Vec<K> {
    if shards <= 1 {
        return Vec::new();
    }
    let n = keys.len();
    let target = shards.saturating_mul(factor.max(1));
    let oversample = (usize::BITS - (target - 1).leading_zeros()) as usize + 1;
    let m = target.saturating_mul(oversample).min(n);
    let mut sample: Vec<K> = (0..m).map(|j| keys[j * n / m].clone()).collect();
    sample.sort();
    // Quantile positions are non-decreasing and the sample is sorted,
    // so the picks are non-decreasing; dedup makes them strictly
    // increasing.
    let mut splitters: Vec<K> = (1..=target.min(m))
        .map(|j| sample[j * m / (target.min(m) + 1)].clone())
        .collect();
    splitters.dedup();
    splitters
}

/// One contiguous bucket-array span the shard phase publishes as a
/// whole: an equality-bucket chunk or a range bucket. `lo..hi` are
/// bucket-array slots, which equal the unit's output ranks.
#[derive(Clone, Copy, Debug)]
struct WorkUnit {
    lo: usize,
    hi: usize,
    /// The bucket this unit is a span of. The in-place recovery path
    /// uses it to rebuild the unit's element set from the stable
    /// classification when the slots themselves are torn.
    piece: usize,
    /// Equality units hold one key value, so the bucket order (original
    /// index order) is already the stable sorted order.
    equality: bool,
}

impl WorkUnit {
    fn len(&self) -> usize {
        self.hi - self.lo
    }
}

/// Forwards an outer [`Participation`] into a unit's inner sort,
/// latching any abandonment so (a) the inner sort stops promptly and
/// (b) the outer shard WAT sees the signal at its publish gate and
/// leaves the half-sorted shard's leaf unmarked.
struct ForwardAbandon<'a, 'p, P: Participation> {
    outer: &'a RefCell<&'p mut P>,
    abandoned: &'a Cell<bool>,
}

impl<P: Participation> Participation for ForwardAbandon<'_, '_, P> {
    fn keep_going(&mut self) -> bool {
        if self.abandoned.get() {
            return false;
        }
        let ok = self.outer.borrow_mut().keep_going();
        if !ok {
            self.abandoned.set(true);
        }
        ok
    }
}

/// A wait-free *sharded* sort of `keys` in progress (or completed):
/// duplicate-robust splitter partition into range and equality buckets,
/// bucket fill, then greedy bucket→shard assignment with one
/// independent local sort (or trivial fill) per work unit (see the
/// module docs for the pipeline and fault story).
///
/// Like [`SortJob`], any number of threads may call
/// [`ShardedSortJob::participate`] at any time, abandon at will, and
/// the sort completes as long as one participant keeps running. The
/// computed permutation is identical to the single-tree job's —
/// `(key, index)` order, so stable — which the differential suite in
/// `tests/sharded_parity.rs` pins across the adversarial shape battery.
///
/// Unlike [`SortJob`] there are no per-participant heartbeat slots: the
/// watchdog story for the sharded path rides on its completion gates
/// and on the WAT frontiers, not on per-thread epochs —
/// [`ShardedSortJob::progress`] folds those frontiers into a
/// [`ProgressReport`] the [`crate::WatchdogRegistry`] classifies like
/// any other job's.
///
/// # Examples
///
/// ```
/// use wfsort_native::{RunToCompletion, ShardedSortJob};
///
/// let job = ShardedSortJob::new((0..500u64).rev().collect(), 8);
/// crossbeam::thread::scope(|s| {
///     s.spawn(|_| job.participate(&mut RunToCompletion));
///     s.spawn(|_| job.participate(&mut RunToCompletion));
/// })
/// .unwrap();
/// assert!(job.is_complete());
/// assert_eq!(job.into_sorted(), (0..500u64).collect::<Vec<_>>());
/// ```
///
/// [`SortJob`]: crate::SortJob
#[derive(Debug)]
pub struct ShardedSortJob<K: Ord> {
    keys: Vec<K>,
    /// Strictly increasing (deduplicated) splitters; element `i`
    /// belongs to the bucket [`piece_by_search`] computes, so equal
    /// keys always share a bucket.
    splitters: Vec<K>,
    /// The kernel the partition phase runs — [`ClassifyKernel::Auto`]
    /// resolved against the splitter count at construction, so this is
    /// never `Auto`.
    kernel: ClassifyKernel,
    /// The padded flat splitter array [`ClassifyKernel::Ladder`] walks;
    /// built unconditionally (it is two cache lines of clones at common
    /// splitter counts) so tests can pin both kernels on one job.
    ladder: SplitterLadder<K>,
    shards: usize,
    /// Bucket count `P = 2·splitters.len() + 1`: buckets alternate
    /// range / equality in key order.
    pieces: usize,
    config: ShardConfig,
    pgrain: usize,
    blocks: usize,
    allocation: NativeAllocation,
    partition_wat: AtomicWat,
    fill_wat: AtomicWat,
    shard_wat: AtomicWat,
    partition_lcwat: AtomicLcWat,
    fill_lcwat: AtomicLcWat,
    shard_lcwat: AtomicLcWat,
    /// `piece_of[i]` = bucket of element `i` (0-based). Benign race:
    /// every writer stores the same deterministic value.
    piece_of: Vec<AtomicU32>,
    /// Fused per-block histograms: `block_counts[blk · P + p]` = how
    /// many of block `blk`'s elements classify into bucket `p`,
    /// published by whoever classifies the block (in the same batch
    /// call that stores `piece_of`). The same benign-race argument as
    /// `piece_of` applies — a redone block rewrites identical counts —
    /// and the partition WAT's completion gate orders every count
    /// before any fill-phase read. This table is what lets
    /// [`ShardedSortJob::column_offsets`] run in `O(B·P)` instead of
    /// rescanning all `n` classifications per participant.
    block_counts: Vec<AtomicU32>,
    /// `bucket[d]` = 1-based element index occupying bucket slot `d`;
    /// bucket `p` owns the contiguous slots `starts[p]..starts[p + 1]`,
    /// filled in original-index order (benign race, like `piece_of`).
    /// Only allocated under [`PartitionStrategy::Materialized`]; the
    /// in-place strategy stages bucket contents directly in `out_perm`
    /// behind the `PENDING` tag and leaves this empty — that dropped
    /// N-word allocation is the strategy's whole point.
    bucket: Vec<AtomicUsize>,
    /// `out_perm[r]` = 1-based element index with rank `r + 1` — the
    /// same contract as [`crate::SortJob`]'s permutation. Under
    /// [`PartitionStrategy::InPlace`] the slots double as the fill
    /// staging area (monotone `empty → PENDING-tagged fill value →
    /// final value` lifecycle); completion guarantees every tag is
    /// gone.
    out_perm: Vec<AtomicUsize>,
    /// The resolved [`PartitionStrategy`] — never `Auto`.
    strategy: PartitionStrategy,
    /// Telemetry: element moves actually performed — every store of an
    /// element entry into the bucket intermediate or the output
    /// permutation, redone work included. The materialized strategy
    /// pays `2N` in a crash-free run (fill + republication); in-place
    /// pays `N` plus only the *range*-unit republications (equality
    /// units are final at fill time), which E26f measures side by side.
    moves: AtomicU64,
    /// Telemetry: in-place units whose slots were caught mid-publication
    /// (mixed fill/final tags after a claimant crashed or raced) and
    /// were rebuilt from the stable classification. Zero in any
    /// crash-free single-threaded run; the abandonment suite drives it
    /// positive on purpose.
    cycle_restarts: AtomicU64,
    /// Telemetry only: how many times each shard's sort closure was
    /// entered (redos and racing double claims included).
    shard_claims: Vec<AtomicU64>,
    participants: AtomicUsize,
}

impl<K: Ord + Clone> ShardedSortJob<K> {
    /// Creates a sharded job over `keys` with `shards` shards,
    /// deterministic WAT allocation, default [`ShardConfig`], and work
    /// grains sized for [`DEFAULT_TRACKED_PARTICIPANTS`] workers.
    /// [`crate::SortJob::with_shards`] is the same constructor under
    /// the name the single-tree path uses.
    ///
    /// # Panics
    ///
    /// Panics if `keys` has fewer than 2 elements or `shards` is zero.
    pub fn new(keys: Vec<K>, shards: usize) -> Self {
        Self::with_workers(
            keys,
            NativeAllocation::Deterministic,
            DEFAULT_TRACKED_PARTICIPANTS,
            shards,
        )
    }

    /// [`ShardedSortJob::with_config`] with the default [`ShardConfig`]:
    /// the WAT flavor (`allocation`), the expected `workers` cohort
    /// (sizes the partition-block grain; correctness never depends on
    /// it), and the shard count.
    ///
    /// # Panics
    ///
    /// Panics if `keys` has fewer than 2 elements, or `workers` or
    /// `shards` is zero, or `shards` does not fit in a `u32`.
    pub fn with_workers(
        keys: Vec<K>,
        allocation: NativeAllocation,
        workers: usize,
        shards: usize,
    ) -> Self {
        Self::with_config(keys, allocation, workers, shards, ShardConfig::default())
    }

    /// Creates a sharded job with every knob explicit, including the
    /// robustness [`ShardConfig`] (normalized via
    /// [`ShardConfig::normalized`], so degenerate knob values select
    /// defaults instead of panicking).
    ///
    /// # Panics
    ///
    /// Panics if `keys` has fewer than 2 elements, or `workers` or
    /// `shards` is zero, or `shards` does not fit in a `u32`.
    pub fn with_config(
        keys: Vec<K>,
        allocation: NativeAllocation,
        workers: usize,
        shards: usize,
        config: ShardConfig,
    ) -> Self {
        let n = keys.len();
        assert!(n >= 2, "a sort job needs at least two keys");
        assert!(workers >= 1, "a sharded job needs at least one worker");
        assert!(shards >= 1, "a sharded job needs at least one shard");
        assert!(u32::try_from(shards).is_ok(), "shard ids are stored as u32");
        let config = config.normalized();
        let splitters = sample_splitters(&keys, shards, config.overpartition_factor);
        let pieces = 2 * splitters.len() + 1;
        assert!(
            u32::try_from(pieces).is_ok(),
            "bucket ids are stored as u32"
        );
        let pgrain = partition_grain(n, workers);
        let blocks = n.div_ceil(pgrain);
        let kernel = match config.classify_kernel {
            ClassifyKernel::Auto => {
                if (1..=LADDER_AUTO_MAX_SPLITTERS).contains(&splitters.len()) {
                    ClassifyKernel::Ladder
                } else {
                    ClassifyKernel::BinarySearch
                }
            }
            k => k,
        };
        let strategy = match config.partition_strategy {
            PartitionStrategy::Auto => {
                if n >= IN_PLACE_AUTO_MIN {
                    PartitionStrategy::InPlace
                } else {
                    PartitionStrategy::Materialized
                }
            }
            s => s,
        };
        // The in-place tag rides the slot word's high bit, so 1-based
        // element indices must stay below it — true for any input that
        // fits in memory, asserted so the invariant is explicit.
        assert!(n < PENDING, "element indices must fit under the tag bit");
        let bucket_len = match strategy {
            PartitionStrategy::InPlace => 0,
            _ => n,
        };
        ShardedSortJob {
            kernel,
            strategy,
            ladder: SplitterLadder::new(&splitters),
            splitters,
            shards,
            pieces,
            config,
            pgrain,
            blocks,
            allocation,
            partition_wat: AtomicWat::with_grain(n, pgrain),
            fill_wat: AtomicWat::new(blocks),
            shard_wat: AtomicWat::new(shards),
            partition_lcwat: AtomicLcWat::with_grain(n, pgrain),
            fill_lcwat: AtomicLcWat::new(blocks),
            shard_lcwat: AtomicLcWat::new(shards),
            piece_of: (0..n).map(|_| AtomicU32::new(0)).collect(),
            block_counts: (0..blocks * pieces).map(|_| AtomicU32::new(0)).collect(),
            bucket: (0..bucket_len).map(|_| AtomicUsize::new(0)).collect(),
            out_perm: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            moves: AtomicU64::new(0),
            cycle_restarts: AtomicU64::new(0),
            shard_claims: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            participants: AtomicUsize::new(0),
            keys,
        }
    }

    /// Fallible [`ShardedSortJob::with_workers`]: returns `Err` for
    /// every argument shape the panicking constructor rejects (fewer
    /// than 2 keys, zero workers or shards, shard ids past `u32`),
    /// handing `keys` back untouched so a service-facing caller can fall
    /// back to a sequential sort instead of unwinding. The panicking
    /// front-ends keep their documented contracts;
    /// [`crate::SortOptions`] and [`crate::service::SortService`] route
    /// degenerate inputs around the constructor entirely.
    pub fn try_with_workers(
        keys: Vec<K>,
        allocation: NativeAllocation,
        workers: usize,
        shards: usize,
    ) -> Result<Self, Vec<K>> {
        if keys.len() < 2 || workers == 0 || shards == 0 || u32::try_from(shards).is_err() {
            return Err(keys);
        }
        Ok(Self::with_workers(keys, allocation, workers, shards))
    }

    /// Runs all three phases as one participant until the sort is
    /// complete or `p` abandons. Wait-free with the same contract as
    /// [`crate::SortJob::participate`]: bounded work between
    /// `keep_going` checks, progress never depends on any other
    /// participant.
    pub fn participate(&self, p: &mut impl Participation) {
        self.participate_inner(p, &NoInstrument);
    }

    /// [`ShardedSortJob::participate`] recording per-worker telemetry
    /// into `slot`, including the inner per-unit sorts (their events
    /// land in the ordinary build/sum/place/scatter buckets).
    pub fn participate_instrumented(&self, p: &mut impl Participation, slot: &MetricSlot) {
        self.participate_inner(p, slot.counters());
    }

    /// Convenience: participate and never abandon.
    pub fn run(&self) {
        self.participate(&mut RunToCompletion);
    }

    pub(crate) fn participate_inner(&self, p: &mut impl Participation, ins: &impl Instrument) {
        let tid = self.participants.fetch_add(1, Ordering::Relaxed);
        let nthreads = (tid + 1).max(2);
        ins.enter_phase(SortPhase::Partition);
        self.partition_phase(tid, nthreads, p, ins);
        if !self.partition_done() {
            return;
        }
        ins.enter_phase(SortPhase::Fill);
        let starts = self.fill_phase(tid, nthreads, p, ins);
        if !self.fill_done() {
            return;
        }
        ins.enter_phase(SortPhase::ShardSort);
        self.shard_phase(tid, nthreads, &starts, p, ins);
    }

    /// Phase 1: classify every element into its bucket. One WAT item
    /// per element (so `partition.claims` counts elements,
    /// grain-independent like the single-tree phases), blocks of
    /// [`ShardedSortJob::partition_grain`] items per leaf.
    ///
    /// The work is batched per leaf: both WAT flavors run a claimed
    /// leaf's items in order from its first element, so the first
    /// item's callback classifies the *whole* block with the resolved
    /// [`ClassifyKernel`] (amortizing the splitter loads) and publishes
    /// the block's piece histogram into `block_counts`; the block's
    /// remaining items are no-ops that keep the per-element claim
    /// accounting and `keep_going` cadence unchanged. A worker
    /// abandoned on a later item leaves the leaf unmarked and survivors
    /// redo the block from its first element, rewriting identical
    /// `piece_of` values and identical histograms — the fault story is
    /// unchanged at block granularity. Work between checkpoints stays
    /// bounded by the grain cap (4096 classifications).
    fn partition_phase(
        &self,
        tid: usize,
        nthreads: usize,
        p: &mut impl Participation,
        ins: &impl Instrument,
    ) {
        let scratch = RefCell::new(vec![0u32; self.pieces]);
        let classify = |i: usize| {
            let blk = i / self.pgrain;
            if i != blk * self.pgrain {
                return;
            }
            let mut counts = scratch.borrow_mut();
            counts.fill(0);
            let steps = self.classify_block(blk, &mut counts);
            let base = blk * self.pieces;
            for (piece, &count) in counts.iter().enumerate() {
                self.block_counts[base + piece].store(count, Ordering::Relaxed);
            }
            ins.kernel_block(steps);
            // Ledger: one key read and one `piece_of` write per
            // element, plus the block's published histogram row.
            let span_len = self.block_span(blk).len() as u64;
            let ksz = std::mem::size_of::<K>() as u64;
            ins.bytes(span_len * (ksz + 4) + self.pieces as u64 * 4);
        };
        let keep_going = || {
            ins.checkpoint();
            p.keep_going()
        };
        match self.allocation {
            NativeAllocation::Deterministic => {
                self.partition_wat
                    .participate_with(tid, nthreads, classify, keep_going, ins);
            }
            NativeAllocation::Randomized => {
                self.partition_lcwat
                    .participate_with(tid as u64, classify, keep_going, ins);
            }
        }
    }

    /// Phase 2: write every element's index into its bucket's slot
    /// range, one partition block per WAT job. Returns the bucket start
    /// offsets (`pieces + 1` entries) for the shard phase — a pure
    /// function of the completed classification, so every worker
    /// computes the same values.
    ///
    /// Under [`PartitionStrategy::Materialized`] the destinations are
    /// `bucket` slots and plain stores suffice (redone blocks rewrite
    /// identical values). Under [`PartitionStrategy::InPlace`] the
    /// destinations are the output-permutation slots themselves:
    /// equality buckets are published as untagged *final* values
    /// (their fill order is already the stable sorted order, so the
    /// shard phase never touches them again), range buckets as
    /// `PENDING`-tagged staging values. In-place fills CAS from the
    /// empty sentinel instead of storing: a filler preempted before
    /// its block was redone by survivors — and then finalized by the
    /// shard phase — must not wake up and resurrect a stale fill value
    /// over a final one. Every CAS failure is exactly such a benign
    /// stale redo.
    fn fill_phase(
        &self,
        tid: usize,
        nthreads: usize,
        p: &mut impl Participation,
        ins: &impl Instrument,
    ) -> Vec<usize> {
        let (starts, offsets) = self.column_offsets(ins);
        let pieces = self.pieces;
        let in_place = self.strategy == PartitionStrategy::InPlace;
        let fill_block = |blk: usize| {
            // A private cursor copy per invocation keeps redone blocks
            // idempotent: every rerun starts from the same offsets and
            // rewrites the same destinations.
            let mut next = offsets[blk * pieces..(blk + 1) * pieces].to_vec();
            let span = self.block_span(blk);
            let span_len = span.len() as u64;
            for i in span {
                let piece = self.piece_of[i].load(Ordering::Relaxed) as usize;
                if in_place {
                    let value = if piece % 2 == 1 {
                        i + 1
                    } else {
                        (i + 1) | PENDING
                    };
                    let _ = self.out_perm[next[piece]].compare_exchange(
                        0,
                        value,
                        Ordering::Release,
                        Ordering::Relaxed,
                    );
                } else {
                    self.bucket[next[piece]].store(i + 1, Ordering::Relaxed);
                }
                next[piece] += 1;
            }
            self.moves.fetch_add(span_len, Ordering::Relaxed);
            // Ledger: one `piece_of` read (4 B) and one slot write (8 B)
            // per element, whichever array the slot lives in.
            ins.bytes(span_len * (4 + 8));
        };
        let keep_going = || {
            ins.checkpoint();
            p.keep_going()
        };
        match self.allocation {
            NativeAllocation::Deterministic => {
                self.fill_wat
                    .participate_with(tid, nthreads, fill_block, keep_going, ins);
            }
            NativeAllocation::Randomized => {
                self.fill_lcwat
                    .participate_with(tid as u64, fill_block, keep_going, ins);
            }
        }
        starts
    }

    /// Phase 3: claim whole shards and publish each of the shard's work
    /// units — trivial fills for equality chunks and non-decreasing
    /// range buckets, a packed pivot-tree sort (one private recycled
    /// arena per worker) or a one-level re-shard for the rest.
    ///
    /// Under [`PartitionStrategy::InPlace`] each unit instead runs
    /// [`ShardedSortJob::publish_unit_in_place`]: the unit's slots are
    /// both its input and its output, so the per-unit snapshot protocol
    /// there replaces the stable `bucket` reads of the materialized
    /// body below.
    fn shard_phase(
        &self,
        tid: usize,
        nthreads: usize,
        starts: &[usize],
        p: &mut impl Participation,
        ins: &impl Instrument,
    ) {
        let assignment = self.assign_units(&self.plan_units(starts));
        let abandoned = Cell::new(false);
        let outer = RefCell::new(p);
        let mut arena: SortArena<K> = SortArena::new();
        let mut unit_keys: Vec<K> = Vec::new();
        let mut scratch: Vec<usize> = Vec::new();
        let in_place = self.strategy == PartitionStrategy::InPlace;
        let ksz = std::mem::size_of::<K>() as u64;
        let sort_shard = |shard: usize| {
            self.shard_claims[shard].fetch_add(1, Ordering::Relaxed);
            for unit in &assignment[shard] {
                if abandoned.get() {
                    return;
                }
                if in_place {
                    if !self.publish_unit_in_place(
                        unit,
                        &outer,
                        &abandoned,
                        &mut arena,
                        &mut scratch,
                        &mut unit_keys,
                        ins,
                    ) {
                        return;
                    }
                    continue;
                }
                let (lo, hi) = (unit.lo, unit.hi);
                // Equality units hold one value, and a range bucket
                // whose keys are already non-decreasing in bucket
                // (original index) order — pre-sorted inputs produce
                // these — is in stable sorted order too: publishing
                // either is a straight copy, never a pivot tree. This
                // is also what keeps all-equal and pre-sorted inputs
                // out of the pivot tree's quadratic monotone-insert
                // regime.
                if unit.equality || hi - lo == 1 || self.is_sorted_run(lo, hi, ksz, ins) {
                    for slot in lo..hi {
                        let element = self.bucket[slot].load(Ordering::Relaxed);
                        self.out_perm[slot].store(element, Ordering::Release);
                    }
                    self.moves.fetch_add((hi - lo) as u64, Ordering::Relaxed);
                    ins.bytes((hi - lo) as u64 * 16);
                    continue;
                }
                let len = hi - lo;
                if self.config.max_levels > 1 && len > self.chunk_cap() {
                    // An oversized range bucket: the sampler missed its
                    // span, so re-shard it one level down instead of
                    // feeding one giant pivot tree.
                    let piece_keys: Vec<K> = (lo..hi)
                        .map(|slot| {
                            self.keys[self.bucket[slot].load(Ordering::Relaxed) - 1].clone()
                        })
                        .collect();
                    ins.bytes(len as u64 * (8 + ksz));
                    let inner_config = ShardConfig {
                        max_levels: self.config.max_levels - 1,
                        ..self.config
                    };
                    let inner = ShardedSortJob::with_config(
                        piece_keys,
                        self.allocation,
                        1,
                        recommended_shards(len, 1).max(2),
                        inner_config,
                    );
                    let mut fwd = ForwardAbandon {
                        outer: &outer,
                        abandoned: &abandoned,
                    };
                    // Erase the participation type at the recursion
                    // boundary: without this, each level would nest
                    // another ForwardAbandon<…> and monomorphization
                    // would never terminate.
                    let mut erased: &mut dyn Participation = &mut fwd;
                    inner.participate_inner(&mut erased, ins);
                    ins.enter_phase(SortPhase::ShardSort);
                    if abandoned.get() {
                        return;
                    }
                    debug_assert!(inner.is_complete());
                    for (rank, local) in inner.permutation().into_iter().enumerate() {
                        let element = self.bucket[lo + local - 1].load(Ordering::Relaxed);
                        self.out_perm[lo + rank].store(element, Ordering::Release);
                    }
                    self.moves.fetch_add(len as u64, Ordering::Relaxed);
                    ins.bytes(len as u64 * 16);
                    continue;
                }
                unit_keys.clear();
                unit_keys.extend(
                    (lo..hi).map(|slot| {
                        self.keys[self.bucket[slot].load(Ordering::Relaxed) - 1].clone()
                    }),
                );
                ins.bytes(len as u64 * (8 + ksz));
                let job = arena.prepare(&unit_keys, self.allocation, 1, recommended_grain(len, 1));
                let mut inner = ForwardAbandon {
                    outer: &outer,
                    abandoned: &abandoned,
                };
                job.participate_inner(&mut inner, ins);
                ins.enter_phase(SortPhase::ShardSort);
                if abandoned.get() {
                    // Half-sorted: the publish gate below sees the
                    // same signal and leaves this shard's leaf
                    // unmarked for survivors.
                    return;
                }
                debug_assert!(job.is_complete());
                // Within a bucket the fill preserves original index
                // order, so the inner job's (key, local index) ties
                // break exactly like the global (key, index) ties.
                for (rank, local) in job.permutation().into_iter().enumerate() {
                    let element = self.bucket[lo + local - 1].load(Ordering::Relaxed);
                    self.out_perm[lo + rank].store(element, Ordering::Release);
                }
                self.moves.fetch_add(len as u64, Ordering::Relaxed);
                ins.bytes(len as u64 * 16);
            }
        };
        let keep_going = || {
            ins.checkpoint();
            !abandoned.get() && outer.borrow_mut().keep_going()
        };
        match self.allocation {
            NativeAllocation::Deterministic => {
                self.shard_wat
                    .participate_with(tid, nthreads, sort_shard, keep_going, ins);
            }
            NativeAllocation::Randomized => {
                self.shard_lcwat
                    .participate_with(tid as u64, sort_shard, keep_going, ins);
            }
        }
    }

    /// Whether the keys in bucket slots `lo..hi` are already
    /// non-decreasing in bucket (original index) order. Carries the
    /// previous element index across iterations, so each bucket slot is
    /// loaded exactly once (the naive pairwise scan loaded every
    /// interior slot twice). Ledger: counts the slots and keys actually
    /// loaded — an early exit on unsorted data charges only the prefix
    /// it read.
    fn is_sorted_run(&self, lo: usize, hi: usize, ksz: u64, ins: &impl Instrument) -> bool {
        let mut prev = self.bucket[lo].load(Ordering::Relaxed) - 1;
        let mut loads = 1u64;
        let mut sorted = true;
        for slot in lo + 1..hi {
            let next = self.bucket[slot].load(Ordering::Relaxed) - 1;
            loads += 1;
            if self.keys[prev] > self.keys[next] {
                sorted = false;
                break;
            }
            prev = next;
        }
        ins.bytes(loads * (8 + ksz));
        sorted
    }

    /// One work unit under [`PartitionStrategy::InPlace`]. The unit's
    /// output-permutation slots are both its input and its output, so
    /// instead of the materialized body's reads from a stable `bucket`
    /// intermediate, the unit runs a snapshot-classify-republish
    /// protocol built on the monotone slot lifecycle (`empty →
    /// PENDING-tagged fill value → final value`, finals deterministic
    /// and identical across every publisher):
    ///
    /// 1. **Snapshot.** One read sweep over the slots. *All tagged* ⇒
    ///    the snapshot is exactly the pristine fill order (no final
    ///    write can precede a tagged read of the same slot, and fill
    ///    values are stable once the fill gate passes). *All untagged*
    ///    ⇒ a previous claimant finished the unit; skip. *Mixed* ⇒ a
    ///    claimant crashed (or is racing) mid-publication — final
    ///    values at unknown positions may duplicate fill values still
    ///    awaiting overwrite, so the slots are not a usable multiset;
    ///    rebuild the unit's fill order from the stable classification
    ///    ([`ShardedSortJob::rebuild_fill_order`], counted in
    ///    `cycle_restarts`).
    /// 2. **Sort.** Singletons and already-non-decreasing runs are
    ///    final as-is; otherwise the snapshot's keys run through the
    ///    same pivot-tree arena sort (or one-level re-shard) as the
    ///    materialized path — the snapshot preserves original-index
    ///    order within the bucket, so ties break identically.
    /// 3. **Republish.** Final values are stored untagged, with a
    ///    `keep_going` consult every [`PUBLISH_CONSULT_EVERY`] slots —
    ///    a worker crashed inside the loop leaves exactly the mixed
    ///    state step 1 recovers from, and its WAT leaf unmarked.
    ///
    /// Because every final value is a pure function of `(keys,
    /// classification, unit)`, racing claimants — snapshot-based or
    /// rebuild-based — write byte-identical finals: the only races
    /// left are benign again, just at final-value granularity instead
    /// of fill-value granularity. Returns `false` if the participant
    /// abandoned mid-unit (callers stop, the shard's leaf stays
    /// unmarked for survivors).
    #[allow(clippy::too_many_arguments)]
    fn publish_unit_in_place<P: Participation>(
        &self,
        unit: &WorkUnit,
        outer: &RefCell<&mut P>,
        abandoned: &Cell<bool>,
        arena: &mut SortArena<K>,
        scratch: &mut Vec<usize>,
        unit_keys: &mut Vec<K>,
        ins: &impl Instrument,
    ) -> bool {
        // Equality units were published as final values by the fill
        // phase itself; there is nothing left to move or verify.
        if unit.equality {
            return true;
        }
        let (lo, hi) = (unit.lo, unit.hi);
        let len = hi - lo;
        let ksz = std::mem::size_of::<K>() as u64;
        scratch.clear();
        let mut tagged = 0usize;
        for slot in lo..hi {
            let raw = self.out_perm[slot].load(Ordering::Acquire);
            debug_assert_ne!(raw, 0, "the fill gate orders every slot write first");
            tagged += usize::from(raw & PENDING != 0);
            scratch.push(raw & !PENDING);
        }
        ins.bytes(len as u64 * 8);
        if tagged == 0 {
            return true;
        }
        if tagged != len {
            self.cycle_restarts.fetch_add(1, Ordering::Relaxed);
            self.rebuild_fill_order(unit.piece, scratch, ins);
            debug_assert_eq!(scratch.len(), len, "stable rebuild spans the unit");
        }
        // `scratch` now holds the unit's fill order — 1-based element
        // indices, ascending by original index — whichever way it was
        // obtained. The same trivial-unit test as the materialized
        // body: singletons and non-decreasing runs are already final.
        let sorted_already = len == 1 || {
            let mut loads = 1u64;
            let mut prev = scratch[0] - 1;
            let mut sorted = true;
            for &raw in &scratch[1..] {
                let next = raw - 1;
                loads += 1;
                if self.keys[prev] > self.keys[next] {
                    sorted = false;
                    break;
                }
                prev = next;
            }
            ins.bytes(loads * ksz);
            sorted
        };
        if sorted_already {
            return self.publish_final(lo, scratch, outer, abandoned, ins);
        }
        if self.config.max_levels > 1 && len > self.chunk_cap() {
            // An oversized range bucket: re-shard it one level down,
            // exactly like the materialized body, but cloning from the
            // snapshot instead of the bucket intermediate.
            let piece_keys: Vec<K> = scratch.iter().map(|&v| self.keys[v - 1].clone()).collect();
            ins.bytes(len as u64 * ksz);
            let inner_config = ShardConfig {
                max_levels: self.config.max_levels - 1,
                ..self.config
            };
            let inner = ShardedSortJob::with_config(
                piece_keys,
                self.allocation,
                1,
                recommended_shards(len, 1).max(2),
                inner_config,
            );
            let mut fwd = ForwardAbandon { outer, abandoned };
            let mut erased: &mut dyn Participation = &mut fwd;
            inner.participate_inner(&mut erased, ins);
            ins.enter_phase(SortPhase::ShardSort);
            if abandoned.get() {
                return false;
            }
            debug_assert!(inner.is_complete());
            let finals: Vec<usize> = inner
                .permutation()
                .into_iter()
                .map(|local| scratch[local - 1])
                .collect();
            return self.publish_final(lo, &finals, outer, abandoned, ins);
        }
        unit_keys.clear();
        unit_keys.extend(scratch.iter().map(|&v| self.keys[v - 1].clone()));
        ins.bytes(len as u64 * ksz);
        let job = arena.prepare(unit_keys, self.allocation, 1, recommended_grain(len, 1));
        let mut inner = ForwardAbandon { outer, abandoned };
        job.participate_inner(&mut inner, ins);
        ins.enter_phase(SortPhase::ShardSort);
        if abandoned.get() {
            return false;
        }
        debug_assert!(job.is_complete());
        // Within a bucket the snapshot preserves original index order,
        // so the inner job's (key, local index) ties break exactly
        // like the global (key, index) ties.
        let finals: Vec<usize> = job
            .permutation()
            .into_iter()
            .map(|local| scratch[local - 1])
            .collect();
        self.publish_final(lo, &finals, outer, abandoned, ins)
    }

    /// Rebuilds a range bucket's fill order — 1-based element indices,
    /// ascending by original index — into `out` from the *stable* side
    /// of the job (`piece_of` and the fused histograms), never from the
    /// torn slots. Only blocks whose histogram row shows elements of
    /// `piece` are scanned, so the cost is bounded by the piece's
    /// contributing blocks; this is the rare crash/race recovery path,
    /// not the steady state, and every caller computes the identical
    /// result (it is a pure function of the completed classification).
    fn rebuild_fill_order(&self, piece: usize, out: &mut Vec<usize>, ins: &impl Instrument) {
        out.clear();
        let pieces = self.pieces;
        let mut scanned = 0u64;
        for blk in 0..self.blocks {
            if self.block_counts[blk * pieces + piece].load(Ordering::Relaxed) == 0 {
                continue;
            }
            let span = self.block_span(blk);
            scanned += span.len() as u64;
            for i in span {
                if self.piece_of[i].load(Ordering::Relaxed) as usize == piece {
                    out.push(i + 1);
                }
            }
        }
        // Histogram row reads plus the contributing blocks' piece_of
        // sweeps.
        ins.bytes(self.blocks as u64 * 4 + scanned * 4);
    }

    /// Publishes `values[r]` into `out_perm[lo + r]` as untagged final
    /// values, consulting `keep_going` every [`PUBLISH_CONSULT_EVERY`]
    /// slots so chaos scripts can crash a worker mid-unit. Returns
    /// `false` on abandonment — the unit is then torn (mixed tags),
    /// which is exactly the state
    /// [`ShardedSortJob::publish_unit_in_place`] recovers from on redo.
    fn publish_final<P: Participation>(
        &self,
        lo: usize,
        values: &[usize],
        outer: &RefCell<&mut P>,
        abandoned: &Cell<bool>,
        ins: &impl Instrument,
    ) -> bool {
        let mut fwd = ForwardAbandon { outer, abandoned };
        for (r, &v) in values.iter().enumerate() {
            debug_assert_eq!(v & PENDING, 0, "finals are untagged");
            self.out_perm[lo + r].store(v, Ordering::Release);
            if (r + 1) % PUBLISH_CONSULT_EVERY == 0 {
                ins.checkpoint();
                if !fwd.keep_going() {
                    return false;
                }
            }
        }
        self.moves.fetch_add(values.len() as u64, Ordering::Relaxed);
        ins.bytes(values.len() as u64 * 8);
        true
    }

    /// Classifies every element of partition block `blk` with the
    /// resolved [`ClassifyKernel`], storing `piece_of` and accumulating
    /// the block's per-piece histogram into `counts` (length `pieces`,
    /// zeroed by the caller). Returns the splitter comparisons
    /// performed, for the `classify_steps` telemetry. Deterministic in
    /// `(keys, blk)`, so concurrent or redone invocations write
    /// identical values everywhere.
    fn classify_block(&self, blk: usize, counts: &mut [u32]) -> u64 {
        let span = self.block_span(blk);
        if self.pieces == 1 {
            // No splitters: everything is bucket 0 and the `piece_of`
            // entries already hold their initial zeros.
            counts[0] = span.len() as u32;
            return 0;
        }
        let mut steps = 0u64;
        match self.kernel {
            ClassifyKernel::Ladder => {
                // Interleave LANES keys per walk: the lanes descend the
                // ladder in lockstep, so the latency-bound rung-load
                // chains overlap instead of serializing (see
                // `SplitterLadder::piece_for_lanes`). The remainder
                // tail falls back to the per-key walk.
                const LANES: usize = 8;
                steps = self.ladder.steps_per_key() * span.len() as u64;
                let mut at = span.start;
                while at + LANES <= span.end {
                    let lanes: [&K; LANES] = core::array::from_fn(|j| &self.keys[at + j]);
                    for (j, piece) in self.ladder.piece_for_lanes(lanes).into_iter().enumerate() {
                        self.piece_of[at + j].store(piece as u32, Ordering::Relaxed);
                        counts[piece] += 1;
                    }
                    at += LANES;
                }
                for i in at..span.end {
                    let piece = self.ladder.piece_for(&self.keys[i]);
                    self.piece_of[i].store(piece as u32, Ordering::Relaxed);
                    counts[piece] += 1;
                }
            }
            _ => {
                for i in span {
                    let key = &self.keys[i];
                    let at = self.splitters.partition_point(|s| {
                        steps += 1;
                        s < key
                    });
                    let piece = if at < self.splitters.len() {
                        steps += 1;
                        if self.splitters[at] == *key {
                            2 * at + 1
                        } else {
                            2 * at
                        }
                    } else {
                        2 * at
                    };
                    self.piece_of[i].store(piece as u32, Ordering::Relaxed);
                    counts[piece] += 1;
                }
            }
        }
        steps
    }

    /// Bucket start offsets and per-block destination offsets, reduced
    /// from the fused `block_counts` histograms the partition phase
    /// published — `O(B·P)` per call, paid once per participant at
    /// fill-phase entry. Through PR 8 this began with an `O(n)` rescan
    /// of every element's classification *per participant*; the fused
    /// histograms delete that pass from every worker's critical path
    /// (the E29 measurement), and `setup_steps` pins the reduction at
    /// exactly `B·P` reads.
    fn column_offsets(&self, ins: &impl Instrument) -> (Vec<usize>, Vec<usize>) {
        let pieces = self.pieces;
        let mut offsets = vec![0usize; self.blocks * pieces];
        for (slot, count) in offsets.iter_mut().zip(&self.block_counts) {
            *slot = count.load(Ordering::Relaxed) as usize;
        }
        ins.phase_setup(self.block_counts.len() as u64);
        ins.bytes(self.block_counts.len() as u64 * 4);
        let mut starts = vec![0usize; pieces + 1];
        for piece in 0..pieces {
            let total: usize = (0..self.blocks)
                .map(|blk| offsets[blk * pieces + piece])
                .sum();
            starts[piece + 1] = starts[piece] + total;
        }
        // Convert per-block counts into absolute destination offsets.
        let mut running = starts[..pieces].to_vec();
        for blk in 0..self.blocks {
            for piece in 0..pieces {
                let count = offsets[blk * pieces + piece];
                offsets[blk * pieces + piece] = running[piece];
                running[piece] += count;
            }
        }
        (starts, offsets)
    }

    /// The element range of partition block `blk`.
    fn block_span(&self, blk: usize) -> std::ops::Range<usize> {
        let start = blk * self.pgrain;
        start..((start + self.pgrain).min(self.keys.len()))
    }

    /// The largest work unit the chunker will emit: `(τ-1)·n/S`
    /// elements, so greedy assignment's `max ≤ avg + largest` bound
    /// lands under `τ·n/S`.
    fn chunk_cap(&self) -> usize {
        let slack = self.config.max_shard_imbalance - 1.0;
        ((slack * self.keys.len() as f64 / self.shards as f64) as usize).max(1)
    }

    /// Cuts the populated buckets into work units: equality buckets
    /// into chunks of at most [`ShardedSortJob::chunk_cap`] slots
    /// (safe because their order is already final), range buckets
    /// whole. Pure in the completed classification.
    fn plan_units(&self, starts: &[usize]) -> Vec<WorkUnit> {
        let cap = self.chunk_cap();
        let mut units = Vec::new();
        for piece in 0..self.pieces {
            let (lo, hi) = (starts[piece], starts[piece + 1]);
            if lo == hi {
                continue;
            }
            if piece % 2 == 1 {
                let mut at = lo;
                while at < hi {
                    let end = (at + cap).min(hi);
                    units.push(WorkUnit {
                        lo: at,
                        hi: end,
                        equality: true,
                        piece,
                    });
                    at = end;
                }
            } else {
                units.push(WorkUnit {
                    lo,
                    hi,
                    equality: false,
                    piece,
                });
            }
        }
        units
    }

    /// Greedy largest-first (LPT) assignment of work units to shards:
    /// units sorted by size descending (position ascending on ties),
    /// each placed on the least-loaded shard, lowest index on ties.
    /// Fully deterministic, so every participant — and
    /// [`ShardedSortJob::shard_report`] — recomputes the identical
    /// assignment from the classification alone.
    fn assign_units(&self, units: &[WorkUnit]) -> Vec<Vec<WorkUnit>> {
        let mut order: Vec<usize> = (0..units.len()).collect();
        order.sort_by_key(|&u| (Reverse(units[u].len()), units[u].lo));
        let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
            (0..self.shards).map(|s| Reverse((0usize, s))).collect();
        let mut assignment: Vec<Vec<WorkUnit>> = vec![Vec::new(); self.shards];
        for u in order {
            let Reverse((load, shard)) = heap.pop().expect("one slot per shard");
            assignment[shard].push(units[u]);
            heap.push(Reverse((load + units[u].len(), shard)));
        }
        assignment
    }
}

impl<K: Ord> ShardedSortJob<K> {
    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the job is empty (never true; `new` requires 2+ keys).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The shard count `S`.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The normalized robustness knobs this job runs under.
    pub fn config(&self) -> ShardConfig {
        self.config
    }

    /// The [`ClassifyKernel`] the partition phase actually runs:
    /// [`ClassifyKernel::Auto`] requests read back as the kernel they
    /// resolved to at construction, never `Auto` itself.
    pub fn classify_kernel(&self) -> ClassifyKernel {
        self.kernel
    }

    /// Bucket count `P = 2d + 1` for `d` distinct splitters — range and
    /// equality buckets interleaved in key order.
    pub fn buckets(&self) -> usize {
        self.pieces
    }

    /// The strictly increasing splitters the deduplicating sampler
    /// chose at construction — what both classify kernels walk. Exposed
    /// so the E26e/E29 kernel A/B can time [`piece_by_search`] and the
    /// [`SplitterLadder`] over the exact splitter set a real job uses.
    pub fn splitters(&self) -> &[K] {
        &self.splitters
    }

    /// The [`PartitionStrategy`] the Fill/shard pipeline actually runs:
    /// [`PartitionStrategy::Auto`] requests read back as the strategy
    /// they resolved to at construction
    /// ([`PartitionStrategy::InPlace`] from [`IN_PLACE_AUTO_MIN`]
    /// elements up), never `Auto` itself.
    pub fn partition_strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Auxiliary bytes the Fill/shard pipeline allocates beyond the
    /// output permutation: the `B·P·8` destination-offset table every
    /// fill participant reduces privately, plus the `n·8` bucket
    /// intermediate under [`PartitionStrategy::Materialized`] (zero
    /// in-place — that is the E26f `aux_bytes ≤ B·P·8` pin).
    pub fn aux_bytes(&self) -> u64 {
        let table = (self.blocks * self.pieces) as u64 * 8;
        table + self.bucket.len() as u64 * 8
    }

    /// Elements per partition block.
    pub fn partition_grain(&self) -> usize {
        self.pgrain
    }

    /// Partition block count `B` (the fill phase's job count).
    pub fn partition_blocks(&self) -> usize {
        self.blocks
    }

    /// Whether phase 1 (classification) is complete.
    fn partition_done(&self) -> bool {
        match self.allocation {
            NativeAllocation::Deterministic => self.partition_wat.all_done(),
            NativeAllocation::Randomized => self.partition_lcwat.all_done(),
        }
    }

    /// Whether phase 2 (bucket fill) is complete.
    fn fill_done(&self) -> bool {
        match self.allocation {
            NativeAllocation::Deterministic => self.fill_wat.all_done(),
            NativeAllocation::Randomized => self.fill_lcwat.all_done(),
        }
    }

    /// Whether the sorted permutation is fully computed.
    pub fn is_complete(&self) -> bool {
        match self.allocation {
            NativeAllocation::Deterministic => self.shard_wat.all_done(),
            NativeAllocation::Randomized => self.shard_lcwat.all_done(),
        }
    }

    /// A structured snapshot of the sharded pipeline's progress: the
    /// three WAT frontiers folded into a [`ProgressReport`] so the
    /// sharded path plugs into the same [`crate::Watchdog`] /
    /// [`crate::WatchdogRegistry`] machinery as the single-tree
    /// [`SortJob`](crate::SortJob). Partition and fill jobs fold into
    /// the report's build frontier, shard-sort claims into its scatter
    /// frontier.
    ///
    /// There are no per-participant heartbeat slots on this path, so
    /// `workers` is empty and `tracked_slots` is zero; health
    /// classification then rides entirely on frontier movement, which
    /// the WATs keep exact. Two successive observations with no
    /// frontier motion classify [`Wedged`](crate::Health::Wedged), a
    /// crawling cohort [`Progressing`](crate::Health::Progressing) —
    /// exactly the verdicts the heartbeat view would give, minus the
    /// per-thread reaped/stalled split.
    pub fn progress(&self) -> ProgressReport {
        let (partition_done, partition_total, fill_done, fill_total, shard_done, shard_total) =
            match self.allocation {
                NativeAllocation::Deterministic => (
                    self.partition_wat.done_jobs(),
                    self.partition_wat.jobs(),
                    self.fill_wat.done_jobs(),
                    self.fill_wat.jobs(),
                    self.shard_wat.done_jobs(),
                    self.shard_wat.jobs(),
                ),
                NativeAllocation::Randomized => (
                    self.partition_lcwat.done_jobs(),
                    self.partition_lcwat.jobs(),
                    self.fill_lcwat.done_jobs(),
                    self.fill_lcwat.jobs(),
                    self.shard_lcwat.done_jobs(),
                    self.shard_lcwat.jobs(),
                ),
            };
        let phase = if self.fill_done() {
            SortPhase::ShardSort
        } else if self.partition_done() {
            SortPhase::Fill
        } else {
            SortPhase::Partition
        };
        ProgressReport {
            complete: self.is_complete(),
            phase,
            participants: self.participants.load(Ordering::Relaxed),
            workers: Vec::new(),
            tracked_slots: 0,
            aliased_participants: 0,
            build_jobs_done: partition_done + fill_done,
            build_jobs_total: partition_total + fill_total,
            scatter_jobs_done: shard_done,
            scatter_jobs_total: shard_total,
        }
    }

    /// The sorted permutation: entry `r` is the index (1-based) of the
    /// rank-`r + 1` element — the same contract as
    /// [`crate::SortJob::permutation`], and bit-identical to it for the
    /// same keys (pinned by the differential suite).
    ///
    /// # Panics
    ///
    /// Panics if the sort is not complete.
    pub fn permutation(&self) -> Vec<usize> {
        assert!(self.is_complete(), "sort not complete");
        self.out_perm
            .iter()
            .map(|slot| {
                let raw = slot.load(Ordering::Acquire);
                debug_assert_eq!(
                    raw & PENDING,
                    0,
                    "a complete job holds only final (untagged) values"
                );
                raw
            })
            .collect()
    }

    /// Consumes the job, returning the keys in sorted order.
    ///
    /// # Panics
    ///
    /// Panics if the sort is not complete.
    pub fn into_sorted(self) -> Vec<K> {
        let perm = self.permutation();
        let mut slots: Vec<Option<K>> = self.keys.into_iter().map(Some).collect();
        perm.into_iter()
            .map(|i| slots[i - 1].take().expect("permutation is a bijection"))
            .collect()
    }

    /// Writes the keys in sorted order into `out` (cleared first),
    /// leaving the job intact.
    ///
    /// # Panics
    ///
    /// Panics if the sort is not complete.
    pub fn sorted_into(&self, out: &mut Vec<K>)
    where
        K: Clone,
    {
        assert!(self.is_complete(), "sort not complete");
        out.clear();
        out.extend(
            self.out_perm
                .iter()
                .map(|slot| self.keys[slot.load(Ordering::Acquire) - 1].clone()),
        );
    }
}

impl<K: Ord + Clone> ShardedSortJob<K> {
    /// Per-shard and per-bucket statistics for the completed run — the
    /// payload [`crate::WaitFreeSorter::sort_sharded_with_report`]
    /// attaches to its [`crate::SortReport`]. Shard sizes are the
    /// greedily assigned unit loads (recomputed from the same pure
    /// function the workers use), so
    /// [`crate::ShardReport::imbalance`] measures exactly the balance
    /// the assignment achieved against the requested
    /// [`ShardConfig::max_shard_imbalance`].
    ///
    /// # Panics
    ///
    /// Panics if the sort is not complete (sizes are only meaningful
    /// once classification has finished).
    pub fn shard_report(&self) -> ShardReport {
        assert!(self.is_complete(), "sort not complete");
        // Column sums of the fused per-block histograms — O(B·P), the
        // same reduction fill-phase entry runs, instead of rescanning
        // all n classifications.
        let mut piece_sizes = vec![0usize; self.pieces];
        for (idx, count) in self.block_counts.iter().enumerate() {
            piece_sizes[idx % self.pieces] += count.load(Ordering::Relaxed) as usize;
        }
        let mut starts = vec![0usize; self.pieces + 1];
        for piece in 0..self.pieces {
            starts[piece + 1] = starts[piece] + piece_sizes[piece];
        }
        let assignment = self.assign_units(&self.plan_units(&starts));
        let per_shard: Vec<ShardStat> = (0..self.shards)
            .map(|shard| ShardStat {
                size: assignment[shard].iter().map(WorkUnit::len).sum(),
                claims: self.shard_claims[shard].load(Ordering::Relaxed),
            })
            .collect();
        let buckets: Vec<BucketStat> = piece_sizes
            .iter()
            .enumerate()
            .map(|(piece, &size)| BucketStat {
                size,
                equality: piece % 2 == 1,
            })
            .collect();
        let equality_buckets = buckets.iter().filter(|b| b.equality && b.size > 0).count();
        ShardReport {
            shards: self.shards,
            partition_blocks: self.blocks,
            partition_grain: self.pgrain,
            per_shard,
            buckets,
            equality_buckets,
            requested_imbalance: self.config.max_shard_imbalance,
            strategy: self.strategy,
            aux_bytes: self.aux_bytes(),
            moves: self.moves.load(Ordering::Relaxed),
            cycle_restarts: self.cycle_restarts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::QuitAfter;

    fn mixed_keys(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 2654435761) % 1013).collect()
    }

    #[test]
    fn single_participant_sorts_across_shard_counts() {
        for shards in [1, 2, 8, 64] {
            let keys = mixed_keys(500);
            let mut expect = keys.clone();
            expect.sort_unstable();
            let job = ShardedSortJob::new(keys, shards);
            job.run();
            assert!(job.is_complete());
            assert_eq!(job.into_sorted(), expect, "shards {shards}");
        }
    }

    #[test]
    fn permutation_matches_single_tree_job_exactly() {
        // Duplicate-heavy keys: the tie-break order is the hard part.
        let keys: Vec<u64> = (0..600).map(|i| (i * 7) % 13).collect();
        let single = crate::SortJob::new(keys.clone());
        single.run();
        for shards in [1, 2, 8, 64] {
            let sharded = ShardedSortJob::new(keys.clone(), shards);
            sharded.run();
            assert_eq!(
                sharded.permutation(),
                single.permutation(),
                "shards {shards}"
            );
        }
    }

    #[test]
    fn randomized_allocation_sorts() {
        let keys = mixed_keys(800);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let job = ShardedSortJob::with_workers(keys, NativeAllocation::Randomized, 2, 8);
        crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                let job = &job;
                s.spawn(move |_| job.run());
            }
        })
        .unwrap();
        assert_eq!(job.into_sorted(), expect);
    }

    #[test]
    fn quitter_then_late_joiner_completes() {
        for allocation in [
            NativeAllocation::Deterministic,
            NativeAllocation::Randomized,
        ] {
            // Sweep the abandonment point across the whole run so every
            // phase boundary — including mid-inner-sort — is hit.
            for budget in (1..200).step_by(13) {
                let keys = mixed_keys(300);
                let mut expect = keys.clone();
                expect.sort_unstable();
                let job = ShardedSortJob::with_workers(keys, allocation, 2, 8);
                job.participate(&mut QuitAfter(budget));
                job.run();
                assert!(job.is_complete());
                assert_eq!(job.into_sorted(), expect, "{allocation:?} budget {budget}");
            }
        }
    }

    #[test]
    fn all_equal_keys_spread_across_shards() {
        // The PR-5 stride sampler collapsed an all-equal input into one
        // shard (imbalance == S). Deduplicated splitters put the whole
        // input into one equality bucket, and chunked assignment
        // spreads it: the measured imbalance must respect the default
        // τ = 2.0.
        let keys = vec![7u64; 100];
        let job = ShardedSortJob::new(keys.clone(), 16);
        job.run();
        let report = job.shard_report();
        assert_eq!(report.equality_buckets, 1, "one equality bucket holds all");
        assert!(
            report.imbalance() <= 2.0,
            "imbalance {} exceeds requested 2.0",
            report.imbalance()
        );
        assert!(
            report.per_shard.iter().filter(|s| s.size > 0).count() > 1,
            "chunking must engage more than one shard"
        );
        assert_eq!(job.into_sorted(), keys);
    }

    #[test]
    fn empty_and_singleton_shards_are_harmless() {
        // Fewer work units than shards: the unassigned shards stay
        // empty and their claims publish nothing.
        let keys = vec![3u64, 1, 4, 1, 5];
        let job = ShardedSortJob::new(keys.clone(), 16);
        job.run();
        let report = job.shard_report();
        assert_eq!(report.per_shard.iter().map(|s| s.size).sum::<usize>(), 5);
        assert!(report.per_shard.iter().any(|s| s.size == 0));
        assert_eq!(job.into_sorted(), vec![1, 1, 3, 4, 5]);
    }

    #[test]
    fn shard_report_counts_sizes_and_claims() {
        let keys = mixed_keys(2000);
        let job = ShardedSortJob::new(keys, 8);
        job.run();
        let report = job.shard_report();
        assert_eq!(report.shards, 8);
        assert_eq!(report.per_shard.len(), 8);
        assert_eq!(report.per_shard.iter().map(|s| s.size).sum::<usize>(), 2000);
        // A lone crash-free worker claims each shard exactly once.
        assert!(report.per_shard.iter().all(|s| s.claims == 1));
        assert!(report.imbalance() >= 1.0);
        assert_eq!(report.partition_blocks, job.partition_blocks());
        assert_eq!(report.partition_grain, job.partition_grain());
        // The per-bucket view covers the input too, and the requested
        // balance target rides along for achieved-vs-requested checks.
        assert_eq!(report.buckets.len(), job.buckets());
        assert_eq!(report.buckets.iter().map(|b| b.size).sum::<usize>(), 2000);
        assert_eq!(report.requested_imbalance, 2.0);
        assert!(report.within_requested());
    }

    #[test]
    fn recommended_shards_scales_and_clamps() {
        assert_eq!(recommended_shards(100, 1), 1);
        assert_eq!(recommended_shards(100, 4), 4);
        assert_eq!(recommended_shards(100_000, 4), 12);
        assert_eq!(recommended_shards(10_000_000, 4), 256);
        assert_eq!(recommended_shards(3, 64), 3, "never more shards than keys");
        assert_eq!(recommended_shards(0, 4), 1);
    }

    #[test]
    fn splitters_are_deduplicated_and_balance_duplicates() {
        // Ten distinct values, 32 shards: the old sampler emitted 31
        // splitters with duplicates and could populate at most ten
        // shards; the robust sampler deduplicates (so splitters are
        // strictly increasing), every value gets an equality bucket,
        // and chunking spreads the load across more shards than there
        // are distinct values.
        let keys: Vec<u64> = (0..1000).map(|i| i % 10).collect();
        let job = ShardedSortJob::new(keys, 32);
        assert!(job.splitters.windows(2).all(|w| w[0] < w[1]));
        job.run();
        let report = job.shard_report();
        assert_eq!(report.equality_buckets, 10, "one per distinct value");
        assert!(
            report.per_shard.iter().filter(|s| s.size > 0).count() > 10,
            "chunked equality buckets must engage more shards than distinct values"
        );
        assert!(
            report.imbalance() <= 2.0,
            "imbalance {}",
            report.imbalance()
        );
    }

    #[test]
    fn sample_splitters_dedups_all_equal_samples() {
        // The regression at sampler granularity: all-equal keys used to
        // yield `shards - 1` copies of the same splitter.
        let splitters = sample_splitters(&vec![7u64; 500], 16, 8);
        assert_eq!(splitters, vec![7]);
        // And a two-valued input yields exactly the two values.
        let two: Vec<u64> = (0..500).map(|i| (i % 2) * 9).collect();
        assert_eq!(sample_splitters(&two, 16, 8), vec![0, 9]);
    }

    #[test]
    fn multi_level_recursion_matches_single_tree() {
        // A tight τ shrinks the chunk cap below the range-bucket sizes,
        // so max_levels = 2 re-shards them one level down; the
        // permutation must stay bit-identical to the single tree.
        let keys = mixed_keys(5000);
        let single = crate::SortJob::new(keys.clone());
        single.run();
        for max_levels in [2, 3] {
            let config = ShardConfig {
                overpartition_factor: 1,
                max_shard_imbalance: 1.2,
                max_levels,
                ..ShardConfig::default()
            };
            let job = ShardedSortJob::with_config(
                keys.clone(),
                NativeAllocation::Deterministic,
                2,
                2,
                config,
            );
            job.run();
            assert!(job.is_complete());
            assert_eq!(
                job.permutation(),
                single.permutation(),
                "max_levels {max_levels}"
            );
        }
    }

    #[test]
    fn config_normalization_tames_degenerate_knobs() {
        let wild = ShardConfig {
            overpartition_factor: 0,
            max_shard_imbalance: f64::NAN,
            max_levels: 0,
            ..ShardConfig::default()
        }
        .normalized();
        assert_eq!(wild, ShardConfig::default().normalized());
        let low = ShardConfig {
            overpartition_factor: 1_000_000,
            max_shard_imbalance: 0.5,
            max_levels: 99,
            ..ShardConfig::default()
        }
        .normalized();
        assert_eq!(low.overpartition_factor, 64);
        assert_eq!(low.max_shard_imbalance, 2.0);
        assert_eq!(low.max_levels, 4);
        // Degenerate knobs still sort (and keep the stable permutation).
        let keys = mixed_keys(400);
        let single = crate::SortJob::new(keys.clone());
        single.run();
        let job = ShardedSortJob::with_config(
            keys,
            NativeAllocation::Deterministic,
            2,
            8,
            ShardConfig {
                overpartition_factor: 0,
                max_shard_imbalance: -3.0,
                max_levels: 0,
                ..ShardConfig::default()
            },
        );
        job.run();
        assert_eq!(job.permutation(), single.permutation());
    }

    #[test]
    #[should_panic(expected = "at least two keys")]
    fn rejects_tiny_input() {
        ShardedSortJob::new(vec![1], 4);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn rejects_zero_shards() {
        ShardedSortJob::new(vec![2, 1], 0);
    }

    #[test]
    #[should_panic(expected = "sort not complete")]
    fn permutation_before_completion_panics() {
        ShardedSortJob::new(vec![2, 1], 2).permutation();
    }

    #[test]
    fn try_with_workers_hands_back_rejected_keys() {
        let det = NativeAllocation::Deterministic;
        // Every shape the panicking constructor rejects comes back as
        // Err with the keys intact for a sequential fallback.
        match ShardedSortJob::try_with_workers(vec![1u64], det, 2, 4) {
            Err(keys) => assert_eq!(keys, vec![1]),
            Ok(_) => panic!("tiny input must be rejected"),
        }
        assert!(ShardedSortJob::try_with_workers(vec![2u64, 1], det, 0, 4).is_err());
        assert!(ShardedSortJob::try_with_workers(vec![2u64, 1], det, 2, 0).is_err());
        let job = ShardedSortJob::try_with_workers(vec![3u64, 1, 2], det, 2, 2)
            .expect("valid shape constructs");
        job.run();
        assert_eq!(job.into_sorted(), vec![1, 2, 3]);
    }

    #[test]
    fn ladder_matches_binary_search_on_equality_edges() {
        // The folded equality rung's boundary cases: keys equal to the
        // first and last splitter, keys just off every splitter, and
        // keys outside the whole splitter range.
        let splitters = vec![10u64, 20, 30, 40, 50];
        let ladder = SplitterLadder::new(&splitters);
        for key in [0, 9, 10, 11, 15, 20, 29, 30, 31, 40, 49, 50, 51, 99] {
            assert_eq!(
                ladder.piece_for(&key),
                piece_by_search(&splitters, &key),
                "key {key}"
            );
        }
        assert_eq!(ladder.piece_for(&10), 1, "first splitter's equality bucket");
        assert_eq!(ladder.piece_for(&50), 9, "last splitter's equality bucket");
        assert_eq!(ladder.piece_for(&99), 10, "open-ended top range bucket");
    }

    #[test]
    fn ladder_handles_degenerate_splitter_sets() {
        // Single splitter (the all-equal input's shape after dedup):
        // exactly three buckets, the middle one the equality bucket.
        let single = SplitterLadder::new(&[7u64]);
        for key in [0u64, 6, 7, 8, 100] {
            assert_eq!(single.piece_for(&key), piece_by_search(&[7u64], &key));
        }
        assert_eq!(single.piece_for(&7), 1);
        // No splitters: everything is bucket 0 and no rungs are walked.
        let empty: SplitterLadder<u64> = SplitterLadder::new(&[]);
        assert_eq!(empty.piece_for(&42), 0);
        assert_eq!(empty.steps_per_key(), 0);
    }

    #[test]
    fn ladder_pads_to_power_of_two_with_fixed_step_count() {
        for d in 1..=40usize {
            let splitters: Vec<u64> = (0..d as u64).map(|i| i * 3 + 1).collect();
            let ladder = SplitterLadder::new(&splitters);
            assert_eq!(ladder.rungs.len(), (d + 1).next_power_of_two(), "d {d}");
            assert_eq!(
                ladder.steps_per_key(),
                u64::from(ladder.rungs.len().trailing_zeros()) + 2
            );
            // Exhaustive key sweep across every boundary at this d.
            for key in 0..=(3 * d as u64 + 2) {
                assert_eq!(
                    ladder.piece_for(&key),
                    piece_by_search(&splitters, &key),
                    "d {d} key {key}"
                );
            }
        }
    }

    #[test]
    fn interleaved_lanes_match_the_per_key_walk() {
        // The block kernel classifies full chunks through the
        // interleaved walk and the tail through `piece_for`; pin the
        // two bit-identical across splitter counts that straddle the
        // padding boundaries, including duplicate-heavy key streams.
        for d in [1usize, 2, 5, 7, 8, 15, 33] {
            let splitters: Vec<u64> = (0..d as u64).map(|i| i * 5 + 2).collect();
            let ladder = SplitterLadder::new(&splitters);
            let keys: Vec<u64> = (0..64u64).map(|i| (i * 11) % (5 * d as u64 + 4)).collect();
            for chunk in keys.chunks_exact(8) {
                let lanes: [&u64; 8] = core::array::from_fn(|j| &chunk[j]);
                let got = ladder.piece_for_lanes(lanes);
                for (j, key) in chunk.iter().enumerate() {
                    assert_eq!(got[j], ladder.piece_for(key), "d {d} key {key}");
                }
            }
        }
        let empty: SplitterLadder<u64> = SplitterLadder::new(&[]);
        assert_eq!(empty.piece_for_lanes([&1u64, &2, &3, &4]), [0; 4]);
    }

    #[test]
    fn auto_kernel_resolves_and_explicit_kernels_stick() {
        let keys = mixed_keys(4000);
        let auto = ShardedSortJob::new(keys.clone(), 8);
        assert_ne!(
            auto.classify_kernel(),
            ClassifyKernel::Auto,
            "Auto must resolve at construction"
        );
        auto.run();
        for kernel in [ClassifyKernel::BinarySearch, ClassifyKernel::Ladder] {
            let job = ShardedSortJob::with_config(
                keys.clone(),
                NativeAllocation::Deterministic,
                2,
                8,
                ShardConfig {
                    classify_kernel: kernel,
                    ..ShardConfig::default()
                },
            );
            assert_eq!(job.classify_kernel(), kernel);
            job.run();
            assert_eq!(job.permutation(), auto.permutation(), "{kernel:?}");
        }
        // One shard means no splitters: Auto falls back to the binary
        // search (which degenerates to "everything is bucket 0").
        let one = ShardedSortJob::new(mixed_keys(100), 1);
        assert_eq!(one.classify_kernel(), ClassifyKernel::BinarySearch);
    }

    #[test]
    fn both_kernels_sort_all_equal_input() {
        // All-equal keys dedup to one splitter — the ladder's smallest
        // real shape — and everything lands in its equality bucket.
        for kernel in [ClassifyKernel::BinarySearch, ClassifyKernel::Ladder] {
            let keys = vec![5u64; 300];
            let job = ShardedSortJob::with_config(
                keys.clone(),
                NativeAllocation::Deterministic,
                2,
                8,
                ShardConfig {
                    classify_kernel: kernel,
                    ..ShardConfig::default()
                },
            );
            job.run();
            let report = job.shard_report();
            assert_eq!(report.equality_buckets, 1, "{kernel:?}");
            assert_eq!(job.into_sorted(), keys, "{kernel:?}");
        }
    }

    fn with_strategy(keys: Vec<u64>, strategy: PartitionStrategy) -> ShardedSortJob<u64> {
        ShardedSortJob::with_config(
            keys,
            NativeAllocation::Deterministic,
            2,
            8,
            ShardConfig {
                partition_strategy: strategy,
                ..ShardConfig::default()
            },
        )
    }

    #[test]
    fn in_place_permutation_matches_materialized_across_shapes() {
        // The differential oracle at unit scale: both strategies must
        // compute the identical (key, index)-stable permutation on
        // every shape class the in-place protocol special-cases —
        // range-heavy, duplicate-heavy (equality units final at fill),
        // pre-sorted (sorted-run strip publish), and all-equal.
        let shapes: Vec<(&str, Vec<u64>)> = vec![
            ("mixed", mixed_keys(700)),
            ("dupes", (0..700).map(|i| (i * 7) % 13).collect()),
            ("sorted", (0..700).collect()),
            ("reversed", (0..700).rev().collect()),
            ("all_equal", vec![9u64; 700]),
        ];
        for (name, keys) in shapes {
            let mat = with_strategy(keys.clone(), PartitionStrategy::Materialized);
            mat.run();
            let inp = with_strategy(keys, PartitionStrategy::InPlace);
            inp.run();
            assert_eq!(inp.partition_strategy(), PartitionStrategy::InPlace);
            assert_eq!(inp.permutation(), mat.permutation(), "{name}");
            assert_eq!(
                inp.shard_report().cycle_restarts,
                0,
                "{name}: a crash-free single-threaded run never tears a unit"
            );
        }
    }

    #[test]
    fn in_place_survives_abandonment_at_every_budget() {
        // The QuitAfter sweep from the materialized suite, on the
        // in-place path: whatever torn state the quitter leaves — a
        // half-filled block, a half-published unit — the late joiner
        // must recover to the exact materialized permutation with no
        // element duplicated or dropped.
        let keys = mixed_keys(300);
        let oracle = with_strategy(keys.clone(), PartitionStrategy::Materialized);
        oracle.run();
        let expect = oracle.permutation();
        for allocation in [
            NativeAllocation::Deterministic,
            NativeAllocation::Randomized,
        ] {
            for budget in (1..200).step_by(13) {
                let job = ShardedSortJob::with_config(
                    keys.clone(),
                    allocation,
                    2,
                    8,
                    ShardConfig {
                        partition_strategy: PartitionStrategy::InPlace,
                        ..ShardConfig::default()
                    },
                );
                job.participate(&mut QuitAfter(budget));
                job.run();
                assert!(job.is_complete());
                assert_eq!(job.permutation(), expect, "{allocation:?} budget {budget}");
            }
        }
    }

    #[test]
    fn torn_unit_is_rebuilt_and_counted() {
        // Reproduce exactly the state a worker crashed mid-publication
        // leaves behind — some of a range unit's slots already final
        // (untagged), the rest still pending — and pin that the next
        // claimant refuses the torn snapshot, rebuilds the unit's fill
        // order from the stable classification, counts the restart,
        // and still lands on the materialized oracle's permutation.
        let keys: Vec<u64> = (0..600).rev().collect();
        let oracle = with_strategy(keys.clone(), PartitionStrategy::Materialized);
        oracle.run();
        let job = with_strategy(keys, PartitionStrategy::InPlace);
        let ins = crate::metrics::NoInstrument;
        let mut p = RunToCompletion;
        job.partition_phase(0, 2, &mut p, &ins);
        assert!(job.partition_done());
        let starts = job.fill_phase(0, 2, &mut p, &ins);
        assert!(job.fill_done());
        let units = job.plan_units(&starts);
        let unit = units
            .iter()
            .find(|u| !u.equality && u.len() > 1)
            .expect("a reversed input has multi-element range buckets");
        // Untag the unit's first slot, as the crashed claimant's one
        // completed final store would have.
        let raw = job.out_perm[unit.lo].load(Ordering::Relaxed);
        assert_ne!(raw & PENDING, 0, "range slots leave the fill tagged");
        job.out_perm[unit.lo].store(raw & !PENDING, Ordering::Relaxed);
        job.run();
        assert!(job.is_complete());
        let report = job.shard_report();
        assert!(
            report.cycle_restarts >= 1,
            "the mixed-tag unit must be detected and rebuilt"
        );
        assert_eq!(job.permutation(), oracle.permutation());
    }

    #[test]
    fn auto_strategy_resolves_by_input_size() {
        let small = ShardedSortJob::new(mixed_keys(500), 8);
        assert_eq!(
            small.partition_strategy(),
            PartitionStrategy::Materialized,
            "below IN_PLACE_AUTO_MIN Auto keeps the bucket intermediate"
        );
        let large = ShardedSortJob::new(mixed_keys(IN_PLACE_AUTO_MIN), 8);
        assert_eq!(large.partition_strategy(), PartitionStrategy::InPlace);
        large.run();
        let mut expect: Vec<u64> = mixed_keys(IN_PLACE_AUTO_MIN);
        expect.sort_unstable();
        assert_eq!(large.into_sorted(), expect);
    }

    #[test]
    fn aux_bytes_drop_to_the_offsets_table_in_place() {
        let keys = mixed_keys(2000);
        let mat = with_strategy(keys.clone(), PartitionStrategy::Materialized);
        let inp = with_strategy(keys, PartitionStrategy::InPlace);
        let table = (inp.partition_blocks() * inp.buckets()) as u64 * 8;
        assert_eq!(inp.aux_bytes(), table, "in-place: offsets table only");
        assert_eq!(
            mat.aux_bytes(),
            table + 2000 * 8,
            "materialized adds the n-slot bucket intermediate"
        );
        inp.run();
        let report = inp.shard_report();
        assert_eq!(report.strategy, PartitionStrategy::InPlace);
        assert_eq!(report.aux_bytes, table);
        assert!(
            report.moves >= 2000,
            "every element moves at least once through the fill"
        );
    }
}
