//! The sharded large-N sorting path: sample-sort splitters in front of
//! the paper's wait-free sort.
//!
//! The single-tree [`SortJob`] funnels every element through one pivot
//! tree, so at large N the root's cache line is the whole machine's
//! rendezvous point — exactly the regime where multi-level splitting
//! wins (Axtmann & Sanders, *Robust Massively Parallel Sorting*; see
//! PAPERS.md). A [`ShardedSortJob`] instead runs three wait-free
//! phases, each driven by the same Work Assignment Trees as the
//! single-tree path so the fault story is preserved at every
//! granularity:
//!
//! 1. **Partition** — `O(S log S)` keys are sampled at construction and
//!    sorted to pick `S - 1` splitters; workers then claim blocks of
//!    elements from a WAT and classify each element against the
//!    splitters (a binary search), publishing `shard_of[i]`. The stores
//!    are benign races: every claimant computes the same deterministic
//!    value.
//! 2. **Fill** — workers claim partition blocks from a second WAT and
//!    copy each element's index into its shard's contiguous range of
//!    the bucket array. Destinations are a pure function of the
//!    completed classification (block-major, original order within a
//!    block), so redone blocks rewrite identical values — and the
//!    within-shard order preserves the original index order, which is
//!    what makes the sharded permutation *identical* to the single-tree
//!    one, ties and all.
//! 3. **Shard sort** — workers claim whole shards from a third WAT and
//!    sort each one locally with the packed pivot tree, recycling one
//!    private [`SortArena`] across every shard they claim. The sorted
//!    ranks are published into the output permutation; concatenation in
//!    splitter order is free because each shard owns a contiguous rank
//!    range.
//!
//! **Fault story.** A worker that crashes mid-phase leaves its current
//! WAT leaf unmarked and survivors redo the whole unit — an element
//! block, a fill block, or an entire shard. The shard is the coarsest
//! redo unit in the crate, which is the deliberate trade: claim traffic
//! shrinks to `O(S)` for the longest phase, at the cost of redoing up
//! to one shard's sort per crash. A participant abandoned *inside* a
//! shard's inner sort signals the WAT through its `keep_going` before
//! the leaf is published, so a half-sorted shard is never marked
//! complete (both WAT flavors gate publication on a final consult).
//!
//! The splitter sample is taken at deterministic stride positions, so a
//! job — and therefore every chaos replay over it — is a pure function
//! of its `(keys, shards)` input. The cost is that adversarially
//! periodic inputs can skew shard sizes; skew hurts only balance, never
//! correctness, and [`crate::ShardReport::imbalance`] measures it.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crate::arena::SortArena;
use crate::job::{
    recommended_grain, NativeAllocation, Participation, RunToCompletion,
    DEFAULT_TRACKED_PARTICIPANTS,
};
use crate::lcwat::AtomicLcWat;
use crate::metrics::{Instrument, MetricSlot, NoInstrument, ShardReport, ShardStat};
use crate::wat::AtomicWat;
use crate::watchdog::SortPhase;

/// The shard count [`crate::WaitFreeSorter::sort_sharded`] picks for
/// `n` keys and a `workers`-thread cohort: `n / 8192`, but at least one
/// shard per worker, capped at 256 and at `n`.
///
/// The `n / 8192` target keeps each shard's pivot tree small enough
/// that its hot path stays in cache instead of chasing pointers across
/// a single tree of all `n` nodes; at least `workers` shards lets every
/// thread hold a distinct shard in the final phase; the 256 cap bounds
/// the splitter binary search and the per-worker `O(B·S)` fill
/// bookkeeping. Mirrors [`recommended_grain`], and like it the
/// constants are exercised by the E26 sweep rather than trusted.
pub fn recommended_shards(n: usize, workers: usize) -> usize {
    (n / 8192).max(workers.max(1)).clamp(1, 256).min(n.max(1))
}

/// Elements per partition block: the claim unit of the partition phase
/// and the work unit of the fill phase. Scales like the WAT grain
/// (about eight blocks per worker) but with a higher floor, since a
/// block is also the unit of fill-phase bookkeeping.
fn partition_grain(n: usize, workers: usize) -> usize {
    (n / (workers.max(1) * 8)).clamp(64, 4096).min(n)
}

/// Deterministic `O(S log S)` splitter sample: `S · (⌈log₂ S⌉ + 1)`
/// keys at stride positions, sorted, with every `m/S`-th picked as a
/// splitter.
fn sample_splitters<K: Ord + Clone>(keys: &[K], shards: usize) -> Vec<K> {
    if shards <= 1 {
        return Vec::new();
    }
    let n = keys.len();
    let oversample = (usize::BITS - (shards - 1).leading_zeros()) as usize + 1;
    let m = (shards * oversample).min(n);
    let mut sample: Vec<K> = (0..m).map(|j| keys[j * n / m].clone()).collect();
    sample.sort();
    (1..shards)
        .map(|j| sample[j * m / shards].clone())
        .collect()
}

/// Forwards an outer [`Participation`] into a shard's inner sort,
/// latching any abandonment so (a) the inner sort stops promptly and
/// (b) the outer shard WAT sees the signal at its publish gate and
/// leaves the half-sorted shard's leaf unmarked.
struct ForwardAbandon<'a, 'p, P: Participation> {
    outer: &'a RefCell<&'p mut P>,
    abandoned: &'a Cell<bool>,
}

impl<P: Participation> Participation for ForwardAbandon<'_, '_, P> {
    fn keep_going(&mut self) -> bool {
        if self.abandoned.get() {
            return false;
        }
        let ok = self.outer.borrow_mut().keep_going();
        if !ok {
            self.abandoned.set(true);
        }
        ok
    }
}

/// A wait-free *sharded* sort of `keys` in progress (or completed):
/// splitter partition, bucket fill, then one independent single-tree
/// sort per shard (see the module docs for the pipeline and fault
/// story).
///
/// Like [`SortJob`], any number of threads may call
/// [`ShardedSortJob::participate`] at any time, abandon at will, and
/// the sort completes as long as one participant keeps running. The
/// computed permutation is identical to the single-tree job's —
/// `(key, index)` order, so stable — which the differential suite in
/// `tests/sharded_parity.rs` pins.
///
/// Unlike [`SortJob`] there are no per-participant heartbeat slots: the
/// watchdog story for the sharded path rides on its completion gates
/// and on the WAT frontiers, not on per-thread epochs.
///
/// # Examples
///
/// ```
/// use wfsort_native::{RunToCompletion, ShardedSortJob};
///
/// let job = ShardedSortJob::new((0..500u64).rev().collect(), 8);
/// crossbeam::thread::scope(|s| {
///     s.spawn(|_| job.participate(&mut RunToCompletion));
///     s.spawn(|_| job.participate(&mut RunToCompletion));
/// })
/// .unwrap();
/// assert!(job.is_complete());
/// assert_eq!(job.into_sorted(), (0..500u64).collect::<Vec<_>>());
/// ```
///
/// [`SortJob`]: crate::SortJob
#[derive(Debug)]
pub struct ShardedSortJob<K: Ord> {
    keys: Vec<K>,
    /// `shards - 1` sorted splitter keys; element `i` belongs to shard
    /// `splitters.partition_point(|s| s <= keys[i])`, so equal keys
    /// always land in the same shard.
    splitters: Vec<K>,
    shards: usize,
    pgrain: usize,
    blocks: usize,
    allocation: NativeAllocation,
    partition_wat: AtomicWat,
    fill_wat: AtomicWat,
    shard_wat: AtomicWat,
    partition_lcwat: AtomicLcWat,
    fill_lcwat: AtomicLcWat,
    shard_lcwat: AtomicLcWat,
    /// `shard_of[i]` = shard of element `i` (0-based). Benign race:
    /// every writer stores the same deterministic value.
    shard_of: Vec<AtomicU32>,
    /// `bucket[d]` = 1-based element index occupying bucket slot `d`;
    /// shard `j` owns the contiguous slots `starts[j]..starts[j + 1]`,
    /// filled in original-index order (benign race, like `shard_of`).
    bucket: Vec<AtomicUsize>,
    /// `out_perm[r]` = 1-based element index with rank `r + 1` — the
    /// same contract as [`crate::SortJob`]'s permutation.
    out_perm: Vec<AtomicUsize>,
    /// Telemetry only: how many times each shard's sort closure was
    /// entered (redos and racing double claims included).
    shard_claims: Vec<AtomicU64>,
    participants: AtomicUsize,
}

impl<K: Ord + Clone> ShardedSortJob<K> {
    /// Creates a sharded job over `keys` with `shards` shards,
    /// deterministic WAT allocation, and work grains sized for
    /// [`DEFAULT_TRACKED_PARTICIPANTS`] workers.
    /// [`crate::SortJob::with_shards`] is the same constructor under
    /// the name the single-tree path uses.
    ///
    /// # Panics
    ///
    /// Panics if `keys` has fewer than 2 elements or `shards` is zero.
    pub fn new(keys: Vec<K>, shards: usize) -> Self {
        Self::with_workers(
            keys,
            NativeAllocation::Deterministic,
            DEFAULT_TRACKED_PARTICIPANTS,
            shards,
        )
    }

    /// Creates a sharded job with every knob explicit: the WAT flavor
    /// (`allocation`), the expected `workers` cohort (sizes the
    /// partition-block grain; correctness never depends on it), and the
    /// shard count.
    ///
    /// # Panics
    ///
    /// Panics if `keys` has fewer than 2 elements, or `workers` or
    /// `shards` is zero, or `shards` does not fit in a `u32`.
    pub fn with_workers(
        keys: Vec<K>,
        allocation: NativeAllocation,
        workers: usize,
        shards: usize,
    ) -> Self {
        let n = keys.len();
        assert!(n >= 2, "a sort job needs at least two keys");
        assert!(workers >= 1, "a sharded job needs at least one worker");
        assert!(shards >= 1, "a sharded job needs at least one shard");
        assert!(u32::try_from(shards).is_ok(), "shard ids are stored as u32");
        let splitters = sample_splitters(&keys, shards);
        let pgrain = partition_grain(n, workers);
        let blocks = n.div_ceil(pgrain);
        ShardedSortJob {
            splitters,
            shards,
            pgrain,
            blocks,
            allocation,
            partition_wat: AtomicWat::with_grain(n, pgrain),
            fill_wat: AtomicWat::new(blocks),
            shard_wat: AtomicWat::new(shards),
            partition_lcwat: AtomicLcWat::with_grain(n, pgrain),
            fill_lcwat: AtomicLcWat::new(blocks),
            shard_lcwat: AtomicLcWat::new(shards),
            shard_of: (0..n).map(|_| AtomicU32::new(0)).collect(),
            bucket: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            out_perm: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            shard_claims: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            participants: AtomicUsize::new(0),
            keys,
        }
    }

    /// Fallible [`ShardedSortJob::with_workers`]: returns `None` for
    /// every argument shape the panicking constructor rejects (fewer
    /// than 2 keys, zero workers or shards, shard ids past `u32`),
    /// handing `keys` back untouched so a service-facing caller can fall
    /// back to a sequential sort instead of unwinding. The panicking
    /// front-ends keep their documented contracts;
    /// [`crate::SortOptions`] and [`crate::service::SortService`] route
    /// degenerate inputs around the constructor entirely.
    pub fn try_with_workers(
        keys: Vec<K>,
        allocation: NativeAllocation,
        workers: usize,
        shards: usize,
    ) -> Result<Self, Vec<K>> {
        if keys.len() < 2 || workers == 0 || shards == 0 || u32::try_from(shards).is_err() {
            return Err(keys);
        }
        Ok(Self::with_workers(keys, allocation, workers, shards))
    }

    /// Runs all three phases as one participant until the sort is
    /// complete or `p` abandons. Wait-free with the same contract as
    /// [`crate::SortJob::participate`]: bounded work between
    /// `keep_going` checks, progress never depends on any other
    /// participant.
    pub fn participate(&self, p: &mut impl Participation) {
        self.participate_inner(p, &NoInstrument);
    }

    /// [`ShardedSortJob::participate`] recording per-worker telemetry
    /// into `slot`, including the inner per-shard sorts (their events
    /// land in the ordinary build/sum/place/scatter buckets).
    pub fn participate_instrumented(&self, p: &mut impl Participation, slot: &MetricSlot) {
        self.participate_inner(p, slot.counters());
    }

    /// Convenience: participate and never abandon.
    pub fn run(&self) {
        self.participate(&mut RunToCompletion);
    }

    pub(crate) fn participate_inner(&self, p: &mut impl Participation, ins: &impl Instrument) {
        let tid = self.participants.fetch_add(1, Ordering::Relaxed);
        let nthreads = (tid + 1).max(2);
        ins.enter_phase(SortPhase::Partition);
        self.partition_phase(tid, nthreads, p, ins);
        if !self.partition_done() {
            return;
        }
        ins.enter_phase(SortPhase::Fill);
        let starts = self.fill_phase(tid, nthreads, p, ins);
        if !self.fill_done() {
            return;
        }
        ins.enter_phase(SortPhase::ShardSort);
        self.shard_phase(tid, nthreads, &starts, p, ins);
    }

    /// Phase 1: classify every element against the splitters. One WAT
    /// item per element (so `partition.claims` counts elements,
    /// grain-independent like the single-tree phases), blocks of
    /// [`ShardedSortJob::partition_grain`] items per leaf.
    fn partition_phase(
        &self,
        tid: usize,
        nthreads: usize,
        p: &mut impl Participation,
        ins: &impl Instrument,
    ) {
        let classify = |i: usize| {
            let shard = self.shard_for(&self.keys[i]);
            self.shard_of[i].store(shard as u32, Ordering::Relaxed);
        };
        let keep_going = || {
            ins.checkpoint();
            p.keep_going()
        };
        match self.allocation {
            NativeAllocation::Deterministic => {
                self.partition_wat
                    .participate_with(tid, nthreads, classify, keep_going, ins);
            }
            NativeAllocation::Randomized => {
                self.partition_lcwat
                    .participate_with(tid as u64, classify, keep_going, ins);
            }
        }
    }

    /// Phase 2: write every element's index into its shard's bucket
    /// range, one partition block per WAT job. Returns the shard start
    /// offsets (`shards + 1` entries) for the shard phase — a pure
    /// function of the completed classification, so every worker
    /// computes the same values.
    fn fill_phase(
        &self,
        tid: usize,
        nthreads: usize,
        p: &mut impl Participation,
        ins: &impl Instrument,
    ) -> Vec<usize> {
        let (starts, offsets) = self.column_offsets();
        let s = self.shards;
        let fill_block = |blk: usize| {
            // A private cursor copy per invocation keeps redone blocks
            // idempotent: every rerun starts from the same offsets and
            // rewrites the same destinations.
            let mut next = offsets[blk * s..(blk + 1) * s].to_vec();
            for i in self.block_span(blk) {
                let shard = self.shard_of[i].load(Ordering::Relaxed) as usize;
                self.bucket[next[shard]].store(i + 1, Ordering::Relaxed);
                next[shard] += 1;
            }
        };
        let keep_going = || {
            ins.checkpoint();
            p.keep_going()
        };
        match self.allocation {
            NativeAllocation::Deterministic => {
                self.fill_wat
                    .participate_with(tid, nthreads, fill_block, keep_going, ins);
            }
            NativeAllocation::Randomized => {
                self.fill_lcwat
                    .participate_with(tid as u64, fill_block, keep_going, ins);
            }
        }
        starts
    }

    /// Phase 3: claim whole shards and sort each one with the packed
    /// pivot tree, recycling one private arena across claims.
    fn shard_phase(
        &self,
        tid: usize,
        nthreads: usize,
        starts: &[usize],
        p: &mut impl Participation,
        ins: &impl Instrument,
    ) {
        let abandoned = Cell::new(false);
        let outer = RefCell::new(p);
        let mut arena: SortArena<K> = SortArena::new();
        let mut shard_keys: Vec<K> = Vec::new();
        let sort_shard = |shard: usize| {
            self.shard_claims[shard].fetch_add(1, Ordering::Relaxed);
            if abandoned.get() {
                return;
            }
            let (lo, hi) = (starts[shard], starts[shard + 1]);
            match hi - lo {
                0 => {}
                1 => {
                    let element = self.bucket[lo].load(Ordering::Relaxed);
                    self.out_perm[lo].store(element, Ordering::Release);
                }
                len => {
                    shard_keys.clear();
                    shard_keys.extend((lo..hi).map(|slot| {
                        self.keys[self.bucket[slot].load(Ordering::Relaxed) - 1].clone()
                    }));
                    let job =
                        arena.prepare(&shard_keys, self.allocation, 1, recommended_grain(len, 1));
                    let mut inner = ForwardAbandon {
                        outer: &outer,
                        abandoned: &abandoned,
                    };
                    job.participate_inner(&mut inner, ins);
                    ins.enter_phase(SortPhase::ShardSort);
                    if abandoned.get() {
                        // Half-sorted: the publish gate below sees the
                        // same signal and leaves this shard's leaf
                        // unmarked for survivors.
                        return;
                    }
                    debug_assert!(job.is_complete());
                    // Within a shard the bucket preserves original index
                    // order, so the inner job's (key, local index) ties
                    // break exactly like the global (key, index) ties.
                    for (rank, local) in job.permutation().into_iter().enumerate() {
                        let element = self.bucket[lo + local - 1].load(Ordering::Relaxed);
                        self.out_perm[lo + rank].store(element, Ordering::Release);
                    }
                }
            }
        };
        let keep_going = || {
            ins.checkpoint();
            !abandoned.get() && outer.borrow_mut().keep_going()
        };
        match self.allocation {
            NativeAllocation::Deterministic => {
                self.shard_wat
                    .participate_with(tid, nthreads, sort_shard, keep_going, ins);
            }
            NativeAllocation::Randomized => {
                self.shard_lcwat
                    .participate_with(tid as u64, sort_shard, keep_going, ins);
            }
        }
    }

    /// The shard element `key` belongs to: the number of splitters at
    /// or below it, so equal keys are never separated.
    fn shard_for(&self, key: &K) -> usize {
        self.splitters.partition_point(|s| s <= key)
    }

    /// Shard start offsets and per-block destination offsets, both pure
    /// functions of the completed classification. `O(n + B·S)` per
    /// call; each participant pays it once, at fill-phase entry.
    fn column_offsets(&self) -> (Vec<usize>, Vec<usize>) {
        let s = self.shards;
        let mut offsets = vec![0usize; self.blocks * s];
        for i in 0..self.keys.len() {
            let shard = self.shard_of[i].load(Ordering::Relaxed) as usize;
            offsets[(i / self.pgrain) * s + shard] += 1;
        }
        let mut starts = vec![0usize; s + 1];
        for shard in 0..s {
            let total: usize = (0..self.blocks).map(|blk| offsets[blk * s + shard]).sum();
            starts[shard + 1] = starts[shard] + total;
        }
        // Convert per-block counts into absolute destination offsets.
        let mut running = starts[..s].to_vec();
        for blk in 0..self.blocks {
            for shard in 0..s {
                let count = offsets[blk * s + shard];
                offsets[blk * s + shard] = running[shard];
                running[shard] += count;
            }
        }
        (starts, offsets)
    }

    /// The element range of partition block `blk`.
    fn block_span(&self, blk: usize) -> std::ops::Range<usize> {
        let start = blk * self.pgrain;
        start..((start + self.pgrain).min(self.keys.len()))
    }
}

impl<K: Ord> ShardedSortJob<K> {
    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the job is empty (never true; `new` requires 2+ keys).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The shard count `S`.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Elements per partition block.
    pub fn partition_grain(&self) -> usize {
        self.pgrain
    }

    /// Partition block count `B` (the fill phase's job count).
    pub fn partition_blocks(&self) -> usize {
        self.blocks
    }

    /// Whether phase 1 (classification) is complete.
    fn partition_done(&self) -> bool {
        match self.allocation {
            NativeAllocation::Deterministic => self.partition_wat.all_done(),
            NativeAllocation::Randomized => self.partition_lcwat.all_done(),
        }
    }

    /// Whether phase 2 (bucket fill) is complete.
    fn fill_done(&self) -> bool {
        match self.allocation {
            NativeAllocation::Deterministic => self.fill_wat.all_done(),
            NativeAllocation::Randomized => self.fill_lcwat.all_done(),
        }
    }

    /// Whether the sorted permutation is fully computed.
    pub fn is_complete(&self) -> bool {
        match self.allocation {
            NativeAllocation::Deterministic => self.shard_wat.all_done(),
            NativeAllocation::Randomized => self.shard_lcwat.all_done(),
        }
    }

    /// The sorted permutation: entry `r` is the index (1-based) of the
    /// rank-`r + 1` element — the same contract as
    /// [`crate::SortJob::permutation`], and bit-identical to it for the
    /// same keys (pinned by the differential suite).
    ///
    /// # Panics
    ///
    /// Panics if the sort is not complete.
    pub fn permutation(&self) -> Vec<usize> {
        assert!(self.is_complete(), "sort not complete");
        self.out_perm
            .iter()
            .map(|slot| slot.load(Ordering::Acquire))
            .collect()
    }

    /// Consumes the job, returning the keys in sorted order.
    ///
    /// # Panics
    ///
    /// Panics if the sort is not complete.
    pub fn into_sorted(self) -> Vec<K> {
        let perm = self.permutation();
        let mut slots: Vec<Option<K>> = self.keys.into_iter().map(Some).collect();
        perm.into_iter()
            .map(|i| slots[i - 1].take().expect("permutation is a bijection"))
            .collect()
    }

    /// Writes the keys in sorted order into `out` (cleared first),
    /// leaving the job intact.
    ///
    /// # Panics
    ///
    /// Panics if the sort is not complete.
    pub fn sorted_into(&self, out: &mut Vec<K>)
    where
        K: Clone,
    {
        assert!(self.is_complete(), "sort not complete");
        out.clear();
        out.extend(
            self.out_perm
                .iter()
                .map(|slot| self.keys[slot.load(Ordering::Acquire) - 1].clone()),
        );
    }

    /// Per-shard sizes and claim counts for the completed run — the
    /// payload [`crate::WaitFreeSorter::sort_sharded_with_report`]
    /// attaches to its [`crate::SortReport`].
    ///
    /// # Panics
    ///
    /// Panics if the sort is not complete (sizes are only meaningful
    /// once classification has finished).
    pub fn shard_report(&self) -> ShardReport {
        assert!(self.is_complete(), "sort not complete");
        let mut per_shard = vec![ShardStat::default(); self.shards];
        for slot in &self.shard_of {
            per_shard[slot.load(Ordering::Relaxed) as usize].size += 1;
        }
        for (shard, stat) in per_shard.iter_mut().enumerate() {
            stat.claims = self.shard_claims[shard].load(Ordering::Relaxed);
        }
        ShardReport {
            shards: self.shards,
            partition_blocks: self.blocks,
            partition_grain: self.pgrain,
            per_shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::QuitAfter;

    fn mixed_keys(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 2654435761) % 1013).collect()
    }

    #[test]
    fn single_participant_sorts_across_shard_counts() {
        for shards in [1, 2, 8, 64] {
            let keys = mixed_keys(500);
            let mut expect = keys.clone();
            expect.sort_unstable();
            let job = ShardedSortJob::new(keys, shards);
            job.run();
            assert!(job.is_complete());
            assert_eq!(job.into_sorted(), expect, "shards {shards}");
        }
    }

    #[test]
    fn permutation_matches_single_tree_job_exactly() {
        // Duplicate-heavy keys: the tie-break order is the hard part.
        let keys: Vec<u64> = (0..600).map(|i| (i * 7) % 13).collect();
        let single = crate::SortJob::new(keys.clone());
        single.run();
        for shards in [1, 2, 8, 64] {
            let sharded = ShardedSortJob::new(keys.clone(), shards);
            sharded.run();
            assert_eq!(
                sharded.permutation(),
                single.permutation(),
                "shards {shards}"
            );
        }
    }

    #[test]
    fn randomized_allocation_sorts() {
        let keys = mixed_keys(800);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let job = ShardedSortJob::with_workers(keys, NativeAllocation::Randomized, 2, 8);
        crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                let job = &job;
                s.spawn(move |_| job.run());
            }
        })
        .unwrap();
        assert_eq!(job.into_sorted(), expect);
    }

    #[test]
    fn quitter_then_late_joiner_completes() {
        for allocation in [
            NativeAllocation::Deterministic,
            NativeAllocation::Randomized,
        ] {
            // Sweep the abandonment point across the whole run so every
            // phase boundary — including mid-inner-sort — is hit.
            for budget in (1..200).step_by(13) {
                let keys = mixed_keys(300);
                let mut expect = keys.clone();
                expect.sort_unstable();
                let job = ShardedSortJob::with_workers(keys, allocation, 2, 8);
                job.participate(&mut QuitAfter(budget));
                job.run();
                assert!(job.is_complete());
                assert_eq!(job.into_sorted(), expect, "{allocation:?} budget {budget}");
            }
        }
    }

    #[test]
    fn empty_and_singleton_shards_are_harmless() {
        // All keys equal: every element lands in one shard, the rest
        // stay empty.
        let keys = vec![7u64; 100];
        let job = ShardedSortJob::new(keys.clone(), 16);
        job.run();
        assert_eq!(
            job.shard_report().per_shard.iter().map(|s| s.size).max(),
            Some(100)
        );
        assert_eq!(job.into_sorted(), keys);
    }

    #[test]
    fn shard_report_counts_sizes_and_claims() {
        let keys = mixed_keys(2000);
        let job = ShardedSortJob::new(keys, 8);
        job.run();
        let report = job.shard_report();
        assert_eq!(report.shards, 8);
        assert_eq!(report.per_shard.len(), 8);
        assert_eq!(report.per_shard.iter().map(|s| s.size).sum::<usize>(), 2000);
        // A lone crash-free worker claims each shard exactly once.
        assert!(report.per_shard.iter().all(|s| s.claims == 1));
        assert!(report.imbalance() >= 1.0);
        assert_eq!(report.partition_blocks, job.partition_blocks());
        assert_eq!(report.partition_grain, job.partition_grain());
    }

    #[test]
    fn recommended_shards_scales_and_clamps() {
        assert_eq!(recommended_shards(100, 1), 1);
        assert_eq!(recommended_shards(100, 4), 4);
        assert_eq!(recommended_shards(100_000, 4), 12);
        assert_eq!(recommended_shards(10_000_000, 4), 256);
        assert_eq!(recommended_shards(3, 64), 3, "never more shards than keys");
        assert_eq!(recommended_shards(0, 4), 1);
    }

    #[test]
    fn splitters_are_sorted_and_keep_duplicates_together() {
        let keys: Vec<u64> = (0..1000).map(|i| i % 10).collect();
        let job = ShardedSortJob::new(keys, 32);
        assert!(job.splitters.windows(2).all(|w| w[0] <= w[1]));
        job.run();
        let report = job.shard_report();
        // Ten distinct values can populate at most ten shards.
        assert!(report.per_shard.iter().filter(|s| s.size > 0).count() <= 10);
    }

    #[test]
    #[should_panic(expected = "at least two keys")]
    fn rejects_tiny_input() {
        ShardedSortJob::new(vec![1], 4);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn rejects_zero_shards() {
        ShardedSortJob::new(vec![2, 1], 0);
    }

    #[test]
    #[should_panic(expected = "sort not complete")]
    fn permutation_before_completion_panics() {
        ShardedSortJob::new(vec![2, 1], 2).permutation();
    }

    #[test]
    fn try_with_workers_hands_back_rejected_keys() {
        let det = NativeAllocation::Deterministic;
        // Every shape the panicking constructor rejects comes back as
        // Err with the keys intact for a sequential fallback.
        match ShardedSortJob::try_with_workers(vec![1u64], det, 2, 4) {
            Err(keys) => assert_eq!(keys, vec![1]),
            Ok(_) => panic!("tiny input must be rejected"),
        }
        assert!(ShardedSortJob::try_with_workers(vec![2u64, 1], det, 0, 4).is_err());
        assert!(ShardedSortJob::try_with_workers(vec![2u64, 1], det, 2, 0).is_err());
        let job = ShardedSortJob::try_with_workers(vec![3u64, 1, 2], det, 2, 2)
            .expect("valid shape constructs");
        job.run();
        assert_eq!(job.into_sorted(), vec![1, 2, 3]);
    }
}
