//! The Work Assignment Tree on native atomics.
//!
//! Same structure and algorithm as the simulator's [`wat`] crate (Figure
//! 1 of the paper / Algorithm X of Buss et al.), but each node is an
//! `AtomicUsize` and `next_element` is an ordinary function a thread runs
//! to completion — it is wait-free, so running it inline is fine.
//!
//! [`wat`]: https://crates.io/crates/wat

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::metrics::{Instrument, NoInstrument};

const NOT_DONE: usize = 0;
const DONE: usize = 1;

/// Outcome of asking the WAT for more work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Assignment {
    /// Run this job (a leaf's work). The job may already have been
    /// executed by another thread — leaf work must be idempotent.
    Job(usize),
    /// An internal bookkeeping node was claimed; call
    /// [`AtomicWat::next_after`] again with it after "completing" it
    /// (no user work attached).
    Internal(usize),
    /// Every job is complete.
    AllDone,
}

/// A wait-free work-assignment tree over `jobs` jobs for native threads.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use wfsort_native::AtomicWat;
///
/// let wat = AtomicWat::new(100);
/// let done: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
/// crossbeam::thread::scope(|s| {
///     for t in 0..4 {
///         let (wat, done) = (&wat, &done);
///         s.spawn(move |_| {
///             wat.participate(t, 4, |job| {
///                 done[job].fetch_add(1, Ordering::Relaxed);
///             }, || true);
///         });
///     }
/// }).unwrap();
/// assert!(wat.all_done());
/// assert!(done.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
/// ```
#[derive(Debug)]
pub struct AtomicWat {
    nodes: Vec<AtomicUsize>,
    leaves: usize,
    jobs: usize,
}

impl AtomicWat {
    /// Creates a WAT covering `jobs` jobs (leaf count rounded up to a
    /// power of two; padding leaves carry no work).
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn new(jobs: usize) -> Self {
        assert!(jobs > 0, "a WAT needs at least one job");
        let leaves = jobs.next_power_of_two();
        AtomicWat {
            nodes: (0..2 * leaves)
                .map(|_| AtomicUsize::new(NOT_DONE))
                .collect(),
            leaves,
            jobs,
        }
    }

    /// Number of real jobs.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The starting node for thread `tid` of `nthreads` (Figure 2's
    /// `leaf number N * PID / P`).
    pub fn initial_node(&self, tid: usize, nthreads: usize) -> usize {
        debug_assert!(nthreads > 0);
        self.leaves + (self.leaves * tid / nthreads)
    }

    /// The job at `node`, if `node` is a leaf carrying real work.
    pub fn job_at(&self, node: usize) -> Option<usize> {
        if node >= self.leaves && node - self.leaves < self.jobs {
            Some(node - self.leaves)
        } else {
            None
        }
    }

    /// Whether all jobs are complete.
    pub fn all_done(&self) -> bool {
        self.nodes[1].load(Ordering::Acquire) == DONE
    }

    /// Number of jobs whose leaves are marked complete — the progress
    /// frontier a watchdog reads. `O(jobs)`: diagnostics only, not for
    /// the sort's hot path.
    pub fn done_jobs(&self) -> usize {
        if self.all_done() {
            return self.jobs;
        }
        (0..self.jobs)
            .filter(|j| self.nodes[self.leaves + j].load(Ordering::Acquire) == DONE)
            .count()
    }

    /// Marks `node` complete and finds the next assignment: the
    /// `next_element` routine of Figure 1. Wait-free: `O(log jobs)`
    /// atomic operations per call.
    pub fn next_after(&self, mut node: usize) -> Assignment {
        self.nodes[node].store(DONE, Ordering::Release);
        // Climb while the sibling subtree is complete.
        loop {
            if node == 1 {
                return Assignment::AllDone;
            }
            let sibling = node ^ 1;
            if self.nodes[sibling].load(Ordering::Acquire) == DONE {
                let parent = node / 2;
                self.nodes[parent].store(DONE, Ordering::Release);
                node = parent;
            } else {
                node = sibling;
                break;
            }
        }
        // Descend into the unfinished subtree.
        while node < self.leaves {
            let left = 2 * node;
            let right = 2 * node + 1;
            if self.nodes[left].load(Ordering::Acquire) != DONE {
                node = left;
            } else if self.nodes[right].load(Ordering::Acquire) != DONE {
                node = right;
            } else {
                // Outdated info: both children done, node not yet marked.
                return Assignment::Internal(node);
            }
        }
        match self.job_at(node) {
            Some(job) => Assignment::Job(job),
            None => Assignment::Internal(node), // padding leaf: mark & move on
        }
    }

    /// Runs `work(job)` for every job, as one participant: the skeleton
    /// algorithm of Figure 2. Safe to call from any number of threads;
    /// returns when all jobs are complete. `keep_going()` is consulted
    /// between assignments — returning `false` abandons participation
    /// (simulating a crash; other participants finish the work).
    pub fn participate(
        &self,
        tid: usize,
        nthreads: usize,
        work: impl FnMut(usize),
        keep_going: impl FnMut() -> bool,
    ) {
        self.participate_with(tid, nthreads, work, keep_going, &NoInstrument);
    }

    /// [`AtomicWat::participate`] with a metrics sink: `ins` sees one
    /// `claim` per job executed, one `probe` per bookkeeping step
    /// (internal hop or padding leaf), and `own_assignment_done` once the
    /// thread's initial Figure-2 assignment is behind it — everything
    /// after that is helping.
    pub(crate) fn participate_with(
        &self,
        tid: usize,
        nthreads: usize,
        mut work: impl FnMut(usize),
        mut keep_going: impl FnMut() -> bool,
        ins: &impl Instrument,
    ) {
        let mut node = self.initial_node(tid, nthreads);
        if let Some(job) = self.job_at(node) {
            ins.claim();
            work(job);
        }
        ins.own_assignment_done();
        loop {
            if !keep_going() {
                return;
            }
            match self.next_after(node) {
                Assignment::AllDone => return,
                Assignment::Job(job) => {
                    ins.claim();
                    work(job);
                    node = self.leaves + job;
                }
                Assignment::Internal(n) => {
                    ins.probe();
                    node = n;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    #[test]
    fn single_thread_covers_all_jobs() {
        let wat = AtomicWat::new(13);
        let counts: Vec<Counter> = (0..13).map(|_| Counter::new(0)).collect();
        wat.participate(
            0,
            1,
            |j| {
                counts[j].fetch_add(1, Ordering::Relaxed);
            },
            || true,
        );
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    fn many_threads_cover_all_jobs() {
        let wat = AtomicWat::new(100);
        let counts: Vec<Counter> = (0..100).map(|_| Counter::new(0)).collect();
        crossbeam::thread::scope(|s| {
            for t in 0..8 {
                let wat = &wat;
                let counts = &counts;
                s.spawn(move |_| {
                    wat.participate(
                        t,
                        8,
                        |j| {
                            counts[j].fetch_add(1, Ordering::Relaxed);
                        },
                        || true,
                    );
                });
            }
        })
        .unwrap();
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    fn deserters_do_not_lose_work() {
        let wat = AtomicWat::new(64);
        let counts: Vec<Counter> = (0..64).map(|_| Counter::new(0)).collect();
        crossbeam::thread::scope(|s| {
            // Threads 1..6 quit after 3 assignments; thread 0 persists.
            for t in 1..6 {
                let wat = &wat;
                let counts = &counts;
                s.spawn(move |_| {
                    let mut budget = 3;
                    wat.participate(
                        t,
                        6,
                        |j| {
                            counts[j].fetch_add(1, Ordering::Relaxed);
                        },
                        move || {
                            budget -= 1;
                            budget > 0
                        },
                    );
                });
            }
            let wat = &wat;
            let counts = &counts;
            s.spawn(move |_| {
                wat.participate(
                    0,
                    6,
                    |j| {
                        counts[j].fetch_add(1, Ordering::Relaxed);
                    },
                    || true,
                );
            });
        })
        .unwrap();
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    fn initial_nodes_spread_threads() {
        let wat = AtomicWat::new(16);
        let n0 = wat.initial_node(0, 4);
        let n1 = wat.initial_node(1, 4);
        let n3 = wat.initial_node(3, 4);
        assert_eq!(n0, 16);
        assert_eq!(n1, 20);
        assert_eq!(n3, 28);
    }

    #[test]
    fn job_at_excludes_padding() {
        let wat = AtomicWat::new(5); // 8 leaves, 3 padding
        assert_eq!(wat.job_at(8), Some(0));
        assert_eq!(wat.job_at(12), Some(4));
        assert_eq!(wat.job_at(13), None);
        assert_eq!(wat.job_at(1), None);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_jobs_rejected() {
        AtomicWat::new(0);
    }
}
