//! The Work Assignment Tree on native atomics.
//!
//! Same structure and algorithm as the simulator's [`wat`] crate (Figure
//! 1 of the paper / Algorithm X of Buss et al.), but each node is an
//! `AtomicUsize` and `next_element` is an ordinary function a thread runs
//! to completion — it is wait-free, so running it inline is fine.
//!
//! # Grain
//!
//! A leaf may cover a *block* of consecutive items rather than a single
//! one ([`AtomicWat::with_grain`]): the tree then has `ceil(items /
//! grain)` leaves, shrinking the structure — and the claim/climb traffic
//! through it — by the grain factor, the binary-forking-model lever that
//! turns optimal span into optimal wall-clock (PAPERS.md). Executing a
//! block is a loop of single-item executions, so the idempotent-leaf
//! contract is untouched: a crashed participant leaves a partially-run
//! block's leaf unmarked and survivors simply redo the whole block.
//! `with_grain(items, 1)` is bit-identical to `new(items)` — same tree,
//! same assignment order, same checkpoint cadence.
//!
//! [`wat`]: https://crates.io/crates/wat

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::metrics::{Instrument, NoInstrument};

const NOT_DONE: usize = 0;
const DONE: usize = 1;

/// Outcome of asking the WAT for more work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Assignment {
    /// Run this job (a leaf's block of items). The job may already have
    /// been executed by another thread — leaf work must be idempotent.
    Job(usize),
    /// An internal bookkeeping node was claimed; call
    /// [`AtomicWat::next_after`] again with it after "completing" it
    /// (no user work attached).
    Internal(usize),
    /// Every job is complete.
    AllDone,
}

/// A wait-free work-assignment tree over `items` items for native
/// threads, handing out blocks of `grain` consecutive items per leaf.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use wfsort_native::AtomicWat;
///
/// let wat = AtomicWat::new(100);
/// let done: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
/// crossbeam::thread::scope(|s| {
///     for t in 0..4 {
///         let (wat, done) = (&wat, &done);
///         s.spawn(move |_| {
///             wat.participate(t, 4, |item| {
///                 done[item].fetch_add(1, Ordering::Relaxed);
///             }, || true);
///         });
///     }
/// }).unwrap();
/// assert!(wat.all_done());
/// assert!(done.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
/// ```
#[derive(Debug)]
pub struct AtomicWat {
    nodes: Vec<AtomicUsize>,
    leaves: usize,
    jobs: usize,
    items: usize,
    grain: usize,
}

/// `ceil(items / grain)` leaf jobs cover `items` items.
fn job_count(items: usize, grain: usize) -> usize {
    items.div_ceil(grain)
}

impl AtomicWat {
    /// Creates a WAT with one item per leaf — [`AtomicWat::with_grain`]
    /// at grain 1 (leaf count rounded up to a power of two; padding
    /// leaves carry no work).
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero.
    pub fn new(items: usize) -> Self {
        Self::with_grain(items, 1)
    }

    /// Creates a WAT covering `items` items with `grain` items per leaf
    /// block (the last block may be short).
    ///
    /// # Panics
    ///
    /// Panics if `items` or `grain` is zero.
    pub fn with_grain(items: usize, grain: usize) -> Self {
        assert!(items > 0, "a WAT needs at least one job");
        assert!(grain > 0, "a WAT block needs at least one item");
        let jobs = job_count(items, grain);
        let leaves = jobs.next_power_of_two();
        AtomicWat {
            nodes: (0..2 * leaves)
                .map(|_| AtomicUsize::new(NOT_DONE))
                .collect(),
            leaves,
            jobs,
            items,
            grain,
        }
    }

    /// Number of real jobs (leaf blocks).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Number of items covered (`jobs * grain`, minus the short tail).
    pub fn items(&self) -> usize {
        self.items
    }

    /// Items per leaf block.
    pub fn grain(&self) -> usize {
        self.grain
    }

    /// Resizes to cover `items` items at `grain`, zeroing all node
    /// states and reusing the node vector's allocation. Requires
    /// exclusive access — the arena calls it between sorts.
    ///
    /// # Panics
    ///
    /// Panics if `items` or `grain` is zero.
    pub(crate) fn reset(&mut self, items: usize, grain: usize) {
        assert!(items > 0, "a WAT needs at least one job");
        assert!(grain > 0, "a WAT block needs at least one item");
        self.jobs = job_count(items, grain);
        self.items = items;
        self.grain = grain;
        self.leaves = self.jobs.next_power_of_two();
        let wanted = 2 * self.leaves;
        self.nodes.truncate(wanted);
        for node in &mut self.nodes {
            *node.get_mut() = NOT_DONE;
        }
        self.nodes
            .resize_with(wanted, || AtomicUsize::new(NOT_DONE));
    }

    /// The starting node for thread `tid` of `nthreads` (Figure 2's
    /// `leaf number N * PID / P`).
    pub fn initial_node(&self, tid: usize, nthreads: usize) -> usize {
        debug_assert!(nthreads > 0);
        self.leaves + (self.leaves * tid / nthreads)
    }

    /// The job at `node`, if `node` is a leaf carrying real work.
    pub fn job_at(&self, node: usize) -> Option<usize> {
        if node >= self.leaves && node - self.leaves < self.jobs {
            Some(node - self.leaves)
        } else {
            None
        }
    }

    /// The item range job `job` covers: `grain` consecutive items,
    /// fewer for the last block.
    pub fn block_range(&self, job: usize) -> std::ops::Range<usize> {
        let start = job * self.grain;
        start..((start + self.grain).min(self.items))
    }

    /// Whether all jobs are complete.
    pub fn all_done(&self) -> bool {
        self.nodes[1].load(Ordering::Acquire) == DONE
    }

    /// Number of jobs whose leaves are marked complete — the progress
    /// frontier a watchdog reads. `O(jobs)`: diagnostics only, not for
    /// the sort's hot path.
    pub fn done_jobs(&self) -> usize {
        if self.all_done() {
            return self.jobs;
        }
        (0..self.jobs)
            .filter(|j| self.nodes[self.leaves + j].load(Ordering::Acquire) == DONE)
            .count()
    }

    /// Marks `node` complete and finds the next assignment: the
    /// `next_element` routine of Figure 1. Wait-free: `O(log jobs)`
    /// atomic operations per call.
    pub fn next_after(&self, mut node: usize) -> Assignment {
        self.nodes[node].store(DONE, Ordering::Release);
        // Climb while the sibling subtree is complete.
        loop {
            if node == 1 {
                return Assignment::AllDone;
            }
            let sibling = node ^ 1;
            if self.nodes[sibling].load(Ordering::Acquire) == DONE {
                let parent = node / 2;
                self.nodes[parent].store(DONE, Ordering::Release);
                node = parent;
            } else {
                node = sibling;
                break;
            }
        }
        // Descend into the unfinished subtree.
        while node < self.leaves {
            let left = 2 * node;
            let right = 2 * node + 1;
            if self.nodes[left].load(Ordering::Acquire) != DONE {
                node = left;
            } else if self.nodes[right].load(Ordering::Acquire) != DONE {
                node = right;
            } else {
                // Outdated info: both children done, node not yet marked.
                return Assignment::Internal(node);
            }
        }
        match self.job_at(node) {
            Some(job) => Assignment::Job(job),
            None => Assignment::Internal(node), // padding leaf: mark & move on
        }
    }

    /// Runs the items of block `job`, consulting `keep_going` between
    /// items (so a block is still bounded work per checkpoint at any
    /// grain). Returns `false` if abandoned mid-block — the caller must
    /// then *not* mark the leaf, leaving the whole block for survivors
    /// (idempotent redo).
    fn run_block(
        &self,
        job: usize,
        work: &mut impl FnMut(usize),
        keep_going: &mut impl FnMut() -> bool,
        ins: &impl Instrument,
    ) -> bool {
        ins.block_claim();
        let range = self.block_range(job);
        let start = range.start;
        for item in range {
            if item > start && !keep_going() {
                return false;
            }
            ins.claim();
            work(item);
        }
        true
    }

    /// Runs `work(item)` for every item, as one participant: the skeleton
    /// algorithm of Figure 2. Safe to call from any number of threads;
    /// returns when all jobs are complete. `keep_going()` is consulted
    /// between assignments and between a block's items — returning
    /// `false` abandons participation (simulating a crash; other
    /// participants finish the work).
    pub fn participate(
        &self,
        tid: usize,
        nthreads: usize,
        work: impl FnMut(usize),
        keep_going: impl FnMut() -> bool,
    ) {
        self.participate_with(tid, nthreads, work, keep_going, &NoInstrument);
    }

    /// [`AtomicWat::participate`] with a metrics sink: `ins` sees one
    /// `block_claim` per leaf block entered, one `claim` per item
    /// executed (so item-level counts stay grain-independent), one
    /// `probe` per bookkeeping step (internal hop or padding leaf), and
    /// `own_assignment_done` once the thread's initial Figure-2
    /// assignment is behind it — everything after that is helping.
    pub(crate) fn participate_with(
        &self,
        tid: usize,
        nthreads: usize,
        mut work: impl FnMut(usize),
        mut keep_going: impl FnMut() -> bool,
        ins: &impl Instrument,
    ) {
        let mut node = self.initial_node(tid, nthreads);
        if let Some(job) = self.job_at(node) {
            if !self.run_block(job, &mut work, &mut keep_going, ins) {
                return;
            }
        }
        ins.own_assignment_done();
        loop {
            if !keep_going() {
                return;
            }
            match self.next_after(node) {
                Assignment::AllDone => return,
                Assignment::Job(job) => {
                    if !self.run_block(job, &mut work, &mut keep_going, ins) {
                        return;
                    }
                    node = self.leaves + job;
                }
                Assignment::Internal(n) => {
                    ins.probe();
                    node = n;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    #[test]
    fn single_thread_covers_all_jobs() {
        let wat = AtomicWat::new(13);
        let counts: Vec<Counter> = (0..13).map(|_| Counter::new(0)).collect();
        wat.participate(
            0,
            1,
            |j| {
                counts[j].fetch_add(1, Ordering::Relaxed);
            },
            || true,
        );
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    fn many_threads_cover_all_jobs() {
        let wat = AtomicWat::new(100);
        let counts: Vec<Counter> = (0..100).map(|_| Counter::new(0)).collect();
        crossbeam::thread::scope(|s| {
            for t in 0..8 {
                let wat = &wat;
                let counts = &counts;
                s.spawn(move |_| {
                    wat.participate(
                        t,
                        8,
                        |j| {
                            counts[j].fetch_add(1, Ordering::Relaxed);
                        },
                        || true,
                    );
                });
            }
        })
        .unwrap();
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    fn deserters_do_not_lose_work() {
        let wat = AtomicWat::new(64);
        let counts: Vec<Counter> = (0..64).map(|_| Counter::new(0)).collect();
        crossbeam::thread::scope(|s| {
            // Threads 1..6 quit after 3 assignments; thread 0 persists.
            for t in 1..6 {
                let wat = &wat;
                let counts = &counts;
                s.spawn(move |_| {
                    let mut budget = 3;
                    wat.participate(
                        t,
                        6,
                        |j| {
                            counts[j].fetch_add(1, Ordering::Relaxed);
                        },
                        move || {
                            budget -= 1;
                            budget > 0
                        },
                    );
                });
            }
            let wat = &wat;
            let counts = &counts;
            s.spawn(move |_| {
                wat.participate(
                    0,
                    6,
                    |j| {
                        counts[j].fetch_add(1, Ordering::Relaxed);
                    },
                    || true,
                );
            });
        })
        .unwrap();
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    fn initial_nodes_spread_threads() {
        let wat = AtomicWat::new(16);
        let n0 = wat.initial_node(0, 4);
        let n1 = wat.initial_node(1, 4);
        let n3 = wat.initial_node(3, 4);
        assert_eq!(n0, 16);
        assert_eq!(n1, 20);
        assert_eq!(n3, 28);
    }

    #[test]
    fn job_at_excludes_padding() {
        let wat = AtomicWat::new(5); // 8 leaves, 3 padding
        assert_eq!(wat.job_at(8), Some(0));
        assert_eq!(wat.job_at(12), Some(4));
        assert_eq!(wat.job_at(13), None);
        assert_eq!(wat.job_at(1), None);
    }

    #[test]
    fn grain_shrinks_the_tree() {
        let wat = AtomicWat::with_grain(100, 8);
        assert_eq!(wat.jobs(), 13);
        assert_eq!(wat.items(), 100);
        assert_eq!(wat.grain(), 8);
        assert_eq!(wat.block_range(0), 0..8);
        assert_eq!(wat.block_range(12), 96..100, "tail block is short");
    }

    #[test]
    fn grained_single_thread_covers_all_items_in_order() {
        for grain in [1, 2, 7, 64] {
            let wat = AtomicWat::with_grain(100, grain);
            let mut seen = Vec::new();
            wat.participate(0, 1, |item| seen.push(item), || true);
            assert!(wat.all_done());
            // A lone worker starting at the leftmost leaf sweeps blocks
            // left to right, so items arrive in 0..items order at every
            // grain — the property the descent-order parity pins rely on.
            assert_eq!(seen, (0..100).collect::<Vec<_>>(), "grain {grain}");
        }
    }

    #[test]
    fn grained_many_threads_cover_all_items() {
        let wat = AtomicWat::with_grain(257, 16);
        let counts: Vec<Counter> = (0..257).map(|_| Counter::new(0)).collect();
        crossbeam::thread::scope(|s| {
            for t in 0..8 {
                let (wat, counts) = (&wat, &counts);
                s.spawn(move |_| {
                    wat.participate(
                        t,
                        8,
                        |item| {
                            counts[item].fetch_add(1, Ordering::Relaxed);
                        },
                        || true,
                    );
                });
            }
        })
        .unwrap();
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    fn mid_block_deserter_leaves_block_for_survivors() {
        let wat = AtomicWat::with_grain(32, 8);
        let counts: Vec<Counter> = (0..32).map(|_| Counter::new(0)).collect();
        // Abandon after 3 checks: mid-block, leaving the leaf unmarked.
        let mut budget = 3;
        wat.participate(
            0,
            1,
            |item| {
                counts[item].fetch_add(1, Ordering::Relaxed);
            },
            move || {
                budget -= 1;
                budget > 0
            },
        );
        assert!(!wat.all_done());
        // A survivor redoes the partial block and finishes everything.
        wat.participate(
            0,
            1,
            |item| {
                counts[item].fetch_add(1, Ordering::Relaxed);
            },
            || true,
        );
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    fn reset_reuses_nodes_for_new_shape() {
        let mut wat = AtomicWat::with_grain(64, 4);
        wat.participate(0, 1, |_| {}, || true);
        assert!(wat.all_done());
        wat.reset(40, 8);
        assert!(!wat.all_done());
        assert_eq!(wat.jobs(), 5);
        assert_eq!(wat.grain(), 8);
        let counts: Vec<Counter> = (0..40).map(|_| Counter::new(0)).collect();
        wat.participate(
            0,
            1,
            |item| {
                counts[item].fetch_add(1, Ordering::Relaxed);
            },
            || true,
        );
        assert!(wat.all_done());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) >= 1));
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_jobs_rejected() {
        AtomicWat::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_grain_rejected() {
        AtomicWat::with_grain(5, 0);
    }
}
