//! High-level sorting front-ends over [`SortJob`].
//!
//! Every named `sort_*` entry point on [`WaitFreeSorter`] is a thin
//! wrapper over one configurable pipeline: a [`SortOptions`] builder
//! (threads, allocation, shards, grain, chaos plan, deadline, telemetry)
//! whose [`SortOptions::run`] drives a single cohort spawn/finish path
//! for both the single-tree and sharded jobs. The wrappers exist so no
//! caller breaks and so each scenario keeps its documented contract; new
//! combinations (say, a sharded sort under a deadline with a report)
//! need no new method — compose them on the builder.
//!
//! The one front-end that does not flow through the builder is
//! [`sort_with_churn`]: its reap-then-respawn choreography spawns a
//! *second* cohort mid-run, a staged schedule the one-shot builder
//! deliberately does not model.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::arena::SortArena;
use crate::fault::{ChaosParticipation, ChaosPlan, SharedBudget, WithDeadline};
use crate::job::{recommended_grain, NativeAllocation, Participation, RunToCompletion, SortJob};
use crate::metrics::{MetricSlot, ShardReport, SortReport};
use crate::shard::{
    recommended_shards, ClassifyKernel, PartitionStrategy, ShardConfig, ShardedSortJob,
};
use crate::tree::PivotTree;

/// A multi-threaded wait-free sorter.
///
/// # Examples
///
/// ```
/// use wfsort_native::WaitFreeSorter;
///
/// let sorter = WaitFreeSorter::new(4);
/// assert_eq!(sorter.sort(&[3u64, 1, 2]), vec![1, 2, 3]);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct WaitFreeSorter {
    threads: usize,
}

/// How many shards [`SortOptions::run`] splits the input into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ShardMode {
    /// One pivot tree over the whole input (the default).
    SingleTree,
    /// The sharded path with [`recommended_shards`] shards.
    Auto,
    /// The sharded path with an explicit shard count (>= 1).
    Count(usize),
}

/// One builder for every way this crate can run a sort: thread count,
/// allocation strategy, shard mode, WAT grain, a scripted [`ChaosPlan`],
/// a helper deadline, and telemetry — all driving the same cohort
/// spawn/finish path. The named [`WaitFreeSorter`] front-ends are thin
/// wrappers over this type.
///
/// Unlike the raw job constructors, the builder is total over its
/// inputs: inputs shorter than two keys fall back to a sequential copy
/// (there is nothing to parallelize), and a shard count of zero means
/// "pick [`recommended_shards`] for me" — no degenerate combination
/// panics.
///
/// # Examples
///
/// ```
/// use wfsort_native::SortOptions;
///
/// let keys: Vec<u64> = (0..10_000).rev().collect();
/// let outcome = SortOptions::new()
///     .threads(4)
///     .shards(16)
///     .report(true)
///     .run(&keys);
/// assert!(outcome.sorted.windows(2).all(|w| w[0] <= w[1]));
/// assert_eq!(outcome.report.unwrap().shard.unwrap().shards, 16);
///
/// // Degenerate inputs that panic the raw job constructors sort fine
/// // through the builder: tiny inputs fall back to a sequential copy,
/// // and `shards(0)` means "choose for me".
/// let tiny = SortOptions::new().threads(2).shards(0).run(&[7u64]);
/// assert_eq!(tiny.sorted, vec![7]);
/// ```
#[derive(Clone, Debug)]
pub struct SortOptions {
    threads: usize,
    allocation: NativeAllocation,
    shards: ShardMode,
    shard_config: ShardConfig,
    grain: Option<usize>,
    plan: Option<ChaosPlan>,
    deadline: Option<Duration>,
    report: bool,
}

/// What [`SortOptions::run`] produced: the sorted keys, the sorting
/// permutation, and — when requested via [`SortOptions::report`] — the
/// aggregated telemetry.
#[derive(Clone, Debug)]
pub struct SortOutcome<K> {
    /// The keys in sorted order (stable: ties keep input order).
    pub sorted: Vec<K>,
    /// The 1-based sorting permutation: `permutation[r]` is the input
    /// position of the rank-`r` key, as [`SortJob::permutation`] reports
    /// it. Empty input yields an empty permutation.
    pub permutation: Vec<usize>,
    /// Aggregated telemetry when [`SortOptions::report`] was enabled
    /// (empty for inputs shorter than two keys), `None` otherwise.
    pub report: Option<SortReport>,
}

impl Default for SortOptions {
    fn default() -> Self {
        SortOptions::new()
    }
}

impl SortOptions {
    /// Defaults: [`std::thread::available_parallelism`] threads,
    /// deterministic allocation, single pivot tree, recommended grain,
    /// no chaos plan, no deadline, no report.
    pub fn new() -> Self {
        SortOptions {
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            allocation: NativeAllocation::Deterministic,
            shards: ShardMode::SingleTree,
            shard_config: ShardConfig::default(),
            grain: None,
            plan: None,
            deadline: None,
            report: false,
        }
    }

    /// Sets the worker thread count (ignored while a [`ChaosPlan`] is
    /// set — the plan's worker count sizes the cohort, matching
    /// [`WaitFreeSorter::sort_with_plan`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Sets the work-allocation strategy (deterministic WAT descent or
    /// randomized LC-WAT probing).
    pub fn allocation(mut self, allocation: NativeAllocation) -> Self {
        self.allocation = allocation;
        self
    }

    /// Routes the sort through the sharded large-N path with `shards`
    /// shards; `0` selects [`recommended_shards`]. The sharded path
    /// computes exactly the permutation the single-tree path does.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = match shards {
            0 => ShardMode::Auto,
            s => ShardMode::Count(s),
        };
        self
    }

    /// Routes the sort through the single pivot tree (the default),
    /// undoing [`SortOptions::shards`].
    pub fn single_tree(mut self) -> Self {
        self.shards = ShardMode::SingleTree;
        self
    }

    /// Sets the sharded path's overpartition factor `k`: the splitter
    /// sampler targets `k·S` distinct splitters so up to `2kS + 1`
    /// range/equality buckets feed the greedy shard assignment. `0`
    /// restores the default (8). Ignored by the single-tree path.
    pub fn overpartition_factor(mut self, factor: usize) -> Self {
        self.shard_config.overpartition_factor = factor;
        self
    }

    /// Sets the sharded path's balance target τ: equality buckets are
    /// chunked so greedy assignment keeps
    /// [`ShardReport::imbalance`] at or under τ whenever no single
    /// range bucket exceeds `(τ-1)·n/S` elements. Non-finite or ≤ 1.0
    /// values restore the default 2.0. Ignored by the single-tree path.
    pub fn max_shard_imbalance(mut self, tau: f64) -> Self {
        self.shard_config.max_shard_imbalance = tau;
        self
    }

    /// Sets the sharding recursion depth: `1` (the default) pivot-sorts
    /// every range bucket, `2` re-shards oversized range buckets one
    /// level down. `0` restores the default. Ignored by the single-tree
    /// path.
    pub fn max_levels(mut self, levels: usize) -> Self {
        self.shard_config.max_levels = levels;
        self
    }

    /// Selects the Partition phase's [`ClassifyKernel`]. The default
    /// `Auto` resolves by splitter count at job construction (the
    /// branchless ladder up to
    /// [`LADDER_AUTO_MAX_SPLITTERS`](crate::LADDER_AUTO_MAX_SPLITTERS)
    /// splitters, the scalar binary search past it). Both kernels
    /// compute the identical permutation — this knob tunes throughput
    /// only. Ignored by the single-tree path.
    pub fn classify_kernel(mut self, kernel: ClassifyKernel) -> Self {
        self.shard_config.classify_kernel = kernel;
        self
    }

    /// Selects the Fill/shard pipeline's [`PartitionStrategy`]. The
    /// default `Auto` resolves by input size at job construction
    /// ([`PartitionStrategy::InPlace`] from
    /// [`IN_PLACE_AUTO_MIN`](crate::IN_PLACE_AUTO_MIN) elements up,
    /// where the `n·8`-byte bucket intermediate dominates memory
    /// traffic; [`PartitionStrategy::Materialized`] below it). Both
    /// strategies compute the identical permutation — this knob trades
    /// auxiliary memory against republication work only. Ignored by the
    /// single-tree path.
    pub fn partition_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.shard_config.partition_strategy = strategy;
        self
    }

    /// The [`ShardConfig`] the sharded path will run under (normalized,
    /// so degenerate knob values read back as their effective defaults).
    pub fn shard_config(&self) -> ShardConfig {
        self.shard_config.normalized()
    }

    /// Sets the WAT grain (elements per work-assignment block) for the
    /// single-tree path; `0` restores [`recommended_grain`]. The sharded
    /// path sizes its own grains and ignores this.
    pub fn grain(mut self, grain: usize) -> Self {
        self.grain = if grain == 0 { None } else { Some(grain) };
        self
    }

    /// Drives the cohort with a scripted adversary: one worker per plan
    /// slot, each replaying its deterministic fault script. If the plan
    /// crashes every worker the calling thread finishes the job alone
    /// (wait-freedom makes the abandoned structures always completable).
    pub fn plan(mut self, plan: ChaosPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Bounds helper occupancy by a wall-clock deadline: helpers abandon
    /// once it passes while the calling thread joins the cohort and runs
    /// to completion, alone past the deadline if need be. The result is
    /// always the correct sort — the deadline bounds *helper occupancy*,
    /// never correctness.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Whether to collect per-phase / per-worker telemetry into
    /// [`SortOutcome::report`].
    pub fn report(mut self, report: bool) -> Self {
        self.report = report;
        self
    }

    /// Heartbeat slots: one per cohort member, counting the caller when
    /// a plan or deadline puts it in the cohort.
    fn tracked_slots(&self) -> usize {
        match &self.plan {
            Some(plan) => plan.workers() + 1,
            None => self.threads,
        }
    }

    fn effective_shards(&self, n: usize) -> Option<usize> {
        match self.shards {
            ShardMode::SingleTree => None,
            ShardMode::Auto => Some(recommended_shards(n, self.threads)),
            ShardMode::Count(s) => Some(s),
        }
    }

    /// Sorts `keys` under this configuration. Never panics on degenerate
    /// inputs: fewer than two keys are copied through sequentially.
    pub fn run<K: Ord + Clone + Send + Sync>(&self, keys: &[K]) -> SortOutcome<K> {
        let n = keys.len();
        if n < 2 {
            return SortOutcome {
                sorted: keys.to_vec(),
                permutation: (1..=n).collect(),
                report: self.report.then(SortReport::empty),
            };
        }
        let tracked = self.tracked_slots();
        match self.effective_shards(n) {
            Some(shards) => {
                let job = ShardedSortJob::with_config(
                    keys.to_vec(),
                    self.allocation,
                    tracked,
                    shards,
                    self.shard_config,
                );
                let report = self.drive(&job);
                Self::outcome(keys, &job, report)
            }
            None => {
                let grain = self
                    .grain
                    .unwrap_or_else(|| recommended_grain(n, self.threads));
                let job: SortJob<K> =
                    SortJob::with_layout(keys.to_vec(), self.allocation, tracked, grain);
                let report = self.drive(&job);
                Self::outcome(keys, &job, report)
            }
        }
    }

    /// [`SortOptions::run`] through a reusable [`SortArena`]: recycles
    /// the arena's retained storage, sorts into `out`, and returns the
    /// telemetry when [`SortOptions::report`] is enabled. The arena path
    /// is single-tree; the shard mode is ignored here. Inputs shorter
    /// than two keys are copied through without touching the arena.
    pub fn run_into<K: Ord + Clone + Send + Sync, T: PivotTree>(
        &self,
        keys: &[K],
        arena: &mut SortArena<K, T>,
        out: &mut Vec<K>,
    ) -> Option<SortReport> {
        if keys.len() < 2 {
            out.clear();
            out.extend_from_slice(keys);
            return self.report.then(SortReport::empty);
        }
        let grain = self
            .grain
            .unwrap_or_else(|| recommended_grain(keys.len(), self.threads));
        let job = arena.prepare(keys, self.allocation, self.tracked_slots(), grain);
        let report = self.drive(job);
        job.sorted_into(out);
        report
    }

    fn outcome<K: Ord + Clone>(
        keys: &[K],
        job: &dyn CohortJob<K>,
        report: Option<SortReport>,
    ) -> SortOutcome<K> {
        let permutation = job.permutation();
        let sorted = permutation.iter().map(|&e| keys[e - 1].clone()).collect();
        SortOutcome {
            sorted,
            permutation,
            report,
        }
    }

    /// The single cohort path every front-end funnels into: spawns the
    /// configured participants, runs the caller in whatever role the
    /// configuration implies (deadline-exempt finisher, survivor of last
    /// resort, or bystander), and leaves `job` complete.
    fn drive<K: Ord + Send + Sync>(&self, job: &dyn CohortJob<K>) -> Option<SortReport> {
        let start = Instant::now();
        let until = self.deadline.map(|d| Instant::now() + d);
        let plan = self.plan.as_ref();
        let helpers = match plan {
            // The plan's worker count sizes the cohort.
            Some(p) => p.workers(),
            // Helpers obey the deadline; the caller is the deadline-
            // exempt finisher.
            None if until.is_some() => self.threads - 1,
            None => self.threads,
        };
        // With a deadline the caller participates concurrently (it must
        // finish what reaped helpers abandon); with only a plan it is the
        // survivor of last resort, joining after the cohort returns and
        // only if the plan crashed everyone.
        let caller_concurrent = until.is_some();
        let caller_fallback = plan.is_some() && until.is_none();
        let cohort = helpers + (caller_concurrent || caller_fallback) as usize;
        let mut slots: Vec<MetricSlot> = if self.report {
            (0..cohort).map(|_| MetricSlot::new()).collect()
        } else {
            Vec::new()
        };

        if cohort == 1 && plan.is_none() && !self.report && !caller_concurrent {
            // Single-threaded plain sort: no spawn.
            job.participate_dyn(&mut RunToCompletion);
        } else {
            let (helper_slots, caller_slot) = if self.report {
                let (h, c) = slots.split_at_mut(helpers);
                (h, c.first_mut())
            } else {
                (&mut [][..], None)
            };
            let mut caller_slot = caller_slot;
            crossbeam::thread::scope(|s| {
                let mut helper_slots = helper_slots.iter_mut();
                for w in 0..helpers {
                    let slot = helper_slots.next();
                    s.spawn(move |_| {
                        let mut p: Box<dyn Participation + Send + '_> = match (plan, until) {
                            (Some(plan), Some(until)) => {
                                Box::new(WithDeadline::new(ChaosParticipation::new(plan, w), until))
                            }
                            (Some(plan), None) => Box::new(ChaosParticipation::new(plan, w)),
                            (None, Some(until)) => {
                                Box::new(WithDeadline::new(RunToCompletion, until))
                            }
                            (None, None) => Box::new(RunToCompletion),
                        };
                        match slot {
                            Some(slot) => job.participate_instrumented_dyn(&mut *p, slot),
                            None => job.participate_dyn(&mut *p),
                        }
                    });
                }
                if caller_concurrent {
                    // The caller ignores the deadline: wait-freedom
                    // guarantees it can always finish what the helpers
                    // abandoned.
                    match caller_slot.take() {
                        Some(slot) => job.participate_instrumented_dyn(&mut RunToCompletion, slot),
                        None => job.participate_dyn(&mut RunToCompletion),
                    }
                }
            })
            .expect("worker threads do not panic");
            if caller_fallback && !job.is_complete() {
                // Every scripted worker crashed: the caller is the
                // survivor of last resort.
                match caller_slot {
                    Some(slot) => job.participate_instrumented_dyn(&mut RunToCompletion, slot),
                    None => job.participate_dyn(&mut RunToCompletion),
                }
            }
        }
        debug_assert!(job.is_complete());
        self.report.then(|| {
            let mut report = SortReport::aggregate(
                slots.iter().map(|s| s.snapshot()).collect(),
                start.elapsed(),
            );
            report.shard = job.shard_report_opt();
            report
        })
    }
}

/// The cohort-facing surface the single-tree and sharded jobs share, so
/// [`SortOptions::drive`] serves both through one spawn/instrument path.
trait CohortJob<K: Ord>: Sync {
    fn participate_dyn(&self, p: &mut dyn Participation);
    fn participate_instrumented_dyn(&self, p: &mut dyn Participation, slot: &MetricSlot);
    fn is_complete(&self) -> bool;
    fn permutation(&self) -> Vec<usize>;
    fn shard_report_opt(&self) -> Option<ShardReport>;
}

impl<K: Ord + Send + Sync, T: PivotTree> CohortJob<K> for SortJob<K, T> {
    fn participate_dyn(&self, mut p: &mut dyn Participation) {
        self.participate(&mut p);
    }
    fn participate_instrumented_dyn(&self, mut p: &mut dyn Participation, slot: &MetricSlot) {
        self.participate_instrumented(&mut p, slot);
    }
    fn is_complete(&self) -> bool {
        SortJob::is_complete(self)
    }
    fn permutation(&self) -> Vec<usize> {
        SortJob::permutation(self)
    }
    fn shard_report_opt(&self) -> Option<ShardReport> {
        None
    }
}

impl<K: Ord + Clone + Send + Sync> CohortJob<K> for ShardedSortJob<K> {
    fn participate_dyn(&self, mut p: &mut dyn Participation) {
        self.participate(&mut p);
    }
    fn participate_instrumented_dyn(&self, mut p: &mut dyn Participation, slot: &MetricSlot) {
        self.participate_instrumented(&mut p, slot);
    }
    fn is_complete(&self) -> bool {
        ShardedSortJob::is_complete(self)
    }
    fn permutation(&self) -> Vec<usize> {
        ShardedSortJob::permutation(self)
    }
    fn shard_report_opt(&self) -> Option<ShardReport> {
        Some(self.shard_report())
    }
}

impl WaitFreeSorter {
    /// Creates a sorter that spawns `threads` worker threads per sort.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        WaitFreeSorter { threads }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A [`SortOptions`] builder seeded with this sorter's thread count —
    /// the configurable pipeline every `sort_*` front-end below wraps.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfsort_native::WaitFreeSorter;
    ///
    /// let sorter = WaitFreeSorter::new(4);
    /// let outcome = sorter.options().report(true).run(&[3u64, 1, 2]);
    /// assert_eq!(outcome.sorted, vec![1, 2, 3]);
    /// assert!(outcome.report.is_some());
    /// ```
    pub fn options(&self) -> SortOptions {
        SortOptions::new().threads(self.threads)
    }

    /// Runs `job` to completion on this sorter's thread count (inline
    /// when single-threaded, scoped workers otherwise). Public so
    /// callers that build their own jobs — explicit grains, arena
    /// recycling, or the `legacy-layout` pivot tree — can still use the
    /// sorter's cohort management.
    pub fn run_job<K: Ord + Send + Sync, T: PivotTree>(&self, job: &SortJob<K, T>) {
        self.options().drive(job);
    }

    /// Runs `job` to completion with one telemetry slot per worker and
    /// returns the aggregated [`SortReport`]. The job may use either
    /// allocation strategy and may have been partially sorted already;
    /// the report covers only what this cohort did.
    pub fn run_job_with_report<K: Ord + Send + Sync, T: PivotTree>(
        &self,
        job: &SortJob<K, T>,
    ) -> SortReport {
        let mut report = self
            .options()
            .report(true)
            .drive(job)
            .expect("report requested");
        report.shard = None;
        report
    }

    /// Runs a [`ShardedSortJob`] to completion on this sorter's thread
    /// count, like [`WaitFreeSorter::run_job`] for the single-tree path.
    pub fn run_sharded_job<K: Ord + Clone + Send + Sync>(&self, job: &ShardedSortJob<K>) {
        self.options().drive(job);
    }

    /// Sorts `keys` into a new vector.
    pub fn sort<K: Ord + Clone + Send + Sync>(&self, keys: &[K]) -> Vec<K> {
        self.options().run(keys).sorted
    }

    /// Sorts `keys` into `out` through a reusable [`SortArena`]: after
    /// the arena's first (allocating) sort, repeated calls reset the
    /// retained tree cells, WAT nodes, permutation, and heartbeat slots
    /// in place instead of reallocating them — the hot path for callers
    /// that sort many same-shaped batches. `out` is cleared and refilled;
    /// its capacity is reused too. Inputs shorter than two keys are
    /// copied through without touching the arena.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfsort_native::{SortArena, WaitFreeSorter};
    ///
    /// let sorter = WaitFreeSorter::new(2);
    /// let mut arena = SortArena::new();
    /// let mut out = Vec::new();
    /// sorter.sort_into(&[3u64, 1, 2], &mut arena, &mut out);
    /// assert_eq!(out, vec![1, 2, 3]);
    /// sorter.sort_into(&[9u64, 5, 7, 6], &mut arena, &mut out);
    /// assert_eq!(out, vec![5, 6, 7, 9]);
    /// ```
    pub fn sort_into<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        arena: &mut SortArena<K>,
        out: &mut Vec<K>,
    ) {
        self.options().run_into(keys, arena, out);
    }

    /// Sorts `keys` and reports what the workers did: per-phase operation
    /// counts, per-worker breakdowns, wall-clock time, and the
    /// CAS-failure rate (the native contention proxy — see DESIGN.md §9).
    /// Inputs shorter than two keys return unchanged with an empty
    /// report.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfsort_native::WaitFreeSorter;
    ///
    /// let keys: Vec<u64> = (0..1000).rev().collect();
    /// let (sorted, report) = WaitFreeSorter::new(4).sort_with_report(&keys);
    /// assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    /// assert!(report.per_phase.build.claims >= 999);
    /// assert!(report.cas_failure_rate <= 1.0);
    /// ```
    pub fn sort_with_report<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
    ) -> (Vec<K>, SortReport) {
        let outcome = self.options().report(true).run(keys);
        (outcome.sorted, outcome.report.expect("report requested"))
    }

    /// Sorts `keys` through the sharded large-N path with
    /// [`recommended_shards`] shards: splitter partition, bucket fill,
    /// then one independent pivot-tree sort per shard (see
    /// [`ShardedSortJob`]). Produces exactly the same order as
    /// [`WaitFreeSorter::sort`]; the difference is contention and
    /// locality at large `n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfsort_native::WaitFreeSorter;
    ///
    /// let keys: Vec<u64> = (0..20_000).rev().collect();
    /// let sorted = WaitFreeSorter::new(4).sort_sharded(&keys);
    /// assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    /// ```
    pub fn sort_sharded<K: Ord + Clone + Send + Sync>(&self, keys: &[K]) -> Vec<K> {
        self.options().shards(0).run(keys).sorted
    }

    /// [`WaitFreeSorter::sort_sharded`] with an explicit shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn sort_sharded_with<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        shards: usize,
    ) -> Vec<K> {
        assert!(shards >= 1, "a sharded job needs at least one shard");
        self.options().shards(shards).run(keys).sorted
    }

    /// Sorts `keys` through the sharded path and reports what the
    /// workers did. On top of the single-tree telemetry (the inner
    /// per-shard sorts land in the ordinary build/sum/place/scatter
    /// buckets), the report's `per_phase.partition` / `fill` /
    /// `shard_sort` counters cover the sharded phases, and
    /// [`SortReport::shard`] carries per-shard sizes and claim counts.
    /// Inputs shorter than two keys return unchanged with an empty
    /// report.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfsort_native::WaitFreeSorter;
    ///
    /// let keys: Vec<u64> = (0..20_000).rev().collect();
    /// let (sorted, report) = WaitFreeSorter::new(4).sort_sharded_with_report(&keys, 16);
    /// assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    /// let shard = report.shard.as_ref().unwrap();
    /// assert_eq!(shard.per_shard.iter().map(|s| s.size).sum::<usize>(), 20_000);
    /// assert!(report.per_phase.partition.claims >= 20_000);
    /// ```
    pub fn sort_sharded_with_report<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        shards: usize,
    ) -> (Vec<K>, SortReport) {
        assert!(shards >= 1, "a sharded job needs at least one shard");
        let outcome = self.options().shards(shards).report(true).run(keys);
        let mut report = outcome.report.expect("report requested");
        if keys.len() < 2 {
            report.shard = None;
        }
        (outcome.sorted, report)
    }

    /// Sorts through the sharded path under a scripted adversary, like
    /// [`WaitFreeSorter::sort_with_plan`]: one worker per [`ChaosPlan`]
    /// slot, each driven by its deterministic fault script; if the plan
    /// crashes every worker, the calling thread finishes alone. The
    /// fault story holds at shard granularity — a crashed worker's
    /// half-sorted shard is redone whole by a survivor.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfsort_native::{ChaosPlan, WaitFreeSorter};
    ///
    /// let keys: Vec<u64> = (0..2_000).rev().collect();
    /// let plan = ChaosPlan::random_crashes(4, 0.75, 100, 7);
    /// let sorted = WaitFreeSorter::new(4).sort_sharded_with_plan(&keys, &plan, 8);
    /// assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    /// ```
    pub fn sort_sharded_with_plan<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        plan: &ChaosPlan,
        shards: usize,
    ) -> Vec<K> {
        assert!(shards >= 1, "a sharded job needs at least one shard");
        self.options()
            .shards(shards)
            .plan(plan.clone())
            .run(keys)
            .sorted
    }

    /// Sorts `items` by the key `f` extracts, computing each key once and
    /// running the wait-free sort over the keys; payloads are gathered
    /// through the resulting permutation. Stable (ties keep input order).
    ///
    /// # Examples
    ///
    /// ```
    /// use wfsort_native::WaitFreeSorter;
    ///
    /// let words = vec!["ccc", "a", "bb"];
    /// let by_len = WaitFreeSorter::new(2).sort_by_cached_key(&words, |w| w.len());
    /// assert_eq!(by_len, vec!["a", "bb", "ccc"]);
    /// ```
    pub fn sort_by_cached_key<T, K, F>(&self, items: &[T], f: F) -> Vec<T>
    where
        T: Clone + Send + Sync,
        K: Ord + Clone + Send + Sync,
        F: Fn(&T) -> K,
    {
        if items.len() < 2 {
            return items.to_vec();
        }
        let keys: Vec<K> = items.iter().map(f).collect();
        self.options()
            .run(&keys)
            .permutation
            .into_iter()
            .map(|e| items[e - 1].clone())
            .collect()
    }

    /// Sorts while a saboteur kills all but one participant mid-run:
    /// workers `1..threads` abandon after `abandon_after · t`
    /// participation checks (worker `t` lives `t` times as long as the
    /// first casualty); the calling thread finishes whatever they
    /// abandoned. Returns the sorted keys — the point being that it
    /// *does* return, every time (wait-freedom).
    pub fn sort_with_casualties<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        abandon_after: usize,
    ) -> Vec<K> {
        if self.threads == 1 {
            return self.sort(keys);
        }
        let mut plan = ChaosPlan::new(self.threads - 1);
        for t in 1..self.threads {
            plan = plan.crash_at(t - 1, (abandon_after * t) as u64);
        }
        self.options().plan(plan).run(keys).sorted
    }

    /// Sorts under a scripted adversary: spawns one worker per
    /// [`ChaosPlan`] slot, each driven by its deterministic fault script
    /// (crashes, stalls, pauses, jitter). The plan's worker count
    /// overrides this sorter's thread count.
    ///
    /// Always returns the sorted keys: any crash-free worker runs to
    /// completion, and if the plan crashes *every* worker the calling
    /// thread finishes the job alone — wait-freedom means the abandoned
    /// data structures are always completable.
    ///
    /// Deterministic given `(keys, plan)`: the fault schedule is a pure
    /// function of the plan and its seed, and the output permutation is a
    /// pure function of the keys.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfsort_native::{ChaosPlan, WaitFreeSorter};
    ///
    /// let keys: Vec<u64> = (0..500).rev().collect();
    /// let plan = ChaosPlan::random_crashes(4, 0.75, 100, 7);
    /// let sorted = WaitFreeSorter::new(4).sort_with_plan(&keys, &plan);
    /// assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    /// ```
    pub fn sort_with_plan<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        plan: &ChaosPlan,
    ) -> Vec<K> {
        self.options().plan(plan.clone()).run(keys).sorted
    }

    /// Sorts with a helper deadline: `threads - 1` helper workers
    /// participate until `deadline` elapses and are then released (their
    /// processors are needed elsewhere — the paper's §1.1 scenario),
    /// while the calling thread runs to completion, alone past the
    /// deadline if need be. The result is always the correct sort; the
    /// deadline bounds *helper occupancy*, not correctness.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::time::Duration;
    /// use wfsort_native::WaitFreeSorter;
    ///
    /// let keys: Vec<u64> = (0..500).rev().collect();
    /// let sorted = WaitFreeSorter::new(4).sort_with_deadline(&keys, Duration::ZERO);
    /// assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    /// ```
    pub fn sort_with_deadline<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        deadline: Duration,
    ) -> Vec<K> {
        self.options().deadline(deadline).run(keys).sorted
    }

    /// [`WaitFreeSorter::sort_with_deadline`] with the helpers
    /// additionally driven by a [`ChaosPlan`]: each helper obeys its
    /// fault script *and* the deadline, whichever reaps it first. Even a
    /// plan that crashes every helper at checkpoint zero leaves a correct
    /// sort — the caller finishes alone.
    pub fn sort_with_deadline_under<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        deadline: Duration,
        plan: &ChaosPlan,
    ) -> Vec<K> {
        self.options()
            .deadline(deadline)
            .plan(plan.clone())
            .run(keys)
            .sorted
    }
}

impl Default for WaitFreeSorter {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        WaitFreeSorter::new(threads)
    }
}

/// Stops a participant when an external flag flips — the "reap this
/// thread, the processor is needed elsewhere" scenario of the paper's
/// introduction.
#[derive(Debug)]
pub struct UntilFlag<'a> {
    flag: &'a AtomicBool,
}

impl<'a> UntilFlag<'a> {
    /// Participates until `flag` becomes `true`.
    pub fn new(flag: &'a AtomicBool) -> Self {
        UntilFlag { flag }
    }
}

impl Participation for UntilFlag<'_> {
    fn keep_going(&mut self) -> bool {
        !self.flag.load(Ordering::Relaxed)
    }
}

/// Demonstrates oblivious thread churn: spawns `initial` workers, reaps
/// them all once they have collectively made `reap_after_checks`
/// participation checks (a [`SharedBudget`]), then spawns `replacements`
/// fresh workers that finish the job. The reap trigger counts work, not
/// wall time, so the churn point is the same on any machine. Returns the
/// sorted keys.
///
/// This is the one front-end that does not flow through [`SortOptions`]:
/// its second cohort joins mid-run, a staged schedule the one-shot
/// builder deliberately does not model.
pub fn sort_with_churn<K: Ord + Clone + Send + Sync>(
    keys: &[K],
    initial: usize,
    reap_after_checks: usize,
    replacements: usize,
) -> Vec<K> {
    if keys.len() < 2 {
        return keys.to_vec();
    }
    let job = SortJob::with_tracked(
        keys.to_vec(),
        NativeAllocation::Deterministic,
        initial.max(1) + replacements.max(1),
    );
    let checks = AtomicU64::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..initial.max(1) {
            let (job, checks) = (&job, &checks);
            s.spawn(move |_| {
                job.participate(&mut SharedBudget::new(checks, reap_after_checks as u64));
            });
        }
        // Respawn once the initial cohort is being reaped (or finished
        // the whole job under budget — possible for small inputs).
        while checks.load(Ordering::Relaxed) < reap_after_checks as u64 && !job.is_complete() {
            std::thread::yield_now();
        }
        for _ in 0..replacements.max(1) {
            let job = &job;
            s.spawn(move |_| job.participate(&mut RunToCompletion));
        }
    })
    .expect("worker threads do not panic");
    job.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..1_000_000)).collect()
    }

    #[test]
    fn sorts_trivial_inputs() {
        let s = WaitFreeSorter::new(2);
        assert_eq!(s.sort::<u64>(&[]), Vec::<u64>::new());
        assert_eq!(s.sort(&[7]), vec![7]);
        assert_eq!(s.sort(&[2, 1]), vec![1, 2]);
    }

    #[test]
    fn sorts_large_random_input_multithreaded() {
        let keys = random_keys(20_000, 1);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(WaitFreeSorter::new(8).sort(&keys), expect);
    }

    #[test]
    fn single_thread_matches_std_sort() {
        let keys = random_keys(5_000, 2);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(WaitFreeSorter::new(1).sort(&keys), expect);
    }

    #[test]
    fn casualties_do_not_prevent_completion() {
        let keys = random_keys(5_000, 3);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(
            WaitFreeSorter::new(8).sort_with_casualties(&keys, 100),
            expect
        );
    }

    #[test]
    fn churn_reap_then_respawn() {
        let keys = random_keys(30_000, 4);
        let mut expect = keys.clone();
        expect.sort_unstable();
        // Reap the initial cohort after 2000 collective checks — far
        // short of the ~30k build jobs, so the replacements always
        // inherit real work, deterministically on any machine.
        let sorted = sort_with_churn(&keys, 4, 2_000, 3);
        assert_eq!(sorted, expect);
    }

    #[test]
    fn report_counts_cover_input_multithreaded() {
        let keys = random_keys(10_000, 5);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let (sorted, report) = WaitFreeSorter::new(4).sort_with_report(&keys);
        assert_eq!(sorted, expect);
        let n = keys.len() as u64;
        assert!(report.per_phase.build.claims >= n - 1);
        assert!(report.per_phase.build.cas_attempts >= n - 1);
        assert!(report.per_phase.sum.visits >= n);
        assert!(report.per_phase.place.visits >= n);
        assert!(report.per_phase.scatter.claims >= n);
        assert_eq!(report.per_worker.len(), 4);
        assert!((0.0..=1.0).contains(&report.cas_failure_rate));
        assert!(report.elapsed > Duration::ZERO);
        assert!(report.total_ops() > 0);
    }

    #[test]
    fn trivial_input_report_is_empty() {
        let (sorted, report) = WaitFreeSorter::new(2).sort_with_report(&[1u64]);
        assert_eq!(sorted, vec![1]);
        assert!(report.per_worker.is_empty());
        assert_eq!(report.total_ops(), 0);
    }

    #[test]
    fn report_on_randomized_job_counts_probes() {
        let keys = random_keys(5_000, 6);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let job = SortJob::with_tracked(keys, NativeAllocation::Randomized, 4);
        let report = WaitFreeSorter::new(4).run_job_with_report(&job);
        assert_eq!(job.into_sorted(), expect);
        assert!(report.per_phase.build.probes > 0);
        assert!(report.per_phase.scatter.probes > 0);
        // Random probing has no reserved assignment: every WAT step is
        // a helping step.
        assert_eq!(
            report.help_steps(),
            report.per_phase.build.claims
                + report.per_phase.build.probes
                + report.per_phase.scatter.claims
                + report.per_phase.scatter.probes
        );
    }

    #[test]
    fn sort_into_matches_sort_across_rounds() {
        let sorter = WaitFreeSorter::new(4);
        let mut arena = SortArena::new();
        let mut out = Vec::new();
        for round in 0..4 {
            let keys = random_keys(3_000 + 500 * round, 40 + round as u64);
            let mut expect = keys.clone();
            expect.sort_unstable();
            sorter.sort_into(&keys, &mut arena, &mut out);
            assert_eq!(out, expect, "round {round}");
        }
        // Trivial inputs bypass the arena but still fill `out`.
        sorter.sort_into(&[7u64], &mut arena, &mut out);
        assert_eq!(out, vec![7]);
        sorter.sort_into(&[], &mut arena, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn sharded_sort_matches_single_tree_order_exactly() {
        let keys = random_keys(30_000, 7);
        let sorter = WaitFreeSorter::new(4);
        assert_eq!(sorter.sort_sharded(&keys), sorter.sort(&keys));
    }

    #[test]
    fn sharded_trivial_inputs_pass_through() {
        let s = WaitFreeSorter::new(2);
        assert_eq!(s.sort_sharded::<u64>(&[]), Vec::<u64>::new());
        assert_eq!(s.sort_sharded_with(&[7u64], 4), vec![7]);
        let (sorted, report) = s.sort_sharded_with_report(&[1u64], 4);
        assert_eq!(sorted, vec![1]);
        assert!(report.shard.is_none());
    }

    #[test]
    fn sharded_report_carries_shard_payload() {
        let keys = random_keys(8_000, 8);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let (sorted, report) = WaitFreeSorter::new(4).sort_sharded_with_report(&keys, 16);
        assert_eq!(sorted, expect);
        let shard = report.shard.as_ref().expect("sharded report payload");
        assert_eq!(shard.shards, 16);
        assert_eq!(shard.per_shard.iter().map(|s| s.size).sum::<usize>(), 8_000);
        assert!(shard.per_shard.iter().all(|s| s.claims >= 1));
        assert!(shard.imbalance() >= 1.0);
        // `>=`: racing workers may idempotently redo claimed blocks;
        // the exact single-threaded pins live in tests/sharded_parity.rs.
        assert!(report.per_phase.partition.claims >= 8_000);
        assert!(report.per_phase.fill.claims >= shard.partition_blocks as u64);
        assert!(report.per_phase.shard_sort.claims >= 16);
        // Inner per-shard sorts land in the ordinary phase buckets.
        assert!(report.per_phase.build.claims > 0);
        assert!(report.per_phase.scatter.claims > 0);
    }

    #[test]
    fn sharded_plan_survives_total_crash() {
        let keys = random_keys(3_000, 9);
        let mut expect = keys.clone();
        expect.sort_unstable();
        // Crash every worker almost immediately: the caller must finish
        // all three phases alone.
        let mut plan = ChaosPlan::new(4);
        for w in 0..4 {
            plan = plan.crash_at(w, 3);
        }
        let sorted = WaitFreeSorter::new(4).sort_sharded_with_plan(&keys, &plan, 8);
        assert_eq!(sorted, expect);
    }

    #[test]
    fn sorts_strings() {
        let keys = vec!["b".to_string(), "a".to_string(), "c".to_string()];
        assert_eq!(
            WaitFreeSorter::new(2).sort(&keys),
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
    }

    #[test]
    fn default_uses_available_parallelism() {
        assert!(WaitFreeSorter::default().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        WaitFreeSorter::new(0);
    }

    #[test]
    fn options_compose_plan_deadline_shards_and_report() {
        let keys = random_keys(6_000, 10);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let plan = ChaosPlan::random_crashes(4, 0.5, 200, 11);
        let outcome = SortOptions::new()
            .threads(4)
            .shards(8)
            .plan(plan)
            .deadline(Duration::from_secs(3600))
            .report(true)
            .run(&keys);
        assert_eq!(outcome.sorted, expect);
        let report = outcome.report.expect("report requested");
        let shard = report.shard.expect("sharded payload");
        assert_eq!(shard.shards, 8);
        assert_eq!(shard.per_shard.iter().map(|s| s.size).sum::<usize>(), 6_000);
        // Cohort = 4 plan workers + the deadline-exempt caller.
        assert_eq!(report.per_worker.len(), 5);
    }

    #[test]
    fn options_degenerate_inputs_never_panic() {
        // Every combination the raw constructors reject: tiny inputs,
        // zero (= auto) shard counts, shard counts above n.
        for shards in [0usize, 1, 3, 64] {
            let opts = SortOptions::new().threads(2).shards(shards);
            assert_eq!(opts.run(&Vec::<u64>::new()).sorted, Vec::<u64>::new());
            assert_eq!(opts.run(&[9u64]).sorted, vec![9]);
            assert_eq!(opts.run(&[2u64, 1]).sorted, vec![1, 2]);
        }
        let outcome = SortOptions::new().threads(1).report(true).run(&[1u64]);
        assert_eq!(outcome.permutation, vec![1]);
        assert_eq!(outcome.report.unwrap().total_ops(), 0);
    }

    #[test]
    fn options_permutation_is_exact() {
        let keys = vec![30u64, 10, 20];
        let outcome = SortOptions::new().threads(2).run(&keys);
        assert_eq!(outcome.sorted, vec![10, 20, 30]);
        assert_eq!(outcome.permutation, vec![2, 3, 1]);
    }

    #[test]
    fn options_run_into_recycles_arena_with_report() {
        let mut arena: SortArena<u64> = SortArena::new();
        let mut out = Vec::new();
        let opts = SortOptions::new().threads(2).report(true);
        for round in 0..3 {
            let keys = random_keys(2_000, 60 + round);
            let mut expect = keys.clone();
            expect.sort_unstable();
            let report = opts.run_into(&keys, &mut arena, &mut out);
            assert_eq!(out, expect, "round {round}");
            assert!(report.expect("report requested").per_phase.build.claims >= 1_999);
            assert!(arena.is_warm());
        }
    }
}
