//! High-level sorting front-ends over [`SortJob`].

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::arena::SortArena;
use crate::fault::{ChaosParticipation, ChaosPlan, WithDeadline};
use crate::job::{recommended_grain, NativeAllocation, Participation, RunToCompletion, SortJob};
use crate::metrics::{MetricSlot, SortReport};
use crate::shard::{recommended_shards, ShardedSortJob};
use crate::tree::PivotTree;

/// A multi-threaded wait-free sorter.
///
/// # Examples
///
/// ```
/// use wfsort_native::WaitFreeSorter;
///
/// let sorter = WaitFreeSorter::new(4);
/// assert_eq!(sorter.sort(&[3u64, 1, 2]), vec![1, 2, 3]);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct WaitFreeSorter {
    threads: usize,
}

impl WaitFreeSorter {
    /// Creates a sorter that spawns `threads` worker threads per sort.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        WaitFreeSorter { threads }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job` to completion on this sorter's thread count (inline
    /// when single-threaded, scoped workers otherwise). Public so
    /// callers that build their own jobs — explicit grains, arena
    /// recycling, or the `legacy-layout` pivot tree — can still use the
    /// sorter's cohort management.
    pub fn run_job<K: Ord + Send + Sync, T: PivotTree>(&self, job: &SortJob<K, T>) {
        if self.threads == 1 {
            job.run();
        } else {
            crossbeam::thread::scope(|s| {
                for _ in 0..self.threads {
                    s.spawn(move |_| job.run());
                }
            })
            .expect("worker threads do not panic");
        }
    }

    /// Runs `job` to completion with one telemetry slot per worker and
    /// returns the aggregated [`SortReport`]. The job may use either
    /// allocation strategy and may have been partially sorted already;
    /// the report covers only what this cohort did.
    pub fn run_job_with_report<K: Ord + Send + Sync, T: PivotTree>(
        &self,
        job: &SortJob<K, T>,
    ) -> SortReport {
        let start = Instant::now();
        let mut slots: Vec<MetricSlot> = (0..self.threads).map(|_| MetricSlot::new()).collect();
        if self.threads == 1 {
            job.participate_instrumented(&mut RunToCompletion, &slots[0]);
        } else {
            crossbeam::thread::scope(|s| {
                for slot in &mut slots {
                    let job = &*job;
                    s.spawn(move |_| job.participate_instrumented(&mut RunToCompletion, slot));
                }
            })
            .expect("worker threads do not panic");
        }
        let elapsed = start.elapsed();
        SortReport::aggregate(slots.iter().map(|s| s.snapshot()).collect(), elapsed)
    }

    /// Sorts `keys` into a new vector.
    pub fn sort<K: Ord + Clone + Send + Sync>(&self, keys: &[K]) -> Vec<K> {
        if keys.len() < 2 {
            return keys.to_vec();
        }
        let job = self.job_for(keys);
        self.run_job(&job);
        job.into_sorted()
    }

    /// Sorts `keys` into `out` through a reusable [`SortArena`]: after
    /// the arena's first (allocating) sort, repeated calls reset the
    /// retained tree cells, WAT nodes, permutation, and heartbeat slots
    /// in place instead of reallocating them — the hot path for callers
    /// that sort many same-shaped batches. `out` is cleared and refilled;
    /// its capacity is reused too. Inputs shorter than two keys are
    /// copied through without touching the arena.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfsort_native::{SortArena, WaitFreeSorter};
    ///
    /// let sorter = WaitFreeSorter::new(2);
    /// let mut arena = SortArena::new();
    /// let mut out = Vec::new();
    /// sorter.sort_into(&[3u64, 1, 2], &mut arena, &mut out);
    /// assert_eq!(out, vec![1, 2, 3]);
    /// sorter.sort_into(&[9u64, 5, 7, 6], &mut arena, &mut out);
    /// assert_eq!(out, vec![5, 6, 7, 9]);
    /// ```
    pub fn sort_into<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        arena: &mut SortArena<K>,
        out: &mut Vec<K>,
    ) {
        if keys.len() < 2 {
            out.clear();
            out.extend_from_slice(keys);
            return;
        }
        let grain = recommended_grain(keys.len(), self.threads);
        let job = arena.prepare(keys, NativeAllocation::Deterministic, self.threads, grain);
        self.run_job(job);
        job.sorted_into(out);
    }

    /// Sorts `keys` and reports what the workers did: per-phase operation
    /// counts, per-worker breakdowns, wall-clock time, and the
    /// CAS-failure rate (the native contention proxy — see DESIGN.md §9).
    /// Inputs shorter than two keys return unchanged with an empty
    /// report.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfsort_native::WaitFreeSorter;
    ///
    /// let keys: Vec<u64> = (0..1000).rev().collect();
    /// let (sorted, report) = WaitFreeSorter::new(4).sort_with_report(&keys);
    /// assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    /// assert!(report.per_phase.build.claims >= 999);
    /// assert!(report.cas_failure_rate <= 1.0);
    /// ```
    pub fn sort_with_report<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
    ) -> (Vec<K>, SortReport) {
        if keys.len() < 2 {
            return (keys.to_vec(), SortReport::empty());
        }
        let job = self.job_for(keys);
        let report = self.run_job_with_report(&job);
        (job.into_sorted(), report)
    }

    /// A deterministic-allocation job sized to this sorter's cohort (one
    /// heartbeat slot per worker).
    fn job_for<K: Ord + Clone + Send + Sync>(&self, keys: &[K]) -> SortJob<K> {
        SortJob::with_tracked(keys.to_vec(), NativeAllocation::Deterministic, self.threads)
    }

    /// Sorts `keys` through the sharded large-N path with
    /// [`recommended_shards`] shards: splitter partition, bucket fill,
    /// then one independent pivot-tree sort per shard (see
    /// [`ShardedSortJob`]). Produces exactly the same order as
    /// [`WaitFreeSorter::sort`]; the difference is contention and
    /// locality at large `n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfsort_native::WaitFreeSorter;
    ///
    /// let keys: Vec<u64> = (0..20_000).rev().collect();
    /// let sorted = WaitFreeSorter::new(4).sort_sharded(&keys);
    /// assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    /// ```
    pub fn sort_sharded<K: Ord + Clone + Send + Sync>(&self, keys: &[K]) -> Vec<K> {
        self.sort_sharded_with(keys, recommended_shards(keys.len(), self.threads))
    }

    /// [`WaitFreeSorter::sort_sharded`] with an explicit shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn sort_sharded_with<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        shards: usize,
    ) -> Vec<K> {
        if keys.len() < 2 {
            assert!(shards >= 1, "a sharded job needs at least one shard");
            return keys.to_vec();
        }
        let job = self.sharded_job_for(keys, shards);
        self.run_sharded_job(&job);
        job.into_sorted()
    }

    /// Runs a [`ShardedSortJob`] to completion on this sorter's thread
    /// count, like [`WaitFreeSorter::run_job`] for the single-tree path.
    pub fn run_sharded_job<K: Ord + Clone + Send + Sync>(&self, job: &ShardedSortJob<K>) {
        if self.threads == 1 {
            job.run();
        } else {
            crossbeam::thread::scope(|s| {
                for _ in 0..self.threads {
                    s.spawn(move |_| job.run());
                }
            })
            .expect("worker threads do not panic");
        }
    }

    /// Sorts `keys` through the sharded path and reports what the
    /// workers did. On top of the single-tree telemetry (the inner
    /// per-shard sorts land in the ordinary build/sum/place/scatter
    /// buckets), the report's `per_phase.partition` / `fill` /
    /// `shard_sort` counters cover the sharded phases, and
    /// [`SortReport::shard`] carries per-shard sizes and claim counts.
    /// Inputs shorter than two keys return unchanged with an empty
    /// report.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfsort_native::WaitFreeSorter;
    ///
    /// let keys: Vec<u64> = (0..20_000).rev().collect();
    /// let (sorted, report) = WaitFreeSorter::new(4).sort_sharded_with_report(&keys, 16);
    /// assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    /// let shard = report.shard.as_ref().unwrap();
    /// assert_eq!(shard.per_shard.iter().map(|s| s.size).sum::<usize>(), 20_000);
    /// assert!(report.per_phase.partition.claims >= 20_000);
    /// ```
    pub fn sort_sharded_with_report<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        shards: usize,
    ) -> (Vec<K>, SortReport) {
        if keys.len() < 2 {
            assert!(shards >= 1, "a sharded job needs at least one shard");
            return (keys.to_vec(), SortReport::empty());
        }
        let job = self.sharded_job_for(keys, shards);
        let start = Instant::now();
        let mut slots: Vec<MetricSlot> = (0..self.threads).map(|_| MetricSlot::new()).collect();
        if self.threads == 1 {
            job.participate_instrumented(&mut RunToCompletion, &slots[0]);
        } else {
            crossbeam::thread::scope(|s| {
                for slot in &mut slots {
                    let job = &job;
                    s.spawn(move |_| job.participate_instrumented(&mut RunToCompletion, slot));
                }
            })
            .expect("worker threads do not panic");
        }
        let elapsed = start.elapsed();
        let mut report =
            SortReport::aggregate(slots.iter().map(|s| s.snapshot()).collect(), elapsed);
        report.shard = Some(job.shard_report());
        (job.into_sorted(), report)
    }

    /// Sorts through the sharded path under a scripted adversary, like
    /// [`WaitFreeSorter::sort_with_plan`]: one worker per [`ChaosPlan`]
    /// slot, each driven by its deterministic fault script; if the plan
    /// crashes every worker, the calling thread finishes alone. The
    /// fault story holds at shard granularity — a crashed worker's
    /// half-sorted shard is redone whole by a survivor.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfsort_native::{ChaosPlan, WaitFreeSorter};
    ///
    /// let keys: Vec<u64> = (0..2_000).rev().collect();
    /// let plan = ChaosPlan::random_crashes(4, 0.75, 100, 7);
    /// let sorted = WaitFreeSorter::new(4).sort_sharded_with_plan(&keys, &plan, 8);
    /// assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    /// ```
    pub fn sort_sharded_with_plan<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        plan: &ChaosPlan,
        shards: usize,
    ) -> Vec<K> {
        if keys.len() < 2 {
            assert!(shards >= 1, "a sharded job needs at least one shard");
            return keys.to_vec();
        }
        let job = ShardedSortJob::with_workers(
            keys.to_vec(),
            NativeAllocation::Deterministic,
            plan.workers() + 1,
            shards,
        );
        crossbeam::thread::scope(|s| {
            for w in 0..plan.workers() {
                let job = &job;
                s.spawn(move |_| job.participate(&mut ChaosParticipation::new(plan, w)));
            }
        })
        .expect("worker threads do not panic");
        if !job.is_complete() {
            // Every worker crashed: the caller is the survivor of last
            // resort.
            job.run();
        }
        job.into_sorted()
    }

    /// A deterministic-allocation sharded job sized to this sorter's
    /// cohort.
    fn sharded_job_for<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        shards: usize,
    ) -> ShardedSortJob<K> {
        ShardedSortJob::with_workers(
            keys.to_vec(),
            NativeAllocation::Deterministic,
            self.threads,
            shards,
        )
    }

    /// Sorts `items` by the key `f` extracts, computing each key once and
    /// running the wait-free sort over the keys; payloads are gathered
    /// through the resulting permutation. Stable (ties keep input order).
    ///
    /// # Examples
    ///
    /// ```
    /// use wfsort_native::WaitFreeSorter;
    ///
    /// let words = vec!["ccc", "a", "bb"];
    /// let by_len = WaitFreeSorter::new(2).sort_by_cached_key(&words, |w| w.len());
    /// assert_eq!(by_len, vec!["a", "bb", "ccc"]);
    /// ```
    pub fn sort_by_cached_key<T, K, F>(&self, items: &[T], f: F) -> Vec<T>
    where
        T: Clone + Send + Sync,
        K: Ord + Send + Sync,
        F: Fn(&T) -> K,
    {
        if items.len() < 2 {
            return items.to_vec();
        }
        let keys: Vec<K> = items.iter().map(f).collect();
        let job = SortJob::with_tracked(keys, NativeAllocation::Deterministic, self.threads);
        self.run_job(&job);
        job.permutation()
            .into_iter()
            .map(|e| items[e - 1].clone())
            .collect()
    }

    /// Sorts while a saboteur kills all but one worker mid-run: workers
    /// `1..threads` abandon after `abandon_after` participation checks;
    /// worker 0 runs to completion. Returns the sorted keys — the point
    /// being that it *does* return, every time (wait-freedom).
    pub fn sort_with_casualties<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        abandon_after: usize,
    ) -> Vec<K> {
        if keys.len() < 2 {
            return keys.to_vec();
        }
        let job = self.job_for(keys);
        crossbeam::thread::scope(|s| {
            for t in 1..self.threads {
                let job = &job;
                s.spawn(move |_| {
                    job.participate(&mut crate::job::QuitAfter(abandon_after * t));
                });
            }
            let job = &job;
            s.spawn(move |_| job.run());
        })
        .expect("worker threads do not panic");
        job.into_sorted()
    }

    /// Sorts under a scripted adversary: spawns one worker per
    /// [`ChaosPlan`] slot, each driven by its deterministic fault script
    /// (crashes, stalls, pauses, jitter). The plan's worker count
    /// overrides this sorter's thread count.
    ///
    /// Always returns the sorted keys: any crash-free worker runs to
    /// completion, and if the plan crashes *every* worker the calling
    /// thread finishes the job alone — wait-freedom means the abandoned
    /// data structures are always completable.
    ///
    /// Deterministic given `(keys, plan)`: the fault schedule is a pure
    /// function of the plan and its seed, and the output permutation is a
    /// pure function of the keys.
    ///
    /// # Examples
    ///
    /// ```
    /// use wfsort_native::{ChaosPlan, WaitFreeSorter};
    ///
    /// let keys: Vec<u64> = (0..500).rev().collect();
    /// let plan = ChaosPlan::random_crashes(4, 0.75, 100, 7);
    /// let sorted = WaitFreeSorter::new(4).sort_with_plan(&keys, &plan);
    /// assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    /// ```
    pub fn sort_with_plan<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        plan: &ChaosPlan,
    ) -> Vec<K> {
        if keys.len() < 2 {
            return keys.to_vec();
        }
        // One slot per plan worker, plus the caller (survivor of last
        // resort below).
        let job = SortJob::with_tracked(
            keys.to_vec(),
            NativeAllocation::Deterministic,
            plan.workers() + 1,
        );
        crossbeam::thread::scope(|s| {
            for w in 0..plan.workers() {
                let job = &job;
                s.spawn(move |_| job.participate(&mut ChaosParticipation::new(plan, w)));
            }
        })
        .expect("worker threads do not panic");
        if !job.is_complete() {
            // Every worker crashed: the caller is the survivor of last
            // resort.
            job.run();
        }
        job.into_sorted()
    }

    /// Sorts with a helper deadline: `threads - 1` helper workers
    /// participate until `deadline` elapses and are then released (their
    /// processors are needed elsewhere — the paper's §1.1 scenario),
    /// while the calling thread runs to completion, alone past the
    /// deadline if need be. The result is always the correct sort; the
    /// deadline bounds *helper occupancy*, not correctness.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::time::Duration;
    /// use wfsort_native::WaitFreeSorter;
    ///
    /// let keys: Vec<u64> = (0..500).rev().collect();
    /// let sorted = WaitFreeSorter::new(4).sort_with_deadline(&keys, Duration::ZERO);
    /// assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    /// ```
    pub fn sort_with_deadline<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        deadline: Duration,
    ) -> Vec<K> {
        self.deadline_sort(keys, deadline, None)
    }

    /// [`WaitFreeSorter::sort_with_deadline`] with the helpers
    /// additionally driven by a [`ChaosPlan`]: each helper obeys its
    /// fault script *and* the deadline, whichever reaps it first. Even a
    /// plan that crashes every helper at checkpoint zero leaves a correct
    /// sort — the caller finishes alone.
    pub fn sort_with_deadline_under<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        deadline: Duration,
        plan: &ChaosPlan,
    ) -> Vec<K> {
        self.deadline_sort(keys, deadline, Some(plan))
    }

    fn deadline_sort<K: Ord + Clone + Send + Sync>(
        &self,
        keys: &[K],
        deadline: Duration,
        plan: Option<&ChaosPlan>,
    ) -> Vec<K> {
        if keys.len() < 2 {
            return keys.to_vec();
        }
        // Helpers plus the deadline-exempt caller.
        let tracked = match plan {
            Some(plan) => plan.workers() + 1,
            None => self.threads,
        };
        let job = SortJob::with_tracked(keys.to_vec(), NativeAllocation::Deterministic, tracked);
        let until = Instant::now() + deadline;
        crossbeam::thread::scope(|s| {
            match plan {
                Some(plan) => {
                    for w in 0..plan.workers() {
                        let job = &job;
                        s.spawn(move |_| {
                            job.participate(&mut WithDeadline::new(
                                ChaosParticipation::new(plan, w),
                                until,
                            ));
                        });
                    }
                }
                None => {
                    for _ in 1..self.threads {
                        let job = &job;
                        s.spawn(move |_| {
                            job.participate(&mut WithDeadline::new(RunToCompletion, until));
                        });
                    }
                }
            }
            // The caller ignores the deadline: wait-freedom guarantees it
            // can always finish what the helpers abandoned.
            job.run();
        })
        .expect("worker threads do not panic");
        job.into_sorted()
    }
}

impl Default for WaitFreeSorter {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        WaitFreeSorter::new(threads)
    }
}

/// Stops a participant when an external flag flips — the "reap this
/// thread, the processor is needed elsewhere" scenario of the paper's
/// introduction.
#[derive(Debug)]
pub struct UntilFlag<'a> {
    flag: &'a AtomicBool,
}

impl<'a> UntilFlag<'a> {
    /// Participates until `flag` becomes `true`.
    pub fn new(flag: &'a AtomicBool) -> Self {
        UntilFlag { flag }
    }
}

impl Participation for UntilFlag<'_> {
    fn keep_going(&mut self) -> bool {
        !self.flag.load(Ordering::Relaxed)
    }
}

/// Stops a cohort once its members have collectively burned a shared
/// budget of participation checks — a deterministic reap trigger that
/// cannot race on machine speed the way a wall-clock one can.
struct SharedBudget<'a> {
    checks: &'a AtomicUsize,
    budget: usize,
}

impl Participation for SharedBudget<'_> {
    fn keep_going(&mut self) -> bool {
        self.checks.fetch_add(1, Ordering::Relaxed) < self.budget
    }
}

/// Demonstrates oblivious thread churn: spawns `initial` workers, reaps
/// them all once they have collectively made `reap_after_checks`
/// participation checks, then spawns `replacements` fresh workers that
/// finish the job. The reap trigger counts work, not wall time, so the
/// churn point is the same on any machine. Returns the sorted keys.
pub fn sort_with_churn<K: Ord + Clone + Send + Sync>(
    keys: &[K],
    initial: usize,
    reap_after_checks: usize,
    replacements: usize,
) -> Vec<K> {
    if keys.len() < 2 {
        return keys.to_vec();
    }
    let job = SortJob::with_tracked(
        keys.to_vec(),
        NativeAllocation::Deterministic,
        initial.max(1) + replacements.max(1),
    );
    let checks = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..initial.max(1) {
            let (job, checks) = (&job, &checks);
            s.spawn(move |_| {
                job.participate(&mut SharedBudget {
                    checks,
                    budget: reap_after_checks,
                });
            });
        }
        // Respawn once the initial cohort is being reaped (or finished
        // the whole job under budget — possible for small inputs).
        while checks.load(Ordering::Relaxed) < reap_after_checks && !job.is_complete() {
            std::thread::yield_now();
        }
        for _ in 0..replacements.max(1) {
            let job = &job;
            s.spawn(move |_| job.participate(&mut RunToCompletion));
        }
    })
    .expect("worker threads do not panic");
    job.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..1_000_000)).collect()
    }

    #[test]
    fn sorts_trivial_inputs() {
        let s = WaitFreeSorter::new(2);
        assert_eq!(s.sort::<u64>(&[]), Vec::<u64>::new());
        assert_eq!(s.sort(&[7]), vec![7]);
        assert_eq!(s.sort(&[2, 1]), vec![1, 2]);
    }

    #[test]
    fn sorts_large_random_input_multithreaded() {
        let keys = random_keys(20_000, 1);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(WaitFreeSorter::new(8).sort(&keys), expect);
    }

    #[test]
    fn single_thread_matches_std_sort() {
        let keys = random_keys(5_000, 2);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(WaitFreeSorter::new(1).sort(&keys), expect);
    }

    #[test]
    fn casualties_do_not_prevent_completion() {
        let keys = random_keys(5_000, 3);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(
            WaitFreeSorter::new(8).sort_with_casualties(&keys, 100),
            expect
        );
    }

    #[test]
    fn churn_reap_then_respawn() {
        let keys = random_keys(30_000, 4);
        let mut expect = keys.clone();
        expect.sort_unstable();
        // Reap the initial cohort after 2000 collective checks — far
        // short of the ~30k build jobs, so the replacements always
        // inherit real work, deterministically on any machine.
        let sorted = sort_with_churn(&keys, 4, 2_000, 3);
        assert_eq!(sorted, expect);
    }

    #[test]
    fn report_counts_cover_input_multithreaded() {
        let keys = random_keys(10_000, 5);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let (sorted, report) = WaitFreeSorter::new(4).sort_with_report(&keys);
        assert_eq!(sorted, expect);
        let n = keys.len() as u64;
        assert!(report.per_phase.build.claims >= n - 1);
        assert!(report.per_phase.build.cas_attempts >= n - 1);
        assert!(report.per_phase.sum.visits >= n);
        assert!(report.per_phase.place.visits >= n);
        assert!(report.per_phase.scatter.claims >= n);
        assert_eq!(report.per_worker.len(), 4);
        assert!((0.0..=1.0).contains(&report.cas_failure_rate));
        assert!(report.elapsed > Duration::ZERO);
        assert!(report.total_ops() > 0);
    }

    #[test]
    fn trivial_input_report_is_empty() {
        let (sorted, report) = WaitFreeSorter::new(2).sort_with_report(&[1u64]);
        assert_eq!(sorted, vec![1]);
        assert!(report.per_worker.is_empty());
        assert_eq!(report.total_ops(), 0);
    }

    #[test]
    fn report_on_randomized_job_counts_probes() {
        let keys = random_keys(5_000, 6);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let job = SortJob::with_tracked(keys, NativeAllocation::Randomized, 4);
        let report = WaitFreeSorter::new(4).run_job_with_report(&job);
        assert_eq!(job.into_sorted(), expect);
        assert!(report.per_phase.build.probes > 0);
        assert!(report.per_phase.scatter.probes > 0);
        // Random probing has no reserved assignment: every WAT step is
        // a helping step.
        assert_eq!(
            report.help_steps(),
            report.per_phase.build.claims
                + report.per_phase.build.probes
                + report.per_phase.scatter.claims
                + report.per_phase.scatter.probes
        );
    }

    #[test]
    fn sort_into_matches_sort_across_rounds() {
        let sorter = WaitFreeSorter::new(4);
        let mut arena = SortArena::new();
        let mut out = Vec::new();
        for round in 0..4 {
            let keys = random_keys(3_000 + 500 * round, 40 + round as u64);
            let mut expect = keys.clone();
            expect.sort_unstable();
            sorter.sort_into(&keys, &mut arena, &mut out);
            assert_eq!(out, expect, "round {round}");
        }
        // Trivial inputs bypass the arena but still fill `out`.
        sorter.sort_into(&[7u64], &mut arena, &mut out);
        assert_eq!(out, vec![7]);
        sorter.sort_into(&[], &mut arena, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn sharded_sort_matches_single_tree_order_exactly() {
        let keys = random_keys(30_000, 7);
        let sorter = WaitFreeSorter::new(4);
        assert_eq!(sorter.sort_sharded(&keys), sorter.sort(&keys));
    }

    #[test]
    fn sharded_trivial_inputs_pass_through() {
        let s = WaitFreeSorter::new(2);
        assert_eq!(s.sort_sharded::<u64>(&[]), Vec::<u64>::new());
        assert_eq!(s.sort_sharded_with(&[7u64], 4), vec![7]);
        let (sorted, report) = s.sort_sharded_with_report(&[1u64], 4);
        assert_eq!(sorted, vec![1]);
        assert!(report.shard.is_none());
    }

    #[test]
    fn sharded_report_carries_shard_payload() {
        let keys = random_keys(8_000, 8);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let (sorted, report) = WaitFreeSorter::new(4).sort_sharded_with_report(&keys, 16);
        assert_eq!(sorted, expect);
        let shard = report.shard.as_ref().expect("sharded report payload");
        assert_eq!(shard.shards, 16);
        assert_eq!(shard.per_shard.iter().map(|s| s.size).sum::<usize>(), 8_000);
        assert!(shard.per_shard.iter().all(|s| s.claims >= 1));
        assert!(shard.imbalance() >= 1.0);
        // `>=`: racing workers may idempotently redo claimed blocks;
        // the exact single-threaded pins live in tests/sharded_parity.rs.
        assert!(report.per_phase.partition.claims >= 8_000);
        assert!(report.per_phase.fill.claims >= shard.partition_blocks as u64);
        assert!(report.per_phase.shard_sort.claims >= 16);
        // Inner per-shard sorts land in the ordinary phase buckets.
        assert!(report.per_phase.build.claims > 0);
        assert!(report.per_phase.scatter.claims > 0);
    }

    #[test]
    fn sharded_plan_survives_total_crash() {
        let keys = random_keys(3_000, 9);
        let mut expect = keys.clone();
        expect.sort_unstable();
        // Crash every worker almost immediately: the caller must finish
        // all three phases alone.
        let mut plan = ChaosPlan::new(4);
        for w in 0..4 {
            plan = plan.crash_at(w, 3);
        }
        let sorted = WaitFreeSorter::new(4).sort_sharded_with_plan(&keys, &plan, 8);
        assert_eq!(sorted, expect);
    }

    #[test]
    fn sorts_strings() {
        let keys = vec!["b".to_string(), "a".to_string(), "c".to_string()];
        assert_eq!(
            WaitFreeSorter::new(2).sort(&keys),
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
    }

    #[test]
    fn default_uses_available_parallelism() {
        assert!(WaitFreeSorter::default().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        WaitFreeSorter::new(0);
    }
}
