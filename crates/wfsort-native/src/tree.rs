//! The shared pivot-tree state, in real atomics, packed for cache reach.
//!
//! This is Figure 3's data structure for native threads: child pointers
//! installed with `compare_exchange`, sizes and places written with
//! release stores. All cross-field values are deterministic functions of
//! the immutable key array plus the (write-once) child pointers, so
//! concurrent duplicate writes always store the same value — the benign
//! races the paper's observations 1–6 license.
//!
//! # Memory layout (DESIGN.md §10)
//!
//! The original port stored each node's five fields (`small`, `big`,
//! `size`, `place`, `place_done`) in five parallel `Vec<AtomicUsize>`s,
//! so one traversal visit touched up to five cache lines ~`n` words
//! apart. [`SharedTree`] packs the same state into three dense arrays:
//!
//! * child pointers live in two `Vec<AtomicU32>` arrays — half the
//!   width of the legacy `AtomicUsize` arrays, so one cache line serves
//!   16 nodes per side instead of 8, and an install is still a plain
//!   single-word CAS;
//! * `size`, `place`, and the place-done flag share one 16-byte
//!   `NodeMeta` cell (the flag folded into `place`'s high bit), so a
//!   place visit touches three lines (small, big, meta) where the
//!   legacy layout touched five.
//!
//! Three earlier drafts were measured and rejected by E25. Packing
//! everything into one 64-byte `repr(align(64))` cell per node lost to
//! the five-array layout on duplicate-heavy inputs: equal keys chain
//! into runs of consecutive node indices, descents down such chains
//! enjoy sequential locality, and a 64-byte stride turns what the
//! legacy layout served 8-nodes-per-line into one line per node.
//! Packing the pair into one `AtomicU64` with shift-and-mask halves,
//! and then into an 8-byte `[AtomicU32; 2]` cell with an indexed half,
//! fixed the footprint but kept losing ~2x on the same inputs for a
//! subtler reason, visible only in the disassembly: with both halves in
//! one cell the compiler computes the loaded address *from* the key
//! comparison (a `cmov`-fed index), so each descent hop serializes
//! child load -> key load -> compare -> address -> next child load.
//! With two separate arrays the side pick compiles to a conditional
//! *branch* selecting a base pointer; on duplicate-heavy inputs the
//! descent direction is highly predictable, the branch predictor takes
//! the key comparison off the critical path, and the chain collapses to
//! back-to-back child loads — the same structure that makes the legacy
//! layout fast, now at twice the node density. Uniform-random inputs,
//! where that branch is unpredictable, are cache-miss-bound, and the
//! halved footprint wins there instead.
//!
//! Everything stays write-once (installs and `size`/`place` publishes
//! happen at most once per field, duplicates storing the same value), so
//! the paper's correctness argument carries over verbatim; the only new
//! subtlety — a straggler's duplicate `place` store must never clear an
//! already-folded done bit — is closed by publishing `place` with a
//! CAS-from-zero instead of a blind store (see [`SharedTree::set_place`]).
//!
//! The pre-packing layout survives as `legacy::LegacySharedTree` behind
//! the `legacy-layout` feature — the comparison shim for differential
//! tests and the `e25_layout_bench` before/after artifact.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Sentinel: no child / not computed (element indices are `1..=n`).
pub const EMPTY: usize = 0;

/// High bit of the `place` word: the node's whole subtree has been
/// placed (the postorder completion flag).
const PLACE_DONE_BIT: usize = 1 << (usize::BITS - 1);

/// Which child pointer of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Subtree of smaller keys.
    Small = 0,
    /// Subtree of larger keys.
    Big = 1,
}

impl Side {
    /// The opposite side.
    #[inline]
    pub fn other(self) -> Side {
        match self {
            Side::Small => Side::Big,
            Side::Big => Side::Small,
        }
    }

    /// Decodes a thread-ID bit: set visits SMALL first (paper `SMALL =
    /// 1`). Branchless — a two-entry table lookup, not a conditional —
    /// because it sits on every level of every descent and traversal.
    #[inline]
    pub fn from_bit(bit: bool) -> Side {
        const TABLE: [Side; 2] = [Side::Big, Side::Small];
        TABLE[bit as usize]
    }
}

/// One node's traversal-phase state: `size` and `place` side by side in
/// a single 16-byte cell.
///
/// `repr(align(16))` keeps a cell from straddling two cache lines, so a
/// sum or place visit reads the node's whole non-child state with one
/// line where the parallel-array layout needed one line *per field*.
#[derive(Debug, Default)]
#[repr(align(16))]
struct NodeMeta {
    /// Subtree size (0 = not yet summed).
    size: AtomicUsize,
    /// 1-based rank in the low bits; [`PLACE_DONE_BIT`] folded into the
    /// high bit.
    place: AtomicUsize,
}

impl NodeMeta {
    /// Zeroes the cell for reuse (requires exclusive access — used by
    /// the arena between sorts, never concurrently with workers).
    fn reset(&mut self) {
        *self.size.get_mut() = 0;
        *self.place.get_mut() = 0;
    }
}

/// The operations [`crate::SortJob`]'s four phases need from a pivot
/// tree. Implemented by the packed [`SharedTree`] (the default) and by
/// `legacy::LegacySharedTree` (the five-parallel-array comparison shim
/// behind the `legacy-layout` feature), so differential tests and the
/// layout benchmark can drive the identical sort pipeline over either
/// memory layout.
///
/// All methods follow the paper's write-once/benign-race discipline:
/// `install_child_observed` is the only contended CAS, and every other
/// write publishes a value that is a deterministic function of the keys
/// and the installed children.
pub trait PivotTree: Send + Sync {
    /// Creates the shared fields for `n` elements.
    fn with_len(n: usize) -> Self;

    /// Number of elements.
    fn len(&self) -> usize;

    /// Whether the tree holds zero elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads the child of `node` on `side` (`EMPTY` if none).
    fn child(&self, node: usize, side: Side) -> usize;

    /// Attempts to install `child` as `node`'s `side` child; returns the
    /// slot's occupant afterwards plus whether this call's install won
    /// the slot. A `false` second component means the slot went to
    /// another writer — the event the metrics layer counts as a
    /// contention failure.
    fn install_child_observed(&self, node: usize, side: Side, child: usize) -> (usize, bool);

    /// Reads `node`'s subtree size (0 = not yet summed).
    fn size(&self, node: usize) -> usize;

    /// Publishes `node`'s subtree size.
    fn set_size(&self, node: usize, value: usize);

    /// Reads `node`'s 1-based rank (0 = not yet placed).
    fn place(&self, node: usize) -> usize;

    /// Publishes `node`'s rank.
    fn set_place(&self, node: usize, value: usize);

    /// Whether `node`'s whole subtree has been placed (the postorder
    /// completion flag — see the find_place crash-window fix in
    /// DESIGN.md).
    fn place_complete(&self, node: usize) -> bool;

    /// Marks `node`'s subtree placement complete.
    fn set_place_complete(&self, node: usize);

    /// Resizes to `n` elements and zeroes every field, reusing existing
    /// allocations where possible. Requires exclusive access (`&mut`):
    /// the arena calls it between sorts, never concurrently with
    /// participants.
    fn reset(&mut self, n: usize);
}

/// Atomic per-element fields, 1-based (index 0 unused): two dense
/// 4-byte-per-node child arrays plus a 16-byte `NodeMeta` cell per
/// node.
#[derive(Debug)]
pub struct SharedTree {
    /// `SMALL` child per node — a hot descent array at 4 bytes per
    /// node, 16 nodes per cache line.
    small: Vec<AtomicU32>,
    /// `BIG` child per node, same density.
    big: Vec<AtomicU32>,
    /// `size` and `place` (+ folded done bit) for the traversal phases.
    meta: Vec<NodeMeta>,
}

impl SharedTree {
    /// The child slot for `node` on `side`.
    ///
    /// Deliberately a `match` over two *fields*, indexing inside each
    /// arm, rather than an index into a per-node pair: the arms' bounds
    /// checks carry distinct panic sites, which stops the compiler from
    /// merging the match into a `cmov` of the slot address, so the side
    /// pick stays a conditional branch. On duplicate-heavy inputs that
    /// branch is predictable and keeps the key comparison off the
    /// descent's dependent-load chain (see the module docs — the
    /// indexed-pair drafts lost ~2x exactly here). Returning the slice
    /// first (`match side { .. } -> &[AtomicU32]` then indexing) re-forms
    /// the `cmov` and re-creates the regression; measured by E25.
    #[inline]
    fn slot(&self, node: usize, side: Side) -> &AtomicU32 {
        match side {
            Side::Small => &self.small[node],
            Side::Big => &self.big[node],
        }
    }
    /// Creates the shared fields for `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not fit the packed `u32` child halves
    /// (`n >= 2^32 - 1` — beyond any input this crate can hold anyway).
    pub fn new(n: usize) -> Self {
        assert!(
            (n as u128) < (u32::MAX as u128),
            "packed child pointers are u32 halves: n must be below 2^32 - 1"
        );
        SharedTree {
            small: (0..n + 1).map(|_| AtomicU32::new(0)).collect(),
            big: (0..n + 1).map(|_| AtomicU32::new(0)).collect(),
            meta: (0..n + 1).map(|_| NodeMeta::default()).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.small.len() - 1
    }

    /// Whether the tree holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resizes to `n` elements and zeroes every cell, reusing both
    /// vectors' allocations. Exclusive access makes this safe without
    /// atomics — the arena calls it between sorts, never mid-sort.
    pub(crate) fn reset(&mut self, n: usize) {
        assert!(
            (n as u128) < (u32::MAX as u128),
            "packed child pointers are u32 halves: n must be below 2^32 - 1"
        );
        for arr in [&mut self.small, &mut self.big] {
            arr.truncate(n + 1);
            for slot in arr.iter_mut() {
                *slot.get_mut() = 0;
            }
            arr.resize_with(n + 1, || AtomicU32::new(0));
        }
        self.meta.truncate(n + 1);
        for cell in &mut self.meta {
            cell.reset();
        }
        self.meta.resize_with(n + 1, NodeMeta::default);
    }

    /// Reads the child of `node` on `side` (`EMPTY` if none).
    #[inline]
    pub fn child(&self, node: usize, side: Side) -> usize {
        self.slot(node, side).load(Ordering::Acquire) as usize
    }

    /// Reads both children of `node`: `(small, big)`.
    #[inline]
    pub fn children(&self, node: usize) -> (usize, usize) {
        (self.child(node, Side::Small), self.child(node, Side::Big))
    }

    /// Attempts to install `child` as `node`'s `side` child; returns the
    /// slot's occupant afterwards (== `child` on success, the prior
    /// occupant on failure) — mirroring the paper's re-read after CAS.
    pub fn install_child(&self, node: usize, side: Side, child: usize) -> usize {
        self.install_child_observed(node, side, child).0
    }

    /// Like [`SharedTree::install_child`], but also reports whether this
    /// call's CAS won the slot. A `false` second component means the
    /// install genuinely lost a race (or the slot was already occupied)
    /// — the event the metrics layer counts as a contention failure.
    ///
    /// The two sides are separate atomics, so a CAS on one side never
    /// has to retry because the *other* side moved — one
    /// compare-exchange settles the slot, exactly like the legacy
    /// layout's per-array CAS, just on a 4-byte word.
    pub fn install_child_observed(&self, node: usize, side: Side, child: usize) -> (usize, bool) {
        let slot = self.slot(node, side);
        match slot.compare_exchange(0, child as u32, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => (child, true),
            Err(occupant) => (occupant as usize, false),
        }
    }

    /// Reads `node`'s subtree size (0 = not yet summed).
    #[inline]
    pub fn size(&self, node: usize) -> usize {
        self.meta[node].size.load(Ordering::Acquire)
    }

    /// Publishes `node`'s subtree size.
    #[inline]
    pub fn set_size(&self, node: usize, value: usize) {
        self.meta[node].size.store(value, Ordering::Release);
    }

    /// Reads `node`'s 1-based rank (0 = not yet placed).
    #[inline]
    pub fn place(&self, node: usize) -> usize {
        self.meta[node].place.load(Ordering::Acquire) & !PLACE_DONE_BIT
    }

    /// Publishes `node`'s rank.
    ///
    /// A CAS from zero, not a store: the done flag shares this word, so
    /// a straggler re-publishing the (identical, deterministic) rank
    /// after another worker already folded the done bit in must lose
    /// rather than wipe the flag. The CAS enforces the write-once
    /// discipline the legacy layout got for free from separate arrays;
    /// losing it is always benign because every contender carries the
    /// same value.
    #[inline]
    pub fn set_place(&self, node: usize, value: usize) {
        debug_assert!(value & PLACE_DONE_BIT == 0, "rank collides with done bit");
        let _ =
            self.meta[node]
                .place
                .compare_exchange(0, value, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Whether `node`'s whole subtree has been placed (the postorder
    /// completion flag — see the find_place crash-window fix in
    /// DESIGN.md).
    #[inline]
    pub fn place_complete(&self, node: usize) -> bool {
        self.meta[node].place.load(Ordering::Acquire) & PLACE_DONE_BIT != 0
    }

    /// Marks `node`'s subtree placement complete. A `fetch_or` so the
    /// already-published rank in the low bits survives.
    #[inline]
    pub fn set_place_complete(&self, node: usize) {
        self.meta[node]
            .place
            .fetch_or(PLACE_DONE_BIT, Ordering::AcqRel);
    }
}

impl PivotTree for SharedTree {
    fn with_len(n: usize) -> Self {
        SharedTree::new(n)
    }

    fn len(&self) -> usize {
        SharedTree::len(self)
    }

    #[inline]
    fn child(&self, node: usize, side: Side) -> usize {
        SharedTree::child(self, node, side)
    }

    fn install_child_observed(&self, node: usize, side: Side, child: usize) -> (usize, bool) {
        SharedTree::install_child_observed(self, node, side, child)
    }

    #[inline]
    fn size(&self, node: usize) -> usize {
        SharedTree::size(self, node)
    }

    #[inline]
    fn set_size(&self, node: usize, value: usize) {
        SharedTree::set_size(self, node, value)
    }

    #[inline]
    fn place(&self, node: usize) -> usize {
        SharedTree::place(self, node)
    }

    #[inline]
    fn set_place(&self, node: usize, value: usize) {
        SharedTree::set_place(self, node, value)
    }

    #[inline]
    fn place_complete(&self, node: usize) -> bool {
        SharedTree::place_complete(self, node)
    }

    #[inline]
    fn set_place_complete(&self, node: usize) {
        SharedTree::set_place_complete(self, node)
    }

    fn reset(&mut self, n: usize) {
        SharedTree::reset(self, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_child_first_wins() {
        let t = SharedTree::new(4);
        assert_eq!(t.install_child(1, Side::Small, 2), 2);
        assert_eq!(t.install_child(1, Side::Small, 3), 2, "loser sees winner");
        assert_eq!(t.child(1, Side::Small), 2);
        assert_eq!(t.child(1, Side::Big), EMPTY);
    }

    #[test]
    fn install_same_value_is_idempotent() {
        let t = SharedTree::new(4);
        assert_eq!(t.install_child(1, Side::Big, 3), 3);
        // A duplicate-working thread re-attempting the same install gets
        // the already-present value back — counts as success upstream.
        assert_eq!(t.install_child(1, Side::Big, 3), 3);
    }

    #[test]
    fn install_observed_reports_winner() {
        let t = SharedTree::new(4);
        assert_eq!(t.install_child_observed(1, Side::Small, 2), (2, true));
        assert_eq!(t.install_child_observed(1, Side::Small, 3), (2, false));
        // Re-attempting an identical install is a loss too: the slot was
        // not EMPTY, even though the value matches.
        assert_eq!(t.install_child_observed(1, Side::Small, 2), (2, false));
    }

    #[test]
    fn halves_are_independent() {
        // The two sides live in separate arrays; installing one must
        // neither clobber nor block the other.
        let t = SharedTree::new(8);
        assert_eq!(t.install_child(1, Side::Small, 2), 2);
        assert_eq!(t.install_child(1, Side::Big, 3), 3);
        assert_eq!(t.children(1), (2, 3));
        assert_eq!(t.child(1, Side::Small), 2);
        assert_eq!(t.child(1, Side::Big), 3);
    }

    #[test]
    fn size_place_roundtrip() {
        let t = SharedTree::new(2);
        assert_eq!(t.size(1), 0);
        t.set_size(1, 2);
        assert_eq!(t.size(1), 2);
        assert_eq!(t.place(2), 0);
        t.set_place(2, 1);
        assert_eq!(t.place(2), 1);
        assert!(!t.place_complete(2));
        t.set_place_complete(2);
        assert!(t.place_complete(2));
    }

    #[test]
    fn done_bit_and_rank_share_a_word_safely() {
        let t = SharedTree::new(2);
        t.set_place(1, 7);
        t.set_place_complete(1);
        // The folded flag does not leak into the rank, nor vice versa.
        assert_eq!(t.place(1), 7);
        assert!(t.place_complete(1));
        // A straggler's duplicate rank publish after the done bit is set
        // must not clear the flag (the crash-window fix depends on it).
        t.set_place(1, 7);
        assert!(t.place_complete(1), "duplicate set_place wiped done bit");
        assert_eq!(t.place(1), 7);
    }

    #[test]
    fn packed_geometry_holds() {
        // A child slot must stay at 4 bytes (16 nodes per cache line,
        // half the legacy footprint) and a meta cell must never straddle
        // two lines.
        assert_eq!(std::mem::size_of::<AtomicU32>(), 4);
        assert_eq!(std::mem::size_of::<NodeMeta>(), 16);
        assert_eq!(std::mem::align_of::<NodeMeta>(), 16);
    }

    #[test]
    fn reset_reuses_and_rezeros() {
        let mut t = SharedTree::new(4);
        t.install_child(1, Side::Small, 2);
        t.set_size(1, 4);
        t.set_place(1, 2);
        t.set_place_complete(1);
        t.reset(6);
        assert_eq!(t.len(), 6);
        for node in 1..=6 {
            assert_eq!(t.child(node, Side::Small), EMPTY);
            assert_eq!(t.child(node, Side::Big), EMPTY);
            assert_eq!(t.size(node), 0);
            assert_eq!(t.place(node), 0);
            assert!(!t.place_complete(node));
        }
        t.reset(2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn concurrent_installs_have_single_winner() {
        let t = SharedTree::new(64);
        let tref = &t;
        let winners: Vec<usize> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (2..=8)
                .map(|i| s.spawn(move |_| tref.install_child(1, Side::Small, i)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        let final_child = t.child(1, Side::Small);
        assert!(winners.iter().all(|&w| w == final_child));
    }

    #[test]
    fn concurrent_opposite_halves_both_land() {
        // The two sides are independent atomics: hammer SMALL and BIG
        // of the same node from racing threads and require both
        // installs to survive.
        for _ in 0..50 {
            let t = SharedTree::new(8);
            let tref = &t;
            crossbeam::thread::scope(|s| {
                s.spawn(move |_| tref.install_child(1, Side::Small, 2));
                s.spawn(move |_| tref.install_child(1, Side::Big, 3));
            })
            .unwrap();
            assert_eq!(t.children(1), (2, 3));
        }
    }

    #[test]
    fn side_helpers() {
        assert_eq!(Side::Small.other(), Side::Big);
        assert_eq!(Side::from_bit(true), Side::Small);
        assert_eq!(Side::from_bit(false), Side::Big);
    }
}
