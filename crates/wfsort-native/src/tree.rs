//! The shared pivot-tree state, in real atomics.
//!
//! This is Figure 3's data structure for native threads: child pointers
//! installed with `compare_exchange`, sizes and places written with
//! release stores. All cross-field values are deterministic functions of
//! the immutable key array plus the (write-once) child pointers, so
//! concurrent duplicate writes always store the same value — the benign
//! races the paper's observations 1–6 license.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Sentinel: no child / not computed (element indices are `1..=n`).
pub const EMPTY: usize = 0;

/// Which child pointer of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Subtree of smaller keys.
    Small,
    /// Subtree of larger keys.
    Big,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Small => Side::Big,
            Side::Big => Side::Small,
        }
    }

    /// Decodes a thread-ID bit: set visits SMALL first (paper `SMALL = 1`).
    pub fn from_bit(bit: bool) -> Side {
        if bit {
            Side::Small
        } else {
            Side::Big
        }
    }
}

/// Atomic per-element fields, 1-based (index 0 unused).
#[derive(Debug)]
pub struct SharedTree {
    small: Vec<AtomicUsize>,
    big: Vec<AtomicUsize>,
    size: Vec<AtomicUsize>,
    place: Vec<AtomicUsize>,
    place_done: Vec<AtomicUsize>,
}

fn atomic_vec(n: usize) -> Vec<AtomicUsize> {
    (0..n).map(|_| AtomicUsize::new(0)).collect()
}

impl SharedTree {
    /// Creates the shared fields for `n` elements.
    pub fn new(n: usize) -> Self {
        SharedTree {
            small: atomic_vec(n + 1),
            big: atomic_vec(n + 1),
            size: atomic_vec(n + 1),
            place: atomic_vec(n + 1),
            place_done: atomic_vec(n + 1),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.small.len() - 1
    }

    /// Whether the tree holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn child_slot(&self, node: usize, side: Side) -> &AtomicUsize {
        match side {
            Side::Small => &self.small[node],
            Side::Big => &self.big[node],
        }
    }

    /// Reads the child of `node` on `side` (`EMPTY` if none).
    pub fn child(&self, node: usize, side: Side) -> usize {
        self.child_slot(node, side).load(Ordering::Acquire)
    }

    /// Attempts to install `child` as `node`'s `side` child; returns the
    /// slot's occupant afterwards (== `child` on success, the prior
    /// occupant on failure) — mirroring the paper's re-read after CAS.
    pub fn install_child(&self, node: usize, side: Side, child: usize) -> usize {
        self.install_child_observed(node, side, child).0
    }

    /// Like [`SharedTree::install_child`], but also reports whether this
    /// call's CAS won the slot. A `false` second component means the CAS
    /// genuinely lost a race (or the slot was already occupied) — the
    /// event the metrics layer counts as a contention failure.
    pub fn install_child_observed(&self, node: usize, side: Side, child: usize) -> (usize, bool) {
        match self.child_slot(node, side).compare_exchange(
            EMPTY,
            child,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => (child, true),
            Err(current) => (current, false),
        }
    }

    /// Reads `node`'s subtree size (0 = not yet summed).
    pub fn size(&self, node: usize) -> usize {
        self.size[node].load(Ordering::Acquire)
    }

    /// Publishes `node`'s subtree size.
    pub fn set_size(&self, node: usize, value: usize) {
        self.size[node].store(value, Ordering::Release);
    }

    /// Reads `node`'s 1-based rank (0 = not yet placed).
    pub fn place(&self, node: usize) -> usize {
        self.place[node].load(Ordering::Acquire)
    }

    /// Publishes `node`'s rank.
    pub fn set_place(&self, node: usize, value: usize) {
        self.place[node].store(value, Ordering::Release);
    }

    /// Whether `node`'s whole subtree has been placed (the postorder
    /// completion flag — see the find_place crash-window fix in
    /// DESIGN.md).
    pub fn place_complete(&self, node: usize) -> bool {
        self.place_done[node].load(Ordering::Acquire) != 0
    }

    /// Marks `node`'s subtree placement complete.
    pub fn set_place_complete(&self, node: usize) {
        self.place_done[node].store(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_child_first_wins() {
        let t = SharedTree::new(4);
        assert_eq!(t.install_child(1, Side::Small, 2), 2);
        assert_eq!(t.install_child(1, Side::Small, 3), 2, "loser sees winner");
        assert_eq!(t.child(1, Side::Small), 2);
        assert_eq!(t.child(1, Side::Big), EMPTY);
    }

    #[test]
    fn install_same_value_is_idempotent() {
        let t = SharedTree::new(4);
        assert_eq!(t.install_child(1, Side::Big, 3), 3);
        // A duplicate-working thread re-attempting the same install gets
        // the already-present value back — counts as success upstream.
        assert_eq!(t.install_child(1, Side::Big, 3), 3);
    }

    #[test]
    fn install_observed_reports_winner() {
        let t = SharedTree::new(4);
        assert_eq!(t.install_child_observed(1, Side::Small, 2), (2, true));
        assert_eq!(t.install_child_observed(1, Side::Small, 3), (2, false));
        // Re-attempting an identical install is a loss too: the slot was
        // not EMPTY, even though the value matches.
        assert_eq!(t.install_child_observed(1, Side::Small, 2), (2, false));
    }

    #[test]
    fn size_place_roundtrip() {
        let t = SharedTree::new(2);
        assert_eq!(t.size(1), 0);
        t.set_size(1, 2);
        assert_eq!(t.size(1), 2);
        assert_eq!(t.place(2), 0);
        t.set_place(2, 1);
        assert_eq!(t.place(2), 1);
        assert!(!t.place_complete(2));
        t.set_place_complete(2);
        assert!(t.place_complete(2));
    }

    #[test]
    fn concurrent_installs_have_single_winner() {
        let t = SharedTree::new(64);
        let tref = &t;
        let winners: Vec<usize> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (2..=8)
                .map(|i| s.spawn(move |_| tref.install_child(1, Side::Small, i)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        let final_child = t.child(1, Side::Small);
        assert!(winners.iter().all(|&w| w == final_child));
    }

    #[test]
    fn side_helpers() {
        assert_eq!(Side::Small.other(), Side::Big);
        assert_eq!(Side::from_bit(true), Side::Small);
        assert_eq!(Side::from_bit(false), Side::Big);
    }
}
