//! Progress observation: heartbeat snapshots, [`ProgressReport`]s and a
//! [`Watchdog`] that tells a *reaped-but-progressing* run from a
//! *genuinely wedged* one.
//!
//! Every participant of a [`SortJob`] publishes a heartbeat — its current
//! phase and a checkpoint epoch — at every wait-free operation boundary,
//! plus a departed flag when it returns (completion or abandonment).
//! [`SortJob::progress`] snapshots those heartbeats together with the WAT
//! frontiers into a [`ProgressReport`]; the [`Watchdog`] diffs successive
//! reports. Wait-freedom makes the diagnosis clean: a crash can only
//! remove a *contributor*, never wedge the survivors, so "no epoch moved
//! and no frontier moved and not complete" is a real alarm (every live
//! thread is stalled or the cohort is empty), not a transient.
//!
//! For a single run, borrow the job with [`Watchdog`]. A supervisor
//! juggling many concurrent jobs — [`crate::service::SortService`] is the
//! in-crate customer — instead feeds snapshots into a
//! [`WatchdogRegistry`], which keeps one diffing baseline per job id and
//! applies exactly the same classification.

use std::collections::BTreeMap;
use std::fmt;

use crate::job::SortJob;

/// The phases a participant can report from: the four phases of
/// [`SortJob::participate`] in execution order, followed by the three
/// phases of the sharded path ([`crate::ShardedSortJob`]). A sharded
/// participant reports `Partition` → `Fill` → `ShardSort`, dipping back
/// into `Build`..`Scatter` while it runs a shard's inner single-tree
/// sort.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SortPhase {
    /// Phase 1: insert every element into the pivot tree.
    Build = 0,
    /// Phase 2: compute subtree sizes.
    Sum = 1,
    /// Phase 3: compute ranks.
    Place = 2,
    /// Phase 4: scatter element indices by rank.
    Scatter = 3,
    /// Sharded phase 1: classify every element against the splitters.
    Partition = 4,
    /// Sharded phase 2: write elements into their shard's bucket range.
    Fill = 5,
    /// Sharded phase 3: claim whole shards and sort each one.
    ShardSort = 6,
}

impl SortPhase {
    pub(crate) fn from_bits(bits: u64) -> SortPhase {
        match bits & 7 {
            0 => SortPhase::Build,
            1 => SortPhase::Sum,
            2 => SortPhase::Place,
            3 => SortPhase::Scatter,
            4 => SortPhase::Partition,
            5 => SortPhase::Fill,
            // 7 is unused; fold it into the last real phase so a torn
            // read can never panic the observer.
            _ => SortPhase::ShardSort,
        }
    }
}

impl fmt::Display for SortPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SortPhase::Build => "build",
            SortPhase::Sum => "sum",
            SortPhase::Place => "place",
            SortPhase::Scatter => "scatter",
            SortPhase::Partition => "partition",
            SortPhase::Fill => "fill",
            SortPhase::ShardSort => "shard-sort",
        })
    }
}

/// One participant's heartbeat at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParticipantProgress {
    /// Heartbeat slot index (= participant id for the first 64
    /// participants; later joiners share slots modulo the slot count).
    pub slot: usize,
    /// The phase the participant last reported from.
    pub phase: SortPhase,
    /// Checkpoints consulted so far — monotonically increasing while the
    /// participant is alive.
    pub epoch: u64,
    /// Whether the participant has returned from `participate` (either
    /// because the sort completed or because it abandoned — with
    /// `ProgressReport::complete == false` this means "reaped").
    pub departed: bool,
}

/// A structured snapshot of a [`SortJob`]'s progress: global phase
/// frontier, per-participant heartbeats, and the two WAT frontiers.
#[derive(Clone, Debug)]
pub struct ProgressReport {
    /// Whether the sorted permutation is fully computed.
    pub complete: bool,
    /// The furthest phase any participant has reported from.
    pub phase: SortPhase,
    /// Total participants ever registered (including untracked ones
    /// beyond the heartbeat slots).
    pub participants: usize,
    /// Tracked per-participant heartbeats, indexed by slot.
    pub workers: Vec<ParticipantProgress>,
    /// Heartbeat slots the job allocated. Jobs built via
    /// [`SortJob::with_tracked`](crate::SortJob::with_tracked) size this
    /// to their worker count so every participant gets its own slot.
    pub tracked_slots: usize,
    /// Participants beyond `tracked_slots`, which share heartbeat slots
    /// with earlier arrivals (`tid % tracked_slots`). Nonzero means the
    /// per-worker heartbeats may conflate two threads' progress — a
    /// wedged worker can hide behind an aliased live one — though the
    /// WAT frontiers and completion flag stay exact.
    pub aliased_participants: usize,
    /// Phase-1 (build) WAT jobs completed.
    pub build_jobs_done: usize,
    /// Phase-1 (build) WAT jobs in total.
    pub build_jobs_total: usize,
    /// Phase-4 (scatter) WAT jobs completed.
    pub scatter_jobs_done: usize,
    /// Phase-4 (scatter) WAT jobs in total.
    pub scatter_jobs_total: usize,
}

impl ProgressReport {
    /// Participants still inside `participate` (not departed).
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| !w.departed).count()
    }

    /// Participants that returned while the sort was still incomplete —
    /// reaped threads whose residual work the survivors must absorb.
    pub fn reaped_workers(&self) -> usize {
        if self.complete {
            0
        } else {
            self.workers.iter().filter(|w| w.departed).count()
        }
    }

    /// Whether the job has been *stranded*: at least one participant
    /// joined, every one of them has departed, and the sort is still
    /// incomplete. Unlike [`Health::Wedged`] this needs no previous
    /// snapshot — it is the single-report condition under which no
    /// currently running thread will ever finish the job, and the
    /// condition wait-freedom guarantees one fresh participant can always
    /// clear. [`crate::service::SortService`] uses it as its reap-and-
    /// requeue trigger.
    pub fn stranded(&self) -> bool {
        !self.complete && self.participants > 0 && self.live_workers() == 0
    }
}

impl fmt::Display for ProgressReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "phase {}: build {}/{}, scatter {}/{}, workers {} ({} live, {} departed){}",
            self.phase,
            self.build_jobs_done,
            self.build_jobs_total,
            self.scatter_jobs_done,
            self.scatter_jobs_total,
            self.participants,
            self.live_workers(),
            self.workers.len() - self.live_workers(),
            if self.complete { ", complete" } else { "" }
        )?;
        if self.aliased_participants > 0 {
            write!(f, " [{} aliased]", self.aliased_participants)?;
        }
        Ok(())
    }
}

/// The watchdog's verdict after diffing two successive reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// The sorted permutation is fully computed.
    Complete,
    /// Work moved since the last observation. `reaped` counts departed
    /// participants (the sort survives them — that is the algorithm's
    /// whole point); `stalled` counts live participants whose epoch did
    /// not move (paused, preempted, or between observations too briefly
    /// to tick).
    Progressing {
        /// Participants whose epoch advanced since the last observation.
        advancing: usize,
        /// Participants that departed with the sort incomplete.
        reaped: usize,
        /// Live participants whose epoch did not move.
        stalled: usize,
    },
    /// Nothing moved: no epoch advanced, no WAT frontier grew, nobody
    /// joined, and the sort is incomplete. Every live thread is stuck
    /// (or the cohort is empty) — the condition wait-freedom guarantees
    /// a single fresh participant can always clear.
    Wedged,
}

/// Observes a [`SortJob`]'s heartbeats over time and classifies runs:
/// reaped threads are business as usual; a global stall is an alarm.
///
/// # Examples
///
/// ```
/// use wfsort_native::{Health, QuitAfter, SortJob, Watchdog};
///
/// let job = SortJob::new((0..500i64).rev().collect::<Vec<_>>());
/// let mut dog = Watchdog::new(&job);
/// job.participate(&mut QuitAfter(25)); // a worker is reaped early
/// assert!(matches!(dog.observe(), Health::Progressing { .. }));
/// assert_eq!(dog.observe(), Health::Wedged); // ...and nobody is left
/// job.run();
/// assert_eq!(dog.observe(), Health::Complete);
/// ```
#[derive(Debug)]
pub struct Watchdog<'a, K: Ord> {
    job: &'a SortJob<K>,
    prev: Option<ProgressReport>,
}

impl<'a, K: Ord> Watchdog<'a, K> {
    /// Creates a watchdog over `job`. The first [`Watchdog::observe`]
    /// call compares against an all-zero baseline, so it reports
    /// [`Health::Wedged`] for a job nobody has touched yet.
    pub fn new(job: &'a SortJob<K>) -> Self {
        Watchdog { job, prev: None }
    }

    /// Snapshots the job and classifies what happened since the previous
    /// observation (or since the all-zero baseline, on the first call).
    pub fn observe(&mut self) -> Health {
        let now = self.job.progress();
        self.observe_report(now)
    }

    /// Classifies an externally supplied report against the previous one,
    /// exactly as [`Watchdog::observe`] would (and becoming the baseline
    /// for the next observation). Exposed so tests and external monitors
    /// can feed synthetic or replayed report sequences — stale heartbeats
    /// delivered out of order, equal epochs, even epoch wraparound —
    /// without arranging real thread timings.
    ///
    /// Movement is detected by *inequality* (`epoch != previous`), never
    /// by ordering: a heartbeat that goes backwards (reordered delivery,
    /// wraparound) still proves its thread executed, so it must never
    /// push a Progressing run toward [`Health::Wedged`].
    pub fn observe_report(&mut self, now: ProgressReport) -> Health {
        let health = classify(self.prev.as_ref(), &now);
        self.prev = Some(now);
        health
    }

    /// The most recent report, if [`Watchdog::observe`] has run.
    pub fn report(&self) -> Option<&ProgressReport> {
        self.prev.as_ref()
    }
}

/// Classifies `now` against the previous observation — the shared verdict
/// logic behind [`Watchdog::observe_report`] and
/// [`WatchdogRegistry::observe`].
fn classify(prev: Option<&ProgressReport>, now: &ProgressReport) -> Health {
    if now.complete {
        return Health::Complete;
    }
    let (mut advancing, mut reaped, mut stalled) = (0, 0, 0);
    for w in &now.workers {
        let (prev_epoch, prev_departed) = prev
            .and_then(|p| p.workers.get(w.slot))
            .map(|p| (p.epoch, p.departed))
            .unwrap_or((0, false));
        let moved = w.epoch != prev_epoch || w.departed != prev_departed;
        if w.departed {
            reaped += 1;
        } else if !moved {
            stalled += 1;
        }
        if moved {
            advancing += 1;
        }
    }
    let frontier_moved = match prev {
        None => now.build_jobs_done > 0 || now.scatter_jobs_done > 0 || now.participants > 0,
        Some(p) => {
            now.build_jobs_done > p.build_jobs_done
                || now.scatter_jobs_done > p.scatter_jobs_done
                || now.participants > p.participants
        }
    };
    if advancing == 0 && !frontier_moved {
        Health::Wedged
    } else {
        Health::Progressing {
            advancing,
            reaped,
            stalled,
        }
    }
}

/// A [`Watchdog`] for many concurrent jobs: one diffing baseline per job
/// id, fed by externally taken snapshots instead of borrowing the jobs.
/// This is the multi-tenant face of the watchdog —
/// [`crate::service::SortService`] keeps one registry for every in-flight
/// job and consults it when a worker's participation ends with the sort
/// incomplete, so a crashed or stalled tenant is reaped and requeued
/// without touching its neighbours' baselines.
///
/// Ids are caller-assigned; observing an unregistered id registers it
/// implicitly (its first verdict compares against the all-zero baseline,
/// exactly like a fresh [`Watchdog`]).
///
/// # Examples
///
/// ```
/// use wfsort_native::{Health, QuitAfter, SortJob, WatchdogRegistry};
///
/// let a = SortJob::new((0..500i64).rev().collect::<Vec<_>>());
/// let b = SortJob::new((0..500i64).rev().collect::<Vec<_>>());
/// let mut registry = WatchdogRegistry::new();
/// a.participate(&mut QuitAfter(25)); // tenant A's worker is reaped
/// b.run(); // tenant B completes
/// assert!(matches!(registry.observe(1, a.progress()), Health::Progressing { .. }));
/// assert_eq!(registry.observe(2, b.progress()), Health::Complete);
/// assert_eq!(registry.observe(1, a.progress()), Health::Wedged);
/// assert!(registry.last(1).unwrap().stranded());
/// registry.unregister(1);
/// assert_eq!(registry.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct WatchdogRegistry {
    prev: BTreeMap<u64, Option<ProgressReport>>,
}

impl WatchdogRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        WatchdogRegistry::default()
    }

    /// Registers `id` with an all-zero baseline. Returns `false` (and
    /// keeps the existing baseline) if the id is already present.
    pub fn register(&mut self, id: u64) -> bool {
        match self.prev.entry(id) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(None);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Removes `id` and its baseline. Returns whether it was present.
    pub fn unregister(&mut self, id: u64) -> bool {
        self.prev.remove(&id).is_some()
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: u64) -> bool {
        self.prev.contains_key(&id)
    }

    /// Classifies `now` against job `id`'s previous observation, exactly
    /// as [`Watchdog::observe_report`] would, and makes `now` the
    /// baseline for the next observation of that id. Unregistered ids are
    /// registered implicitly.
    pub fn observe(&mut self, id: u64, now: ProgressReport) -> Health {
        let slot = self.prev.entry(id).or_insert(None);
        let health = classify(slot.as_ref(), &now);
        *slot = Some(now);
        health
    }

    /// Job `id`'s most recent report, if it has been observed.
    pub fn last(&self, id: u64) -> Option<&ProgressReport> {
        self.prev.get(&id).and_then(|p| p.as_ref())
    }

    /// Registered job ids, ascending.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.prev.keys().copied()
    }

    /// Number of registered jobs.
    pub fn len(&self) -> usize {
        self.prev.len()
    }

    /// Whether no jobs are registered.
    pub fn is_empty(&self) -> bool {
        self.prev.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{QuitAfter, SortJob};

    #[test]
    fn untouched_job_reads_wedged() {
        let job = SortJob::new(vec![2, 1, 3]);
        let mut dog = Watchdog::new(&job);
        assert_eq!(dog.observe(), Health::Wedged);
        let report = dog.report().unwrap();
        assert!(!report.complete);
        assert_eq!(report.participants, 0);
        assert_eq!(report.build_jobs_done, 0);
    }

    #[test]
    fn completed_job_reads_complete() {
        let job = SortJob::new(vec![3, 1, 2]);
        job.run();
        let mut dog = Watchdog::new(&job);
        assert_eq!(dog.observe(), Health::Complete);
        let report = dog.report().unwrap();
        assert!(report.complete);
        assert_eq!(report.phase, SortPhase::Scatter);
        assert_eq!(report.build_jobs_done, report.build_jobs_total);
        assert_eq!(report.scatter_jobs_done, report.scatter_jobs_total);
        assert_eq!(report.reaped_workers(), 0);
    }

    #[test]
    fn reaped_then_idle_reads_progressing_then_wedged() {
        let job = SortJob::new((0..2000i64).rev().collect::<Vec<_>>());
        let mut dog = Watchdog::new(&job);
        assert_eq!(dog.observe(), Health::Wedged);
        job.participate(&mut QuitAfter(40));
        match dog.observe() {
            Health::Progressing {
                advancing, reaped, ..
            } => {
                assert_eq!(advancing, 1);
                assert_eq!(reaped, 1);
            }
            h => panic!("expected progressing, got {h:?}"),
        }
        // Nothing has moved since: the reaped worker no longer masks the
        // global stall.
        assert_eq!(dog.observe(), Health::Wedged);
        let report = dog.report().unwrap();
        assert_eq!(report.reaped_workers(), 1);
        assert_eq!(report.live_workers(), 0);
        assert!(!report.complete);
    }

    #[test]
    fn sharded_frontier_snapshots_classify_like_heartbeats() {
        // The sharded pipeline carries no heartbeat slots; its
        // `progress()` folds the three WAT frontiers into the report.
        // The registry must classify those snapshots exactly like
        // heartbeat ones: frontier movement since the last observation
        // is Progressing, two identical incomplete snapshots are
        // Wedged, completion is Complete.
        let keys: Vec<u64> = (0..4_000).rev().collect();
        let job = crate::shard::ShardedSortJob::new(keys, 4);
        let mut registry = WatchdogRegistry::new();
        assert!(registry.register(9));
        job.participate(&mut QuitAfter(40));
        assert!(!job.is_complete());
        let snapshot = job.progress();
        assert_eq!(snapshot.workers.len(), 0);
        assert_eq!(snapshot.tracked_slots, 0);
        assert!(matches!(
            registry.observe(9, snapshot),
            Health::Progressing { .. }
        ));
        // Nothing ran between observations: with every frontier frozen
        // the wedged verdict fires without any per-thread epoch
        // evidence.
        assert_eq!(registry.observe(9, job.progress()), Health::Wedged);
        job.run();
        assert_eq!(registry.observe(9, job.progress()), Health::Complete);
    }

    /// A one-live-worker report with the given heartbeat epoch, for
    /// driving [`Watchdog::observe_report`] with synthetic sequences.
    fn synthetic(epoch: u64, departed: bool) -> ProgressReport {
        ProgressReport {
            complete: false,
            phase: SortPhase::Build,
            participants: 1,
            workers: vec![ParticipantProgress {
                slot: 0,
                phase: SortPhase::Build,
                epoch,
                departed,
            }],
            tracked_slots: 1,
            aliased_participants: 0,
            build_jobs_done: 0,
            build_jobs_total: 2,
            scatter_jobs_done: 0,
            scatter_jobs_total: 3,
        }
    }

    #[test]
    fn stale_or_reordered_epochs_never_read_as_wedged() {
        let job = SortJob::new(vec![2, 1, 3]);
        let mut dog = Watchdog::new(&job);
        dog.observe_report(synthetic(10, false));
        // A stale heartbeat delivered out of order: the epoch goes
        // *backwards*. The thread demonstrably executed, so this is
        // movement, not a stall.
        assert_eq!(
            dog.observe_report(synthetic(8, false)),
            Health::Progressing {
                advancing: 1,
                reaped: 0,
                stalled: 0,
            }
        );
        // And forward again: still progressing.
        assert_eq!(
            dog.observe_report(synthetic(9, false)),
            Health::Progressing {
                advancing: 1,
                reaped: 0,
                stalled: 0,
            }
        );
    }

    #[test]
    fn epoch_wraparound_reads_as_progress() {
        let job = SortJob::new(vec![2, 1, 3]);
        let mut dog = Watchdog::new(&job);
        dog.observe_report(synthetic(u64::MAX, false));
        // The counter wraps to zero between observations: inequality, not
        // ordering, is what the watchdog keys on.
        assert_eq!(
            dog.observe_report(synthetic(0, false)),
            Health::Progressing {
                advancing: 1,
                reaped: 0,
                stalled: 0,
            }
        );
        // Having wrapped to the all-zero baseline value, a *repeat* of
        // the same report is a genuine stall.
        assert_eq!(dog.observe_report(synthetic(0, false)), Health::Wedged);
    }

    #[test]
    fn equal_epochs_with_no_frontier_motion_read_wedged() {
        let job = SortJob::new(vec![2, 1, 3]);
        let mut dog = Watchdog::new(&job);
        dog.observe_report(synthetic(5, false));
        // Identical consecutive reports: nothing moved anywhere.
        assert_eq!(dog.observe_report(synthetic(5, false)), Health::Wedged);
        assert_eq!(dog.observe_report(synthetic(5, false)), Health::Wedged);
    }

    #[test]
    fn departed_flip_with_equal_epoch_is_movement() {
        let job = SortJob::new(vec![2, 1, 3]);
        let mut dog = Watchdog::new(&job);
        dog.observe_report(synthetic(5, false));
        // Same epoch, but the worker departed: returning from
        // `participate` is an observable step even if no checkpoint
        // ticked in between.
        assert_eq!(
            dog.observe_report(synthetic(5, true)),
            Health::Progressing {
                advancing: 1,
                reaped: 1,
                stalled: 0,
            }
        );
    }

    #[test]
    fn frontier_growth_alone_is_progress_for_equal_epochs() {
        let job = SortJob::new(vec![2, 1, 3]);
        let mut dog = Watchdog::new(&job);
        dog.observe_report(synthetic(5, false));
        // Epochs frozen, but a WAT frontier grew (some untracked thread
        // finished a job): progressing, with the frozen worker counted
        // as stalled.
        let mut moved = synthetic(5, false);
        moved.build_jobs_done = 1;
        assert_eq!(
            dog.observe_report(moved),
            Health::Progressing {
                advancing: 0,
                reaped: 0,
                stalled: 1,
            }
        );
    }

    #[test]
    fn registry_tracks_jobs_independently() {
        let fast = SortJob::new(vec![2, 1, 3]);
        let slow = SortJob::new((0..2000i64).rev().collect::<Vec<_>>());
        let mut registry = WatchdogRegistry::new();
        assert!(registry.register(7));
        assert!(!registry.register(7), "double-register is a no-op");
        fast.run();
        slow.participate(&mut QuitAfter(40));
        assert_eq!(registry.observe(7, fast.progress()), Health::Complete);
        // Job 9 was never registered: observe registers it implicitly and
        // diffs against the all-zero baseline, so the reaped worker reads
        // as movement first, then as a genuine stall.
        assert!(matches!(
            registry.observe(9, slow.progress()),
            Health::Progressing { reaped: 1, .. }
        ));
        assert_eq!(registry.observe(9, slow.progress()), Health::Wedged);
        // One job's verdicts never disturb the other's baseline.
        assert_eq!(registry.observe(7, fast.progress()), Health::Complete);
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.ids().collect::<Vec<_>>(), vec![7, 9]);
        assert!(registry.unregister(9));
        assert!(!registry.contains(9));
        assert!(!registry.unregister(9));
        assert!(!registry.is_empty());
    }

    #[test]
    fn stranded_flags_abandoned_incomplete_jobs_only() {
        let job = SortJob::new((0..2000i64).rev().collect::<Vec<_>>());
        // Untouched: nobody joined, so nobody is stranded yet.
        assert!(!job.progress().stranded());
        job.participate(&mut QuitAfter(40));
        // One participant joined and departed with the sort incomplete.
        assert!(job.progress().stranded());
        job.run();
        assert!(!job.progress().stranded());
    }

    #[test]
    fn registry_observe_matches_single_job_watchdog() {
        let job = SortJob::new((0..2000i64).rev().collect::<Vec<_>>());
        let mut dog = Watchdog::new(&job);
        let mut registry = WatchdogRegistry::new();
        assert_eq!(dog.observe(), registry.observe(1, job.progress()));
        job.participate(&mut QuitAfter(40));
        assert_eq!(dog.observe(), registry.observe(1, job.progress()));
        assert_eq!(dog.observe(), registry.observe(1, job.progress()));
        job.run();
        assert_eq!(dog.observe(), registry.observe(1, job.progress()));
    }

    #[test]
    fn display_renders_summary() {
        let job = SortJob::new(vec![2, 1, 3]);
        job.run();
        let text = job.progress().to_string();
        assert!(text.contains("complete"), "got: {text}");
        assert!(text.contains("build 2/2"), "got: {text}");
    }
}
