//! The artifact contracts, exercised end to end: everything persisted
//! through [`bench::write_artifact`] must load back byte-identical and
//! still mean the same thing — a minimized E23 counterexample token must
//! replay to the same violation, and an E24 `BENCH_native.json` must
//! pass [`bench::validate_native_metrics`] after the round trip.
//!
//! One test owns the whole flow because `BENCH_OUTPUT_DIR` is process
//! environment: parallel tests mutating it would race.

use pram::failure::FailurePlan;
use pram::{Explorer, Pid, ScheduleScript, Word};
use wfsort::{Phase, PhaseTarget};
use wfsort_native::{NativeAllocation, SortJob, WaitFreeSorter};

fn keys(n: usize) -> Vec<Word> {
    (0..n as Word).map(|i| (i * 7) % n as Word).collect()
}

#[test]
fn artifacts_round_trip_through_write_artifact() {
    let dir = std::env::temp_dir().join(format!("bench-artifact-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp artifact dir");

    // With the variable unset, write_artifact reports "not persisted"
    // via None — CI smoke jobs treat that as a hard error.
    std::env::remove_var("BENCH_OUTPUT_DIR");
    assert_eq!(bench::write_artifact("x.json", "{}"), None);

    // Regression (the silent-drop bug): a BENCH_OUTPUT_DIR pointing at a
    // directory that does not exist yet used to make every write fail
    // with a warning while the experiment exited 0. The directory is now
    // created on demand and the written path is returned.
    let nested = dir.join("fresh").join("deeper");
    assert!(!nested.exists());
    std::env::set_var("BENCH_OUTPUT_DIR", &nested);
    let path = bench::write_artifact("probe.txt", "probe")
        .expect("write_artifact must create the missing directory");
    assert_eq!(std::fs::read_to_string(&path).unwrap(), "probe");

    std::env::set_var("BENCH_OUTPUT_DIR", &dir);
    e23_counterexample_flow(&dir);
    e24_native_metrics_flow(&dir);

    std::fs::remove_dir_all(&dir).ok();
}

/// A minimized counterexample token written to disk must parse back and
/// replay to the same violation — failing schedules reproduce from the
/// CI artifact directory alone.
fn e23_counterexample_flow(dir: &std::path::Path) {
    let mut found = None;
    for crash_cycle in 4..60 {
        let plan = FailurePlan::new().crash_at(crash_cycle, Pid::new(0));
        let target = PhaseTarget::new(Phase::PlaceFaithful, keys(8), 2).with_failures(plan);
        if let Some(ce) = Explorer::new(2).exhaustive(&target).counterexample {
            found = Some((target, ce));
            break;
        }
    }
    let (target, ce) = found.expect("no crash cycle broke the verbatim Figure 6");

    bench::write_artifact("e23-counterexample.token", &ce.script.to_token());
    let loaded = std::fs::read_to_string(dir.join("e23-counterexample.token"))
        .expect("artifact file written");
    let parsed = ScheduleScript::from_token(loaded.trim()).expect("artifact parses");
    assert_eq!(parsed, ce.script, "file round-trip changed the script");

    let (_, replayed) = Explorer::replay(&target, &parsed);
    assert_eq!(
        replayed.violation,
        Some(ce.violation),
        "loaded artifact did not replay to the same violation"
    );
}

/// A `BENCH_native.json` built from a real instrumented sort must pass
/// schema validation before and after the file round trip, and obvious
/// corruptions must be rejected — the CI smoke job's `--validate` gate
/// rests on this.
fn e24_native_metrics_flow(dir: &std::path::Path) {
    let input: Vec<u64> = (0..400).rev().collect();
    let job = SortJob::with_tracked(input, NativeAllocation::Deterministic, 2);
    let report = WaitFreeSorter::new(2).run_job_with_report(&job);
    assert!(job.is_complete());

    let p = &report.per_phase;
    let per_worker: Vec<String> = report
        .per_worker
        .iter()
        .map(|w| {
            format!(
                "{{\"help_steps\":{},\"checkpoints\":{},\"total_ops\":{}}}",
                w.help_steps,
                w.checkpoints,
                w.phases.total_ops()
            )
        })
        .collect();
    let artifact = format!(
        concat!(
            "{{\"schema\":\"{}\",\"experiment\":\"artifact_roundtrip\",\"quick\":true,",
            "\"runs\":[{{\"threads\":2,\"n\":400,\"shape\":\"reversed\",",
            "\"allocation\":\"wat\",\"elapsed_ms\":{:.3},\"sorted\":true,",
            "\"total_ops\":{},\"help_steps\":{},\"checkpoints\":{},",
            "\"cas_failure_rate\":{:.6},",
            "\"tracked_slots\":2,\"per_worker\":[{}],",
            "\"build\":{{\"cas_attempts\":{},\"cas_failures\":{},\"descent_steps\":{},",
            "\"claims\":{},\"block_claims\":{},\"probes\":{}}},",
            "\"sum\":{{\"visits\":{},\"skips\":{}}},",
            "\"place\":{{\"visits\":{},\"skips\":{}}},",
            "\"scatter\":{{\"claims\":{},\"block_claims\":{},\"probes\":{}}}}}]}}"
        ),
        bench::json::NATIVE_METRICS_SCHEMA,
        report.elapsed.as_secs_f64() * 1e3,
        report.total_ops(),
        report.help_steps(),
        report.checkpoints(),
        report.cas_failure_rate,
        per_worker.join(","),
        p.build.cas_attempts,
        p.build.cas_failures,
        p.build.descent_steps,
        p.build.claims,
        p.build.block_claims,
        p.build.probes,
        p.sum.visits,
        p.sum.skips,
        p.place.visits,
        p.place.skips,
        p.scatter.claims,
        p.scatter.block_claims,
        p.scatter.probes,
    );
    assert_eq!(
        bench::validate_native_metrics(&artifact),
        Ok(1),
        "freshly generated artifact must satisfy its own schema"
    );

    let path = bench::write_artifact("BENCH_native.json", &artifact)
        .expect("metrics artifact must be written");
    assert_eq!(path, dir.join("BENCH_native.json"));
    let loaded = std::fs::read_to_string(&path).expect("artifact file written");
    assert_eq!(loaded, artifact, "file round-trip changed the artifact");
    assert_eq!(bench::validate_native_metrics(&loaded), Ok(1));

    // The validator is not a rubber stamp: corruptions CI must catch.
    for (corrupt, why) in [
        (
            loaded.replace("wfsort-native-metrics/v1", "v0"),
            "schema tag",
        ),
        (
            loaded.replace("\"sorted\":true", "\"sorted\":false"),
            "unsorted run",
        ),
        (
            loaded.replace("\"cas_failures\":", "\"cas_fail\":"),
            "missing counter",
        ),
        (
            loaded.replace("\"tracked_slots\":2", "\"tracked_slots\":3"),
            "per_worker length disagreeing with tracked_slots",
        ),
        (loaded.replace("]}", ""), "truncated file"),
    ] {
        assert!(
            bench::validate_native_metrics(&corrupt).is_err(),
            "validator must reject: {why}"
        );
    }
}
