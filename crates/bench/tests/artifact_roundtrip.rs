//! The E23 artifact contract: a minimized counterexample token written
//! through [`bench::write_artifact`] must load back from the file and
//! replay to the same violation — failing schedules reproduce from the
//! CI log (or artifact directory) alone.

use pram::failure::FailurePlan;
use pram::{Explorer, Pid, ScheduleScript, Word};
use wfsort::{Phase, PhaseTarget};

fn keys(n: usize) -> Vec<Word> {
    (0..n as Word).map(|i| (i * 7) % n as Word).collect()
}

#[test]
fn counterexample_token_round_trips_through_write_artifact() {
    // One test owns the whole flow because BENCH_OUTPUT_DIR is process
    // environment: find a counterexample, write it, load it, replay it.
    let dir = std::env::temp_dir().join(format!("e23-artifact-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp artifact dir");
    std::env::set_var("BENCH_OUTPUT_DIR", &dir);

    let mut found = None;
    for crash_cycle in 4..60 {
        let plan = FailurePlan::new().crash_at(crash_cycle, Pid::new(0));
        let target = PhaseTarget::new(Phase::PlaceFaithful, keys(8), 2).with_failures(plan);
        if let Some(ce) = Explorer::new(2).exhaustive(&target).counterexample {
            found = Some((target, ce));
            break;
        }
    }
    let (target, ce) = found.expect("no crash cycle broke the verbatim Figure 6");

    bench::write_artifact("e23-counterexample.token", &ce.script.to_token());
    let loaded = std::fs::read_to_string(dir.join("e23-counterexample.token"))
        .expect("artifact file written");
    let parsed = ScheduleScript::from_token(loaded.trim()).expect("artifact parses");
    assert_eq!(parsed, ce.script, "file round-trip changed the script");

    let (_, replayed) = Explorer::replay(&target, &parsed);
    assert_eq!(
        replayed.violation,
        Some(ce.violation),
        "loaded artifact did not replay to the same violation"
    );

    std::fs::remove_dir_all(&dir).ok();
}
