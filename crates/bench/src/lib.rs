//! Shared plumbing for the experiment binaries (`e1`..`e12`) and the
//! criterion benches.
//!
//! Each binary regenerates one experiment from EXPERIMENTS.md, printing a
//! markdown table whose *shape* (growth rates, who wins, crossovers) is
//! compared against the corresponding claim of the paper.

#![forbid(unsafe_code)]

use std::path::PathBuf;

pub mod json;

pub use json::{
    validate_layout_bench, validate_native_metrics, validate_service_bench, validate_sharded_bench,
};

/// The artifact directory, if `BENCH_OUTPUT_DIR` is set — created on
/// first use, so pointing the variable at a fresh path just works.
fn output_dir() -> Option<PathBuf> {
    let dir = PathBuf::from(std::env::var_os("BENCH_OUTPUT_DIR")?);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create {}: {e}", dir.display());
        return None;
    }
    Some(dir)
}

/// A rendered results table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the table with a title line; additionally, if the
    /// `BENCH_OUTPUT_DIR` environment variable is set, writes the table
    /// as CSV into that directory (file name derived from the title).
    pub fn print(&self, title: &str) {
        println!("\n## {title}\n");
        print!("{}", self.to_markdown());
        if let Some(dir) = output_dir() {
            let slug: String = title
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '-'
                    }
                })
                .collect::<String>()
                .split('-')
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join("-");
            let path = dir.join(format!("{slug}.csv"));
            if let Err(e) = std::fs::write(&path, self.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(csv written to {})", path.display());
            }
        }
    }
}

/// Writes `contents` to `file_name` inside `BENCH_OUTPUT_DIR`, creating
/// the directory if needed; does nothing when the variable is unset.
/// Used by experiment binaries for machine-readable artifacts (JSON
/// records, raw samples) that do not fit the [`Table`] CSV side-channel.
///
/// Returns the path written, so callers that *require* the artifact
/// (CI smoke jobs) can treat `None` — variable unset, directory not
/// creatable, or write failed — as a hard error instead of a warning.
pub fn write_artifact(file_name: &str, contents: &str) -> Option<PathBuf> {
    let dir = output_dir()?;
    let path = dir.join(file_name);
    if let Err(e) = std::fs::write(&path, contents) {
        eprintln!("warning: could not write {}: {e}", path.display());
        return None;
    }
    eprintln!("(artifact written to {})", path.display());
    Some(path)
}

/// Unicode block characters for sparklines, blank to full.
pub const SPARK_BARS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a series as a fixed-width sparkline: the series is max-pooled
/// into `width` buckets and each bucket drawn against `scale_max`.
pub fn sparkline(series: &[u32], width: usize, scale_max: u32) -> String {
    let bucket = series.len().div_ceil(width).max(1);
    series
        .chunks(bucket)
        .map(|c| {
            let m = *c.iter().max().unwrap_or(&0);
            let idx = if scale_max == 0 {
                0
            } else {
                (m as usize * (SPARK_BARS.len() - 1)).div_ceil(scale_max as usize)
            };
            SPARK_BARS[idx.min(SPARK_BARS.len() - 1)]
        })
        .collect()
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// `log2` of a positive integer, as f64.
pub fn log2(n: usize) -> f64 {
    (n as f64).log2()
}

/// Geometric mean of a nonempty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Mean of a nonempty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Wall-clock helper: runs `f` and returns (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["n", "cycles"]);
        t.row(vec!["16".into(), "100".into()]);
        t.row(vec!["256".into(), "2000".into()]);
        let md = t.to_markdown();
        assert!(md.contains("|   n | cycles |"));
        assert!(md.contains("|  16 |    100 |"));
        assert!(md.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_checks_width() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_rendering_escapes() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["plain".into(), "1".into()]);
        t.row(vec!["with,comma".into(), "with\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("name,value\n"));
        assert!(csv.contains("plain,1"));
        assert!(csv.contains("\"with,comma\",\"with\"\"quote\""));
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(log2(8), 3.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn sparkline_scales_and_pools() {
        let s = sparkline(&[0, 0, 8, 8], 2, 8);
        assert_eq!(s.chars().count(), 2);
        assert_eq!(s.chars().next(), Some(' '));
        assert_eq!(s.chars().nth(1), Some('█'));
        // Zero scale never panics.
        assert_eq!(sparkline(&[5], 1, 0), " ");
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
