//! E1 — Lemma 2.1: `next_element` is wait-free with `O(log N)` steps per
//! call, and a solo processor completes an N-leaf WAT in `O(N)` total
//! steps (amortized O(1) per leaf plus an `O(log N)` tail).
//!
//! Run: `cargo run --release -p bench --bin e1_wat_steps`

use bench::{f2, log2, Table};
use pram::{Machine, MemoryLayout, SyncScheduler};
use wat::{NopWorker, Wat};

fn main() {
    let mut solo = Table::new(&["N (leaves)", "steps (P=1)", "steps/leaf", "log2 N"]);
    for k in [4u32, 6, 8, 10, 12, 14] {
        let n = 1usize << k;
        let mut layout = MemoryLayout::new();
        let wat = Wat::layout(&mut layout, n);
        let mut machine = Machine::new(layout.total());
        for p in wat.processes(1, |_| NopWorker) {
            machine.add_process(p);
        }
        let report = machine
            .run(&mut SyncScheduler, 100_000_000)
            .expect("wait-free: must terminate");
        let steps = report.metrics.steps_per_process[0];
        solo.row(vec![
            n.to_string(),
            steps.to_string(),
            f2(steps as f64 / n as f64),
            f2(log2(n)),
        ]);
    }
    solo.print("E1a: solo WAT traversal cost (expect steps/leaf ~ constant)");

    let mut par = Table::new(&["N = P", "cycles", "cycles/log2 N", "max steps/proc"]);
    for k in [4u32, 6, 8, 10, 12] {
        let n = 1usize << k;
        let mut layout = MemoryLayout::new();
        let wat = Wat::layout(&mut layout, n);
        let mut machine = Machine::new(layout.total());
        for p in wat.processes(n, |_| NopWorker) {
            machine.add_process(p);
        }
        let report = machine
            .run(&mut SyncScheduler, 100_000_000)
            .expect("wait-free: must terminate");
        par.row(vec![
            n.to_string(),
            report.metrics.cycles.to_string(),
            f2(report.metrics.cycles as f64 / log2(n)),
            report.metrics.max_steps_per_process().to_string(),
        ]);
    }
    par.print("E1b: P = N WAT completion (Lemma 2.3 with K = 0: expect cycles ~ c log N)");

    println!(
        "\nPaper claim: each next_element call is O(log N); with P = N the \
         skeleton finishes in O(K + log N) cycles. Shape check: the \
         cycles/log2(N) column should stay roughly flat."
    );
}
