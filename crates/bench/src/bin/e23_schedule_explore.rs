//! E23 — systematic schedule exploration.
//!
//! Three parts, mirroring the engine's three jobs:
//!
//! 1. **Exhaustive coverage** — enumerate *every* schedule of tiny
//!    shapes up to a preemption bound (CHESS-style context bounding) and
//!    report the state counts; the wait-free phases must pass all of
//!    them, with and without crash plans composed in.
//! 2. **Mutation acceptance** — aim the explorer at the Figure 6 routine
//!    *exactly as printed* (crash-unsafe) plus a single crash; it must
//!    find the loss, shrink it to a minimal preemption sequence, and the
//!    serialized token must replay to the same violation.
//! 3. **Guided walks** — seeded random walks over shapes too large to
//!    enumerate, every walk replayable from its token.
//!
//! Usage: `e23_schedule_explore [--smoke]` — `--smoke` is the CI
//! explore-smoke configuration (same exhaustive N=P=3 pass, 30 s walk
//! budget).

use std::time::Duration;

use bench::{f2, timed, write_artifact, Table};
use pram::failure::FailurePlan;
use pram::{ExploreReport, Explorer, Pid, ScheduleScript, Word};
use wfsort::{Phase, PhaseTarget};

fn keys(n: usize) -> Vec<Word> {
    (0..n as Word).map(|i| (i * 7) % n as Word).collect()
}

fn depth_profile(report: &ExploreReport) -> String {
    report
        .stats
        .runs_by_depth
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join("/")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut records: Vec<String> = Vec::new();

    // Part 1: exhaustive bounded-preemption enumeration of tiny shapes.
    // `plan` composes scripted crashes into every explored schedule.
    let mut exhaustive: Vec<(Phase, usize, usize, usize, FailurePlan)> = vec![
        (Phase::Build, 3, 3, 2, FailurePlan::new()),
        (Phase::Sum, 3, 3, 2, FailurePlan::new()),
        (Phase::Place, 3, 3, 2, FailurePlan::new()),
        (Phase::EndToEnd, 3, 2, 1, FailurePlan::new()),
        (
            Phase::Sum,
            3,
            2,
            2,
            FailurePlan::new().crash_at(3, Pid::new(0)),
        ),
        (
            Phase::Place,
            3,
            2,
            2,
            FailurePlan::new()
                .crash_at(2, Pid::new(1))
                .revive_at(9, Pid::new(1)),
        ),
    ];
    if !smoke {
        exhaustive.push((Phase::Build, 4, 4, 2, FailurePlan::new()));
        exhaustive.push((Phase::Sum, 4, 4, 2, FailurePlan::new()));
        exhaustive.push((Phase::Place, 4, 3, 2, FailurePlan::new()));
        exhaustive.push((
            Phase::Build,
            4,
            2,
            2,
            FailurePlan::new().crash_at(5, Pid::new(0)),
        ));
    }

    let mut t = Table::new(&[
        "phase",
        "n",
        "p",
        "bound",
        "crashes",
        "runs",
        "steps",
        "runs/depth",
        "secs",
    ]);
    for (phase, n, p, bound, plan) in exhaustive {
        let crashes = plan.len();
        let target = PhaseTarget::new(phase, keys(n), p).with_failures(plan);
        let label = pram::ExploreTarget::label(&target);
        let (report, secs) = timed(|| Explorer::new(bound).exhaustive(&target));
        assert!(
            report.counterexample.is_none(),
            "{label} bound {bound}: wait-free phase failed an explored schedule: {:?}",
            report.counterexample
        );
        records.push(format!(
            r#"{{"kind":"exhaustive","target":"{label}","bound":{bound},"crash_events":{crashes},"runs":{},"steps":{},"runs_by_depth":[{}],"secs":{}}}"#,
            report.stats.runs,
            report.stats.steps,
            report
                .stats
                .runs_by_depth
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(","),
            f2(secs),
        ));
        t.row(vec![
            format!("{phase:?}"),
            n.to_string(),
            p.to_string(),
            bound.to_string(),
            crashes.to_string(),
            report.stats.runs.to_string(),
            report.stats.steps.to_string(),
            depth_profile(&report),
            f2(secs),
        ]);
    }
    t.print("E23a: exhaustive bounded-preemption coverage (all schedules pass)");

    // Part 2: the mutation acceptance test. The verbatim Figure 6 skips
    // any element whose `place` is already written — crash a processor
    // mid-write and some schedule strands a subtree. The explorer must
    // find it, shrink it, and the token must replay it.
    let mut found = None;
    let mut scan_runs = 0u64;
    let (_, scan_secs) = timed(|| {
        for crash_cycle in 4..120 {
            let plan = FailurePlan::new().crash_at(crash_cycle, Pid::new(0));
            let target = PhaseTarget::new(Phase::PlaceFaithful, keys(8), 2).with_failures(plan);
            // Only schedule-*dependent* losses are interesting: skip crash
            // cycles that already kill the default schedule.
            let empty = ScheduleScript::new(pram::ExploreTarget::label(&target));
            scan_runs += 1;
            if Explorer::replay(&target, &empty).1.violation.is_some() {
                continue;
            }
            let report = Explorer::new(2).exhaustive(&target);
            scan_runs += report.stats.runs;
            if let Some(ce) = report.counterexample {
                found = Some((target, ce));
                return;
            }
        }
    });
    let (target, ce) = found.expect("no crash cycle broke the verbatim Figure 6");
    let preemptions = ce.script.preemptions().len();
    assert!(
        (1..=6).contains(&preemptions),
        "expected a minimal 1..=6-preemption schedule, got {preemptions}"
    );
    let token = ce.script.to_token();
    let parsed = ScheduleScript::from_token(&token).expect("emitted token must parse");
    let (_, replayed) = Explorer::replay(&target, &parsed);
    assert_eq!(
        replayed.violation.as_ref(),
        Some(&ce.violation),
        "token did not replay to the same violation"
    );
    println!("\n## E23b: mutation test (Figure 6 verbatim + 1 crash)\n");
    println!(
        "target:      {} (crash benign on the default schedule)",
        pram::ExploreTarget::label(&target)
    );
    println!("violation:   {}", ce.violation);
    println!("preemptions: {preemptions} (after shrinking)");
    println!("scan:        {scan_runs} runs in {} s", f2(scan_secs));
    println!("replay:      token reproduces the identical violation");
    println!("token:       {token}");
    write_artifact("e23-counterexample.token", &token);
    records.push(format!(
        r#"{{"kind":"mutation","target":"{}","preemptions":{preemptions},"scan_runs":{scan_runs},"token":"{token}"}}"#,
        pram::ExploreTarget::label(&target),
    ));

    // Part 3: guided random walks over shapes exhaustion cannot reach.
    let walk_shapes: Vec<(Phase, usize, usize, FailurePlan)> = vec![
        (Phase::EndToEnd, 12, 4, FailurePlan::new()),
        (
            Phase::EndToEnd,
            16,
            4,
            FailurePlan::random_crash_revive(4, 1, 2_000, 23),
        ),
        (Phase::Build, 16, 6, FailurePlan::new()),
    ];
    let per_row = if smoke {
        Duration::from_secs(30) / walk_shapes.len() as u32
    } else {
        Duration::from_secs(45) / walk_shapes.len() as u32
    };
    let mut wt = Table::new(&[
        "phase",
        "n",
        "p",
        "crashes",
        "walks",
        "steps",
        "violations",
        "secs",
    ]);
    for (phase, n, p, plan) in walk_shapes {
        let crashes = plan.len();
        let target = PhaseTarget::new(phase, keys(n), p).with_failures(plan);
        let label = pram::ExploreTarget::label(&target);
        let mut config = pram::WalkConfig::new(u64::MAX, 0xe23);
        config.budget = Some(per_row);
        let (report, secs) = timed(|| Explorer::new(usize::MAX).guided_walk(&target, &config));
        assert!(
            report.counterexample.is_none(),
            "{label}: wait-free phase failed a guided walk: {:?}",
            report.counterexample
        );
        records.push(format!(
            r#"{{"kind":"walk","target":"{label}","crash_events":{crashes},"walks":{},"steps":{},"secs":{}}}"#,
            report.stats.runs,
            report.stats.steps,
            f2(secs),
        ));
        wt.row(vec![
            format!("{phase:?}"),
            n.to_string(),
            p.to_string(),
            crashes.to_string(),
            report.stats.runs.to_string(),
            report.stats.steps.to_string(),
            "0".to_string(),
            f2(secs),
        ]);
    }
    wt.print("E23c: guided random walks (every walk replayable from its token)");

    write_artifact(
        "e23-schedule-explore.json",
        &format!("[\n  {}\n]\n", records.join(",\n  ")),
    );

    println!();
    println!(
        "Paper claim: wait-freedom is a statement about *every* schedule, not the average one."
    );
    println!(
        "E23 backs it mechanically: all bounded-preemption interleavings of the tiny shapes pass,"
    );
    println!(
        "guided walks find nothing on the published algorithm, and the engine demonstrably can"
    );
    println!("find+shrink+replay a real loss when aimed at the crash-unsafe verbatim Figure 6.");
}
