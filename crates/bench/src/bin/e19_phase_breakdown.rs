//! E19 (extension) — where the cycles go: per-phase cost of the
//! deterministic sort (§2.2's "three phases, each of which requires
//! logarithmic time"), measured by running each phase in isolation on
//! the real output state of the previous one.
//!
//! Run: `cargo run --release -p bench --bin e19_phase_breakdown`

use bench::{f2, Table};
use pram::{Machine, MemoryLayout, Pid, SyncScheduler, Word};
use wat::Wat;
use wfsort::{
    BuildTreeWorker, ElementArrays, FindPlaceProcess, ScatterMode, ScatterWorker, Side,
    TreeSumProcess, Workload,
};

/// Copies the per-element arrays from one machine into another freshly
/// laid-out machine (same layout order ⇒ same addresses).
fn carry_over(src: &Machine, dst: &mut Machine, arrays: &ElementArrays, n: usize) {
    for i in 1..=n {
        let cells = [
            arrays.key(i),
            arrays.child(i, Side::Small),
            arrays.child(i, Side::Big),
            arrays.size(i),
            arrays.place(i),
            arrays.place_done(i),
            arrays.parent(i),
        ];
        for addr in cells {
            let v = src.memory().read(addr);
            dst.memory_mut().load(addr, &[v]);
        }
    }
}

fn main() {
    let n = 1024;
    let p = 64;
    let keys: Vec<Word> = Workload::RandomPermutation.generate(n, 53);

    // Shared layout for all phases (laid out identically each time).
    let layout = |l: &mut MemoryLayout| {
        let arrays = ElementArrays::layout(l, n);
        let out = l.region(n);
        let bwat = Wat::layout(l, n - 1);
        let swat = Wat::layout(l, n);
        (arrays, out, bwat, swat)
    };

    let mut t = Table::new(&["phase", "cycles", "ops", "max contention", "ops/N"]);
    let mut record = |name: &str, m: &Machine| {
        let met = m.metrics();
        t.row(vec![
            name.to_string(),
            met.cycles.to_string(),
            met.total_ops.to_string(),
            met.max_contention.to_string(),
            f2(met.total_ops as f64 / n as f64),
        ]);
    };

    // Phase 1: build.
    let mut l = MemoryLayout::new();
    let (arrays, _out, bwat, _swat) = layout(&mut l);
    let mut m1 = Machine::with_seed(l.total(), 53);
    arrays.load_keys(m1.memory_mut(), &keys);
    for proc in bwat.processes(p, |_| BuildTreeWorker::for_full_sort(arrays)) {
        m1.add_process(proc);
    }
    m1.run(&mut SyncScheduler, 100_000_000).unwrap();
    record("1 build_tree (+WAT)", &m1);

    // Phase 2: sum, on phase 1's tree.
    let mut l = MemoryLayout::new();
    let (arrays2, _out, _bwat, _swat) = layout(&mut l);
    let mut m2 = Machine::with_seed(l.total(), 53);
    carry_over(&m1, &mut m2, &arrays2, n);
    for i in 0..p {
        m2.add_process(Box::new(TreeSumProcess::new(arrays2, Pid::new(i), 1)));
    }
    m2.run(&mut SyncScheduler, 100_000_000).unwrap();
    record("2 tree_sum", &m2);

    // Phase 3: place, on phase 2's sizes.
    let mut l = MemoryLayout::new();
    let (arrays3, _out, _bwat, _swat) = layout(&mut l);
    let mut m3 = Machine::with_seed(l.total(), 53);
    carry_over(&m2, &mut m3, &arrays3, n);
    for i in 0..p {
        m3.add_process(Box::new(FindPlaceProcess::new(arrays3, Pid::new(i), 1)));
    }
    m3.run(&mut SyncScheduler, 100_000_000).unwrap();
    record("3 find_place", &m3);

    // Phase 4: scatter, on phase 3's places.
    let mut l = MemoryLayout::new();
    let (arrays4, out4, _bwat, swat) = layout(&mut l);
    let mut m4 = Machine::with_seed(l.total(), 53);
    carry_over(&m3, &mut m4, &arrays4, n);
    for proc in swat.processes(p, |_| {
        ScatterWorker::new(arrays4, out4, 1, ScatterMode::Keys)
    }) {
        m4.add_process(proc);
    }
    m4.run(&mut SyncScheduler, 100_000_000).unwrap();
    record("4 shuffle (+WAT)", &m4);

    // Sanity: the final output really is the sorted keys.
    let sorted = m4.memory().snapshot(out4.range());
    let mut expect = keys.clone();
    expect.sort_unstable();
    assert_eq!(sorted, expect, "phase chain must produce the sorted keys");

    t.print(&format!(
        "E19: per-phase cost, N = {n}, P = {p} (each phase isolated on the previous phase's real state)"
    ));
    println!(
        "\nPaper claim (§1.3): 'our algorithm consists of three phases, \
         each of which requires logarithmic time'. Measured shape: the \
         WAT-allocated phases (build, shuffle) deduplicate perfectly — \
         each job runs ~once, so their total work is O(N·depth) and O(N). \
         The traversal phases (sum, place) cost more *total* ops because \
         all P processors walk the tree top before the size/place \
         completion marks fence them into private subtrees — the paper's \
         O(log P + N/P) per-processor analysis, visible as ops/N growing \
         with P while per-processor work stays O(N/P + log-ish). The \
         contention column is P everywhere: that is the §2 algorithm's \
         O(P) signature that §3 removes."
    );
}
