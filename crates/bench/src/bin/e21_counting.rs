//! E21 (extension) — the §1.2 premise, measured on its original home
//! ground: counting networks vs a central CAS counter. The paper's
//! contention model descends from the counting-network literature; this
//! experiment shows, on the same simulator as the sort, why that
//! literature cared — a single hot cell costs `O(P)` per step under
//! contention charging, while `Bitonic[w]` splits the heat across
//! `O(w log^2 w)` balancers.
//!
//! Run: `cargo run --release -p bench --bin e21_counting`

use baselines::{count_with, CounterKind};
use bench::{f2, Table};
use pram::SyncScheduler;

fn main() {
    let tokens = 4;
    let mut t = Table::new(&[
        "P",
        "counter",
        "cycles",
        "max contention",
        "QRQW time",
        "QRQW/increment",
    ]);
    for p in [16usize, 64, 256] {
        for kind in [
            CounterKind::Central,
            CounterKind::Network { width: 8 },
            CounterKind::Network { width: 32 },
        ] {
            let out =
                count_with(kind, p, tokens, 5, &mut SyncScheduler).expect("counting completes");
            let total: i64 = out.counts.iter().sum();
            assert_eq!(total, (p * tokens) as i64, "every increment counted");
            let label = match kind {
                CounterKind::Central => "central cell".to_string(),
                CounterKind::Network { width } => format!("Bitonic[{width}]"),
            };
            let m = &out.report.metrics;
            t.row(vec![
                p.to_string(),
                label,
                m.cycles.to_string(),
                m.max_contention.to_string(),
                m.qrqw_time.to_string(),
                f2(m.qrqw_time as f64 / total as f64),
            ]);
        }
    }
    t.print(&format!(
        "E21: {tokens} increments per processor, central counter vs counting networks"
    ));
    println!(
        "\nReading the table: the central counter's contention is ~P and \
         its QRQW bill grows superlinearly (every CAS retry storms the \
         same cell); the counting networks pay more *cycles* (log^2 w \
         balancer hops per token) but their worst cell stays cold, so \
         under contention charging they win at scale and wider networks \
         win harder — exactly the §1.2 trade the paper's §3 then applies \
         to sorting."
    );
}
