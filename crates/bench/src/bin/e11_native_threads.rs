//! E11 — the introduction's scenario on real hardware: throughput of the
//! native wait-free sort across thread counts, against sequential and
//! lock-based baselines, and with mid-run thread casualties.
//!
//! Run: `cargo run --release -p bench --bin e11_native_threads`

use baselines::LockedParallelSorter;
use bench::{f2, timed, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wfsort_native::WaitFreeSorter;

fn keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

fn main() {
    let n = 400_000;
    let input = keys(n, 1);
    let mut expect = input.clone();
    expect.sort_unstable();

    let (_, std_time) = timed(|| {
        let mut v = input.clone();
        v.sort_unstable();
        v
    });
    let (_, qs_time) = timed(|| {
        let mut v = input.clone();
        baselines::quicksort(&mut v);
        v
    });
    println!(
        "N = {n}; std sort_unstable: {:.1} ms; our seq quicksort: {:.1} ms",
        std_time * 1e3,
        qs_time * 1e3
    );

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    // Sweep at least to 4 threads even on small hosts: oversubscription
    // cannot *speed up* the sort there, but exercising real concurrency
    // is the point (and wall time should not collapse either).
    let max_threads = cores.max(4);
    println!("host cores: {cores} (thread counts beyond this are oversubscribed)");
    let mut t = Table::new(&[
        "threads",
        "wait-free (ms)",
        "speedup vs 1T",
        "locked qsort (ms)",
        "wait-free + casualties (ms)",
    ]);
    let mut base = 0.0;
    let mut threads = 1;
    while threads <= max_threads {
        let (sorted, wf) = timed(|| WaitFreeSorter::new(threads).sort(&input));
        assert_eq!(sorted, expect, "wait-free output wrong");
        if threads == 1 {
            base = wf;
        }
        let (locked_sorted, locked) = timed(|| LockedParallelSorter::new(threads).sort(&input));
        assert_eq!(locked_sorted, expect, "locked output wrong");
        let (casualty_sorted, cas) =
            timed(|| WaitFreeSorter::new(threads).sort_with_casualties(&input, 2000));
        assert_eq!(casualty_sorted, expect, "casualty output wrong");
        t.row(vec![
            threads.to_string(),
            f2(wf * 1e3),
            f2(base / wf),
            f2(locked * 1e3),
            f2(cas * 1e3),
        ]);
        threads *= 2;
    }
    t.print(&format!("E11: native threads, N = {n} random u64 keys"));
    println!(
        "\nPaper claim (introduction): wait-freedom permits oblivious \
         reaping and spawning of threads. Shape checks: wait-free \
         throughput scales with threads; killing all but one thread \
         mid-run ('casualties') slows the sort but can never hang or \
         corrupt it; the locked baseline is competitive only while no \
         lock-holder stalls."
    );
}
