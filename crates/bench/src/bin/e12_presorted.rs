//! E12 — the §2.3 refinement: Lemma 2.8 assumes random input order; on
//! adversarial (pre-sorted) inputs the deterministic allocation builds a
//! deep skewed tree top, while randomized element picking restores
//! `O(log N)` expected depth on the early levels.
//!
//! Run: `cargo run --release -p bench --bin e12_presorted`

use bench::{f2, log2, Table};
use pram::SyncScheduler;
use wfsort::{
    check_sorted_permutation, validate_pivot_tree, Allocation, PramSorter, SortConfig, Workload,
};

/// Sorts and returns (cycles, tree depth).
fn run(keys: &[i64], p: usize, allocation: Allocation, seed: u64) -> (u64, usize) {
    let sorter = PramSorter::new(SortConfig::new(p).seed(seed).allocation(allocation));
    let mut prepared = sorter.prepare(keys);
    let report = prepared
        .machine
        .run(&mut SyncScheduler, prepared.budget)
        .expect("sort completes");
    let sorted = prepared.layout.read_output(prepared.machine.memory());
    check_sorted_permutation(keys, &sorted).expect("sorted");
    let stats = validate_pivot_tree(
        prepared.machine.memory(),
        &prepared.layout.elems,
        1,
        keys.len(),
    )
    .expect("valid tree");
    (report.metrics.cycles, stats.depth)
}

fn main() {
    let mut t = Table::new(&[
        "workload",
        "N",
        "P",
        "det cycles",
        "det depth",
        "rand cycles",
        "rand depth",
        "3 log2 N",
    ]);
    // P << N is where the deterministic WAT is adversarial on sorted
    // inputs: each processor inserts a contiguous run of the array in
    // order, so the first insertions — which become the top of the tree —
    // are the smallest keys, degenerating the tree into a chain. With
    // P = N the simultaneous root race effectively randomizes the pivot,
    // masking the effect; we show both.
    let n = 1024;
    for w in [
        Workload::Sorted,
        Workload::Reverse,
        Workload::Sawtooth(16),
        Workload::RandomPermutation,
    ] {
        for p in [16usize, n] {
            let keys = w.generate(n, 9);
            let (dc, dd) = run(&keys, p, Allocation::Deterministic, 9);
            let (rc, rd) = run(&keys, p, Allocation::Randomized, 9);
            t.row(vec![
                w.name().to_string(),
                n.to_string(),
                p.to_string(),
                dc.to_string(),
                dd.to_string(),
                rc.to_string(),
                rd.to_string(),
                f2(3.0 * log2(n)),
            ]);
        }
    }
    t.print("E12: deterministic vs randomized phase-1 allocation on adversarial input orders");
    println!(
        "\nPaper claim (§2.3): with randomized allocation the Quicksort \
         tree has O(log N) depth w.h.p. on *any* input order. Shape \
         checks: on sorted/reverse inputs the randomized column's depth \
         stays near the 3 log2 N column while the deterministic one \
         grows much deeper (and costs correspondingly more cycles); on \
         random permutations the two are comparable."
    );
}
